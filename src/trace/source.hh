/**
 * @file
 * The InstructionSource abstraction: anything that can feed a dynamic
 * instruction stream to the trace-driven simulators.
 *
 * Both the synthetic workload generators (src/workload) and trace-file
 * readers (src/trace) implement this interface, so the simulator cannot
 * tell a live generator from a recorded trace — exactly the property the
 * paper's Dixie-based methodology had.
 */

#ifndef MTV_TRACE_SOURCE_HH
#define MTV_TRACE_SOURCE_HH

#include <memory>
#include <string>
#include <vector>

#include "src/isa/instruction.hh"

namespace mtv
{

/** A resettable stream of dynamic instructions (one program run). */
class InstructionSource
{
  public:
    virtual ~InstructionSource() = default;

    /**
     * Produce the next instruction of the program.
     *
     * @param out Filled with the next instruction on success.
     * @retval true an instruction was produced.
     * @retval false the program has ended (call reset() to rerun).
     */
    virtual bool next(Instruction &out) = 0;

    /** Rewind to the beginning of the program (deterministic replay). */
    virtual void reset() = 0;

    /** Program name, e.g. "swm256". */
    virtual const std::string &name() const = 0;

    /**
     * The whole run as one immutable shared vector, when the source
     * holds it in memory anyway (synthetic programs do; file readers
     * return nullptr). The batched kernel fast-lanes such sources:
     * it keys its decoded-program cache on the vector object and
     * retains this pointer, so cache entries never alias a recycled
     * address. Sources without a shared stream simulate through the
     * generic per-point path instead — slower, never wrong.
     */
    virtual std::shared_ptr<const std::vector<Instruction>>
    sharedStream() const
    {
        return nullptr;
    }
};

/**
 * An InstructionSource over an in-memory vector of instructions.
 * Used pervasively by unit tests and by trace materialization.
 */
class VectorSource : public InstructionSource
{
  public:
    VectorSource(std::string name, std::vector<Instruction> instructions)
        : name_(std::move(name)), instructions_(std::move(instructions))
    {}

    bool
    next(Instruction &out) override
    {
        if (pos_ >= instructions_.size())
            return false;
        out = instructions_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    const std::string &name() const override { return name_; }

    /** Direct access for tests. */
    const std::vector<Instruction> &instructions() const
    {
        return instructions_;
    }

  private:
    std::string name_;
    std::vector<Instruction> instructions_;
    size_t pos_ = 0;
};

/**
 * Drain @p source into a vector (resetting it first and afterwards).
 * @param limit stop after this many instructions (0 = unlimited).
 */
std::vector<Instruction> materialize(InstructionSource &source,
                                     size_t limit = 0);

} // namespace mtv

#endif // MTV_TRACE_SOURCE_HH
