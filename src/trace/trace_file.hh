/**
 * @file
 * On-disk trace format (our Dixie substitute).
 *
 * Two encodings are supported:
 *  - binary (".mtv"): a fixed 24-byte header followed by packed 20-byte
 *    little-endian records; compact and fast, used for real runs.
 *  - text (".mtvt"): one disassembled instruction per line with a
 *    `# program: <name>` header; diffable, used for debugging and docs.
 *    Round-trippable: TextTraceReader parses exactly what
 *    writeTextTrace() emits.
 *
 * The binary layout is explicitly packed field by field (no struct
 * memcpy) so traces are portable across compilers.
 */

#ifndef MTV_TRACE_TRACE_FILE_HH
#define MTV_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "src/trace/source.hh"

namespace mtv
{

/** Magic bytes at the start of a binary trace. */
constexpr uint32_t traceMagic = 0x5654564d;  // "MVTV" little-endian
/** Current binary format version. */
constexpr uint32_t traceVersion = 1;

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * fatal()s on I/O errors (user-visible path problems).
     */
    TraceWriter(const std::string &path, const std::string &programName);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction record. */
    void append(const Instruction &inst);

    /** Number of records written so far. */
    uint64_t count() const { return count_; }

    /** Flush, back-patch the record count, and close. */
    void close();

  private:
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
};

/** How TraceReader holds the trace. */
enum class TraceReadMode : uint8_t
{
    /**
     * Materialize the whole trace at construction. Malformed files
     * fail loudly up front and reset()/replay cost nothing — right
     * for tests and multi-context replay of modest traces.
     */
    Eager,
    /**
     * Stream records from a read buffer, keeping O(buffer) memory
     * regardless of trace size — right for multi-GB traces. A
     * truncated file fails at the record where the data runs out;
     * reset() seeks back to the first record.
     */
    Streaming
};

/** InstructionSource that replays a binary trace file. */
class TraceReader : public InstructionSource
{
  public:
    /** Open @p path; fatal()s on malformed files. */
    explicit TraceReader(const std::string &path,
                         TraceReadMode mode = TraceReadMode::Eager);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    bool next(Instruction &out) override;
    void reset() override;
    const std::string &name() const override { return name_; }

    /** Records in the trace (per the header). */
    uint64_t count() const { return total_; }

  private:
    /** Refill the streaming chunk buffer; false at end of trace. */
    bool fillChunk();

    std::string path_;
    std::string name_;
    TraceReadMode mode_ = TraceReadMode::Eager;
    uint64_t total_ = 0;

    // --- eager state ---
    std::vector<Instruction> instructions_;
    size_t pos_ = 0;

    // --- streaming state ---
    std::FILE *file_ = nullptr;
    long dataStart_ = 0;        ///< file offset of the first record
    uint64_t consumed_ = 0;     ///< records handed out so far
    std::vector<Instruction> chunk_;
    std::vector<uint8_t> raw_;  ///< staging bytes, reused per refill
    size_t chunkPos_ = 0;
};

/**
 * InstructionSource that replays a text (".mtvt") trace — the inverse
 * of writeTextTrace(), loaded eagerly. fatal()s on unparsable lines
 * (text traces are small, hand-editable debugging artifacts).
 */
class TextTraceReader : public InstructionSource
{
  public:
    explicit TextTraceReader(const std::string &path);

    bool next(Instruction &out) override;
    void reset() override { pos_ = 0; }
    const std::string &name() const override { return name_; }

    uint64_t count() const { return instructions_.size(); }

  private:
    std::string name_;
    std::vector<Instruction> instructions_;
    size_t pos_ = 0;
};

/** Record an entire program run from @p source into a binary trace. */
uint64_t writeTrace(InstructionSource &source, const std::string &path);

/** Write the text (".mtvt") form; returns records written. */
uint64_t writeTextTrace(InstructionSource &source, const std::string &path);

} // namespace mtv

#endif // MTV_TRACE_TRACE_FILE_HH
