/**
 * @file
 * On-disk trace format (our Dixie substitute).
 *
 * Two encodings are supported:
 *  - binary (".mtv"): a fixed 24-byte header followed by packed 20-byte
 *    little-endian records; compact and fast, used for real runs.
 *  - text (".mtvt"): one disassembled instruction per line with a
 *    `# program: <name>` header; diffable, used for debugging and docs.
 *
 * The binary layout is explicitly packed field by field (no struct
 * memcpy) so traces are portable across compilers.
 */

#ifndef MTV_TRACE_TRACE_FILE_HH
#define MTV_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "src/trace/source.hh"

namespace mtv
{

/** Magic bytes at the start of a binary trace. */
constexpr uint32_t traceMagic = 0x5654564d;  // "MVTV" little-endian
/** Current binary format version. */
constexpr uint32_t traceVersion = 1;

/** Streaming writer for the binary trace format. */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * fatal()s on I/O errors (user-visible path problems).
     */
    TraceWriter(const std::string &path, const std::string &programName);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one instruction record. */
    void append(const Instruction &inst);

    /** Number of records written so far. */
    uint64_t count() const { return count_; }

    /** Flush, back-patch the record count, and close. */
    void close();

  private:
    std::FILE *file_ = nullptr;
    uint64_t count_ = 0;
};

/**
 * InstructionSource that replays a binary trace file. The whole trace
 * is loaded eagerly; traces at the default workload scale are a few MB.
 */
class TraceReader : public InstructionSource
{
  public:
    /** Load @p path; fatal()s on malformed files. */
    explicit TraceReader(const std::string &path);

    bool next(Instruction &out) override;
    void reset() override { pos_ = 0; }
    const std::string &name() const override { return name_; }

    uint64_t count() const { return instructions_.size(); }

  private:
    std::string name_;
    std::vector<Instruction> instructions_;
    size_t pos_ = 0;
};

/** Record an entire program run from @p source into a binary trace. */
uint64_t writeTrace(InstructionSource &source, const std::string &path);

/** Write the text (".mtvt") form; returns records written. */
uint64_t writeTextTrace(InstructionSource &source, const std::string &path);

} // namespace mtv

#endif // MTV_TRACE_TRACE_FILE_HH
