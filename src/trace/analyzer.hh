/**
 * @file
 * Static trace analysis: per-program operation counts (the paper's
 * Table 3) and per-resource demand lower bounds (the paper's IDEAL
 * line in Figure 10).
 */

#ifndef MTV_TRACE_ANALYZER_HH
#define MTV_TRACE_ANALYZER_HH

#include <cstdint>

#include "src/isa/machine_params.hh"
#include "src/trace/source.hh"

namespace mtv
{

/**
 * Aggregate operation counts for one program run, mirroring the
 * columns of the paper's Table 3.
 */
struct TraceStats
{
    uint64_t scalarInstructions = 0;  ///< S-type dynamic instructions
    uint64_t vectorInstructions = 0;  ///< V-type dynamic instructions
    uint64_t vectorOperations = 0;    ///< sum of VL over vector instrs

    uint64_t vectorArithInstructions = 0;  ///< subset: FU1/FU2 ops
    uint64_t vectorArithOperations = 0;    ///< element ops on FU1/FU2
    uint64_t fu2OnlyOperations = 0;        ///< element ops forced to FU2
    uint64_t vectorMemInstructions = 0;    ///< loads+stores (V)
    uint64_t scalarMemInstructions = 0;    ///< loads+stores (S)
    uint64_t memoryRequests = 0;           ///< address-bus transactions

    /** Total dynamic instructions. */
    uint64_t
    totalInstructions() const
    {
        return scalarInstructions + vectorInstructions;
    }

    /**
     * Degree of vectorization: vector operations over total operations
     * (paper section 4.2: column 4 / (column 2 + column 4)).
     */
    double percentVectorization() const;

    /** Average vector length (vector ops / vector instructions). */
    double averageVectorLength() const;

    /** Accumulate one instruction. */
    void account(const Instruction &inst);

    /** Element-wise sum, used for suite-level aggregates. */
    TraceStats &operator+=(const TraceStats &other);
};

/** Compute TraceStats over a full run of @p source. */
TraceStats analyzeSource(InstructionSource &source);

/**
 * Lower bound on execution cycles for a body of work, computed the way
 * the paper computes its IDEAL line: remove all data dependencies and
 * charge only the most saturated resource.
 *
 * Resources considered: the single address bus (1 request/cycle), the
 * decode unit (1 instruction/cycle; `decodeWidth` wide when >1), the
 * two arithmetic pipes (2 element-ops/cycle, except mul/div/sqrt which
 * only FU2 may execute).
 */
struct IdealBound
{
    uint64_t addressBusCycles = 0;  ///< total memory requests
    uint64_t decodeCycles = 0;      ///< total instructions / width
    uint64_t fuCycles = 0;          ///< arithmetic element-op bound
    uint64_t bound = 0;             ///< max of the above

    /** Name of the binding resource (for reports). */
    const char *binding() const;
};

/** IDEAL bound for the work described by @p stats. */
IdealBound idealBound(const TraceStats &stats, int decodeWidth = 1);

} // namespace mtv

#endif // MTV_TRACE_ANALYZER_HH
