#include "src/trace/trace_file.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

#include "src/common/endian.hh"
#include "src/common/logging.hh"

namespace mtv
{

namespace
{

constexpr size_t recordBytes = 20;

void
packRecord(const Instruction &inst, uint8_t *buf)
{
    buf[0] = static_cast<uint8_t>(inst.op);
    buf[1] = inst.dst;
    buf[2] = inst.srcA;
    buf[3] = inst.srcB;
    writeLe16(buf + 4, inst.vl);
    // bytes 6..7 reserved (zero) to keep the record 4-byte aligned
    buf[6] = 0;
    buf[7] = 0;
    writeLe32(buf + 8, static_cast<uint32_t>(inst.stride));
    writeLe64(buf + 12, inst.addr);
}

Instruction
unpackRecord(const uint8_t *buf)
{
    Instruction inst;
    const uint8_t rawOp = buf[0];
    if (rawOp >= static_cast<uint8_t>(Opcode::NumOpcodes))
        fatal("trace record has invalid opcode %u", rawOp);
    inst.op = static_cast<Opcode>(rawOp);
    inst.dst = buf[1];
    inst.srcA = buf[2];
    inst.srcB = buf[3];
    inst.vl = readLe16(buf + 4);
    inst.stride = static_cast<int32_t>(readLe32(buf + 8));
    inst.addr = readLe64(buf + 12);
    return inst;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &programName)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot open trace file '%s' for writing", path.c_str());

    uint8_t header[16];
    writeLe32(header, traceMagic);
    writeLe32(header + 4, traceVersion);
    writeLe64(header + 8, 0);  // record count, back-patched by close()
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        fatal("short write on trace header");

    // Program name: u16 length + bytes.
    const auto nameLen = static_cast<uint16_t>(
        std::min<size_t>(programName.size(), 0xffff));
    uint8_t lenBuf[2];
    writeLe16(lenBuf, nameLen);
    std::fwrite(lenBuf, 1, 2, file_);
    std::fwrite(programName.data(), 1, nameLen, file_);
}

TraceWriter::~TraceWriter()
{
    if (file_)
        close();
}

void
TraceWriter::append(const Instruction &inst)
{
    MTV_ASSERT(file_ != nullptr);
    uint8_t buf[recordBytes];
    packRecord(inst, buf);
    if (std::fwrite(buf, 1, recordBytes, file_) != recordBytes)
        fatal("short write on trace record");
    ++count_;
}

void
TraceWriter::close()
{
    MTV_ASSERT(file_ != nullptr);
    std::fseek(file_, 8, SEEK_SET);
    uint8_t countBuf[8];
    writeLe64(countBuf, count_);
    std::fwrite(countBuf, 1, 8, file_);
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path, TraceReadMode mode)
    : path_(path), mode_(mode)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());

    uint8_t header[16];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header))
        fatal("trace file '%s' truncated (no header)", path.c_str());
    if (readLe32(header) != traceMagic)
        fatal("'%s' is not an mtv trace (bad magic)", path.c_str());
    if (readLe32(header + 4) != traceVersion) {
        fatal("'%s': unsupported trace version %u", path.c_str(),
              readLe32(header + 4));
    }
    total_ = readLe64(header + 8);

    uint8_t lenBuf[2];
    if (std::fread(lenBuf, 1, 2, f) != 2)
        fatal("trace file '%s' truncated (no name)", path.c_str());
    const uint16_t nameLen = readLe16(lenBuf);
    name_.resize(nameLen);
    if (nameLen &&
        std::fread(name_.data(), 1, nameLen, f) != nameLen) {
        fatal("trace file '%s' truncated (short name)", path.c_str());
    }

    if (mode_ == TraceReadMode::Streaming) {
        // Keep the file open and pull records through the chunk
        // buffer on demand; memory stays O(chunk) however large the
        // trace. A truncated file surfaces at the failing record.
        dataStart_ = std::ftell(f);
        if (dataStart_ < 0)
            fatal("cannot seek in trace file '%s'", path.c_str());
        file_ = f;
        return;
    }

    instructions_.reserve(total_);
    uint8_t buf[recordBytes];
    for (uint64_t i = 0; i < total_; ++i) {
        if (std::fread(buf, 1, recordBytes, f) != recordBytes) {
            fatal("trace file '%s' truncated at record %llu of %llu",
                  path.c_str(), static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(total_));
        }
        instructions_.push_back(unpackRecord(buf));
    }
    std::fclose(f);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::fillChunk()
{
    // The chunk is always fully drained before a refill, so the
    // records loaded so far equal the records handed out.
    constexpr size_t chunkRecords = 4096;
    const uint64_t remaining = total_ - consumed_;
    if (remaining == 0)
        return false;
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(chunkRecords, remaining));
    raw_.resize(n * recordBytes);  // reused across refills
    const size_t want = raw_.size();
    const size_t got = std::fread(raw_.data(), 1, want, file_);
    if (got != want) {
        fatal("trace file '%s' truncated at record %llu of %llu",
              path_.c_str(),
              static_cast<unsigned long long>(consumed_ +
                                              got / recordBytes),
              static_cast<unsigned long long>(total_));
    }
    chunk_.resize(n);
    for (size_t i = 0; i < n; ++i)
        chunk_[i] = unpackRecord(raw_.data() + i * recordBytes);
    chunkPos_ = 0;
    return true;
}

bool
TraceReader::next(Instruction &out)
{
    if (mode_ == TraceReadMode::Eager) {
        if (pos_ >= instructions_.size())
            return false;
        out = instructions_[pos_++];
        return true;
    }
    if (chunkPos_ >= chunk_.size() && !fillChunk())
        return false;
    out = chunk_[chunkPos_++];
    ++consumed_;
    return true;
}

void
TraceReader::reset()
{
    if (mode_ == TraceReadMode::Eager) {
        pos_ = 0;
        return;
    }
    if (std::fseek(file_, dataStart_, SEEK_SET) != 0)
        fatal("cannot rewind trace file '%s'", path_.c_str());
    consumed_ = 0;
    chunk_.clear();
    chunkPos_ = 0;
}

namespace
{

/**
 * Parse one disasm() line back into an Instruction — the exact
 * inverse of the forms Instruction::disasm() emits (see there).
 * fatal()s with file/line context on anything else.
 */
Instruction
parseTextRecord(const std::string &line, const std::string &path,
                uint64_t lineNo)
{
    auto bad = [&](const char *why) {
        fatal("text trace '%s' line %llu: %s: '%s'", path.c_str(),
              static_cast<unsigned long long>(lineNo), why,
              line.c_str());
    };

    const size_t mnemonicEnd = line.find_first_of(" ,");
    const std::string mnemonicText = line.substr(0, mnemonicEnd);
    const Opcode op = opcodeFromMnemonic(mnemonicText);
    if (op == Opcode::NumOpcodes)
        bad("unknown mnemonic");
    Instruction inst;
    inst.op = op;
    const char *rest = mnemonicEnd == std::string::npos
                           ? line.c_str() + line.size()
                           : line.c_str() + mnemonicEnd;

    if (isVector(op) && isMemory(op)) {
        unsigned reg = 0, vl = 0;
        unsigned long long addr = 0;
        int stride = 0, used = 0;
        if (std::sscanf(rest, " v%u, [0x%llx](vl=%u, vs=%d)%n", &reg,
                        &addr, &vl, &stride, &used) != 4 ||
            rest[used] != '\0') {
            bad("malformed vector memory operands");
        }
        if (isStore(op))
            inst.srcA = static_cast<uint8_t>(reg);
        else
            inst.dst = static_cast<uint8_t>(reg);
        inst.addr = addr;
        inst.vl = static_cast<uint16_t>(vl);
        inst.stride = stride;
        return inst;
    }
    if (isVector(op)) {
        unsigned d = 0, a = 0, b = 0, vl = 0;
        int used = 0;
        if (std::sscanf(rest, " v%u, v%u, v%u (vl=%u)%n", &d, &a, &b,
                        &vl, &used) == 4 &&
            rest[used] == '\0') {
            inst.dst = static_cast<uint8_t>(d);
            inst.srcA = static_cast<uint8_t>(a);
            inst.srcB = static_cast<uint8_t>(b);
        } else if (std::sscanf(rest, " v%u, v%u (vl=%u)%n", &d, &a,
                               &vl, &used) == 3 &&
                   rest[used] == '\0') {
            inst.dst = static_cast<uint8_t>(d);
            inst.srcA = static_cast<uint8_t>(a);
        } else if (std::sscanf(rest, " v%u (vl=%u)%n", &d, &vl,
                               &used) == 2 &&
                   rest[used] == '\0') {
            inst.dst = static_cast<uint8_t>(d);
        } else {
            bad("malformed vector operands");
        }
        inst.vl = static_cast<uint16_t>(vl);
        return inst;
    }
    if (isMemory(op)) {
        unsigned reg = 0;
        unsigned long long addr = 0;
        int used = 0;
        if (std::sscanf(rest, " s%u, [0x%llx]%n", &reg, &addr,
                        &used) != 2 ||
            rest[used] != '\0') {
            bad("malformed scalar memory operands");
        }
        if (isStore(op))
            inst.srcA = static_cast<uint8_t>(reg);
        else
            inst.dst = static_cast<uint8_t>(reg);
        inst.addr = addr;
        return inst;
    }

    // Scalar ALU/control: " s<dst>"?, then ", s<src>" per source. A
    // line like "s.br, s7" has no destination (disasm omits absent
    // operands but keeps each source's comma).
    uint8_t *slots[3] = {&inst.dst, &inst.srcA, &inst.srcB};
    int slot = 0;
    if (*rest == ',')
        slot = 1;  // no destination; rest starts at srcA's comma
    bool first = true;
    while (*rest != '\0') {
        if (!first || slot == 1) {
            if (*rest != ',')
                bad("expected ',' between scalar operands");
            ++rest;
        }
        unsigned reg = 0;
        int used = 0;
        if (slot >= 3 ||
            std::sscanf(rest, " s%u%n", &reg, &used) != 1) {
            bad("malformed scalar operands");
        }
        *slots[slot++] = static_cast<uint8_t>(reg);
        rest += used;
        first = false;
    }
    return inst;
}

} // namespace

TextTraceReader::TextTraceReader(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot open text trace '%s'", path.c_str());

    char lineBuf[512];
    uint64_t lineNo = 0;
    while (std::fgets(lineBuf, sizeof(lineBuf), f)) {
        ++lineNo;
        std::string line(lineBuf);
        while (!line.empty() &&
               (line.back() == '\n' || line.back() == '\r')) {
            line.pop_back();
        }
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // Header comment; "# program: <name>" names the trace.
            const std::string prefix = "# program: ";
            if (line.compare(0, prefix.size(), prefix) == 0)
                name_ = line.substr(prefix.size());
            continue;
        }
        instructions_.push_back(parseTextRecord(line, path, lineNo));
    }
    std::fclose(f);
    if (name_.empty())
        fatal("text trace '%s' has no '# program:' header",
              path.c_str());
}

bool
TextTraceReader::next(Instruction &out)
{
    if (pos_ >= instructions_.size())
        return false;
    out = instructions_[pos_++];
    return true;
}

uint64_t
writeTrace(InstructionSource &source, const std::string &path)
{
    source.reset();
    TraceWriter writer(path, source.name());
    Instruction inst;
    while (source.next(inst))
        writer.append(inst);
    const uint64_t n = writer.count();
    writer.close();
    source.reset();
    return n;
}

uint64_t
writeTextTrace(InstructionSource &source, const std::string &path)
{
    source.reset();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open text trace '%s' for writing", path.c_str());
    std::fprintf(f, "# program: %s\n", source.name().c_str());
    Instruction inst;
    uint64_t n = 0;
    while (source.next(inst)) {
        std::fprintf(f, "%s\n", inst.disasm().c_str());
        ++n;
    }
    std::fclose(f);
    source.reset();
    return n;
}

} // namespace mtv
