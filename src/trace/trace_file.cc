#include "src/trace/trace_file.hh"

#include <array>
#include <cstring>

#include "src/common/logging.hh"

namespace mtv
{

namespace
{

constexpr size_t recordBytes = 20;

void
put16(uint8_t *p, uint16_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
}

void
put32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void
put64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t
get16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
get32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
get64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

void
packRecord(const Instruction &inst, uint8_t *buf)
{
    buf[0] = static_cast<uint8_t>(inst.op);
    buf[1] = inst.dst;
    buf[2] = inst.srcA;
    buf[3] = inst.srcB;
    put16(buf + 4, inst.vl);
    // bytes 6..7 reserved (zero) to keep the record 4-byte aligned
    buf[6] = 0;
    buf[7] = 0;
    put32(buf + 8, static_cast<uint32_t>(inst.stride));
    put64(buf + 12, inst.addr);
}

Instruction
unpackRecord(const uint8_t *buf)
{
    Instruction inst;
    const uint8_t rawOp = buf[0];
    if (rawOp >= static_cast<uint8_t>(Opcode::NumOpcodes))
        fatal("trace record has invalid opcode %u", rawOp);
    inst.op = static_cast<Opcode>(rawOp);
    inst.dst = buf[1];
    inst.srcA = buf[2];
    inst.srcB = buf[3];
    inst.vl = get16(buf + 4);
    inst.stride = static_cast<int32_t>(get32(buf + 8));
    inst.addr = get64(buf + 12);
    return inst;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &programName)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (!file_)
        fatal("cannot open trace file '%s' for writing", path.c_str());

    uint8_t header[16];
    put32(header, traceMagic);
    put32(header + 4, traceVersion);
    put64(header + 8, 0);  // record count, back-patched by close()
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        fatal("short write on trace header");

    // Program name: u16 length + bytes.
    const auto nameLen = static_cast<uint16_t>(
        std::min<size_t>(programName.size(), 0xffff));
    uint8_t lenBuf[2];
    put16(lenBuf, nameLen);
    std::fwrite(lenBuf, 1, 2, file_);
    std::fwrite(programName.data(), 1, nameLen, file_);
}

TraceWriter::~TraceWriter()
{
    if (file_)
        close();
}

void
TraceWriter::append(const Instruction &inst)
{
    MTV_ASSERT(file_ != nullptr);
    uint8_t buf[recordBytes];
    packRecord(inst, buf);
    if (std::fwrite(buf, 1, recordBytes, file_) != recordBytes)
        fatal("short write on trace record");
    ++count_;
}

void
TraceWriter::close()
{
    MTV_ASSERT(file_ != nullptr);
    std::fseek(file_, 8, SEEK_SET);
    uint8_t countBuf[8];
    put64(countBuf, count_);
    std::fwrite(countBuf, 1, 8, file_);
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open trace file '%s'", path.c_str());

    uint8_t header[16];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header))
        fatal("trace file '%s' truncated (no header)", path.c_str());
    if (get32(header) != traceMagic)
        fatal("'%s' is not an mtv trace (bad magic)", path.c_str());
    if (get32(header + 4) != traceVersion) {
        fatal("'%s': unsupported trace version %u", path.c_str(),
              get32(header + 4));
    }
    const uint64_t count = get64(header + 8);

    uint8_t lenBuf[2];
    if (std::fread(lenBuf, 1, 2, f) != 2)
        fatal("trace file '%s' truncated (no name)", path.c_str());
    const uint16_t nameLen = get16(lenBuf);
    name_.resize(nameLen);
    if (nameLen &&
        std::fread(name_.data(), 1, nameLen, f) != nameLen) {
        fatal("trace file '%s' truncated (short name)", path.c_str());
    }

    instructions_.reserve(count);
    uint8_t buf[recordBytes];
    for (uint64_t i = 0; i < count; ++i) {
        if (std::fread(buf, 1, recordBytes, f) != recordBytes) {
            fatal("trace file '%s' truncated at record %llu of %llu",
                  path.c_str(), static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(count));
        }
        instructions_.push_back(unpackRecord(buf));
    }
    std::fclose(f);
}

bool
TraceReader::next(Instruction &out)
{
    if (pos_ >= instructions_.size())
        return false;
    out = instructions_[pos_++];
    return true;
}

uint64_t
writeTrace(InstructionSource &source, const std::string &path)
{
    source.reset();
    TraceWriter writer(path, source.name());
    Instruction inst;
    while (source.next(inst))
        writer.append(inst);
    const uint64_t n = writer.count();
    writer.close();
    source.reset();
    return n;
}

uint64_t
writeTextTrace(InstructionSource &source, const std::string &path)
{
    source.reset();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        fatal("cannot open text trace '%s' for writing", path.c_str());
    std::fprintf(f, "# program: %s\n", source.name().c_str());
    Instruction inst;
    uint64_t n = 0;
    while (source.next(inst)) {
        std::fprintf(f, "%s\n", inst.disasm().c_str());
        ++n;
    }
    std::fclose(f);
    source.reset();
    return n;
}

} // namespace mtv
