#include "src/trace/analyzer.hh"

#include <algorithm>

namespace mtv
{

double
TraceStats::percentVectorization() const
{
    const double totalOps = static_cast<double>(scalarInstructions) +
                            static_cast<double>(vectorOperations);
    if (totalOps == 0)
        return 0.0;
    return 100.0 * static_cast<double>(vectorOperations) / totalOps;
}

double
TraceStats::averageVectorLength() const
{
    if (vectorInstructions == 0)
        return 0.0;
    return static_cast<double>(vectorOperations) /
           static_cast<double>(vectorInstructions);
}

void
TraceStats::account(const Instruction &inst)
{
    if (isVector(inst.op)) {
        ++vectorInstructions;
        vectorOperations += inst.vl;
        if (isMemory(inst.op)) {
            ++vectorMemInstructions;
            memoryRequests += inst.vl;
        } else {
            ++vectorArithInstructions;
            vectorArithOperations += inst.vl;
            if (fuClass(inst.op) == FuClass::VecFu2)
                fu2OnlyOperations += inst.vl;
        }
    } else {
        ++scalarInstructions;
        if (isMemory(inst.op)) {
            ++scalarMemInstructions;
            ++memoryRequests;
        }
    }
}

TraceStats &
TraceStats::operator+=(const TraceStats &other)
{
    scalarInstructions += other.scalarInstructions;
    vectorInstructions += other.vectorInstructions;
    vectorOperations += other.vectorOperations;
    vectorArithInstructions += other.vectorArithInstructions;
    vectorArithOperations += other.vectorArithOperations;
    fu2OnlyOperations += other.fu2OnlyOperations;
    vectorMemInstructions += other.vectorMemInstructions;
    scalarMemInstructions += other.scalarMemInstructions;
    memoryRequests += other.memoryRequests;
    return *this;
}

TraceStats
analyzeSource(InstructionSource &source)
{
    source.reset();
    TraceStats stats;
    Instruction inst;
    while (source.next(inst))
        stats.account(inst);
    source.reset();
    return stats;
}

const char *
IdealBound::binding() const
{
    if (bound == addressBusCycles)
        return "address-bus";
    if (bound == fuCycles)
        return "arithmetic-fus";
    return "decode";
}

IdealBound
idealBound(const TraceStats &stats, int decodeWidth)
{
    IdealBound b;
    b.addressBusCycles = stats.memoryRequests;
    b.decodeCycles =
        (stats.totalInstructions() + decodeWidth - 1) / decodeWidth;
    // Arithmetic bound: FU2-only work cannot migrate to FU1, so the
    // best split is max(fu2Only, ceil(total/2)).
    const uint64_t half = (stats.vectorArithOperations + 1) / 2;
    b.fuCycles = std::max(stats.fu2OnlyOperations, half);
    b.bound = std::max({b.addressBusCycles, b.decodeCycles, b.fuCycles});
    return b;
}

} // namespace mtv
