#include "src/trace/source.hh"

namespace mtv
{

std::vector<Instruction>
materialize(InstructionSource &source, size_t limit)
{
    source.reset();
    std::vector<Instruction> out;
    Instruction inst;
    while (source.next(inst)) {
        out.push_back(inst);
        if (limit && out.size() >= limit)
            break;
    }
    source.reset();
    return out;
}

} // namespace mtv
