#include "src/isa/instruction.hh"

#include "src/common/logging.hh"
#include "src/common/strutil.hh"

namespace mtv
{

RegSpace
Instruction::dstSpace() const
{
    if (dst == noReg)
        return RegSpace::None;
    if (op == Opcode::VReduce)
        return RegSpace::S;  // reductions deposit into a scalar register
    if (isVector(op))
        return isStore(op) ? RegSpace::None : RegSpace::V;
    // Scalar ops: loads and address arithmetic write A, data ops write S.
    // The distinction does not affect timing; we map everything through
    // a unified scalar scoreboard and call the space S.
    return RegSpace::S;
}

RegSpace
Instruction::srcSpace() const
{
    if (isVector(op))
        return RegSpace::V;
    return RegSpace::S;
}

bool
Instruction::writesVReg() const
{
    return isVector(op) && !isStore(op) && op != Opcode::VReduce &&
           dst != noReg;
}

bool
Instruction::readsVReg() const
{
    if (!isVector(op))
        return false;
    if (isStore(op) || isVectorArith(op) || op == Opcode::VReduce)
        return srcA != noReg || srcB != noReg;
    return false;
}

std::string
Instruction::disasm() const
{
    std::string out(mnemonic(op));
    auto regName = [this](uint8_t idx) {
        const char space = isVector(op) ? 'v' : 's';
        return format("%c%u", space, idx);
    };
    if (isVector(op)) {
        if (isStore(op)) {
            out += format(" %s, [0x%llx](vl=%u, vs=%d)",
                          regName(srcA).c_str(),
                          static_cast<unsigned long long>(addr), vl,
                          stride);
        } else if (isLoad(op)) {
            out += format(" %s, [0x%llx](vl=%u, vs=%d)",
                          regName(dst).c_str(),
                          static_cast<unsigned long long>(addr), vl,
                          stride);
        } else {
            out += format(" %s", regName(dst).c_str());
            if (srcA != noReg)
                out += format(", %s", regName(srcA).c_str());
            if (srcB != noReg)
                out += format(", %s", regName(srcB).c_str());
            out += format(" (vl=%u)", vl);
        }
    } else if (isMemory(op)) {
        const uint8_t r = isStore(op) ? srcA : dst;
        out += format(" s%u, [0x%llx]", r,
                      static_cast<unsigned long long>(addr));
    } else {
        if (dst != noReg)
            out += format(" s%u", dst);
        if (srcA != noReg)
            out += format(", s%u", srcA);
        if (srcB != noReg)
            out += format(", s%u", srcB);
    }
    return out;
}

Instruction
makeScalar(Opcode op, uint8_t dst, uint8_t srcA, uint8_t srcB)
{
    MTV_ASSERT(fuClass(op) == FuClass::Scalar && !isMemory(op));
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.srcA = srcA;
    inst.srcB = srcB;
    return inst;
}

Instruction
makeScalarMem(Opcode op, uint8_t reg, uint64_t addr)
{
    MTV_ASSERT(op == Opcode::SLoad || op == Opcode::SStore);
    Instruction inst;
    inst.op = op;
    if (op == Opcode::SLoad)
        inst.dst = reg;
    else
        inst.srcA = reg;
    inst.addr = addr;
    return inst;
}

Instruction
makeVectorArith(Opcode op, uint8_t dst, uint8_t srcA, uint8_t srcB,
                uint16_t vl)
{
    MTV_ASSERT(isVectorArith(op) || op == Opcode::VReduce);
    MTV_ASSERT(vl >= 1 && vl <= maxVectorLength);
    Instruction inst;
    inst.op = op;
    inst.dst = dst;
    inst.srcA = srcA;
    inst.srcB = srcB;
    inst.vl = vl;
    return inst;
}

Instruction
makeVectorMem(Opcode op, uint8_t vreg, uint16_t vl, uint64_t addr,
              int32_t stride)
{
    MTV_ASSERT(isMemory(op) && isVector(op));
    MTV_ASSERT(vl >= 1 && vl <= maxVectorLength);
    Instruction inst;
    inst.op = op;
    if (isStore(op))
        inst.srcA = vreg;
    else
        inst.dst = vreg;
    inst.vl = vl;
    inst.addr = addr;
    inst.stride = stride;
    return inst;
}

} // namespace mtv
