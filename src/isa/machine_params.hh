/**
 * @file
 * All architectural parameters of the simulated machines, i.e. the
 * paper's Table 1 plus the knobs the evaluation sweeps (memory latency,
 * context count, crossbar latency, scheduling policy).
 *
 * The scanned Table 1 is partially illegible; DESIGN.md documents the
 * reconstruction used here. Every bench reads the values from this
 * struct, so adjusting a latency re-parameterizes the whole study.
 */

#ifndef MTV_ISA_MACHINE_PARAMS_HH
#define MTV_ISA_MACHINE_PARAMS_HH

#include <cstdint>
#include <string>

#include "src/isa/opcodes.hh"

namespace mtv
{
class Config;
}

namespace mtv
{

/** Thread selection policy of the multithreaded decode unit. */
enum class SchedPolicy : uint8_t
{
    /**
     * The paper's baseline: run a thread until it blocks, then switch
     * to the lowest-numbered non-blocked thread. Unfair by design so
     * that thread 0 sees minimal slowdown, and run-until-block so that
     * back-to-back dependent vector instructions still chain.
     */
    UnfairLowest,
    /** Switch threads every cycle regardless of blocking (ablation). */
    RoundRobin,
    /** Run until block, then pick the least-recently-run ready thread. */
    FairLru
};

/** Name for reports. */
std::string schedPolicyName(SchedPolicy policy);

/** Scalar-or-vector pair of latencies for one operation class. */
struct LatPair
{
    int scalar = 1;
    int vector = 1;
};

/**
 * Machine description shared by the reference and multithreaded
 * simulators. The reference machine is simply `contexts == 1`.
 */
struct MachineParams
{
    // ----- Multithreading -----
    int contexts = 1;              ///< hardware contexts (1..4)
    SchedPolicy sched = SchedPolicy::UnfairLowest;
    /**
     * Decode slots per cycle. 1 models the paper's machine (a single
     * time-multiplexed decoder). >1 is the "simultaneous issue from
     * several threads" future-work extension (bench_abl_decode_width).
     */
    int decodeWidth = 1;
    /**
     * Fujitsu VP2000 "Dual Scalar Processing" mode (paper section 9):
     * one dedicated fetch/decode/scalar unit per context (so up to
     * `contexts` dispatches per cycle) sharing one vector facility.
     */
    bool dualScalar = false;

    // ----- Vector register file -----
    int readXbar = 2;              ///< read crossbar traversal, cycles
    int writeXbar = 2;             ///< write crossbar traversal, cycles
    int vectorStartup = 1;         ///< fixed dispatch-to-first-read cost
    bool modelBankPorts = true;    ///< enforce 2R/1W ports per bank

    // ----- Memory system -----
    int memLatency = 50;           ///< main-memory latency, cycles
    /**
     * Memory ports. The paper's Convex-style machine has a single
     * unified port (1 load port that also serves stores). Its
     * section 10 sketches the extension to Cray-like machines with
     * 3 ports (2 load + 1 store), each with its own address path —
     * modelled here: loads use load ports; stores use store ports
     * when any exist, otherwise they share the load ports.
     */
    int loadPorts = 1;
    int storePorts = 0;
    /**
     * Optional banked-memory extension (off by default; the paper
     * models a fixed-latency pipelined memory). When enabled, strided
     * streams that hit few distinct banks deliver data slower than
     * one element per cycle (see mtv::MainMemory).
     */
    bool bankedMemory = false;
    int memBanks = 64;             ///< interleaved banks
    int bankBusyCycles = 8;        ///< bank cycle (busy) time
    /**
     * The paper's machine does not chain memory loads into functional
     * units (neither did the Cray-2/3); consumers wait for the full
     * load. Setting this true is the bench_abl_load_chaining ablation.
     */
    bool loadChaining = false;

    // ----- Section 10 future-work extensions -----
    /**
     * Vector register renaming: write-after-write and write-after-
     * read hazards no longer block dispatch (a fresh physical
     * register is assumed; the physical file is taken as large
     * enough). Chaining and true dependences are unaffected.
     */
    bool renaming = false;
    /**
     * Bounded vector register renaming: 0 = off, >0 = renaming with a
     * pool of this many spare physical registers per context. A write
     * whose destination is busy (the WAW/WAR case unbounded renaming
     * hides for free) must instead claim a free pool slot; the slot is
     * held until the displaced physical register's last read and write
     * complete. Mutually exclusive with `renaming` (which models an
     * infinite pool). This is the RunSpec `renameDepth` sweep axis.
     */
    int renameDepth = 0;
    /**
     * Decoupled-vector slip window (0 = off), modelling the paper's
     * HPCA-2'96 predecessor: up to this many instructions ahead of a
     * blocked head may be inspected, and a *vector memory*
     * instruction with no conflicts against the skipped instructions
     * may dispatch early (memory ops stay ordered among themselves;
     * nothing passes a branch).
     */
    int decoupleDepth = 0;

    /** Renaming on in any form (infinite pool or bounded)? */
    bool renamingEnabled() const { return renaming || renameDepth > 0; }

    /** Renaming on with a finite slot pool (the bounded model)? */
    bool renameBounded() const { return renameDepth > 0; }

    // ----- Functional unit latencies (Table 1 reconstruction) -----
    LatPair latIntAdd{1, 4};
    LatPair latFpAdd{2, 4};
    LatPair latLogic{1, 4};
    LatPair latIntMul{5, 7};
    LatPair latFpMul{2, 7};
    LatPair latIntDiv{34, 20};
    LatPair latFpDiv{9, 20};
    LatPair latSqrt{34, 20};
    LatPair latMove{1, 1};
    LatPair latControl{1, 1};
    /** Cycles a taken/resolved branch stalls further fetch. */
    int branchStall = 2;

    /** Latency of @p cls in scalar (`vector=false`) or vector mode. */
    int latency(LatClass cls, bool vector) const;

    /** Execution latency of @p op (excludes memory latency for loads). */
    int opLatency(Opcode op) const;

    /** Validate parameter sanity; fatal() on user error. */
    void validate() const;

    /** The paper's reference (baseline) Convex C3400 model. */
    static MachineParams reference();

    /** The paper's multithreaded machine with @p contexts contexts. */
    static MachineParams multithreaded(int contexts);

    /** Section 9's Fujitsu-style dual-scalar machine (2 contexts). */
    static MachineParams fujitsuDualScalar();

    /**
     * Section 10's Cray-like machine: 2 load ports + 1 store port.
     * The paper predicts such machines need simultaneous issue from
     * several threads to saturate their ports; pair this with
     * decodeWidth > 1 to test that prediction.
     */
    static MachineParams crayStyle(int contexts);

    /**
     * The decoupled vector architecture of the authors' HPCA-2'96
     * paper (single context, slip window of @p depth).
     */
    static MachineParams decoupledVector(int depth = 4);

    /**
     * Build from a key=value Config. Recognized keys (all optional,
     * defaults = the reference machine): contexts, sched
     * (unfair-lowest|round-robin|fair-lru), decode_width, dual_scalar,
     * read_xbar, write_xbar, vector_startup, bank_ports, mem_latency,
     * banked_memory, mem_banks, bank_busy, load_chaining, load_ports,
     * store_ports, renaming, rename_depth, decouple_depth,
     * branch_stall, and the
     * Table 1 latency pairs as lat_<class>_s / lat_<class>_v
     * (int_add, fp_add, logic, int_mul, fp_mul, int_div, fp_div,
     * sqrt, move, control). fatal()s on invalid values (validate()
     * is applied).
     */
    static MachineParams fromConfig(const Config &config);

    /**
     * Canonical, lossless serialization of every public parameter —
     * the fromConfig() key set, latency table included — in a fixed
     * order, as `key=value` pairs joined by spaces. Two
     * MachineParams with the same canonical form describe the same
     * machine; RunSpec cache keys are built from it, so no two
     * differing machines may alias.
     */
    std::string canonical() const;

    /** Inverse of canonical(); fatal()s on malformed input. */
    static MachineParams fromCanonical(const std::string &text);

    /** One-line description for reports. */
    std::string describe() const;
};

} // namespace mtv

#endif // MTV_ISA_MACHINE_PARAMS_HH
