#include "src/isa/machine_params.hh"

#include <charconv>

#include "src/common/config.hh"
#include "src/common/logging.hh"
#include "src/common/strutil.hh"

namespace mtv
{

std::string
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::UnfairLowest:
        return "unfair-lowest";
      case SchedPolicy::RoundRobin:
        return "round-robin";
      case SchedPolicy::FairLru:
        return "fair-lru";
    }
    return "unknown";
}

int
MachineParams::latency(LatClass cls, bool vector) const
{
    const LatPair *pair = nullptr;
    switch (cls) {
      case LatClass::IntAdd: pair = &latIntAdd; break;
      case LatClass::FpAdd: pair = &latFpAdd; break;
      case LatClass::Logic: pair = &latLogic; break;
      case LatClass::IntMul: pair = &latIntMul; break;
      case LatClass::FpMul: pair = &latFpMul; break;
      case LatClass::IntDiv: pair = &latIntDiv; break;
      case LatClass::FpDiv: pair = &latFpDiv; break;
      case LatClass::Sqrt: pair = &latSqrt; break;
      case LatClass::Move: pair = &latMove; break;
      case LatClass::Control: pair = &latControl; break;
      case LatClass::Memory:
        return memLatency;
      default:
        panic("bad latency class %d", static_cast<int>(cls));
    }
    return vector ? pair->vector : pair->scalar;
}

int
MachineParams::opLatency(Opcode op) const
{
    if (op == Opcode::SLoad)
        return memLatency;
    if (op == Opcode::SStore)
        return 1;  // fire-and-forget
    if (isVector(op) && isMemory(op))
        return memLatency;
    return latency(latClass(op), isVector(op));
}

void
MachineParams::validate() const
{
    if (contexts < 1 || contexts > 8)
        fatal("contexts must be in [1,8], got %d", contexts);
    if (memLatency < 1)
        fatal("memLatency must be >= 1, got %d", memLatency);
    if (readXbar < 1 || writeXbar < 1)
        fatal("crossbar latencies must be >= 1");
    if (decodeWidth < 1 || decodeWidth > contexts)
        fatal("decodeWidth must be in [1,contexts], got %d", decodeWidth);
    if (dualScalar && contexts < 2)
        fatal("dualScalar requires >= 2 contexts");
    if (vectorStartup < 0)
        fatal("vectorStartup must be >= 0");
    if (loadPorts < 1 || loadPorts > 4)
        fatal("loadPorts must be in [1,4], got %d", loadPorts);
    if (storePorts < 0 || storePorts > 4)
        fatal("storePorts must be in [0,4], got %d", storePorts);
    if (decoupleDepth < 0 || decoupleDepth > 16)
        fatal("decoupleDepth must be in [0,16], got %d", decoupleDepth);
    if (renameDepth < 0 || renameDepth > 8)
        fatal("renameDepth must be in [0,8], got %d", renameDepth);
    if (renaming && renameDepth > 0) {
        fatal("renaming (infinite pool) and renameDepth (bounded "
              "pool) are mutually exclusive");
    }
}

MachineParams
MachineParams::reference()
{
    MachineParams p;
    p.contexts = 1;
    return p;
}

MachineParams
MachineParams::multithreaded(int contexts)
{
    MachineParams p;
    p.contexts = contexts;
    return p;
}

MachineParams
MachineParams::fujitsuDualScalar()
{
    MachineParams p;
    p.contexts = 2;
    p.dualScalar = true;
    p.decodeWidth = 2;
    return p;
}

MachineParams
MachineParams::crayStyle(int contexts)
{
    MachineParams p;
    p.contexts = contexts;
    p.loadPorts = 2;
    p.storePorts = 1;
    return p;
}

MachineParams
MachineParams::decoupledVector(int depth)
{
    MachineParams p;
    p.contexts = 1;
    p.decoupleDepth = depth;
    return p;
}

namespace
{

/** The Table 1 latency pairs, with their config key stems. */
struct LatField
{
    const char *key;
    LatPair MachineParams::*member;
};

const LatField latFields[] = {
    {"lat_int_add", &MachineParams::latIntAdd},
    {"lat_fp_add", &MachineParams::latFpAdd},
    {"lat_logic", &MachineParams::latLogic},
    {"lat_int_mul", &MachineParams::latIntMul},
    {"lat_fp_mul", &MachineParams::latFpMul},
    {"lat_int_div", &MachineParams::latIntDiv},
    {"lat_fp_div", &MachineParams::latFpDiv},
    {"lat_sqrt", &MachineParams::latSqrt},
    {"lat_move", &MachineParams::latMove},
    {"lat_control", &MachineParams::latControl},
};

/** Append `<prefix><value>`; std::to_chars emits exactly the digits
 *  printf's %d would, so canonical strings stay byte-identical to the
 *  format()-built ones they replace. */
void
appendKV(std::string *out, const char *prefix, int value)
{
    out->append(prefix);
    char buf[16];
    const auto r = std::to_chars(buf, buf + sizeof(buf), value);
    out->append(buf, static_cast<size_t>(r.ptr - buf));
}

} // namespace

MachineParams
MachineParams::fromConfig(const Config &config)
{
    MachineParams p;
    p.contexts = static_cast<int>(config.getInt("contexts", p.contexts));
    if (config.has("sched")) {
        const std::string name = toLower(config.getString("sched"));
        if (name == "unfair-lowest")
            p.sched = SchedPolicy::UnfairLowest;
        else if (name == "round-robin")
            p.sched = SchedPolicy::RoundRobin;
        else if (name == "fair-lru")
            p.sched = SchedPolicy::FairLru;
        else
            fatal("unknown scheduling policy '%s'", name.c_str());
    }
    p.decodeWidth =
        static_cast<int>(config.getInt("decode_width", p.decodeWidth));
    p.dualScalar = config.getBool("dual_scalar", p.dualScalar);
    p.readXbar =
        static_cast<int>(config.getInt("read_xbar", p.readXbar));
    p.writeXbar =
        static_cast<int>(config.getInt("write_xbar", p.writeXbar));
    p.vectorStartup = static_cast<int>(
        config.getInt("vector_startup", p.vectorStartup));
    p.modelBankPorts = config.getBool("bank_ports", p.modelBankPorts);
    p.memLatency =
        static_cast<int>(config.getInt("mem_latency", p.memLatency));
    p.bankedMemory = config.getBool("banked_memory", p.bankedMemory);
    p.memBanks = static_cast<int>(config.getInt("mem_banks", p.memBanks));
    p.bankBusyCycles =
        static_cast<int>(config.getInt("bank_busy", p.bankBusyCycles));
    p.loadChaining = config.getBool("load_chaining", p.loadChaining);
    p.loadPorts =
        static_cast<int>(config.getInt("load_ports", p.loadPorts));
    p.storePorts =
        static_cast<int>(config.getInt("store_ports", p.storePorts));
    p.renaming = config.getBool("renaming", p.renaming);
    p.renameDepth = static_cast<int>(
        config.getInt("rename_depth", p.renameDepth));
    p.decoupleDepth = static_cast<int>(
        config.getInt("decouple_depth", p.decoupleDepth));
    p.branchStall =
        static_cast<int>(config.getInt("branch_stall", p.branchStall));
    for (const auto &field : latFields) {
        LatPair &pair = p.*(field.member);
        pair.scalar = static_cast<int>(config.getInt(
            std::string(field.key) + "_s", pair.scalar));
        pair.vector = static_cast<int>(config.getInt(
            std::string(field.key) + "_v", pair.vector));
    }
    p.validate();
    return p;
}

std::string
MachineParams::canonical() const
{
    // Keep key names identical to fromConfig() so the two formats
    // stay mutually parseable, and keep the order fixed: canonical
    // strings are compared byte-for-byte by the experiment cache, so
    // every public field (including the Table 1 latency pairs) must
    // appear — two machines differing anywhere must never alias.
    // Built by appending rather than format(): the string is
    // recomputed for every sweep point on the hot result path, and
    // vsnprintf's measure-then-write double pass dominated it.
    std::string out;
    out.reserve(512);
    appendKV(&out, "contexts=", contexts);
    out += " sched=";
    out += schedPolicyName(sched);
    appendKV(&out, " decode_width=", decodeWidth);
    appendKV(&out, " dual_scalar=", dualScalar ? 1 : 0);
    appendKV(&out, " read_xbar=", readXbar);
    appendKV(&out, " write_xbar=", writeXbar);
    appendKV(&out, " vector_startup=", vectorStartup);
    appendKV(&out, " bank_ports=", modelBankPorts ? 1 : 0);
    appendKV(&out, " mem_latency=", memLatency);
    appendKV(&out, " banked_memory=", bankedMemory ? 1 : 0);
    appendKV(&out, " mem_banks=", memBanks);
    appendKV(&out, " bank_busy=", bankBusyCycles);
    appendKV(&out, " load_chaining=", loadChaining ? 1 : 0);
    appendKV(&out, " load_ports=", loadPorts);
    appendKV(&out, " store_ports=", storePorts);
    appendKV(&out, " renaming=", renaming ? 1 : 0);
    appendKV(&out, " rename_depth=", renameDepth);
    appendKV(&out, " decouple_depth=", decoupleDepth);
    appendKV(&out, " branch_stall=", branchStall);
    for (const auto &field : latFields) {
        const LatPair &pair = this->*(field.member);
        out.push_back(' ');
        out += field.key;
        appendKV(&out, "_s=", pair.scalar);
        out.push_back(' ');
        out += field.key;
        appendKV(&out, "_v=", pair.vector);
    }
    return out;
}

MachineParams
MachineParams::fromCanonical(const std::string &text)
{
    Config config;
    for (const auto &pair : split(text, ' ')) {
        if (pair.empty())
            continue;
        const auto kv = split(pair, '=');
        if (kv.size() != 2)
            fatal("malformed machine description token '%s'",
                  pair.c_str());
        config.set(kv[0], kv[1]);
    }
    MachineParams p = fromConfig(config);
    for (const auto &key : config.unusedKeys())
        fatal("unknown machine parameter '%s'", key.c_str());
    return p;
}

std::string
MachineParams::describe() const
{
    std::string kind;
    if (dualScalar)
        kind = "dual-scalar";
    else if (contexts == 1)
        kind = "reference";
    else
        kind = "multithreaded";
    std::string extras;
    if (loadPorts != 1 || storePorts != 0)
        extras += format(", ports=%dld/%dst", loadPorts, storePorts);
    if (renaming)
        extras += ", renaming";
    if (renameDepth > 0)
        extras += format(", rename=%d", renameDepth);
    if (decoupleDepth > 0)
        extras += format(", decouple=%d", decoupleDepth);
    if (loadChaining)
        extras += ", load-chain";
    if (!modelBankPorts)
        extras += ", no-bank-ports";
    if (bankedMemory)
        extras += format(", banked=%dx%d", memBanks, bankBusyCycles);
    if (vectorStartup != 1)
        extras += format(", startup=%d", vectorStartup);
    if (branchStall != 2)
        extras += format(", brstall=%d", branchStall);
    return format("%s(ctx=%d, lat=%d, xbar=%d/%d, sched=%s, width=%d%s)",
                  kind.c_str(), contexts, memLatency, readXbar, writeXbar,
                  schedPolicyName(sched).c_str(), decodeWidth,
                  extras.c_str());
}

} // namespace mtv
