/**
 * @file
 * Opcode and functional-unit taxonomy for the Convex C3400-style
 * vector ISA modelled in this repository.
 *
 * The reference architecture (paper section 3) has a scalar part (A and
 * S registers, one instruction per cycle) and a vector part with two
 * arithmetic pipes and one memory pipe:
 *   - FU2: general purpose, executes every vector operation;
 *   - FU1: restricted, executes everything except mul/div/sqrt;
 *   - LD:  the single memory pipe (loads, stores, gathers, scatters).
 */

#ifndef MTV_ISA_OPCODES_HH
#define MTV_ISA_OPCODES_HH

#include <cstdint>
#include <string_view>

namespace mtv
{

/** Every instruction the simulator understands. */
enum class Opcode : uint8_t
{
    // --- Scalar arithmetic (A/S registers) ---
    SAddInt,      ///< integer add/sub/compare on A or S registers
    SAddFp,       ///< floating-point scalar add/sub
    SLogic,       ///< scalar logical ops / shifts
    SMulInt,      ///< integer scalar multiply
    SMulFp,       ///< floating-point scalar multiply
    SDivInt,      ///< integer scalar divide
    SDivFp,       ///< floating-point scalar divide
    SSqrt,        ///< scalar square root
    SMove,        ///< register-to-register move (A<->S)

    // --- Scalar memory and control ---
    SLoad,        ///< scalar load (pays main-memory latency)
    SStore,       ///< scalar store (fire-and-forget)
    SBranch,      ///< conditional/unconditional branch; stalls fetch
    SetVL,        ///< write the vector-length register
    SetVS,        ///< write the vector-stride register

    // --- Vector arithmetic (V registers) ---
    VAdd,         ///< vector add/sub/compare (FU1 or FU2)
    VLogic,       ///< vector logical ops / shifts (FU1 or FU2)
    VMul,         ///< vector multiply (FU2 only)
    VDiv,         ///< vector divide (FU2 only)
    VSqrt,        ///< vector square root (FU2 only)
    VReduce,      ///< reduction (sum/max) producing a scalar (FU1/FU2)

    // --- Vector memory ---
    VLoad,        ///< strided vector load
    VGather,      ///< indexed vector load
    VStore,       ///< strided vector store
    VScatter,     ///< indexed vector store

    NumOpcodes
};

/** Which execution resource an opcode needs. */
enum class FuClass : uint8_t
{
    Scalar,      ///< the scalar unit
    VecAny,      ///< FU1 or FU2 (dispatch picks whichever frees first)
    VecFu2,      ///< FU2 only (mul/div/sqrt)
    VecLoad,     ///< LD pipe, data flows memory -> register
    VecStore     ///< LD pipe, data flows register -> memory
};

/** Latency class used to index MachineParams latency tables. */
enum class LatClass : uint8_t
{
    IntAdd,
    FpAdd,
    Logic,
    IntMul,
    FpMul,
    IntDiv,
    FpDiv,
    Sqrt,
    Move,
    Memory,     ///< memory latency is a separate, swept parameter
    Control,
    NumLatClasses
};

/** Resource class of @p op. */
FuClass fuClass(Opcode op);

/** Latency class of @p op. */
LatClass latClass(Opcode op);

/** True for all V-register opcodes (arithmetic and memory). */
bool isVector(Opcode op);

/** True for VLoad/VGather/VStore/VScatter/SLoad/SStore. */
bool isMemory(Opcode op);

/** True for VLoad/VGather/SLoad. */
bool isLoad(Opcode op);

/** True for VStore/VScatter/SStore. */
bool isStore(Opcode op);

/** True for vector arithmetic (chainable producers). */
bool isVectorArith(Opcode op);

/** Mnemonic for disassembly and trace text format. */
std::string_view mnemonic(Opcode op);

/** Inverse of mnemonic(); returns NumOpcodes when unknown. */
Opcode opcodeFromMnemonic(std::string_view name);

} // namespace mtv

#endif // MTV_ISA_OPCODES_HH
