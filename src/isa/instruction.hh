/**
 * @file
 * The dynamic instruction record that flows from a trace (or a synthetic
 * workload generator) into the simulators.
 *
 * This is the moral equivalent of one record of the four Dixie trace
 * streams the paper used: it carries the opcode, the register operands,
 * the vector length and stride in effect when the instruction executed,
 * and the base address for memory operations.
 */

#ifndef MTV_ISA_INSTRUCTION_HH
#define MTV_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "src/isa/opcodes.hh"

namespace mtv
{

/** Register file selector for an operand. */
enum class RegSpace : uint8_t
{
    A,     ///< address registers (scalar)
    S,     ///< scalar data registers
    V,     ///< vector registers
    None   ///< operand absent
};

/** Number of architectural registers per space (Convex C34). */
constexpr int numARegs = 8;
constexpr int numSRegs = 8;
constexpr int numVRegs = 8;

/** Maximum vector length of the baseline machine (elements). */
constexpr int maxVectorLength = 128;

/** Sentinel meaning "no register operand". */
constexpr uint8_t noReg = 0xff;

/**
 * One dynamic instruction. POD on purpose: the binary trace format
 * serializes these records directly (after byte-order-stable packing).
 */
struct Instruction
{
    Opcode op = Opcode::SAddInt;
    uint8_t dst = noReg;       ///< destination register index or noReg
    uint8_t srcA = noReg;      ///< first source register index or noReg
    uint8_t srcB = noReg;      ///< second source register index or noReg
    uint16_t vl = 0;           ///< vector length in effect (vector ops)
    int32_t stride = 0;        ///< vector stride in effect (memory ops)
    uint64_t addr = 0;         ///< base address (memory ops)

    /** Vector length this instruction processes (1 for scalar ops). */
    uint32_t
    elements() const
    {
        return isVector(op) ? vl : 1;
    }

    /** Register space of the destination operand. */
    RegSpace dstSpace() const;

    /** Register space of the source operands. */
    RegSpace srcSpace() const;

    /** True when this instruction writes a vector register. */
    bool writesVReg() const;

    /** True when this instruction reads one or more vector registers. */
    bool readsVReg() const;

    /** Human-readable one-line disassembly. */
    std::string disasm() const;
};

/** Construct a scalar ALU instruction. */
Instruction makeScalar(Opcode op, uint8_t dst, uint8_t srcA = noReg,
                       uint8_t srcB = noReg);

/** Construct a scalar memory instruction. */
Instruction makeScalarMem(Opcode op, uint8_t reg, uint64_t addr);

/** Construct a vector arithmetic instruction. */
Instruction makeVectorArith(Opcode op, uint8_t dst, uint8_t srcA,
                            uint8_t srcB, uint16_t vl);

/** Construct a vector memory instruction. */
Instruction makeVectorMem(Opcode op, uint8_t vreg, uint16_t vl,
                          uint64_t addr, int32_t stride = 1);

} // namespace mtv

#endif // MTV_ISA_INSTRUCTION_HH
