#include "src/isa/opcodes.hh"

#include <array>

#include "src/common/logging.hh"

namespace mtv
{

namespace
{

struct OpInfo
{
    FuClass fu;
    LatClass lat;
    std::string_view name;
};

constexpr size_t numOpcodes = static_cast<size_t>(Opcode::NumOpcodes);

constexpr std::array<OpInfo, numOpcodes> opTable = {{
    /* SAddInt  */ {FuClass::Scalar, LatClass::IntAdd, "s.add"},
    /* SAddFp   */ {FuClass::Scalar, LatClass::FpAdd, "s.fadd"},
    /* SLogic   */ {FuClass::Scalar, LatClass::Logic, "s.logic"},
    /* SMulInt  */ {FuClass::Scalar, LatClass::IntMul, "s.mul"},
    /* SMulFp   */ {FuClass::Scalar, LatClass::FpMul, "s.fmul"},
    /* SDivInt  */ {FuClass::Scalar, LatClass::IntDiv, "s.div"},
    /* SDivFp   */ {FuClass::Scalar, LatClass::FpDiv, "s.fdiv"},
    /* SSqrt    */ {FuClass::Scalar, LatClass::Sqrt, "s.sqrt"},
    /* SMove    */ {FuClass::Scalar, LatClass::Move, "s.mov"},
    /* SLoad    */ {FuClass::Scalar, LatClass::Memory, "s.ld"},
    /* SStore   */ {FuClass::Scalar, LatClass::Memory, "s.st"},
    /* SBranch  */ {FuClass::Scalar, LatClass::Control, "s.br"},
    /* SetVL    */ {FuClass::Scalar, LatClass::Control, "setvl"},
    /* SetVS    */ {FuClass::Scalar, LatClass::Control, "setvs"},
    /* VAdd     */ {FuClass::VecAny, LatClass::FpAdd, "v.add"},
    /* VLogic   */ {FuClass::VecAny, LatClass::Logic, "v.logic"},
    /* VMul     */ {FuClass::VecFu2, LatClass::FpMul, "v.mul"},
    /* VDiv     */ {FuClass::VecFu2, LatClass::FpDiv, "v.div"},
    /* VSqrt    */ {FuClass::VecFu2, LatClass::Sqrt, "v.sqrt"},
    /* VReduce  */ {FuClass::VecAny, LatClass::FpAdd, "v.red"},
    /* VLoad    */ {FuClass::VecLoad, LatClass::Memory, "v.ld"},
    /* VGather  */ {FuClass::VecLoad, LatClass::Memory, "v.gather"},
    /* VStore   */ {FuClass::VecStore, LatClass::Memory, "v.st"},
    /* VScatter */ {FuClass::VecStore, LatClass::Memory, "v.scatter"},
}};

const OpInfo &
info(Opcode op)
{
    const auto idx = static_cast<size_t>(op);
    MTV_ASSERT(idx < numOpcodes);
    return opTable[idx];
}

} // namespace

FuClass
fuClass(Opcode op)
{
    return info(op).fu;
}

LatClass
latClass(Opcode op)
{
    return info(op).lat;
}

bool
isVector(Opcode op)
{
    const FuClass fu = info(op).fu;
    return fu != FuClass::Scalar;
}

bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::SLoad:
      case Opcode::SStore:
      case Opcode::VLoad:
      case Opcode::VGather:
      case Opcode::VStore:
      case Opcode::VScatter:
        return true;
      default:
        return false;
    }
}

bool
isLoad(Opcode op)
{
    return op == Opcode::SLoad || op == Opcode::VLoad ||
           op == Opcode::VGather;
}

bool
isStore(Opcode op)
{
    return op == Opcode::SStore || op == Opcode::VStore ||
           op == Opcode::VScatter;
}

bool
isVectorArith(Opcode op)
{
    const FuClass fu = info(op).fu;
    return fu == FuClass::VecAny || fu == FuClass::VecFu2;
}

std::string_view
mnemonic(Opcode op)
{
    return info(op).name;
}

Opcode
opcodeFromMnemonic(std::string_view name)
{
    for (size_t i = 0; i < numOpcodes; ++i) {
        if (opTable[i].name == name)
            return static_cast<Opcode>(i);
    }
    return Opcode::NumOpcodes;
}

} // namespace mtv
