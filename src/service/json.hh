/**
 * @file
 * Minimal JSON value type for the mtvd service protocol — enough of
 * RFC 8259 for newline-delimited protocol messages, with no external
 * dependency. Numbers are doubles (the protocol carries exact 64-bit
 * simulation results as hex blobs, never as JSON numbers); strings
 * are std::string with \uXXXX escapes decoded to UTF-8 on parse and
 * control characters escaped on write.
 */

#ifndef MTV_SERVICE_JSON_HH
#define MTV_SERVICE_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mtv
{

/** One JSON value (null, bool, number, string, array or object). */
class Json
{
  public:
    enum class Type : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double n) : type_(Type::Number), number_(n) {}
    Json(int n) : type_(Type::Number), number_(n) {}
    Json(uint64_t n)
        : type_(Type::Number), number_(static_cast<double>(n))
    {
    }
    Json(const char *s) : type_(Type::String), string_(s) {}
    Json(std::string s) : type_(Type::String), string_(std::move(s)) {}

    /** An empty array/object to be filled with push()/set(). */
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    // ----- accessors (fatal() on type mismatch: protocol errors) -----

    bool asBool() const;
    double asNumber() const;
    /** asNumber() checked to be a non-negative integer. */
    uint64_t asU64() const;
    const std::string &asString() const;
    const std::vector<Json> &asArray() const;
    /** Object members in insertion order. */
    const std::vector<std::pair<std::string, Json>> &asMembers() const;

    /** Object member, or a shared null when absent. */
    const Json &get(const std::string &key) const;
    /** Object member of string/number/bool type with a fallback. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    double getNumber(const std::string &key, double fallback = 0) const;
    bool getBool(const std::string &key, bool fallback = false) const;
    bool has(const std::string &key) const;

    // ----- builders -----

    /** Append to an array (value must be an array). */
    Json &push(Json value);
    /** Set an object member (value must be an object). */
    Json &set(const std::string &key, Json value);

    /** Compact single-line serialization (no newlines — the protocol
     *  is newline-delimited). */
    std::string dump() const;

    /**
     * Parse one JSON document; trailing garbage is an error. Returns
     * false (with @p error set) on malformed input — the server must
     * survive bad client bytes.
     */
    static bool parse(const std::string &text, Json *out,
                      std::string *error);

  private:
    void dumpTo(std::string &out) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<Json> array_;
    /** Insertion-ordered members (keys) + values keyed alongside. */
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace mtv

#endif // MTV_SERVICE_JSON_HH
