/**
 * @file
 * The mtvd wire protocol: newline-delimited JSON objects over a
 * stream socket. Since v2 the protocol is *multiplexed and
 * streaming*: a client tags each batch request with an `id`, may keep
 * several requests in flight on one connection, and receives each
 * point's result as a separate id-tagged line as it completes.
 *
 * Requests (client -> server):
 *   {"op":"ping"}
 *   {"op":"run","id":n,"specs":["<RunSpec::canonical()>",...],
 *    "quiet":b}
 *   {"op":"sweep","id":n,"family":"<name>","scale":g,"quiet":b,
 *    "program":"...","contexts":n,"jobs":[...],"latencies":[...],
 *    "points":[i,...]}
 *     — a named sweep family (see sweepFamilies()), expanded
 *     *server-side*: the client sends ~100 bytes naming the sweep
 *     instead of megabytes of expanded specs. Family-specific fields
 *     beyond "family" and "scale" are optional. "points", when
 *     present, selects a subset of the expansion by global index —
 *     the fleet scatter path (src/fleet/): a router expands the
 *     family once, consistent-hashes each point's canonical spec
 *     across nodes, and sends every node only the indices it owns.
 *     Result lines then stream the subset in the given order (seq
 *     numbers the subset; the ack echoes the full expansion size as
 *     "total"), so the router can map seq back to global index and
 *     fold one fleet-wide digest in global submission order.
 *   {"op":"compare","id":n,"family":"<name>","scale":g,
 *    "program":"...","contexts":n,"jobs":[...],"latencies":[...]}
 *     — v5: cross-design comparison. The daemon expands the family,
 *     runs every point (same engine path as a sweep, identical
 *     caching/coalescing), then pairs every slice row-wise against
 *     slice 0 (the baseline design) via compareDesigns() and answers
 *     with ONE aggregated line instead of a result stream — the
 *     table is the product, not the points. Only design-parallel
 *     families (every slice the same row count — all ext-* families
 *     qualify; suite-grouping does not) are comparable; others get a
 *     protocol error.
 *   {"op":"stats"}
 *   {"op":"status"}
 *     — request-lifecycle snapshot: engine queue depth, per-
 *     connection in-flight batch counts, cancelled/reaped counters,
 *     per-lane queue depths ("lanes") and, when a store is attached,
 *     per-shard append/hit/recovery counts ("shards").
 *   {"op":"metrics","prom":b}
 *     — v4: full dump of the process metrics registry (src/obs/):
 *     {"ok":true,"metrics":{"counters":{name:v,...},
 *      "gauges":{name:v,...},"histograms":{name:{"count":c,"sum":s,
 *      "p50":x,"p95":x,"p99":x,"bounds":[...],"counts":[...]}}}}
 *     (histogram "counts" has one entry per bound plus a final
 *     overflow bucket). With "prom":true the response additionally
 *     carries "prom": the Prometheus text exposition as one string.
 *     Against a routing daemon (mtvd --route) the op fans out:
 *     {"ok":true,"fleet":true,"router":{...own registry...},
 *      "nodes":[{"endpoint":e,"ok":true,"metrics":{...}} |
 *               {"endpoint":e,"ok":false,"error":m},...],
 *      "totals":{counter name: sum over reachable nodes}}.
 *   {"op":"cancel","id":n}
 *     — cancel every in-flight batch tagged with request id n, on
 *     ANY connection (cancellation is cooperative: queued points are
 *     skipped, points already simulating finish and stay cached).
 *   {"op":"hello","wire":"json"|"binary"}
 *     — v6: per-connection content negotiation. The answer
 *     {"ok":true,"hello":true,"wire":w,"protocol":6} confirms the
 *     wire format this connection's streamed RESULT POINTS will use
 *     from then on. "binary" switches result lines to length-
 *     prefixed canonical SimStats frames (see ResultFrame below);
 *     every control message (requests, acks, done lines, errors,
 *     compare answers) stays a JSON line in either mode. A client
 *     that never sends hello gets pure v5-style JSON — old clients
 *     keep working unchanged. An unknown "wire" value answers an
 *     error and leaves the connection on JSON.
 *   {"op":"clear"}
 *   {"op":"shutdown"}
 *
 * Responses (server -> client). Lines for *different* request ids
 * interleave arbitrarily; lines for one id arrive in submission
 * order, numbered by "seq":
 *   sweep ack (first line of a sweep response — the expansion's
 *     shape, so the client can track progress and map results back
 *     to figure bars):
 *       {"id":n,"ack":true,"count":c,
 *        "slices":[{"label":s,"contexts":k,"first":i,"count":m},...]}
 *   run / sweep result, one line per spec as results finish:
 *       {"id":n,"seq":i,"spec":"...","cached":b,"store":b,
 *        "cycles":x,"dispatches":x,"speedup":x,...,"blob":"<hex>"}
 *     ("blob" is the full hex-encoded serializeSimStats() record and
 *     is omitted for quiet requests). On a connection negotiated to
 *     wire=binary the same points arrive as ResultFrame frames
 *     instead — raw canonical blob bytes, no hex, no JSON — and the
 *     two encodings fold to bit-identical digests. Then a terminator
 *       {"id":n,"done":true,"count":c,"simulated":a,"cacheServed":b,
 *        "storeServed":c2,"digest":"<16 hex>"}
 *     where "digest" is FNV-1a folded over the canonical stats blobs
 *     in submission order — computed server-side, so even quiet
 *     requests get the bit-identity check. A batch ended by a
 *     "cancel" op terminates with a cancelled done line instead:
 *       {"id":n,"done":true,"cancelled":true,"count":c,
 *        "completed":k} (k results were delivered before the cancel
 *     took effect; no digest — the stream is deliberately partial).
 *   compare: one aggregated line
 *       {"id":n,"ok":true,"compare":true,"family":"...","count":c,
 *        "baseline":"<slice 0 label>","digest":"<16 hex>",
 *        "simulated":a,"cacheServed":b,"storeServed":c2,
 *        "rows":[{"design":s,"contexts":k,"ports":p,"latency":l,
 *                 "cycles":x,"speedup":g,"occupation":g,
 *                 "vopc":g},...]}
 *     ("digest" folds the underlying expansion's stats blobs in
 *     submission order, exactly as the equivalent sweep would — so a
 *     compare against a daemon, a fleet and --local can be checked
 *     for bit-identity).
 *   ping / stats / status / cancel / clear / shutdown: one
 *     {"ok":true,...} object. "cancel" reports how many batches it
 *     hit: {"ok":true,"cancelled":k}. "status" reports
 *     {"ok":true,"queueDepth":q,"activeRequests":a,
 *      "completedPoints":p,"counters":{"cancelledBatches":...,
 *      "reapedBatches":...,"cancelledPoints":...,
 *      "discardedPoints":...},
 *      "connections":[{"client":c,"inflight":k,"requests":[n,...]}]}
 *     (connections lists only clients with batches in flight).
 *   any error: {"error":"message","id":n?} (the connection stays
 *     open; "id" is present when the error belongs to one request).
 *
 * Request lifecycle: every admitted batch carries a CancelToken. The
 * daemon reaps a connection's tokens the moment its peer vanishes —
 * a write fails (sticky writeFailed) or the socket closes — and
 * drops the connection's queued engine work, so abandoned sweeps
 * free their worker slots instead of simulating for nobody. Each
 * connection schedules on its own engine lane, drained weighted
 * round-robin, so a huge sweep cannot head-of-line-block another
 * client's interactive run.
 *
 * Backpressure: a connection may have at most
 * maxInflightRequestsPerConnection batch requests streaming; the
 * server stops reading further requests until a slot frees, which
 * pushes back through the socket's receive buffer. Result lines are
 * written as futures complete, so a slow reader throttles its own
 * sweeps without buffering results in daemon memory.
 *
 * Identical specs submitted concurrently — by one request, several
 * in-flight sweeps, or many clients — coalesce onto a single
 * simulation inside the engine.
 */

#ifndef MTV_SERVICE_PROTOCOL_HH
#define MTV_SERVICE_PROTOCOL_HH

#include <string>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/service/json.hh"
#include "src/store/result_store.hh"

namespace mtv
{

/** Protocol revision spoken by this build (bump on changes). */
constexpr int serviceProtocolVersion = 6;

/** Batch requests one connection may keep streaming concurrently;
 *  further requests are not read until a slot frees (backpressure). */
constexpr int maxInflightRequestsPerConnection = 8;

/** Wire format of a connection's streamed result points (v6). The
 *  default — and the only format v5 clients ever see — is Json. */
enum class WireFormat : uint8_t
{
    Json,
    Binary
};

/**
 * First byte of every binary result frame. Deliberately NOT a byte a
 * JSON line can start with ('{' is 0x7b), so a reader can tell the
 * two apart by peeking one byte: frames and JSON control lines
 * interleave on the same stream.
 */
constexpr uint8_t resultFrameMarker = 0xBF;

/**
 * One streamed result point on a wire=binary connection — the binary
 * twin of a resultToJson() line. On the wire:
 *
 *     [0xBF][u32 payloadLen][payload][u64 frameChecksum(payload)]
 *
 * (all integers little-endian; no trailing newline). Payload layout:
 *
 *     u64 id | u64 seq | u8 flags | u32 specLen | spec bytes
 *     | 5 x u64 group-metric doubles (bit patterns, iff flags bit 2)
 *     | u32 blobLen | blob bytes
 *
 * flags: bit 0 = cached, bit 1 = fromStore, bit 2 = group extras
 * present (SpecMode::Group points), bit 3 = blob present (quiet
 * requests stream blobLen=0 frames). The blob is the canonical
 * serializeSimStats() record, byte-for-byte the digest fold input —
 * a store hit streams its stored bytes without re-encoding.
 */
struct ResultFrame
{
    uint64_t id = 0;
    uint64_t seq = 0;
    bool cached = false;
    bool fromStore = false;
    /** SpecMode::Group extras (speedup etc.) are carried. */
    bool hasGroupExtras = false;
    /** False on quiet streams (digest comes from the done line). */
    bool hasBlob = false;
    std::string spec;  ///< RunSpec::canonical()
    double speedup = 0.0;
    double mthOccupation = 0.0;
    double refOccupation = 0.0;
    double mthVopc = 0.0;
    double refVopc = 0.0;
    /** Canonical serializeSimStats() bytes (empty when !hasBlob). */
    std::string blob;
};

/**
 * The frame trailer checksum: FNV-1a folded over little-endian
 * 64-bit words (trailing bytes zero-padded into a final word), with
 * the length mixed in last. Word-wise instead of the store digest's
 * byte-wise FNV because the trailer is computed AND verified for
 * every streamed point — at streaming rates the byte loop costs
 * more than the rest of the encoder. Guards transport framing only;
 * the cross-transport digest contract stays byte-wise fnv1a64 over
 * the blobs.
 */
uint64_t frameChecksum(const void *data, size_t size);

/** Encode a frame to its full wire bytes (marker, length prefix,
 *  payload, checksum). */
std::string encodeResultFrame(const ResultFrame &frame);

/**
 * Decode a frame *payload* (the bytes LineChannel::readMessage()
 * returns for MessageKind::Frame — marker, length and checksum
 * already stripped and verified). Returns false with @p error set on
 * a malformed payload (truncated field, trailing garbage).
 */
bool decodeResultFrame(const std::string &payload, ResultFrame *out,
                       std::string *error);

/** Build the frame for one result (the binary twin of
 *  resultToJson()). @p blob carries the canonical stats bytes, or
 *  null for a quiet stream. */
ResultFrame resultToFrame(const RunResult &result, uint64_t id,
                          uint64_t seq, const std::string *blob);

/**
 * Append one result's full wire frame to @p out in a single pass —
 * the streaming hot path's encoder. Byte-identical to appending
 * encodeResultFrame(resultToFrame(result, id, seq, blob)), without
 * the intermediate ResultFrame or the payload/wire copies.
 */
void appendResultFrame(std::string *out, const RunResult &result,
                       uint64_t id, uint64_t seq,
                       const std::string *blob);

/** Decode a frame into a RunResult (stats decoded from the blob when
 *  present). fatal()s on a malformed embedded blob. */
RunResult resultFromFrame(const ResultFrame &frame);

/** Default daemon socket path (overridden by --socket / MTV_SOCKET). */
const char *defaultSocketPath();

/**
 * Where a daemon listens (or a client connects): a unix socket path
 * or a TCP host:port. Both speak the identical newline-delimited
 * protocol framing — TCP exists so mtvd nodes can form a fleet
 * across machines (src/fleet/).
 */
struct Endpoint
{
    enum class Kind : uint8_t
    {
        Unix,
        Tcp
    };

    Kind kind = Kind::Unix;
    /** Unix: the socket path. */
    std::string path;
    /** Tcp: host (name or literal) and port (0 = ephemeral bind,
     *  tests only — parseEndpoint() rejects it). */
    std::string host;
    int port = 0;

    static Endpoint unixSocket(std::string socketPath);
    static Endpoint tcp(std::string host, int port);

    /** Human-readable form: the path, or "host:port". */
    std::string describe() const;

    /** The mtvd invocation that would serve this endpoint — for
     *  actionable "daemon not running" messages. */
    std::string startHint() const;
};

/**
 * Parse an endpoint string (fleet node lists, --route): text with a
 * ':' is TCP "HOST:PORT" — parsed strictly via parseHostPort(), so
 * "host:abc" fatal()s instead of degrading to a unix path — anything
 * else is a unix socket path.
 */
Endpoint parseEndpoint(const std::string &text);

/**
 * One result line of a streamed response. @p includeBlob attaches the
 * hex serializeSimStats() blob (lossless; JSON numbers alone could
 * not round-trip 64-bit counters); a caller that already serialized
 * the stats (the daemon folds the digest over the same bytes) passes
 * them as @p serialized to skip re-encoding.
 */
Json resultToJson(const RunResult &result, uint64_t id, size_t seq,
                  bool includeBlob,
                  const std::string *serialized = nullptr);

/**
 * Inverse of resultToJson(): decode one streamed result line. When
 * the line carries a blob, the stats are decoded losslessly from it
 * and @p blob (if non-null) receives the raw blob bytes — the digest
 * fold input. fatal()s on malformed lines.
 */
RunResult resultFromJson(const Json &line, std::string *blob = nullptr);

/** Encode a named-sweep request ("op","id","quiet" added by caller). */
Json sweepRequestToJson(const SweepRequest &request);

/** Decode the family fields of a sweep request line. fatal()s on
 *  malformed fields (the daemon answers that as a protocol error). */
SweepRequest sweepRequestFromJson(const Json &request);

/** One slice of a sweep ack line. */
Json sliceToJson(const SweepSlice &slice);

/** Inverse of sliceToJson(). */
SweepSlice sliceFromJson(const Json &json);

/** One row of a compare response's "rows" array. */
Json compareRowToJson(const CompareRow &row);

/** Inverse of compareRowToJson(). fatal()s on malformed rows. */
CompareRow compareRowFromJson(const Json &json);

/** Engine counters as the "cache" member of a stats response. */
Json engineStatsToJson(const ExperimentEngine &engine);

/** Store counters as the "store" member of a stats response. */
Json storeStatsToJson(const ResultStore &store);

/**
 * A registry snapshot as the "metrics" member of a metrics response:
 * counters/gauges keyed by full metric name (labels embedded),
 * histograms with count/sum, p50/p95/p99 readout and the raw
 * bounds/counts arrays (counts includes the final overflow bucket).
 */
Json metricsToJson(const MetricsSnapshot &snapshot);

/**
 * Buffered line IO over a connected stream socket — the framing layer
 * both ends of the protocol share. Not thread-safe; writers on
 * several threads must serialize (the server wraps writes in a
 * per-connection mutex).
 */
class LineChannel
{
  public:
    /** Takes ownership of connected socket @p fd. */
    explicit LineChannel(int fd);
    ~LineChannel();

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /** What readMessage() pulled off the stream. */
    enum class MessageKind : uint8_t
    {
        Line,     ///< a JSON line (newline stripped)
        Frame,    ///< a binary result frame (payload, verified)
        Eof,      ///< clean EOF / transport error between messages
        BadFrame  ///< malformed frame: bad length, checksum
                  ///< mismatch, or EOF mid-frame (short read)
    };

    /**
     * Read one newline-terminated line (the newline is stripped).
     * Returns false on EOF or error. Lines over 64 MiB abort the
     * connection (a stream that long is not a protocol message).
     */
    bool readLine(std::string *line);

    /**
     * Read the next message of a v6 stream, whichever kind it is: a
     * peek at the first byte dispatches between a JSON line (any
     * byte but the frame marker) and a binary result frame. For
     * Frame, @p out receives the verified payload (feed it to
     * decodeResultFrame()); for Line, the line. BadFrame means the
     * stream is unrecoverable (framing lost) — close the connection.
     */
    MessageKind readMessage(std::string *out);

    /** Write @p line plus a newline; false on error (peer gone). */
    bool writeLine(const std::string &line);

    /** Write raw bytes as-is (frame writes — no newline added);
     *  false on error (peer gone). */
    bool writeBytes(const std::string &bytes);

    /** The underlying file descriptor (for poll/shutdown). */
    int fd() const { return fd_; }

    /** Total bytes received / sent over this channel — the
     *  service_bytes_* counters' and MB/s readouts' source. */
    uint64_t bytesRead() const { return bytesRead_; }
    uint64_t bytesWritten() const { return bytesWritten_; }

  private:
    /** recv() one more chunk into buffer_; false on EOF/error. */
    bool fillMore();

    /**
     * Retire @p n parsed bytes by advancing head_ instead of
     * erasing: an erase memmoves every byte still buffered, which
     * at streaming rates (tens of messages per recv chunk) costs
     * more than the messages themselves. The prefix is reclaimed
     * in one move when the buffer drains or head_ grows large.
     */
    void consume(size_t n);

    int fd_ = -1;
    std::string buffer_;
    /** Bytes of buffer_ already parsed and handed out. */
    size_t head_ = 0;
    /** First buffer_ position not yet scanned for '\n'. */
    size_t searchPos_ = 0;
    uint64_t bytesRead_ = 0;
    uint64_t bytesWritten_ = 0;
};

/**
 * Connect to the daemon at @p socketPath. Returns the connected fd or
 * -1 (with @p error set) when the daemon is not reachable.
 */
int connectToDaemon(const std::string &socketPath, std::string *error);

/**
 * Connect to a daemon endpoint of either kind. TCP connections get
 * TCP_NODELAY (the protocol is small request lines; Nagle would add
 * 40ms stalls to every ping). Returns the connected fd or -1 (with
 * @p error set).
 */
int connectToEndpoint(const Endpoint &endpoint, std::string *error);

/**
 * Bind + listen on @p endpoint. fatal()s when the address is
 * unusable. For TCP, @p endpoint.port may be 0 (ephemeral); the
 * returned Endpoint carries the actually-bound port — how tests and
 * the fleet smoke script get collision-free ports. @p backlog is the
 * listen(2) queue. The unix-socket variant does NOT unlink or probe
 * the path; MtvService owns that policy.
 */
int listenOnEndpoint(const Endpoint &endpoint, Endpoint *bound,
                     int backlog = 64);

} // namespace mtv

#endif // MTV_SERVICE_PROTOCOL_HH
