/**
 * @file
 * The mtvd wire protocol: newline-delimited JSON objects over a
 * stream socket. Since v2 the protocol is *multiplexed and
 * streaming*: a client tags each batch request with an `id`, may keep
 * several requests in flight on one connection, and receives each
 * point's result as a separate id-tagged line as it completes.
 *
 * Requests (client -> server):
 *   {"op":"ping"}
 *   {"op":"run","id":n,"specs":["<RunSpec::canonical()>",...],
 *    "quiet":b}
 *   {"op":"sweep","id":n,"family":"<name>","scale":g,"quiet":b,
 *    "program":"...","contexts":n,"jobs":[...],"latencies":[...],
 *    "points":[i,...]}
 *     — a named sweep family (see sweepFamilies()), expanded
 *     *server-side*: the client sends ~100 bytes naming the sweep
 *     instead of megabytes of expanded specs. Family-specific fields
 *     beyond "family" and "scale" are optional. "points", when
 *     present, selects a subset of the expansion by global index —
 *     the fleet scatter path (src/fleet/): a router expands the
 *     family once, consistent-hashes each point's canonical spec
 *     across nodes, and sends every node only the indices it owns.
 *     Result lines then stream the subset in the given order (seq
 *     numbers the subset; the ack echoes the full expansion size as
 *     "total"), so the router can map seq back to global index and
 *     fold one fleet-wide digest in global submission order.
 *   {"op":"compare","id":n,"family":"<name>","scale":g,
 *    "program":"...","contexts":n,"jobs":[...],"latencies":[...]}
 *     — v5: cross-design comparison. The daemon expands the family,
 *     runs every point (same engine path as a sweep, identical
 *     caching/coalescing), then pairs every slice row-wise against
 *     slice 0 (the baseline design) via compareDesigns() and answers
 *     with ONE aggregated line instead of a result stream — the
 *     table is the product, not the points. Only design-parallel
 *     families (every slice the same row count — all ext-* families
 *     qualify; suite-grouping does not) are comparable; others get a
 *     protocol error.
 *   {"op":"stats"}
 *   {"op":"status"}
 *     — request-lifecycle snapshot: engine queue depth, per-
 *     connection in-flight batch counts, cancelled/reaped counters,
 *     per-lane queue depths ("lanes") and, when a store is attached,
 *     per-shard append/hit/recovery counts ("shards").
 *   {"op":"metrics","prom":b}
 *     — v4: full dump of the process metrics registry (src/obs/):
 *     {"ok":true,"metrics":{"counters":{name:v,...},
 *      "gauges":{name:v,...},"histograms":{name:{"count":c,"sum":s,
 *      "p50":x,"p95":x,"p99":x,"bounds":[...],"counts":[...]}}}}
 *     (histogram "counts" has one entry per bound plus a final
 *     overflow bucket). With "prom":true the response additionally
 *     carries "prom": the Prometheus text exposition as one string.
 *     Against a routing daemon (mtvd --route) the op fans out:
 *     {"ok":true,"fleet":true,"router":{...own registry...},
 *      "nodes":[{"endpoint":e,"ok":true,"metrics":{...}} |
 *               {"endpoint":e,"ok":false,"error":m},...],
 *      "totals":{counter name: sum over reachable nodes}}.
 *   {"op":"cancel","id":n}
 *     — cancel every in-flight batch tagged with request id n, on
 *     ANY connection (cancellation is cooperative: queued points are
 *     skipped, points already simulating finish and stay cached).
 *   {"op":"clear"}
 *   {"op":"shutdown"}
 *
 * Responses (server -> client). Lines for *different* request ids
 * interleave arbitrarily; lines for one id arrive in submission
 * order, numbered by "seq":
 *   sweep ack (first line of a sweep response — the expansion's
 *     shape, so the client can track progress and map results back
 *     to figure bars):
 *       {"id":n,"ack":true,"count":c,
 *        "slices":[{"label":s,"contexts":k,"first":i,"count":m},...]}
 *   run / sweep result, one line per spec as results finish:
 *       {"id":n,"seq":i,"spec":"...","cached":b,"store":b,
 *        "cycles":x,"dispatches":x,"speedup":x,...,"blob":"<hex>"}
 *     ("blob" is the full hex-encoded serializeSimStats() record and
 *     is omitted for quiet requests) — then a terminator
 *       {"id":n,"done":true,"count":c,"simulated":a,"cacheServed":b,
 *        "storeServed":c2,"digest":"<16 hex>"}
 *     where "digest" is FNV-1a folded over the canonical stats blobs
 *     in submission order — computed server-side, so even quiet
 *     requests get the bit-identity check. A batch ended by a
 *     "cancel" op terminates with a cancelled done line instead:
 *       {"id":n,"done":true,"cancelled":true,"count":c,
 *        "completed":k} (k results were delivered before the cancel
 *     took effect; no digest — the stream is deliberately partial).
 *   compare: one aggregated line
 *       {"id":n,"ok":true,"compare":true,"family":"...","count":c,
 *        "baseline":"<slice 0 label>","digest":"<16 hex>",
 *        "simulated":a,"cacheServed":b,"storeServed":c2,
 *        "rows":[{"design":s,"contexts":k,"ports":p,"latency":l,
 *                 "cycles":x,"speedup":g,"occupation":g,
 *                 "vopc":g},...]}
 *     ("digest" folds the underlying expansion's stats blobs in
 *     submission order, exactly as the equivalent sweep would — so a
 *     compare against a daemon, a fleet and --local can be checked
 *     for bit-identity).
 *   ping / stats / status / cancel / clear / shutdown: one
 *     {"ok":true,...} object. "cancel" reports how many batches it
 *     hit: {"ok":true,"cancelled":k}. "status" reports
 *     {"ok":true,"queueDepth":q,"activeRequests":a,
 *      "completedPoints":p,"counters":{"cancelledBatches":...,
 *      "reapedBatches":...,"cancelledPoints":...,
 *      "discardedPoints":...},
 *      "connections":[{"client":c,"inflight":k,"requests":[n,...]}]}
 *     (connections lists only clients with batches in flight).
 *   any error: {"error":"message","id":n?} (the connection stays
 *     open; "id" is present when the error belongs to one request).
 *
 * Request lifecycle: every admitted batch carries a CancelToken. The
 * daemon reaps a connection's tokens the moment its peer vanishes —
 * a write fails (sticky writeFailed) or the socket closes — and
 * drops the connection's queued engine work, so abandoned sweeps
 * free their worker slots instead of simulating for nobody. Each
 * connection schedules on its own engine lane, drained weighted
 * round-robin, so a huge sweep cannot head-of-line-block another
 * client's interactive run.
 *
 * Backpressure: a connection may have at most
 * maxInflightRequestsPerConnection batch requests streaming; the
 * server stops reading further requests until a slot frees, which
 * pushes back through the socket's receive buffer. Result lines are
 * written as futures complete, so a slow reader throttles its own
 * sweeps without buffering results in daemon memory.
 *
 * Identical specs submitted concurrently — by one request, several
 * in-flight sweeps, or many clients — coalesce onto a single
 * simulation inside the engine.
 */

#ifndef MTV_SERVICE_PROTOCOL_HH
#define MTV_SERVICE_PROTOCOL_HH

#include <string>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/service/json.hh"
#include "src/store/result_store.hh"

namespace mtv
{

/** Protocol revision spoken by this build (bump on changes). */
constexpr int serviceProtocolVersion = 5;

/** Batch requests one connection may keep streaming concurrently;
 *  further requests are not read until a slot frees (backpressure). */
constexpr int maxInflightRequestsPerConnection = 8;

/** Default daemon socket path (overridden by --socket / MTV_SOCKET). */
const char *defaultSocketPath();

/**
 * Where a daemon listens (or a client connects): a unix socket path
 * or a TCP host:port. Both speak the identical newline-delimited
 * protocol framing — TCP exists so mtvd nodes can form a fleet
 * across machines (src/fleet/).
 */
struct Endpoint
{
    enum class Kind : uint8_t
    {
        Unix,
        Tcp
    };

    Kind kind = Kind::Unix;
    /** Unix: the socket path. */
    std::string path;
    /** Tcp: host (name or literal) and port (0 = ephemeral bind,
     *  tests only — parseEndpoint() rejects it). */
    std::string host;
    int port = 0;

    static Endpoint unixSocket(std::string socketPath);
    static Endpoint tcp(std::string host, int port);

    /** Human-readable form: the path, or "host:port". */
    std::string describe() const;

    /** The mtvd invocation that would serve this endpoint — for
     *  actionable "daemon not running" messages. */
    std::string startHint() const;
};

/**
 * Parse an endpoint string (fleet node lists, --route): text with a
 * ':' is TCP "HOST:PORT" — parsed strictly via parseHostPort(), so
 * "host:abc" fatal()s instead of degrading to a unix path — anything
 * else is a unix socket path.
 */
Endpoint parseEndpoint(const std::string &text);

/**
 * One result line of a streamed response. @p includeBlob attaches the
 * hex serializeSimStats() blob (lossless; JSON numbers alone could
 * not round-trip 64-bit counters); a caller that already serialized
 * the stats (the daemon folds the digest over the same bytes) passes
 * them as @p serialized to skip re-encoding.
 */
Json resultToJson(const RunResult &result, uint64_t id, size_t seq,
                  bool includeBlob,
                  const std::string *serialized = nullptr);

/**
 * Inverse of resultToJson(): decode one streamed result line. When
 * the line carries a blob, the stats are decoded losslessly from it
 * and @p blob (if non-null) receives the raw blob bytes — the digest
 * fold input. fatal()s on malformed lines.
 */
RunResult resultFromJson(const Json &line, std::string *blob = nullptr);

/** Encode a named-sweep request ("op","id","quiet" added by caller). */
Json sweepRequestToJson(const SweepRequest &request);

/** Decode the family fields of a sweep request line. fatal()s on
 *  malformed fields (the daemon answers that as a protocol error). */
SweepRequest sweepRequestFromJson(const Json &request);

/** One slice of a sweep ack line. */
Json sliceToJson(const SweepSlice &slice);

/** Inverse of sliceToJson(). */
SweepSlice sliceFromJson(const Json &json);

/** One row of a compare response's "rows" array. */
Json compareRowToJson(const CompareRow &row);

/** Inverse of compareRowToJson(). fatal()s on malformed rows. */
CompareRow compareRowFromJson(const Json &json);

/** Engine counters as the "cache" member of a stats response. */
Json engineStatsToJson(const ExperimentEngine &engine);

/** Store counters as the "store" member of a stats response. */
Json storeStatsToJson(const ResultStore &store);

/**
 * A registry snapshot as the "metrics" member of a metrics response:
 * counters/gauges keyed by full metric name (labels embedded),
 * histograms with count/sum, p50/p95/p99 readout and the raw
 * bounds/counts arrays (counts includes the final overflow bucket).
 */
Json metricsToJson(const MetricsSnapshot &snapshot);

/**
 * Buffered line IO over a connected stream socket — the framing layer
 * both ends of the protocol share. Not thread-safe; writers on
 * several threads must serialize (the server wraps writes in a
 * per-connection mutex).
 */
class LineChannel
{
  public:
    /** Takes ownership of connected socket @p fd. */
    explicit LineChannel(int fd);
    ~LineChannel();

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /**
     * Read one newline-terminated line (the newline is stripped).
     * Returns false on EOF or error. Lines over 64 MiB abort the
     * connection (a stream that long is not a protocol message).
     */
    bool readLine(std::string *line);

    /** Write @p line plus a newline; false on error (peer gone). */
    bool writeLine(const std::string &line);

    /** The underlying file descriptor (for poll/shutdown). */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buffer_;
    /** First buffer_ position not yet scanned for '\n'. */
    size_t searchPos_ = 0;
};

/**
 * Connect to the daemon at @p socketPath. Returns the connected fd or
 * -1 (with @p error set) when the daemon is not reachable.
 */
int connectToDaemon(const std::string &socketPath, std::string *error);

/**
 * Connect to a daemon endpoint of either kind. TCP connections get
 * TCP_NODELAY (the protocol is small request lines; Nagle would add
 * 40ms stalls to every ping). Returns the connected fd or -1 (with
 * @p error set).
 */
int connectToEndpoint(const Endpoint &endpoint, std::string *error);

/**
 * Bind + listen on @p endpoint. fatal()s when the address is
 * unusable. For TCP, @p endpoint.port may be 0 (ephemeral); the
 * returned Endpoint carries the actually-bound port — how tests and
 * the fleet smoke script get collision-free ports. @p backlog is the
 * listen(2) queue. The unix-socket variant does NOT unlink or probe
 * the path; MtvService owns that policy.
 */
int listenOnEndpoint(const Endpoint &endpoint, Endpoint *bound,
                     int backlog = 64);

} // namespace mtv

#endif // MTV_SERVICE_PROTOCOL_HH
