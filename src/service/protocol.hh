/**
 * @file
 * The mtvd wire protocol: newline-delimited JSON objects over a
 * stream socket, one request or response per line.
 *
 * Requests (client -> server):
 *   {"op":"ping"}
 *   {"op":"run","specs":["<RunSpec::canonical()>",...],"quiet":b}
 *   {"op":"stats"}
 *   {"op":"clear"}
 *   {"op":"shutdown"}
 *
 * Responses (server -> client):
 *   run: one line per spec, streamed in submission order as results
 *     finish —
 *       {"seq":i,"spec":"...","cached":b,"store":b,"cycles":n,
 *        "dispatches":n,"speedup":x,...,"blob":"<hex>"}
 *     ("blob" is the full hex-encoded serializeSimStats() record and
 *     is omitted for quiet requests) — then a terminator
 *       {"done":true,"count":n,"simulated":a,"cacheServed":b,
 *        "storeServed":c}
 *   ping / stats / clear / shutdown: one {"ok":true,...} object.
 *   any error: {"error":"message"} (the connection stays open).
 *
 * Identical specs submitted concurrently — by one client or many —
 * coalesce onto a single simulation inside the engine; the protocol
 * needs no request ids because each connection's requests are
 * answered strictly in order.
 */

#ifndef MTV_SERVICE_PROTOCOL_HH
#define MTV_SERVICE_PROTOCOL_HH

#include <string>

#include "src/api/engine.hh"
#include "src/service/json.hh"
#include "src/store/result_store.hh"

namespace mtv
{

/** Protocol revision spoken by this build (bump on changes). */
constexpr int serviceProtocolVersion = 1;

/** Default daemon socket path (overridden by --socket / MTV_SOCKET). */
const char *defaultSocketPath();

/**
 * One result line of a "run" response. @p includeBlob attaches the
 * hex serializeSimStats() blob (lossless; JSON numbers alone could
 * not round-trip 64-bit counters).
 */
Json resultToJson(const RunResult &result, size_t seq,
                  bool includeBlob);

/** Engine counters as the "cache" member of a stats response. */
Json engineStatsToJson(const ExperimentEngine &engine);

/** Store counters as the "store" member of a stats response. */
Json storeStatsToJson(const ResultStore &store);

/**
 * Buffered line IO over a connected stream socket — the framing layer
 * both ends of the protocol share. Not thread-safe; one channel per
 * connection per thread.
 */
class LineChannel
{
  public:
    /** Takes ownership of connected socket @p fd. */
    explicit LineChannel(int fd);
    ~LineChannel();

    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    /**
     * Read one newline-terminated line (the newline is stripped).
     * Returns false on EOF or error. Lines over 64 MiB abort the
     * connection (a stream that long is not a protocol message).
     */
    bool readLine(std::string *line);

    /** Write @p line plus a newline; false on error (peer gone). */
    bool writeLine(const std::string &line);

    /** The underlying file descriptor (for poll/shutdown). */
    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buffer_;
    /** First buffer_ position not yet scanned for '\n'. */
    size_t searchPos_ = 0;
};

/**
 * Connect to the daemon at @p socketPath. Returns the connected fd or
 * -1 (with @p error set) when the daemon is not reachable.
 */
int connectToDaemon(const std::string &socketPath, std::string *error);

} // namespace mtv

#endif // MTV_SERVICE_PROTOCOL_HH
