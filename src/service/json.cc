#include "src/service/json.hh"

#include <cctype>
#include <cmath>
#include <cstring>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"

namespace mtv
{

namespace
{

const Json nullJson;

const char *
typeName(Json::Type type)
{
    switch (type) {
      case Json::Type::Null: return "null";
      case Json::Type::Bool: return "bool";
      case Json::Type::Number: return "number";
      case Json::Type::String: return "string";
      case Json::Type::Array: return "array";
      case Json::Type::Object: return "object";
    }
    return "?";
}

/** Recursive-descent parser (depth-limited against hostile input). */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(Json *out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing bytes after JSON value");
        return true;
    }

  private:
    static constexpr int maxDepth = 32;

    bool
    fail(const std::string &what)
    {
        if (error_) {
            *error_ = format("JSON parse error at byte %zu: %s", pos_,
                             what.c_str());
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    literal(const char *word, Json value, Json *out)
    {
        const size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(format("expected '%s'", word));
        pos_ += n;
        *out = std::move(value);
        return true;
    }

    bool
    parseValue(Json *out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n': return literal("null", Json(), out);
          case 't': return literal("true", Json(true), out);
          case 'f': return literal("false", Json(false), out);
          case '"': return parseString(out);
          case '[': return parseArray(out, depth);
          case '{': return parseObject(out, depth);
          default: return parseNumber(out);
        }
    }

    bool
    parseString(Json *out)
    {
        std::string s;
        if (!parseRawString(&s))
            return false;
        *out = Json(std::move(s));
        return true;
    }

    bool
    parseRawString(std::string *out)
    {
        ++pos_;  // opening quote
        std::string s;
        for (;;) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                break;
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                s.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': s.push_back('"'); break;
              case '\\': s.push_back('\\'); break;
              case '/': s.push_back('/'); break;
              case 'b': s.push_back('\b'); break;
              case 'f': s.push_back('\f'); break;
              case 'n': s.push_back('\n'); break;
              case 'r': s.push_back('\r'); break;
              case 't': s.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        code |= h - 'A' + 10;
                    else
                        return fail("bad \\u escape digit");
                }
                // Encode the code point as UTF-8 (surrogate pairs are
                // passed through individually; the protocol never
                // emits them).
                if (code < 0x80) {
                    s.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    s.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    s.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    s.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    s.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    s.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default: return fail("unknown escape character");
            }
        }
        *out = std::move(s);
        return true;
    }

    bool
    parseNumber(Json *out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected a value");
        char *end = nullptr;
        const std::string token = text_.substr(start, pos_ - start);
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail(format("bad number '%s'", token.c_str()));
        *out = Json(v);
        return true;
    }

    bool
    parseArray(Json *out, int depth)
    {
        ++pos_;  // '['
        Json arr = Json::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            *out = std::move(arr);
            return true;
        }
        for (;;) {
            Json element;
            skipSpace();
            if (!parseValue(&element, depth + 1))
                return false;
            arr.push(std::move(element));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            const char c = text_[pos_++];
            if (c == ']')
                break;
            if (c != ',')
                return fail("expected ',' or ']' in array");
        }
        *out = std::move(arr);
        return true;
    }

    bool
    parseObject(Json *out, int depth)
    {
        ++pos_;  // '{'
        Json obj = Json::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            *out = std::move(obj);
            return true;
        }
        for (;;) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected a member name");
            std::string key;
            if (!parseRawString(&key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':' after member name");
            Json value;
            skipSpace();
            if (!parseValue(&value, depth + 1))
                return false;
            obj.set(key, std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            const char c = text_[pos_++];
            if (c == '}')
                break;
            if (c != ',')
                return fail("expected ',' or '}' in object");
        }
        *out = std::move(obj);
        return true;
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

void
dumpString(const std::string &s, std::string &out)
{
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += format("\\u%04x", c);
            else
                out.push_back(c);
        }
    }
    out.push_back('"');
}

} // namespace

Json
Json::array()
{
    Json j;
    j.type_ = Type::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::Object;
    return j;
}

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        fatal("JSON value is %s, expected bool", typeName(type_));
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        fatal("JSON value is %s, expected number", typeName(type_));
    return number_;
}

uint64_t
Json::asU64() const
{
    const double v = asNumber();
    if (v < 0 || v != std::floor(v) || v > 9.007199254740992e15)
        fatal("JSON number %g is not an exact non-negative integer", v);
    return static_cast<uint64_t>(v);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        fatal("JSON value is %s, expected string", typeName(type_));
    return string_;
}

const std::vector<Json> &
Json::asArray() const
{
    if (type_ != Type::Array)
        fatal("JSON value is %s, expected array", typeName(type_));
    return array_;
}

const std::vector<std::pair<std::string, Json>> &
Json::asMembers() const
{
    if (type_ != Type::Object)
        fatal("JSON value is %s, expected object", typeName(type_));
    return members_;
}

const Json &
Json::get(const std::string &key) const
{
    if (type_ != Type::Object)
        fatal("JSON value is %s, expected object", typeName(type_));
    for (const auto &member : members_) {
        if (member.first == key)
            return member.second;
    }
    return nullJson;
}

std::string
Json::getString(const std::string &key,
                const std::string &fallback) const
{
    const Json &v = get(key);
    return v.isNull() ? fallback : v.asString();
}

double
Json::getNumber(const std::string &key, double fallback) const
{
    const Json &v = get(key);
    return v.isNull() ? fallback : v.asNumber();
}

bool
Json::getBool(const std::string &key, bool fallback) const
{
    const Json &v = get(key);
    return v.isNull() ? fallback : v.asBool();
}

bool
Json::has(const std::string &key) const
{
    return !get(key).isNull();
}

Json &
Json::push(Json value)
{
    if (type_ != Type::Array)
        panic("push() on JSON %s", typeName(type_));
    array_.push_back(std::move(value));
    return *this;
}

Json &
Json::set(const std::string &key, Json value)
{
    if (type_ != Type::Object)
        panic("set() on JSON %s", typeName(type_));
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(value);
            return *this;
        }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
}

void
Json::dumpTo(std::string &out) const
{
    switch (type_) {
      case Type::Null:
        out += "null";
        return;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        return;
      case Type::Number: {
        if (number_ == std::floor(number_) &&
            std::fabs(number_) < 9.007199254740992e15) {
            out += format("%lld", static_cast<long long>(number_));
        } else {
            out += format("%.17g", number_);
        }
        return;
      }
      case Type::String:
        dumpString(string_, out);
        return;
      case Type::Array: {
        out.push_back('[');
        for (size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out.push_back(',');
            array_[i].dumpTo(out);
        }
        out.push_back(']');
        return;
      }
      case Type::Object: {
        out.push_back('{');
        for (size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out.push_back(',');
            dumpString(members_[i].first, out);
            out.push_back(':');
            members_[i].second.dumpTo(out);
        }
        out.push_back('}');
        return;
      }
    }
}

std::string
Json::dump() const
{
    std::string out;
    dumpTo(out);
    return out;
}

bool
Json::parse(const std::string &text, Json *out, std::string *error)
{
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace mtv
