/**
 * @file
 * MtvService: the engine room of the `mtvd` daemon. Owns one
 * ExperimentEngine (optionally backed by a persistent, sharded
 * ResultStore), listens on a unix stream socket (and, when
 * configured, a TCP endpoint — the fleet transport) through one
 * poll()-based accept loop, and serves the multiplexed streaming
 * JSON protocol of src/service/protocol.hh to any number of
 * concurrent clients on either transport.
 *
 * Concurrency model: one thread per connection reads and validates
 * requests; each batch request ("run" or server-side-expanded
 * "sweep") then streams from its own thread, so one connection can
 * keep several sweeps in flight. All response lines of a connection
 * funnel through one write mutex; a connection admits at most
 * maxInflightRequestsPerConnection concurrent batches — the read
 * loop stops consuming requests until a slot frees, which is the
 * protocol's backpressure. All clients share the engine's memory
 * cache, in-flight coalescing map and store — N clients requesting
 * the same spec cost one simulation. Client errors (bad JSON,
 * unknown programs, malformed specs, unknown sweep families) are
 * answered with {"error":...} and never take the daemon down;
 * validation runs under ScopedFatalAsException.
 *
 * Request lifecycle: each connection gets its own engine scheduling
 * lane (weighted round-robin across lanes — no client can
 * head-of-line-block another) and every admitted batch carries a
 * CancelToken, registered service-wide so a "cancel" op from any
 * connection can hit it by request id. The moment a connection's
 * peer vanishes — a write fails (sticky writeFailed) or its socket
 * closes — the service reaps the connection: all its tokens are
 * cancelled and its lane's queued engine work is dropped, so
 * abandoned sweeps free their worker slots instead of simulating
 * for nobody.
 */

#ifndef MTV_SERVICE_SERVER_HH
#define MTV_SERVICE_SERVER_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/api/engine.hh"
#include "src/service/protocol.hh"
#include "src/store/result_store.hh"

namespace mtv
{

/** Configuration of one MtvService instance. */
struct ServiceOptions
{
    /** Unix socket path to listen on. Empty = defaultSocketPath(). */
    std::string socketPath;
    /**
     * TCP listen host ("mtvd --tcp HOST:PORT"); empty = unix socket
     * only. Both listeners serve the identical protocol; TCP is what
     * lets mtvd nodes form a fleet across machines (src/fleet/).
     */
    std::string tcpHost;
    /** TCP listen port; 0 = ephemeral (tests/smoke read the bound
     *  port back via MtvService::tcpPort()). */
    int tcpPort = 0;
    /**
     * Result-store directory backing the engine; empty = in-memory
     * only (results die with the daemon).
     */
    std::string storeDir;
    /** Shard count for a *fresh* store (0 = defaultStoreShards);
     *  an existing store keeps its own count. */
    int storeShards = 0;
    /** Engine worker threads; 0 = one per hardware thread. */
    int workers = 0;
    /** Engine memory-cache entry cap; 0 = unbounded. */
    size_t maxCacheEntries = 0;
    /** Simulation kernel the engine runs (mtvd --kernel). All three
     *  produce bit-identical results; Batched additionally coalesces
     *  queued family-mates into lockstep runs. */
    SimKernel kernel = SimKernel::Event;
    /** Coalescing width for the batched kernel (mtvd --batch-width;
     *  ignored by the other kernels, 1 disables coalescing). */
    int batchWidth = 16;
};

/** The mtvd daemon core (socket server around an engine + store). */
class MtvService
{
  public:
    /**
     * Open the store (when configured), build the engine, bind and
     * listen. fatal()s on an unusable socket path or store, or when
     * another live daemon already serves the socket.
     */
    explicit MtvService(ServiceOptions options);
    ~MtvService();

    MtvService(const MtvService &) = delete;
    MtvService &operator=(const MtvService &) = delete;

    /**
     * Accept and serve clients until stop() (or a client's shutdown
     * request). Blocks; run it on the main thread (mtvd) or a
     * dedicated one (tests).
     */
    void serve();

    /**
     * Ask serve() to return: stops accepting, shuts down client
     * connections, joins their threads. Safe from any thread and
     * from signal context (the heavy lifting happens on the serve()
     * thread).
     */
    void stop();

    /** The engine all connections share. */
    ExperimentEngine &engine() { return *engine_; }

    /** The store backing the engine (null when storeDir was empty). */
    const std::shared_ptr<ResultStore> &store() const { return store_; }

    /** Path the daemon is listening on. */
    const std::string &socketPath() const { return socketPath_; }

    /** Bound TCP port (the kernel's choice for an ephemeral bind),
     *  or 0 when no TCP listener was configured. */
    int tcpPort() const { return tcpPort_; }

    /** Batch requests currently streaming, across all connections. */
    uint64_t activeRequests() const { return activeRequests_.load(); }

    /** Points completed by batch requests over the daemon's life
     *  (fed by the engine's submit() progress hooks). */
    uint64_t completedPoints() const
    {
        return completedPoints_.load();
    }

    /** Batches cancelled by a client's "cancel" op. */
    uint64_t cancelledBatches() const
    {
        return cancelledBatches_.load();
    }

    /** Batches reaped because their connection's peer vanished. */
    uint64_t reapedBatches() const { return reapedBatches_.load(); }

  private:
    /** Per-connection state shared by the read loop and the
     *  request-streaming threads (defined in server.cc). */
    struct ClientState;

    /** One in-flight batch in the service-wide registry ("cancel"
     *  targets and "status" per-connection accounting). */
    struct BatchInfo
    {
        uint64_t clientId = 0;
        uint64_t requestId = 0;
        std::shared_ptr<CancelToken> token;
    };

    /**
     * A "compare" op riding the batch machinery: the expansion's
     * slice map, kept so the streaming thread can fold the results
     * through compareDesigns() and answer one aggregated line
     * instead of a result stream.
     */
    struct CompareJob
    {
        std::string family;
        std::string baseline;  ///< slice 0's label
        std::vector<SweepSlice> slices;
    };

    void handleConnection(int fd);
    /** Serve one request; returns false when the connection should
     *  close (shutdown request or write failure). */
    bool handleRequest(const Json &request, ClientState &client);
    /** Validate a "run" batch and start its streaming thread. */
    bool handleRun(const Json &request, ClientState &client);
    /** Expand a "sweep" request server-side, ack it, and start its
     *  streaming thread. */
    bool handleSweep(const Json &request, ClientState &client);
    /** Expand a "compare" request, check the family is design-
     *  parallel, and start its streaming thread in compare mode. */
    bool handleCompare(const Json &request, ClientState &client);
    /** Admit the validated batch @p specs: take a slot, register its
     *  cancel token, and start its streaming thread. @p sweep tags
     *  the op's latency series; @p admittedUs is the request's
     *  arrival timestamp (monotonicMicros()). A non-null @p compare
     *  switches the stream to the one-line aggregated answer. */
    void admitBatch(ClientState &client, uint64_t id,
                    std::vector<RunSpec> specs, bool quiet,
                    bool sweep, uint64_t admittedUs,
                    std::shared_ptr<const CompareJob> compare =
                        nullptr);
    /** Cancel every in-flight batch tagged @p requestId, on any
     *  connection; returns how many were hit. */
    uint64_t cancelBatches(uint64_t requestId);
    /** The "status" response: queue depth, per-connection in-flight
     *  counts, cancelled/reaped counters. */
    Json statusJson();
    /** Cancel all of @p client's batch tokens and drop its queued
     *  engine work — the peer is gone (EOF or sticky write failure).
     *  Idempotent; safe from the read and streaming threads. */
    void reapClient(ClientState &client);
    /** Block until the connection has a free batch slot (the
     *  protocol's backpressure); false when shutting down. */
    bool acquireSlot(ClientState &client);
    /** Submit @p specs and stream id-tagged results in submission
     *  order; runs on the dedicated connection-stream thread keyed
     *  by @p streamId (retired for reaping when done). */
    void streamBatch(ClientState &client, uint64_t streamId,
                     uint64_t id, std::vector<RunSpec> specs,
                     bool quiet, std::shared_ptr<CancelToken> token,
                     uint64_t batchKey, bool sweep,
                     uint64_t admittedUs,
                     std::shared_ptr<const CompareJob> compare);
    /** Join threads whose connections have ended. Caller holds
     *  clientsMutex_. */
    void reapFinishedLocked();
    /** Shut down remaining connections, drop queued engine work, and
     *  join every client thread (serve() teardown and destructor). */
    void teardownClients();

    /** One listening socket (unix or TCP) the accept loop polls. */
    struct Listener
    {
        int fd = -1;
        Endpoint endpoint;
    };

    std::string socketPath_;
    std::shared_ptr<ResultStore> store_;
    std::unique_ptr<ExperimentEngine> engine_;
    /** All listeners (unix socket always; TCP when configured),
     *  served by one poll()-based accept loop. */
    std::vector<Listener> listeners_;
    int tcpPort_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> activeRequests_{0};
    std::atomic<uint64_t> completedPoints_{0};
    std::atomic<uint64_t> cancelledBatches_{0};
    std::atomic<uint64_t> reapedBatches_{0};
    std::atomic<uint64_t> nextClientId_{1};
    std::atomic<uint64_t> nextBatchKey_{1};

    /** Every batch currently admitted, keyed by a daemon-unique
     *  handle (request ids are only client-unique). */
    std::mutex batchesMutex_;
    std::unordered_map<uint64_t, BatchInfo> batches_;

    std::mutex clientsMutex_;
    /** Live connections: fd -> serving thread. */
    std::unordered_map<int, std::thread> activeClients_;
    /** Threads whose connection ended, awaiting a cheap join (reaped
     *  on every accept so the daemon never accumulates dead ones). */
    std::vector<std::thread> finishedClients_;

    // Process-wide observability handles (src/obs/metrics.hh),
    // request→first-point and request→done latency per op plus
    // connection/write-path health. ClientState::write() reaches
    // obsWriteStallUs_/obsWriteFailures_ through its service pointer.
    Histogram *obsFirstPointUs_[2] = {nullptr, nullptr}; ///< [sweep]
    Histogram *obsDoneUs_[2] = {nullptr, nullptr};       ///< [sweep]
    /** Per-point result encode latency, [sweep][binary wire]. */
    Histogram *obsEncodeUs_[2][2] = {{nullptr, nullptr},
                                     {nullptr, nullptr}};
    Gauge *obsInflightBatches_ = nullptr;
    Gauge *obsConnections_ = nullptr;
    Counter *obsConnectionsTotal_ = nullptr;
    Counter *obsWriteStallUs_ = nullptr;
    Counter *obsWriteFailures_ = nullptr;
    Counter *obsBytesSent_ = nullptr;
    Counter *obsBytesReceived_ = nullptr;
};

} // namespace mtv

#endif // MTV_SERVICE_SERVER_HH
