#include "src/service/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/common/logging.hh"
#include "src/core/sim_error.hh"

namespace mtv
{

namespace
{

Json
errorJson(const std::string &message)
{
    Json j = Json::object();
    j.set("error", message);
    return j;
}

/**
 * A wedged simulation as a structured error response: the message
 * plus machine-readable per-context blocked state, so a client can
 * see *which* resource each context starved on without parsing the
 * human text.
 */
Json
simErrorJson(const SimError &e)
{
    Json j = errorJson(e.what());
    j.set("wedged", true);
    j.set("cycle", e.cycle());
    j.set("stalledCycles", e.stalledCycles());
    Json blocked = Json::array();
    for (const BlockedContext &ctx : e.contexts()) {
        Json b = Json::object();
        b.set("context", static_cast<uint64_t>(ctx.context));
        b.set("program", ctx.program);
        b.set("reason", std::string(blockReasonName(ctx.reason)));
        b.set("windowHead", ctx.windowHead);
        b.set("windowDepth", ctx.windowDepth);
        blocked.push(b);
    }
    j.set("blocked", blocked);
    return j;
}

sockaddr_un
socketAddress(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path too long (%zu bytes): %s", path.size(),
              path.c_str());
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    return addr;
}

} // namespace

MtvService::MtvService(ServiceOptions options)
{
    socketPath_ = options.socketPath.empty() ? defaultSocketPath()
                                             : options.socketPath;

    if (!options.storeDir.empty())
        store_ = std::make_shared<ResultStore>(options.storeDir);

    EngineOptions engineOptions;
    engineOptions.workers = options.workers;
    engineOptions.backend = store_;
    engineOptions.maxCacheEntries = options.maxCacheEntries;
    engine_ = std::make_unique<ExperimentEngine>(engineOptions);

    // A leftover socket file from a killed daemon would block bind();
    // only a *connectable* socket means a live daemon.
    std::string connectError;
    const int probe = connectToDaemon(socketPath_, &connectError);
    if (probe >= 0) {
        ::close(probe);
        fatal("another mtvd is already serving '%s'",
              socketPath_.c_str());
    }
    ::unlink(socketPath_.c_str());

    const sockaddr_un addr = socketAddress(socketPath_);
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("cannot create server socket: %s", std::strerror(errno));
    if (::bind(listenFd_, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        fatal("cannot bind '%s': %s", socketPath_.c_str(),
              std::strerror(errno));
    }
    if (::listen(listenFd_, 64) != 0)
        fatal("cannot listen on '%s': %s", socketPath_.c_str(),
              std::strerror(errno));
}

MtvService::~MtvService()
{
    stop();
    // serve() may never have run; make teardown idempotent here.
    teardownClients();
    if (listenFd_ >= 0)
        ::close(listenFd_);
    ::unlink(socketPath_.c_str());
}

void
MtvService::reapFinishedLocked()
{
    for (auto &thread : finishedClients_)
        thread.join();
    finishedClients_.clear();
}

void
MtvService::teardownClients()
{
    // Bound shutdown latency: queued-but-unstarted engine work is
    // dropped (its futures break, which handleRun treats as "client
    // abandoned"); only the simulations already running finish.
    const size_t dropped = engine_->discardQueued();
    if (dropped > 0) {
        inform("mtvd: dropped %zu queued runs at shutdown",
               dropped);
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(clientsMutex_);
        for (auto &client : activeClients_) {
            ::shutdown(client.first, SHUT_RDWR);
            threads.push_back(std::move(client.second));
        }
        activeClients_.clear();
        for (auto &thread : finishedClients_)
            threads.push_back(std::move(thread));
        finishedClients_.clear();
    }
    for (auto &thread : threads)
        thread.join();
}

void
MtvService::serve()
{
    inform("mtvd: listening on %s (%d workers%s)",
           socketPath_.c_str(), engine_->workers(),
           store_ ? ", persistent store" : "");
    while (!stopping_.load()) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            if (errno == EINTR)
                continue;
            if (errno == EMFILE || errno == ENFILE ||
                errno == ECONNABORTED || errno == EAGAIN ||
                errno == EWOULDBLOCK || errno == EPROTO) {
                // Transient pressure (fd exhaustion, aborted
                // handshake) must not take the shared daemon down;
                // back off and keep serving.
                warn("mtvd: accept failed: %s — retrying",
                     std::strerror(errno));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                continue;
            }
            break;  // listen socket is genuinely broken
        }
        std::lock_guard<std::mutex> lock(clientsMutex_);
        reapFinishedLocked();  // keep dead threads from accumulating
        activeClients_.emplace(
            fd, std::thread([this, fd] { handleConnection(fd); }));
    }

    // Teardown on the serve thread: kick every open connection, then
    // wait for its thread to finish cleanly.
    teardownClients();
}

void
MtvService::stop()
{
    // Kept async-signal-safe (mtvd calls this from SIGTERM/SIGINT):
    // flag + shutdown only; joining happens on the serve() thread.
    stopping_.store(true);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
}

void
MtvService::handleConnection(int fd)
{
    LineChannel channel(fd);
    std::string line;
    while (!stopping_.load() && channel.readLine(&line)) {
        if (line.empty())
            continue;
        Json request;
        std::string parseError;
        if (!Json::parse(line, &request, &parseError)) {
            if (!channel.writeLine(errorJson(parseError).dump()))
                break;
            continue;
        }
        if (!handleRequest(request, channel))
            break;
    }
    // Move our own thread handle to the finished list (joined by the
    // accept loop or teardown) while the descriptor is still open, so
    // teardown can never shutdown() a recycled fd; the channel closes
    // it after. During teardown the entry may already be gone — the
    // teardown thread owns the handle then.
    std::lock_guard<std::mutex> lock(clientsMutex_);
    auto self = activeClients_.find(fd);
    if (self != activeClients_.end()) {
        finishedClients_.push_back(std::move(self->second));
        activeClients_.erase(self);
    }
}

bool
MtvService::handleRequest(const Json &request, LineChannel &channel)
{
    try {
        // Client input flows through fatal()-reporting validation
        // (JSON shape, RunSpec::parse, findProgram); a user error
        // must answer this client, not kill the daemon.
        ScopedFatalAsException fatalScope;

        const std::string op = request.getString("op");
        if (op == "run")
            return handleRun(request, channel);
        if (op == "ping") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("pong", true);
            ok.set("protocol", serviceProtocolVersion);
            ok.set("workers", engine_->workers());
            return channel.writeLine(ok.dump());
        }
        if (op == "stats") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("workers", engine_->workers());
            ok.set("cache", engineStatsToJson(*engine_));
            ok.set("store",
                   store_ ? storeStatsToJson(*store_) : Json());
            return channel.writeLine(ok.dump());
        }
        if (op == "clear") {
            engine_->clear();
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("cleared", true);
            return channel.writeLine(ok.dump());
        }
        if (op == "shutdown") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("stopping", true);
            channel.writeLine(ok.dump());
            inform("mtvd: shutdown requested by client");
            stop();
            return false;
        }
        channel.writeLine(
            errorJson("unknown op '" + op + "'").dump());
        return true;
    } catch (const SimError &e) {
        // A wedged simulation is a model bug worth reporting in
        // full, but never worth the daemon's life.
        warn("mtvd: %s", e.what());
        return channel.writeLine(simErrorJson(e).dump());
    } catch (const FatalError &e) {
        return channel.writeLine(errorJson(e.what()).dump());
    }
}

bool
MtvService::handleRun(const Json &request, LineChannel &channel)
{
    const std::vector<Json> &specLines = request.get("specs").asArray();
    const bool quiet = request.getBool("quiet", false);

    // Validate the whole batch before running any of it: a malformed
    // spec answers with one error and no partial results.
    std::vector<RunSpec> specs;
    specs.reserve(specLines.size());
    for (const Json &text : specLines)
        specs.push_back(RunSpec::parse(text.asString()));

    // Stream in submission order: specs fan out across the shared
    // worker pool; identical in-flight specs (same batch or another
    // client's) coalesce inside the engine.
    std::vector<std::future<RunResult>> futures;
    futures.reserve(specs.size());
    for (const RunSpec &spec : specs)
        futures.push_back(engine_->submit(spec));

    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    uint64_t storeServed = 0;
    for (size_t i = 0; i < futures.size(); ++i) {
        RunResult result;
        try {
            result = futures[i].get();
        } catch (const std::future_error &) {
            // Shutdown dropped this queued run (discardQueued); the
            // client's connection is being torn down anyway.
            return false;
        }
        if (result.cached)
            ++cacheServed;
        else if (result.fromStore)
            ++storeServed;
        else
            ++simulated;
        if (!channel.writeLine(
                resultToJson(result, i, !quiet).dump())) {
            return false;  // client gone; remaining work completes
        }
    }

    Json done = Json::object();
    done.set("done", true);
    done.set("count", static_cast<uint64_t>(futures.size()));
    done.set("simulated", simulated);
    done.set("cacheServed", cacheServed);
    done.set("storeServed", storeServed);
    return channel.writeLine(done.dump());
}

} // namespace mtv
