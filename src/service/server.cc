#include "src/service/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/core/sim_error.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{

namespace
{

Json
errorJson(const std::string &message)
{
    Json j = Json::object();
    j.set("error", message);
    return j;
}

/** An error that belongs to one multiplexed request. */
Json
requestErrorJson(uint64_t id, const std::string &message)
{
    Json j = errorJson(message);
    j.set("id", id);
    return j;
}

/**
 * A wedged simulation as a structured error response: the message
 * plus machine-readable per-context blocked state, so a client can
 * see *which* resource each context starved on without parsing the
 * human text.
 */
Json
simErrorJson(uint64_t id, const SimError &e)
{
    Json j = requestErrorJson(id, e.what());
    j.set("wedged", true);
    j.set("cycle", e.cycle());
    j.set("stalledCycles", e.stalledCycles());
    Json blocked = Json::array();
    for (const BlockedContext &ctx : e.contexts()) {
        Json b = Json::object();
        b.set("context", static_cast<uint64_t>(ctx.context));
        b.set("program", ctx.program);
        b.set("reason", std::string(blockReasonName(ctx.reason)));
        b.set("windowHead", ctx.windowHead);
        b.set("windowDepth", ctx.windowDepth);
        blocked.push(b);
    }
    j.set("blocked", blocked);
    return j;
}

/**
 * The request id, tolerating absent or malformed ids (0): the id
 * must be extractable even on the error path, where fatal() no
 * longer throws.
 */
uint64_t
safeRequestId(const Json &request)
{
    const Json &id = request.get("id");
    if (id.type() != Json::Type::Number)
        return 0;
    const double v = id.asNumber();
    if (v < 0 || v != std::floor(v) || v > 9.007199254740992e15)
        return 0;
    return static_cast<uint64_t>(v);
}

} // namespace

/**
 * Everything one connection's read loop shares with its streaming
 * threads: the channel (writes serialized by writeMutex), the batch
 * slot accounting, and the streaming threads themselves (joined by
 * the read loop before the connection closes).
 */
struct MtvService::ClientState
{
    ClientState(MtvService *service, int fd)
        : service(service), channel(fd)
    {
    }

    /** Thread-safe line write; false when the peer is gone. */
    bool
    write(const std::string &line)
    {
        return writeOut(line, /*frame=*/false);
    }

    /** Thread-safe write of pre-encoded frame bytes (no newline). */
    bool
    writeFrameBytes(const std::string &bytes)
    {
        return writeOut(bytes, /*frame=*/true);
    }

    bool
    writeOut(const std::string &bytes, bool frame)
    {
        // Write-stall accounting covers the whole funnel: waiting on
        // the per-connection write mutex (another stream holds it)
        // plus the blocking send itself (slow reader, full socket
        // buffer). Two clock reads per line, next to a syscall.
        const uint64_t startUs = monotonicMicros();
        bool ok;
        {
            std::lock_guard<std::mutex> lock(writeMutex);
            if (writeFailed.load())
                return false;
            ok = frame ? channel.writeBytes(bytes)
                       : channel.writeLine(bytes);
            const uint64_t sent = channel.bytesWritten();
            service->obsBytesSent_->inc(sent - lastBytesSent);
            lastBytesSent = sent;
            if (!ok) {
                // Sticky: once the peer is gone, the read loop must
                // stop admitting its pipelined requests (simulating
                // batches nobody can receive) and close the
                // connection. Reap immediately — every in-flight
                // batch of this connection is now simulating for
                // nobody.
                writeFailed.store(true);
                service->obsWriteFailures_->inc();
                service->reapClient(*this);
            }
        }
        service->obsWriteStallUs_->inc(monotonicMicros() - startUs);
        return ok;
    }

    MtvService *service;
    LineChannel channel;
    std::mutex writeMutex;
    std::atomic<bool> writeFailed{false};
    /** channel.bytesWritten() already fed to the byte counter
     *  (guarded by writeMutex). */
    uint64_t lastBytesSent = 0;

    /** Result-point wire format of this connection, set by the
     *  "hello" op (the streaming threads read it per batch). */
    std::atomic<WireFormat> wire{WireFormat::Json};

    /** This connection's engine scheduling lane. */
    LaneId lane = ExperimentEngine::defaultLane;
    /** Daemon-unique connection id (status reporting). */
    uint64_t clientId = 0;

    /** Cancel tokens of the connection's admitted batches, keyed by
     *  stream id. reaped goes sticky once the peer is known gone, so
     *  a batch admitted concurrently is cancelled at birth. */
    std::mutex tokenMutex;
    std::unordered_map<uint64_t, std::shared_ptr<CancelToken>> tokens;
    bool reaped = false;

    std::mutex slotMutex;
    std::condition_variable slotCv;
    /** Batch requests currently streaming on this connection. */
    int inflight = 0;
    /** Ids of streams that finished and await a cheap join (guarded
     *  by slotMutex; reaped whenever a new batch is admitted, so a
     *  long-lived connection never accumulates dead threads). */
    std::vector<uint64_t> retired;

    /** One thread per admitted batch request, keyed by stream id
     *  (touched only by the read thread). */
    std::unordered_map<uint64_t, std::thread> streams;
    uint64_t nextStreamId = 0;

    /** Join streams listed in retired. Read thread only. */
    void
    reapRetired()
    {
        std::vector<uint64_t> done;
        {
            std::lock_guard<std::mutex> lock(slotMutex);
            done.swap(retired);
        }
        for (const uint64_t id : done) {
            auto it = streams.find(id);
            if (it != streams.end()) {
                it->second.join();
                streams.erase(it);
            }
        }
    }
};

MtvService::MtvService(ServiceOptions options)
{
    socketPath_ = options.socketPath.empty() ? defaultSocketPath()
                                             : options.socketPath;

    if (!options.storeDir.empty()) {
        store_ = std::make_shared<ResultStore>(options.storeDir,
                                               options.storeShards);
    }

    EngineOptions engineOptions;
    engineOptions.workers = options.workers;
    engineOptions.backend = store_;
    engineOptions.maxCacheEntries = options.maxCacheEntries;
    engineOptions.kernel = options.kernel;
    engineOptions.batchWidth = options.batchWidth;
    // Warm cache hits hand their canonical bytes straight to the
    // wire (see RunResult::blob) instead of re-serializing per
    // stream.
    engineOptions.canonicalSerializer = [](const SimStats &stats) {
        return serializeSimStats(stats);
    };
    engine_ = std::make_unique<ExperimentEngine>(engineOptions);

    MetricsRegistry &reg = MetricsRegistry::instance();
    obsFirstPointUs_[0] =
        reg.histogram("service_first_point_us{op=\"run\"}");
    obsFirstPointUs_[1] =
        reg.histogram("service_first_point_us{op=\"sweep\"}");
    obsDoneUs_[0] = reg.histogram("service_done_us{op=\"run\"}");
    obsDoneUs_[1] = reg.histogram("service_done_us{op=\"sweep\"}");
    obsEncodeUs_[0][0] = reg.histogram(
        "service_encode_us{op=\"run\",wire=\"json\"}");
    obsEncodeUs_[0][1] = reg.histogram(
        "service_encode_us{op=\"run\",wire=\"binary\"}");
    obsEncodeUs_[1][0] = reg.histogram(
        "service_encode_us{op=\"sweep\",wire=\"json\"}");
    obsEncodeUs_[1][1] = reg.histogram(
        "service_encode_us{op=\"sweep\",wire=\"binary\"}");
    obsInflightBatches_ = reg.gauge("service_inflight_batches");
    obsConnections_ = reg.gauge("service_connections");
    obsConnectionsTotal_ = reg.counter("service_connections_total");
    obsWriteStallUs_ = reg.counter("service_write_stall_us_total");
    obsWriteFailures_ = reg.counter("service_write_failures_total");
    obsBytesSent_ = reg.counter("service_bytes_sent");
    obsBytesReceived_ = reg.counter("service_bytes_received");

    // A leftover socket file from a killed daemon would block bind();
    // only a *connectable* socket means a live daemon.
    std::string connectError;
    const int probe = connectToDaemon(socketPath_, &connectError);
    if (probe >= 0) {
        ::close(probe);
        fatal("another mtvd is already serving '%s'",
              socketPath_.c_str());
    }
    ::unlink(socketPath_.c_str());

    Listener unixListener;
    unixListener.endpoint = Endpoint::unixSocket(socketPath_);
    unixListener.fd =
        listenOnEndpoint(unixListener.endpoint, nullptr);
    listeners_.push_back(unixListener);

    if (!options.tcpHost.empty()) {
        Listener tcpListener;
        tcpListener.fd = listenOnEndpoint(
            Endpoint::tcp(options.tcpHost, options.tcpPort),
            &tcpListener.endpoint);
        tcpPort_ = tcpListener.endpoint.port;
        listeners_.push_back(tcpListener);
    }
}

MtvService::~MtvService()
{
    stop();
    // serve() may never have run; make teardown idempotent here.
    teardownClients();
    for (const Listener &listener : listeners_) {
        if (listener.fd >= 0)
            ::close(listener.fd);
    }
    ::unlink(socketPath_.c_str());
}

void
MtvService::reapFinishedLocked()
{
    for (auto &thread : finishedClients_)
        thread.join();
    finishedClients_.clear();
}

void
MtvService::teardownClients()
{
    // Bound shutdown latency: queued-but-unstarted engine work is
    // dropped (its futures break, which the streaming threads treat
    // as "shutting down"); only the simulations already running
    // finish.
    const size_t dropped = engine_->discardQueued();
    if (dropped > 0) {
        inform("mtvd: dropped %zu queued runs at shutdown",
               dropped);
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(clientsMutex_);
        for (auto &client : activeClients_) {
            ::shutdown(client.first, SHUT_RDWR);
            threads.push_back(std::move(client.second));
        }
        activeClients_.clear();
        for (auto &thread : finishedClients_)
            threads.push_back(std::move(thread));
        finishedClients_.clear();
    }
    for (auto &thread : threads)
        thread.join();
}

void
MtvService::serve()
{
    for (const Listener &listener : listeners_) {
        inform("mtvd: listening on %s (%d workers%s)",
               listener.endpoint.describe().c_str(),
               engine_->workers(),
               store_ ? ", persistent store" : "");
    }
    // One accept loop over every listener (unix + TCP): poll for a
    // readable listening socket, accept, hand the connection its
    // thread. Both transports feed the identical per-connection
    // protocol path.
    std::vector<pollfd> fds;
    fds.reserve(listeners_.size());
    for (const Listener &listener : listeners_)
        fds.push_back(pollfd{listener.fd, POLLIN, 0});
    while (!stopping_.load()) {
        for (pollfd &p : fds)
            p.revents = 0;
        const int ready = ::poll(fds.data(), fds.size(), 500);
        if (stopping_.load())
            break;
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;  // the listen set is genuinely broken
        }
        if (ready == 0)
            continue;
        for (size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP)))
                continue;
            const int fd = ::accept(listeners_[i].fd, nullptr,
                                    nullptr);
            if (fd < 0) {
                if (stopping_.load())
                    break;
                if (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK) {
                    continue;
                }
                if (errno == EMFILE || errno == ENFILE ||
                    errno == ECONNABORTED || errno == EPROTO) {
                    // Transient pressure (fd exhaustion, aborted
                    // handshake) must not take the shared daemon
                    // down; back off and keep serving.
                    warn("mtvd: accept failed: %s — retrying",
                         std::strerror(errno));
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                    continue;
                }
                continue;
            }
            if (listeners_[i].endpoint.kind == Endpoint::Kind::Tcp) {
                // Nagle would stall every small response line by up
                // to 40ms; the protocol is latency-bound lines.
                int one = 1;
                ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                             sizeof(one));
            }
            std::lock_guard<std::mutex> lock(clientsMutex_);
            reapFinishedLocked();  // no dead-thread accumulation
            activeClients_.emplace(
                fd,
                std::thread([this, fd] { handleConnection(fd); }));
        }
    }

    // Teardown on the serve thread: kick every open connection, then
    // wait for its thread to finish cleanly.
    teardownClients();
}

void
MtvService::stop()
{
    // Kept async-signal-safe (mtvd calls this from SIGTERM/SIGINT):
    // flag + shutdown only; joining happens on the serve() thread.
    stopping_.store(true);
    for (const Listener &listener : listeners_) {
        if (listener.fd >= 0)
            ::shutdown(listener.fd, SHUT_RDWR);
    }
}

void
MtvService::handleConnection(int fd)
{
    ClientState client(this, fd);
    client.clientId = nextClientId_.fetch_add(1);
    client.lane = engine_->openLane();
    obsConnections_->add(1);
    obsConnectionsTotal_->inc();
    std::string line;
    uint64_t lastBytesReceived = 0;
    while (!stopping_.load() && !client.writeFailed.load()) {
        const LineChannel::MessageKind kind =
            client.channel.readMessage(&line);
        const uint64_t received = client.channel.bytesRead();
        obsBytesReceived_->inc(received - lastBytesReceived);
        lastBytesReceived = received;
        if (kind == LineChannel::MessageKind::Eof)
            break;
        if (kind != LineChannel::MessageKind::Line) {
            // Result frames flow server->client only; a frame (or
            // frame-marker garbage) on the request channel means the
            // peer lost the framing. One structured error, then a
            // clean close — resynchronizing an unframed byte stream
            // is not possible.
            Json err = errorJson(
                "binary frame on the request channel");
            err.set("badFrame", true);
            client.write(err.dump());
            break;
        }
        if (line.empty())
            continue;
        Json request;
        std::string parseError;
        if (!Json::parse(line, &request, &parseError)) {
            if (!client.write(errorJson(parseError).dump()))
                break;
            continue;
        }
        if (!handleRequest(request, client))
            break;
    }
    // The peer is gone (or the daemon is stopping): cancel the
    // connection's batches and drop its queued engine work so
    // abandoned points free their worker slots instead of simulating
    // for nobody — and so the joins below are quick.
    reapClient(client);
    engine_->closeLane(client.lane);
    obsConnections_->add(-1);
    // In-flight batches drain before the channel closes: their
    // threads hold pointers into this stack frame. A gone peer makes
    // their writes fail fast; daemon shutdown breaks their futures.
    for (auto &stream : client.streams) {
        if (stream.second.joinable())
            stream.second.join();
    }
    // Move our own thread handle to the finished list (joined by the
    // accept loop or teardown) while the descriptor is still open, so
    // teardown can never shutdown() a recycled fd; the channel closes
    // it after. During teardown the entry may already be gone — the
    // teardown thread owns the handle then.
    std::lock_guard<std::mutex> lock(clientsMutex_);
    auto self = activeClients_.find(fd);
    if (self != activeClients_.end()) {
        finishedClients_.push_back(std::move(self->second));
        activeClients_.erase(self);
    }
}

void
MtvService::reapClient(ClientState &client)
{
    std::vector<std::shared_ptr<CancelToken>> tokens;
    {
        std::lock_guard<std::mutex> lock(client.tokenMutex);
        if (client.reaped)
            return;
        client.reaped = true;
        tokens.reserve(client.tokens.size());
        for (const auto &entry : client.tokens)
            tokens.push_back(entry.second);
    }
    uint64_t reaped = 0;
    for (const auto &token : tokens) {
        if (!token->cancelled()) {
            token->cancel();
            ++reaped;
        }
    }
    reapedBatches_.fetch_add(reaped);
    if (reaped > 0) {
        inform("mtvd: client %llu vanished, reaped %llu in-flight "
               "batch%s",
               static_cast<unsigned long long>(client.clientId),
               static_cast<unsigned long long>(reaped),
               reaped == 1 ? "" : "es");
    }
    // Streaming threads may be parked on the slot cv; the read loop
    // is done admitting, so wake them to observe writeFailed/reaped.
    client.slotCv.notify_all();
}

uint64_t
MtvService::cancelBatches(uint64_t requestId)
{
    uint64_t cancelled = 0;
    {
        std::lock_guard<std::mutex> lock(batchesMutex_);
        for (auto &entry : batches_) {
            if (entry.second.requestId != requestId ||
                entry.second.token->cancelled()) {
                continue;
            }
            entry.second.token->cancel();
            ++cancelled;
        }
    }
    cancelledBatches_.fetch_add(cancelled);
    return cancelled;
}

Json
MtvService::statusJson()
{
    Json ok = Json::object();
    ok.set("ok", true);
    ok.set("kernel", simKernelName(engine_->kernel()));
    ok.set("queueDepth",
           static_cast<uint64_t>(engine_->queueDepth()));
    ok.set("activeRequests", activeRequests_.load());
    ok.set("completedPoints", completedPoints_.load());
    Json counters = Json::object();
    counters.set("cancelledBatches", cancelledBatches_.load());
    counters.set("reapedBatches", reapedBatches_.load());
    counters.set("cancelledPoints", engine_->cancelledRuns());
    counters.set("discardedPoints", engine_->discardedTasks());
    ok.set("counters", std::move(counters));
    // Per-lane queue depths: which tenant's work is actually queued
    // (lane 0 = runAll/plain submit; one lane per connection).
    Json lanes = Json::array();
    for (const auto &entry : engine_->laneDepths()) {
        Json lane = Json::object();
        lane.set("lane", entry.first);
        lane.set("depth", static_cast<uint64_t>(entry.second));
        lanes.push(std::move(lane));
    }
    ok.set("lanes", std::move(lanes));
    // Per-shard store counters, when a store is attached: hot shards,
    // recovery damage, session appends.
    if (store_) {
        Json shards = Json::array();
        const std::vector<ResultStore::ShardStats> stats =
            store_->shardStats();
        for (size_t i = 0; i < stats.size(); ++i) {
            Json shard = Json::object();
            shard.set("shard", static_cast<uint64_t>(i));
            shard.set("appends", stats[i].appends);
            shard.set("hits", stats[i].hits);
            shard.set("misses", stats[i].misses);
            shard.set("records",
                      static_cast<uint64_t>(stats[i].records));
            shard.set("recovered", stats[i].loadedRecords);
            shard.set("dropped", stats[i].droppedRecords);
            shards.push(std::move(shard));
        }
        ok.set("shards", std::move(shards));
    }
    // Per-connection in-flight accounting, from the batch registry
    // (connections with nothing in flight have nothing to report).
    std::map<uint64_t, std::vector<uint64_t>> perClient;
    {
        std::lock_guard<std::mutex> lock(batchesMutex_);
        for (const auto &entry : batches_) {
            perClient[entry.second.clientId].push_back(
                entry.second.requestId);
        }
    }
    Json connections = Json::array();
    for (auto &entry : perClient) {
        Json conn = Json::object();
        conn.set("client", entry.first);
        conn.set("inflight",
                 static_cast<uint64_t>(entry.second.size()));
        std::sort(entry.second.begin(), entry.second.end());
        Json ids = Json::array();
        for (const uint64_t id : entry.second)
            ids.push(id);
        conn.set("requests", std::move(ids));
        connections.push(std::move(conn));
    }
    ok.set("connections", std::move(connections));
    return ok;
}

bool
MtvService::handleRequest(const Json &request, ClientState &client)
{
    try {
        // Client input flows through fatal()-reporting validation
        // (JSON shape, RunSpec::parse, findProgram, expandSweep); a
        // user error must answer this client, not kill the daemon.
        ScopedFatalAsException fatalScope;

        const std::string op = request.getString("op");
        if (op == "hello") {
            // Wire negotiation (protocol v6): the client asks for a
            // result-point encoding; everything else on the stream
            // stays JSON lines. An unknown value answers an error and
            // leaves the connection on JSON — old daemons answer
            // "unknown op" here, which v6 clients treat the same way.
            const std::string wanted =
                request.has("wire") ? request.getString("wire")
                                    : "json";
            WireFormat wire;
            if (wanted == "json")
                wire = WireFormat::Json;
            else if (wanted == "binary")
                wire = WireFormat::Binary;
            else {
                return client.write(
                    errorJson("unknown wire format '" + wanted +
                              "' (expected json or binary)")
                        .dump());
            }
            client.wire.store(wire);
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("hello", true);
            ok.set("wire", wanted);
            ok.set("protocol", serviceProtocolVersion);
            return client.write(ok.dump());
        }
        if (op == "run")
            return handleRun(request, client);
        if (op == "sweep")
            return handleSweep(request, client);
        if (op == "compare")
            return handleCompare(request, client);
        if (op == "ping") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("pong", true);
            ok.set("protocol", serviceProtocolVersion);
            ok.set("workers", engine_->workers());
            Json families = Json::array();
            for (const SweepFamilyInfo &family : sweepFamilies())
                families.push(family.name);
            ok.set("sweepFamilies", std::move(families));
            return client.write(ok.dump());
        }
        if (op == "stats") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("workers", engine_->workers());
            Json service = Json::object();
            service.set("activeRequests", activeRequests_.load());
            service.set("completedPoints", completedPoints_.load());
            ok.set("service", std::move(service));
            ok.set("cache", engineStatsToJson(*engine_));
            ok.set("store",
                   store_ ? storeStatsToJson(*store_) : Json());
            return client.write(ok.dump());
        }
        if (op == "status")
            return client.write(statusJson().dump());
        if (op == "metrics") {
            const MetricsSnapshot snap =
                MetricsRegistry::instance().snapshot();
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("metrics", metricsToJson(snap));
            if (request.getBool("prom", false))
                ok.set("prom", renderProm(snap));
            return client.write(ok.dump());
        }
        if (op == "cancel") {
            const uint64_t target = safeRequestId(request);
            if (target == 0) {
                return client.write(
                    errorJson("cancel needs the request id of the "
                              "batch to cancel")
                        .dump());
            }
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("cancelled", cancelBatches(target));
            return client.write(ok.dump());
        }
        if (op == "clear") {
            engine_->clear();
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("cleared", true);
            return client.write(ok.dump());
        }
        if (op == "shutdown") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("stopping", true);
            client.write(ok.dump());
            inform("mtvd: shutdown requested by client");
            stop();
            return false;
        }
        client.write(errorJson("unknown op '" + op + "'").dump());
        return true;
    } catch (const FatalError &e) {
        // Validation failed before a batch was admitted; a request
        // id, when present, routes the error to its sender.
        Json j = errorJson(e.what());
        if (request.has("id"))
            j.set("id", safeRequestId(request));
        return client.write(j.dump());
    }
}

bool
MtvService::acquireSlot(ClientState &client)
{
    // The protocol's backpressure: with every slot streaming, the
    // read loop parks here, stops draining the socket, and the
    // client's sends eventually block.
    std::unique_lock<std::mutex> lock(client.slotMutex);
    client.slotCv.wait(lock, [this, &client] {
        return stopping_.load() || client.writeFailed.load() ||
               client.inflight < maxInflightRequestsPerConnection;
    });
    if (stopping_.load() || client.writeFailed.load())
        return false;
    ++client.inflight;
    return true;
}

bool
MtvService::handleRun(const Json &request, ClientState &client)
{
    const uint64_t admittedUs = monotonicMicros();
    const uint64_t id = safeRequestId(request);
    const std::vector<Json> &specLines =
        request.get("specs").asArray();
    const bool quiet = request.getBool("quiet", false);

    // Validate the whole batch before running any of it: a malformed
    // spec answers with one error and no results.
    std::vector<RunSpec> specs;
    specs.reserve(specLines.size());
    for (const Json &text : specLines)
        specs.push_back(RunSpec::parse(text.asString()));

    if (!acquireSlot(client))
        return false;
    admitBatch(client, id, std::move(specs), quiet, false,
               admittedUs);
    return true;
}

bool
MtvService::handleSweep(const Json &request, ClientState &client)
{
    const uint64_t admittedUs = monotonicMicros();
    const uint64_t id = safeRequestId(request);
    const bool quiet = request.getBool("quiet", false);

    // An unknown family answers with a *structured* error line — the
    // offending name plus the registered families — so fleet routers
    // and scripted clients can match on fields instead of parsing
    // prose. Either way the connection stays open.
    const SweepRequest sweepRequest = sweepRequestFromJson(request);
    bool known = false;
    for (const SweepFamilyInfo &family : sweepFamilies())
        known = known || family.name == sweepRequest.family;
    if (!known) {
        Json err = requestErrorJson(id, "unknown sweep family '" +
                                            sweepRequest.family +
                                            "'");
        err.set("badFamily", sweepRequest.family);
        Json families = Json::array();
        for (const SweepFamilyInfo &family : sweepFamilies())
            families.push(family.name);
        err.set("families", std::move(families));
        return client.write(err.dump());
    }

    // Server-side expansion: the ~100-byte family request becomes the
    // full spec batch here, next to the engine, instead of being
    // serialized by every client.
    SweepBuilder sweep = expandSweep(sweepRequest);

    // "points" selects a subset of the expansion by global index —
    // the fleet scatter path (a router sends each node only the
    // indices it owns; seq then numbers the subset in given order).
    std::vector<RunSpec> specs = sweep.take();
    const size_t total = specs.size();
    if (request.has("points")) {
        const std::vector<Json> &points =
            request.get("points").asArray();
        std::vector<RunSpec> subset;
        subset.reserve(points.size());
        for (const Json &point : points) {
            const uint64_t index = point.asU64();
            if (index >= total) {
                fatal("sweep point index %llu out of range (family "
                      "'%s' expands to %zu points)",
                      static_cast<unsigned long long>(index),
                      sweepRequest.family.c_str(), total);
            }
            subset.push_back(specs[index]);
        }
        specs = std::move(subset);
    }

    Json ack = Json::object();
    ack.set("id", id);
    ack.set("ack", true);
    ack.set("count", static_cast<uint64_t>(specs.size()));
    ack.set("total", static_cast<uint64_t>(total));
    Json slices = Json::array();
    for (const SweepSlice &slice : sweep.slices())
        slices.push(sliceToJson(slice));
    ack.set("slices", std::move(slices));
    if (!client.write(ack.dump()))
        return false;

    if (!acquireSlot(client))
        return false;
    admitBatch(client, id, std::move(specs), quiet, true,
               admittedUs);
    return true;
}

bool
MtvService::handleCompare(const Json &request, ClientState &client)
{
    const uint64_t admittedUs = monotonicMicros();
    const uint64_t id = safeRequestId(request);

    const SweepRequest sweepRequest = sweepRequestFromJson(request);
    bool known = false;
    for (const SweepFamilyInfo &family : sweepFamilies())
        known = known || family.name == sweepRequest.family;
    if (!known) {
        Json err = requestErrorJson(id, "unknown sweep family '" +
                                            sweepRequest.family +
                                            "'");
        err.set("badFamily", sweepRequest.family);
        Json families = Json::array();
        for (const SweepFamilyInfo &family : sweepFamilies())
            families.push(family.name);
        err.set("families", std::move(families));
        return client.write(err.dump());
    }

    SweepBuilder sweep = expandSweep(sweepRequest);

    // Comparability is checked before any simulation: every slice
    // must pair row-wise against slice 0 (the baseline design).
    // Families whose slices are not design-parallel (suite-grouping,
    // groupings) answer a structured error instead of burning a
    // sweep's worth of work first.
    const std::vector<SweepSlice> &slices = sweep.slices();
    bool comparable = slices.size() >= 2;
    for (const SweepSlice &s : slices)
        comparable = comparable && s.count == slices[0].count;
    if (!comparable) {
        Json err = requestErrorJson(
            id, "sweep family '" + sweepRequest.family +
                    "' is not design-parallel and cannot be "
                    "compared");
        err.set("notComparable", sweepRequest.family);
        return client.write(err.dump());
    }

    auto compare = std::make_shared<CompareJob>();
    compare->family = sweepRequest.family;
    compare->baseline = slices[0].label;
    compare->slices = slices;

    if (!acquireSlot(client))
        return false;
    admitBatch(client, id, sweep.take(), /*quiet=*/true,
               /*sweep=*/true, admittedUs, std::move(compare));
    return true;
}

void
MtvService::admitBatch(ClientState &client, uint64_t id,
                       std::vector<RunSpec> specs, bool quiet,
                       bool sweep, uint64_t admittedUs,
                       std::shared_ptr<const CompareJob> compare)
{
    client.reapRetired();
    const uint64_t streamId = client.nextStreamId++;
    auto token = std::make_shared<CancelToken>();
    const uint64_t batchKey = nextBatchKey_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(batchesMutex_);
        batches_.emplace(batchKey,
                         BatchInfo{client.clientId, id, token});
    }
    {
        std::lock_guard<std::mutex> lock(client.tokenMutex);
        // The peer may have vanished between the read and here (a
        // streaming thread's write failed): a batch admitted into a
        // reaped connection is cancelled at birth.
        if (client.reaped)
            token->cancel();
        client.tokens.emplace(streamId, token);
    }
    client.streams.emplace(
        streamId,
        std::thread([this, &client, streamId, id,
                     specs = std::move(specs), quiet, token,
                     batchKey, sweep, admittedUs,
                     compare = std::move(compare)]() mutable {
            streamBatch(client, streamId, id, std::move(specs),
                        quiet, std::move(token), batchKey, sweep,
                        admittedUs, std::move(compare));
        }));
}

void
MtvService::streamBatch(ClientState &client, uint64_t streamId,
                        uint64_t id, std::vector<RunSpec> specs,
                        bool quiet,
                        std::shared_ptr<CancelToken> token,
                        uint64_t batchKey, bool sweep,
                        uint64_t admittedUs,
                        std::shared_ptr<const CompareJob> compare)
{
    activeRequests_.fetch_add(1);
    obsInflightBatches_->add(1);

    // The wire format is sampled once per batch: a hello racing an
    // in-flight stream must not flip the encoding mid-stream (the
    // ack's ordering guarantee is per-request, not per-connection).
    const bool binary =
        client.wire.load() == WireFormat::Binary && !compare;

    // Fan the whole batch out up front — identical points of other
    // in-flight requests coalesce inside the engine — then consume
    // the futures in submission order, writing each line as its
    // result lands. Every task carries the batch's cancel token and
    // rides this connection's lane, so a cancel/reap frees the
    // queued points and other connections are never head-of-line
    // blocked. The progress hook feeds the daemon-wide completion
    // counter the moment a point finishes, seq order or not.
    std::vector<std::future<RunResult>> futures;
    futures.reserve(specs.size());
    for (const RunSpec &spec : specs) {
        futures.push_back(engine_->submit(
            spec,
            [this](const RunResult &) {
                completedPoints_.fetch_add(1);
            },
            token, client.lane));
    }

    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    uint64_t storeServed = 0;
    uint64_t digest = 0xcbf29ce484222325ull;
    bool aborted = false;
    bool cancelled = false;
    size_t completed = 0;
    std::vector<RunResult> collected;
    if (compare)
        collected.reserve(futures.size());
    // Encoded points waiting for one coalesced write. A point is
    // held back only while the NEXT future is already settled (a
    // warm sweep draining the cache), so a trickling stream still
    // flushes every point the moment it lands — same latency, far
    // fewer write() syscalls on the hot path.
    std::string outbox;
    constexpr size_t maxOutboxBytes = 256u * 1024;
    const auto flushOutbox = [&]() {
        if (outbox.empty())
            return true;
        const bool ok = client.writeFrameBytes(outbox);
        outbox.clear();
        return ok;
    };
    for (size_t i = 0; i < futures.size() && !aborted; ++i) {
        RunResult result;
        try {
            result = futures[i].get();
        } catch (const std::future_error &) {
            // Shutdown (discardQueued) or a lane close dropped this
            // queued run; the connection is being torn down anyway.
            aborted = true;
            break;
        } catch (const CancelledError &) {
            // The batch's token fired (a client's cancel op, or the
            // reap of a vanished peer): queued points are being
            // skipped, so stop consuming and answer with a
            // cancelled terminator.
            cancelled = true;
            break;
        } catch (const SimError &e) {
            // A wedged simulation is a model bug worth reporting in
            // full, but never worth the daemon's life.
            warn("mtvd: %s", e.what());
            flushOutbox();
            client.write(simErrorJson(id, e).dump());
            aborted = true;
            break;
        } catch (const FatalError &e) {
            flushOutbox();
            client.write(requestErrorJson(id, e.what()).dump());
            aborted = true;
            break;
        }
        if (result.cached)
            ++cacheServed;
        else if (result.fromStore)
            ++storeServed;
        else
            ++simulated;
        ++completed;
        // Folded server-side so even quiet requests get the
        // bit-identity digest; the same bytes feed the result's
        // blob, serialized once — or not at all on the zero-copy
        // path, where a store hit carries the exact bytes read off
        // disk (segments store verbatim serializeSimStats output).
        std::string localBlob;
        const std::string *blob = result.blob.get();
        if (!blob) {
            localBlob = serializeSimStats(result.stats);
            blob = &localBlob;
        }
        digest = fnv1a64(blob->data(), blob->size(), digest);
        if (compare) {
            // Compare mode: the points stay server-side; the one
            // aggregated line after the loop is the whole answer.
            collected.push_back(std::move(result));
            continue;
        }
        if (binary) {
            const uint64_t encodeStartUs = monotonicMicros();
            appendResultFrame(&outbox, result, id, i,
                              quiet ? nullptr : blob);
            obsEncodeUs_[sweep][1]->observe(monotonicMicros() -
                                            encodeStartUs);
        } else {
            const uint64_t encodeStartUs = monotonicMicros();
            outbox += resultToJson(result, id, i, !quiet, blob).dump();
            outbox.push_back('\n');
            obsEncodeUs_[sweep][0]->observe(monotonicMicros() -
                                            encodeStartUs);
        }
        const bool nextReady =
            i + 1 < futures.size() &&
            futures[i + 1].wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready;
        if ((!nextReady || outbox.size() >= maxOutboxBytes) &&
            !flushOutbox()) {
            aborted = true;  // client gone; queued work was reaped
            break;
        }
        // Request→first-point latency: the moment the client could
        // first see a result of this batch.
        if (i == 0) {
            obsFirstPointUs_[sweep]->observe(
                monotonicMicros() - admittedUs);
        }
    }

    // Points the loop held back for coalescing go out before any
    // terminator below.
    if (!aborted && !flushOutbox())
        aborted = true;

    // Unregistered before the terminator goes out: a client that has
    // read "done" must not observe its own request as still active
    // or cancellable.
    {
        std::lock_guard<std::mutex> lock(batchesMutex_);
        batches_.erase(batchKey);
    }
    {
        std::lock_guard<std::mutex> lock(client.tokenMutex);
        client.tokens.erase(streamId);
    }
    activeRequests_.fetch_sub(1);

    if (cancelled) {
        // Deliberately partial: report how far the stream got and no
        // digest. The remaining queued points resolve as cancelled
        // inside the engine without simulating.
        Json done = Json::object();
        done.set("id", id);
        done.set("done", true);
        done.set("cancelled", true);
        done.set("count", static_cast<uint64_t>(futures.size()));
        done.set("completed", static_cast<uint64_t>(completed));
        client.write(done.dump());
    } else if (!aborted && compare) {
        // The compare answer: one aggregated line, the digest folded
        // over the same blobs the equivalent sweep would stream.
        try {
            ScopedFatalAsException fatalScope;
            Json ok = Json::object();
            ok.set("id", id);
            ok.set("ok", true);
            ok.set("compare", true);
            ok.set("family", compare->family);
            ok.set("count", static_cast<uint64_t>(futures.size()));
            ok.set("baseline", compare->baseline);
            ok.set("simulated", simulated);
            ok.set("cacheServed", cacheServed);
            ok.set("storeServed", storeServed);
            ok.set("digest",
                   format("%016llx",
                          static_cast<unsigned long long>(digest)));
            Json rows = Json::array();
            for (const CompareRow &row :
                 compareDesigns(compare->slices, collected))
                rows.push(compareRowToJson(row));
            ok.set("rows", std::move(rows));
            if (client.write(ok.dump())) {
                obsDoneUs_[sweep]->observe(monotonicMicros() -
                                           admittedUs);
            }
        } catch (const FatalError &e) {
            client.write(requestErrorJson(id, e.what()).dump());
        }
    } else if (!aborted) {
        Json done = Json::object();
        done.set("id", id);
        done.set("done", true);
        done.set("count", static_cast<uint64_t>(futures.size()));
        done.set("simulated", simulated);
        done.set("cacheServed", cacheServed);
        done.set("storeServed", storeServed);
        done.set("digest", format("%016llx",
                                  static_cast<unsigned long long>(
                                      digest)));
        if (client.write(done.dump())) {
            // Request→done latency, clean completions only: aborted
            // and cancelled streams are deliberately partial and
            // would pollute the series with early exits.
            obsDoneUs_[sweep]->observe(monotonicMicros() -
                                       admittedUs);
        }
    }
    obsInflightBatches_->add(-1);

    {
        std::lock_guard<std::mutex> lock(client.slotMutex);
        --client.inflight;
        client.retired.push_back(streamId);
    }
    client.slotCv.notify_all();
}

} // namespace mtv
