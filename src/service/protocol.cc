#include "src/service/protocol.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/common/endian.hh"
#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{

namespace
{

/** A line longer than this is not a protocol message; the same
 *  bound caps a binary frame's length prefix. */
constexpr size_t maxLineBytes = 64u * 1024 * 1024;

/** Bytes before a frame's payload: marker + u32 length prefix. */
constexpr size_t frameHeaderBytes = 1 + 4;

/** Bytes after a frame's payload: the u64 frameChecksum(). */
constexpr size_t frameTrailerBytes = 8;

/** ResultFrame flag bits (payload byte 16). */
constexpr uint8_t frameFlagCached = 1u << 0;
constexpr uint8_t frameFlagFromStore = 1u << 1;
constexpr uint8_t frameFlagGroupExtras = 1u << 2;
constexpr uint8_t frameFlagHasBlob = 1u << 3;

void
appendFrameU32(std::string *out, uint32_t v)
{
    uint8_t raw[4];
    writeLe32(raw, v);
    out->append(reinterpret_cast<const char *>(raw), sizeof(raw));
}

void
appendFrameU64(std::string *out, uint64_t v)
{
    uint8_t raw[8];
    writeLe64(raw, v);
    out->append(reinterpret_cast<const char *>(raw), sizeof(raw));
}

} // namespace

uint64_t
frameChecksum(const void *data, size_t size)
{
    // FNV-1a over little-endian u64 words (see the declaration for
    // why word-wise): one multiply per 8 bytes instead of one per
    // byte. The trailing 0-7 bytes are zero-padded into a final
    // word, and the length is mixed last so "abc" + zero padding
    // and "abc\0" + shorter padding cannot collide.
    const uint8_t *bytes = static_cast<const uint8_t *>(data);
    uint64_t h = 0xcbf29ce484222325ull;
    constexpr uint64_t prime = 0x100000001b3ull;
    size_t i = 0;
    for (; i + 8 <= size; i += 8)
        h = (h ^ readLe64(bytes + i)) * prime;
    if (i < size) {
        uint64_t tail = 0;
        for (size_t j = 0; i + j < size; ++j)
            tail |= static_cast<uint64_t>(bytes[i + j]) << (8 * j);
        h = (h ^ tail) * prime;
    }
    return (h ^ static_cast<uint64_t>(size)) * prime;
}

namespace
{

uint64_t
doubleBits(double v)
{
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
bitsDouble(uint64_t bits)
{
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

/** Bounds-checked cursor over a frame payload; unlike the stats
 *  codec's BlobReader a truncated payload is a recoverable protocol
 *  error (the peer sent garbage), not a fatal(). */
struct FrameReader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    bool need(size_t n)
    {
        if (!ok || size - pos < n) {
            ok = false;
            return false;
        }
        return true;
    }

    uint64_t u64()
    {
        if (!need(8))
            return 0;
        const uint64_t v = readLe64(data + pos);
        pos += 8;
        return v;
    }

    uint32_t u32()
    {
        if (!need(4))
            return 0;
        const uint32_t v = readLe32(data + pos);
        pos += 4;
        return v;
    }

    uint8_t u8()
    {
        if (!need(1))
            return 0;
        return data[pos++];
    }

    std::string bytes(size_t n)
    {
        if (!need(n))
            return std::string();
        std::string v(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return v;
    }
};

} // namespace

const char *
defaultSocketPath()
{
    if (const char *env = std::getenv("MTV_SOCKET"))
        return env;
    return "/tmp/mtvd.sock";
}

Endpoint
Endpoint::unixSocket(std::string socketPath)
{
    Endpoint e;
    e.kind = Kind::Unix;
    e.path = std::move(socketPath);
    return e;
}

Endpoint
Endpoint::tcp(std::string host, int port)
{
    Endpoint e;
    e.kind = Kind::Tcp;
    e.host = std::move(host);
    e.port = port;
    return e;
}

std::string
Endpoint::describe() const
{
    if (kind == Kind::Unix)
        return path;
    return format("%s:%d", host.c_str(), port);
}

std::string
Endpoint::startHint() const
{
    if (kind == Kind::Unix)
        return "mtvd --socket " + path;
    return "mtvd --tcp " + describe();
}

Endpoint
parseEndpoint(const std::string &text)
{
    if (text.find(':') == std::string::npos)
        return Endpoint::unixSocket(text);
    const HostPort hp = parseHostPort(text.c_str(), "endpoint");
    return Endpoint::tcp(hp.host, hp.port);
}

Json
resultToJson(const RunResult &result, uint64_t id, size_t seq,
             bool includeBlob, const std::string *serialized)
{
    Json line = Json::object();
    line.set("id", id);
    line.set("seq", static_cast<uint64_t>(seq));
    line.set("spec", result.specCanonical.empty()
                         ? result.spec.canonical()
                         : result.specCanonical);
    line.set("cached", result.cached);
    line.set("store", result.fromStore);
    // Headline numbers for human consumption; the blob is the source
    // of truth (JSON doubles cannot carry full 64-bit counters).
    line.set("cycles", result.stats.cycles);
    line.set("dispatches", result.stats.dispatches);
    if (result.spec.mode == SpecMode::Group) {
        line.set("speedup", result.speedup);
        line.set("mthOccupation", result.mthOccupation);
        line.set("refOccupation", result.refOccupation);
        line.set("mthVopc", result.mthVopc);
        line.set("refVopc", result.refVopc);
    }
    if (includeBlob) {
        line.set("blob",
                 hexEncode(serialized
                               ? *serialized
                               : serializeSimStats(result.stats)));
    }
    return line;
}

RunResult
resultFromJson(const Json &line, std::string *blob)
{
    RunResult result;
    result.specCanonical = line.getString("spec");
    result.spec = RunSpec::parse(result.specCanonical);
    result.cached = line.getBool("cached");
    result.fromStore = line.getBool("store");
    result.stats.cycles = line.get("cycles").asU64();
    result.stats.dispatches = line.get("dispatches").asU64();
    result.speedup = line.getNumber("speedup");
    result.mthOccupation = line.getNumber("mthOccupation");
    result.refOccupation = line.getNumber("refOccupation");
    result.mthVopc = line.getNumber("mthVopc");
    result.refVopc = line.getNumber("refVopc");
    if (line.has("blob")) {
        const std::string bytes = hexDecode(line.getString("blob"));
        result.stats = deserializeSimStats(bytes);
        if (blob)
            *blob = bytes;
    }
    return result;
}

std::string
encodeResultFrame(const ResultFrame &frame)
{
    std::string payload;
    payload.reserve(8 + 8 + 1 + 4 + frame.spec.size() +
                    (frame.hasGroupExtras ? 40 : 0) + 4 +
                    frame.blob.size());
    appendFrameU64(&payload, frame.id);
    appendFrameU64(&payload, frame.seq);
    uint8_t flags = 0;
    if (frame.cached)
        flags |= frameFlagCached;
    if (frame.fromStore)
        flags |= frameFlagFromStore;
    if (frame.hasGroupExtras)
        flags |= frameFlagGroupExtras;
    if (frame.hasBlob)
        flags |= frameFlagHasBlob;
    payload.push_back(static_cast<char>(flags));
    appendFrameU32(&payload,
                   static_cast<uint32_t>(frame.spec.size()));
    payload.append(frame.spec);
    if (frame.hasGroupExtras) {
        appendFrameU64(&payload, doubleBits(frame.speedup));
        appendFrameU64(&payload, doubleBits(frame.mthOccupation));
        appendFrameU64(&payload, doubleBits(frame.refOccupation));
        appendFrameU64(&payload, doubleBits(frame.mthVopc));
        appendFrameU64(&payload, doubleBits(frame.refVopc));
    }
    appendFrameU32(&payload,
                   static_cast<uint32_t>(frame.blob.size()));
    payload.append(frame.blob);

    std::string wire;
    wire.reserve(frameHeaderBytes + payload.size() +
                 frameTrailerBytes);
    wire.push_back(static_cast<char>(resultFrameMarker));
    appendFrameU32(&wire, static_cast<uint32_t>(payload.size()));
    wire.append(payload);
    appendFrameU64(&wire,
                   frameChecksum(payload.data(), payload.size()));
    return wire;
}

void
appendResultFrame(std::string *out, const RunResult &result,
                  uint64_t id, uint64_t seq, const std::string *blob)
{
    std::string computed;
    if (result.specCanonical.empty())
        computed = result.spec.canonical();
    const std::string &spec =
        computed.empty() ? result.specCanonical : computed;
    const bool groupExtras = result.spec.mode == SpecMode::Group;
    const size_t blobLen = blob ? blob->size() : 0;
    const size_t payloadLen = 8 + 8 + 1 + 4 + spec.size() +
                              (groupExtras ? 40 : 0) + 4 + blobLen;
    out->reserve(out->size() + frameHeaderBytes + payloadLen +
                 frameTrailerBytes);
    out->push_back(static_cast<char>(resultFrameMarker));
    appendFrameU32(out, static_cast<uint32_t>(payloadLen));
    const size_t payloadStart = out->size();
    appendFrameU64(out, id);
    appendFrameU64(out, seq);
    uint8_t flags = 0;
    if (result.cached)
        flags |= frameFlagCached;
    if (result.fromStore)
        flags |= frameFlagFromStore;
    if (groupExtras)
        flags |= frameFlagGroupExtras;
    if (blob)
        flags |= frameFlagHasBlob;
    out->push_back(static_cast<char>(flags));
    appendFrameU32(out, static_cast<uint32_t>(spec.size()));
    out->append(spec);
    if (groupExtras) {
        appendFrameU64(out, doubleBits(result.speedup));
        appendFrameU64(out, doubleBits(result.mthOccupation));
        appendFrameU64(out, doubleBits(result.refOccupation));
        appendFrameU64(out, doubleBits(result.mthVopc));
        appendFrameU64(out, doubleBits(result.refVopc));
    }
    appendFrameU32(out, static_cast<uint32_t>(blobLen));
    if (blob)
        out->append(*blob);
    appendFrameU64(out, frameChecksum(out->data() + payloadStart,
                                      out->size() - payloadStart));
}

bool
decodeResultFrame(const std::string &payload, ResultFrame *out,
                  std::string *error)
{
    FrameReader r{
        reinterpret_cast<const uint8_t *>(payload.data()),
        payload.size()};
    ResultFrame frame;
    frame.id = r.u64();
    frame.seq = r.u64();
    const uint8_t flags = r.u8();
    frame.cached = (flags & frameFlagCached) != 0;
    frame.fromStore = (flags & frameFlagFromStore) != 0;
    frame.hasGroupExtras = (flags & frameFlagGroupExtras) != 0;
    frame.hasBlob = (flags & frameFlagHasBlob) != 0;
    frame.spec = r.bytes(r.u32());
    if (frame.hasGroupExtras) {
        frame.speedup = bitsDouble(r.u64());
        frame.mthOccupation = bitsDouble(r.u64());
        frame.refOccupation = bitsDouble(r.u64());
        frame.mthVopc = bitsDouble(r.u64());
        frame.refVopc = bitsDouble(r.u64());
    }
    frame.blob = r.bytes(r.u32());
    if (!r.ok || r.pos != r.size) {
        if (error) {
            *error = r.ok ? format("frame payload carries %zu "
                                   "trailing bytes",
                                   r.size - r.pos)
                          : "truncated frame payload";
        }
        return false;
    }
    if (frame.hasBlob == frame.blob.empty()) {
        if (error)
            *error = "frame blob contradicts its hasBlob flag";
        return false;
    }
    *out = std::move(frame);
    return true;
}

ResultFrame
resultToFrame(const RunResult &result, uint64_t id, uint64_t seq,
              const std::string *blob)
{
    ResultFrame frame;
    frame.id = id;
    frame.seq = seq;
    frame.cached = result.cached;
    frame.fromStore = result.fromStore;
    frame.spec = result.specCanonical.empty()
                     ? result.spec.canonical()
                     : result.specCanonical;
    if (result.spec.mode == SpecMode::Group) {
        frame.hasGroupExtras = true;
        frame.speedup = result.speedup;
        frame.mthOccupation = result.mthOccupation;
        frame.refOccupation = result.refOccupation;
        frame.mthVopc = result.mthVopc;
        frame.refVopc = result.refVopc;
    }
    if (blob) {
        frame.hasBlob = true;
        frame.blob = *blob;
    }
    return frame;
}

RunResult
resultFromFrame(const ResultFrame &frame)
{
    RunResult result;
    result.spec = RunSpec::parse(frame.spec);
    // Keep the wire string: re-encoders (the fleet's ordered emitter)
    // forward it verbatim instead of recanonicalizing the spec.
    result.specCanonical = frame.spec;
    result.cached = frame.cached;
    result.fromStore = frame.fromStore;
    if (frame.hasGroupExtras) {
        result.speedup = frame.speedup;
        result.mthOccupation = frame.mthOccupation;
        result.refOccupation = frame.refOccupation;
        result.mthVopc = frame.mthVopc;
        result.refVopc = frame.refVopc;
    }
    if (frame.hasBlob)
        result.stats = deserializeSimStats(frame.blob);
    return result;
}

Json
sweepRequestToJson(const SweepRequest &request)
{
    Json j = Json::object();
    j.set("family", request.family);
    j.set("scale", request.scale);
    if (!request.program.empty())
        j.set("program", request.program);
    if (request.contexts != 0)
        j.set("contexts", request.contexts);
    if (!request.jobs.empty()) {
        Json jobs = Json::array();
        for (const auto &job : request.jobs)
            jobs.push(job);
        j.set("jobs", std::move(jobs));
    }
    if (!request.latencies.empty()) {
        Json lats = Json::array();
        for (const int lat : request.latencies)
            lats.push(lat);
        j.set("latencies", std::move(lats));
    }
    return j;
}

SweepRequest
sweepRequestFromJson(const Json &request)
{
    SweepRequest out;
    out.family = request.getString("family");
    if (out.family.empty())
        fatal("sweep request names no family");
    out.scale = request.getNumber("scale", workloadDefaultScale);
    out.program = request.getString("program");
    out.contexts =
        static_cast<int>(request.getNumber("contexts", 0));
    if (request.has("jobs")) {
        for (const Json &job : request.get("jobs").asArray())
            out.jobs.push_back(job.asString());
    }
    if (request.has("latencies")) {
        for (const Json &lat : request.get("latencies").asArray())
            out.latencies.push_back(
                static_cast<int>(lat.asNumber()));
    }
    return out;
}

Json
sliceToJson(const SweepSlice &slice)
{
    Json j = Json::object();
    j.set("label", slice.label);
    j.set("contexts", slice.contexts);
    j.set("first", static_cast<uint64_t>(slice.first));
    j.set("count", static_cast<uint64_t>(slice.count));
    return j;
}

SweepSlice
sliceFromJson(const Json &json)
{
    SweepSlice slice;
    slice.label = json.getString("label");
    slice.contexts = static_cast<int>(json.getNumber("contexts"));
    slice.first = json.get("first").asU64();
    slice.count = json.get("count").asU64();
    return slice;
}

Json
compareRowToJson(const CompareRow &row)
{
    Json j = Json::object();
    j.set("design", row.design);
    j.set("contexts", row.contexts);
    j.set("ports", row.ports);
    j.set("latency", row.memLatency);
    j.set("cycles", row.cycles);
    j.set("speedup", row.speedup);
    j.set("occupation", row.occupation);
    j.set("vopc", row.vopc);
    return j;
}

CompareRow
compareRowFromJson(const Json &json)
{
    CompareRow row;
    row.design = json.getString("design");
    if (row.design.empty())
        fatal("compare row names no design");
    row.contexts = static_cast<int>(json.getNumber("contexts"));
    row.ports = static_cast<int>(json.getNumber("ports"));
    row.memLatency = static_cast<int>(json.getNumber("latency"));
    row.cycles = json.get("cycles").asU64();
    row.speedup = json.getNumber("speedup");
    row.occupation = json.getNumber("occupation");
    row.vopc = json.getNumber("vopc");
    return row;
}

Json
engineStatsToJson(const ExperimentEngine &engine)
{
    Json j = Json::object();
    j.set("size", static_cast<uint64_t>(engine.cacheSize()));
    j.set("capacity", static_cast<uint64_t>(engine.maxCacheEntries()));
    j.set("hits", engine.cacheHits());
    j.set("misses", engine.cacheMisses());
    j.set("storeHits", engine.storeHits());
    j.set("evictions", engine.cacheEvictions());
    j.set("uncached", engine.uncachedRuns());
    j.set("queueDepth", static_cast<uint64_t>(engine.queueDepth()));
    j.set("cancelled", engine.cancelledRuns());
    j.set("discarded", engine.discardedTasks());
    return j;
}

Json
storeStatsToJson(const ResultStore &store)
{
    const ResultStore::Stats s = store.stats();
    Json j = Json::object();
    j.set("directory", store.directory());
    j.set("records", static_cast<uint64_t>(store.size()));
    j.set("shards", static_cast<uint64_t>(s.shards));
    j.set("segments", static_cast<uint64_t>(s.segments));
    j.set("staleSegments", static_cast<uint64_t>(s.staleSegments));
    j.set("badSegments", static_cast<uint64_t>(s.badSegments));
    j.set("loadedRecords", s.loadedRecords);
    j.set("droppedRecords", s.droppedRecords);
    j.set("migratedRecords", s.migratedRecords);
    j.set("appends", s.appends);
    j.set("hits", s.hits);
    j.set("misses", s.misses);
    return j;
}

Json
metricsToJson(const MetricsSnapshot &snapshot)
{
    Json counters = Json::object();
    for (const auto &kv : snapshot.counters)
        counters.set(kv.first, kv.second);
    Json gauges = Json::object();
    for (const auto &kv : snapshot.gauges)
        gauges.set(kv.first, static_cast<double>(kv.second));
    Json histograms = Json::object();
    for (const HistogramSnapshot &h : snapshot.histograms) {
        Json hist = Json::object();
        hist.set("count", h.count);
        hist.set("sum", h.sum);
        hist.set("p50", h.quantile(0.50));
        hist.set("p95", h.quantile(0.95));
        hist.set("p99", h.quantile(0.99));
        Json bounds = Json::array();
        for (const uint64_t b : h.bounds)
            bounds.push(b);
        hist.set("bounds", std::move(bounds));
        Json counts = Json::array();
        for (const uint64_t c : h.counts)
            counts.push(c);
        hist.set("counts", std::move(counts));
        histograms.set(h.name, std::move(hist));
    }
    Json j = Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

LineChannel::LineChannel(int fd) : fd_(fd) {}

LineChannel::~LineChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
LineChannel::fillMore()
{
    char chunk[65536];
    for (;;) {
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            return false;  // EOF or error
        buffer_.append(chunk, static_cast<size_t>(got));
        bytesRead_ += static_cast<uint64_t>(got);
        return true;
    }
}

void
LineChannel::consume(size_t n)
{
    head_ += n;
    if (head_ == buffer_.size()) {
        buffer_.clear();
        head_ = 0;
    } else if (head_ >= 4u * 1024 * 1024) {
        // Bound memory when the peer outruns the parser for a long
        // stretch: reclaim the parsed prefix in one move.
        buffer_.erase(0, head_);
        head_ = 0;
    }
    searchPos_ = head_;
}

bool
LineChannel::readLine(std::string *line)
{
    for (;;) {
        // Scan only bytes not examined on previous iterations, so a
        // line arriving in many chunks costs linear, not quadratic,
        // work.
        const size_t newline = buffer_.find('\n', searchPos_);
        if (newline != std::string::npos) {
            line->assign(buffer_, head_, newline - head_);
            consume(newline + 1 - head_);
            return true;
        }
        searchPos_ = buffer_.size();
        if (buffer_.size() - head_ > maxLineBytes) {
            warn("service: dropping connection with a %zu-byte "
                 "unterminated line",
                 buffer_.size() - head_);
            return false;
        }
        if (!fillMore())
            return false;
    }
}

LineChannel::MessageKind
LineChannel::readMessage(std::string *out)
{
    while (head_ == buffer_.size()) {
        if (!fillMore())
            return MessageKind::Eof;
    }
    if (static_cast<uint8_t>(buffer_[head_]) != resultFrameMarker) {
        return readLine(out) ? MessageKind::Line : MessageKind::Eof;
    }
    // A frame. EOF from here on is a SHORT READ — the peer vanished
    // (or lied) mid-frame — which is a framing error, not a clean
    // close.
    while (buffer_.size() - head_ < frameHeaderBytes) {
        if (!fillMore())
            return MessageKind::BadFrame;
    }
    const uint32_t payloadLen = readLe32(
        reinterpret_cast<const uint8_t *>(buffer_.data()) + head_ +
        1);
    if (payloadLen > maxLineBytes) {
        warn("service: frame claims a %u-byte payload; framing lost",
             payloadLen);
        return MessageKind::BadFrame;
    }
    const size_t total =
        frameHeaderBytes + payloadLen + frameTrailerBytes;
    while (buffer_.size() - head_ < total) {
        if (!fillMore())
            return MessageKind::BadFrame;
    }
    const char *payload = buffer_.data() + head_ + frameHeaderBytes;
    const uint64_t want = readLe64(
        reinterpret_cast<const uint8_t *>(payload) + payloadLen);
    if (frameChecksum(payload, payloadLen) != want) {
        warn("service: frame checksum mismatch; framing lost");
        return MessageKind::BadFrame;
    }
    out->assign(payload, payloadLen);
    consume(total);
    return MessageKind::Frame;
}

bool
LineChannel::writeBytes(const std::string &bytes)
{
    size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd_, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
        bytesWritten_ += static_cast<uint64_t>(n);
    }
    return true;
}

bool
LineChannel::writeLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    return writeBytes(framed);
}

namespace
{

/** getaddrinfo over the endpoint's host/port, SOCK_STREAM. Returns
 *  null (with @p error set) on resolution failure. */
addrinfo *
resolveTcp(const Endpoint &endpoint, bool passive, std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (passive)
        hints.ai_flags = AI_PASSIVE;
    const std::string port = std::to_string(endpoint.port);
    addrinfo *info = nullptr;
    const int rc = ::getaddrinfo(endpoint.host.c_str(), port.c_str(),
                                 &hints, &info);
    if (rc != 0) {
        if (error) {
            *error = endpoint.describe() + ": " + ::gai_strerror(rc);
        }
        return nullptr;
    }
    return info;
}

/** Disable Nagle on a connected/accepted TCP socket: the protocol
 *  exchanges small request lines and a 40ms coalescing delay per
 *  round trip would dominate every ping/ack. */
void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int
connectTcp(const Endpoint &endpoint, std::string *error)
{
    addrinfo *info = resolveTcp(endpoint, /*passive=*/false, error);
    if (!info)
        return -1;
    int fd = -1;
    int lastErrno = ECONNREFUSED;
    for (addrinfo *ai = info; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0) {
            lastErrno = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        lastErrno = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
        if (error) {
            *error = endpoint.describe() + ": " +
                     std::strerror(lastErrno) +
                     " (is mtvd running?)";
        }
        return -1;
    }
    setNoDelay(fd);
    return fd;
}

} // namespace

int
connectToDaemon(const std::string &socketPath, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + socketPath;
        return -1;
    }
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error) {
            *error = socketPath + ": " + std::strerror(errno) +
                     " (is mtvd running?)";
        }
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectToEndpoint(const Endpoint &endpoint, std::string *error)
{
    if (endpoint.kind == Endpoint::Kind::Unix)
        return connectToDaemon(endpoint.path, error);
    return connectTcp(endpoint, error);
}

int
listenOnEndpoint(const Endpoint &endpoint, Endpoint *bound,
                 int backlog)
{
    if (bound)
        *bound = endpoint;

    if (endpoint.kind == Endpoint::Kind::Unix) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (endpoint.path.size() >= sizeof(addr.sun_path)) {
            fatal("socket path too long (%zu bytes): %s",
                  endpoint.path.size(), endpoint.path.c_str());
        }
        std::strncpy(addr.sun_path, endpoint.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            fatal("cannot create server socket: %s",
                  std::strerror(errno));
        }
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fatal("cannot bind '%s': %s", endpoint.path.c_str(),
                  std::strerror(errno));
        }
        if (::listen(fd, backlog) != 0) {
            fatal("cannot listen on '%s': %s", endpoint.path.c_str(),
                  std::strerror(errno));
        }
        return fd;
    }

    std::string error;
    addrinfo *info = resolveTcp(endpoint, /*passive=*/true, &error);
    if (!info)
        fatal("cannot resolve %s", error.c_str());
    int fd = -1;
    std::string lastError = "no usable address";
    for (addrinfo *ai = info; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0) {
            lastError = std::strerror(errno);
            continue;
        }
        // Restarting a node must not wait out TIME_WAIT of its own
        // previous life (the fleet failover scenario restarts nodes
        // on their old ports).
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, backlog) == 0) {
            break;
        }
        lastError = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
        fatal("cannot listen on %s: %s", endpoint.describe().c_str(),
              lastError.c_str());
    }
    if (bound) {
        // Report the kernel-chosen port of an ephemeral (port 0)
        // bind, so tests and smoke scripts get collision-free ports.
        sockaddr_storage addr{};
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0) {
            if (addr.ss_family == AF_INET) {
                bound->port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&addr)->sin_port);
            } else if (addr.ss_family == AF_INET6) {
                bound->port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&addr)
                        ->sin6_port);
            }
        }
    }
    return fd;
}

} // namespace mtv
