#include "src/service/protocol.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{

namespace
{

/** A line longer than this is not a protocol message. */
constexpr size_t maxLineBytes = 64u * 1024 * 1024;

} // namespace

const char *
defaultSocketPath()
{
    if (const char *env = std::getenv("MTV_SOCKET"))
        return env;
    return "/tmp/mtvd.sock";
}

Endpoint
Endpoint::unixSocket(std::string socketPath)
{
    Endpoint e;
    e.kind = Kind::Unix;
    e.path = std::move(socketPath);
    return e;
}

Endpoint
Endpoint::tcp(std::string host, int port)
{
    Endpoint e;
    e.kind = Kind::Tcp;
    e.host = std::move(host);
    e.port = port;
    return e;
}

std::string
Endpoint::describe() const
{
    if (kind == Kind::Unix)
        return path;
    return format("%s:%d", host.c_str(), port);
}

std::string
Endpoint::startHint() const
{
    if (kind == Kind::Unix)
        return "mtvd --socket " + path;
    return "mtvd --tcp " + describe();
}

Endpoint
parseEndpoint(const std::string &text)
{
    if (text.find(':') == std::string::npos)
        return Endpoint::unixSocket(text);
    const HostPort hp = parseHostPort(text.c_str(), "endpoint");
    return Endpoint::tcp(hp.host, hp.port);
}

Json
resultToJson(const RunResult &result, uint64_t id, size_t seq,
             bool includeBlob, const std::string *serialized)
{
    Json line = Json::object();
    line.set("id", id);
    line.set("seq", static_cast<uint64_t>(seq));
    line.set("spec", result.spec.canonical());
    line.set("cached", result.cached);
    line.set("store", result.fromStore);
    // Headline numbers for human consumption; the blob is the source
    // of truth (JSON doubles cannot carry full 64-bit counters).
    line.set("cycles", result.stats.cycles);
    line.set("dispatches", result.stats.dispatches);
    if (result.spec.mode == SpecMode::Group) {
        line.set("speedup", result.speedup);
        line.set("mthOccupation", result.mthOccupation);
        line.set("refOccupation", result.refOccupation);
        line.set("mthVopc", result.mthVopc);
        line.set("refVopc", result.refVopc);
    }
    if (includeBlob) {
        line.set("blob",
                 hexEncode(serialized
                               ? *serialized
                               : serializeSimStats(result.stats)));
    }
    return line;
}

RunResult
resultFromJson(const Json &line, std::string *blob)
{
    RunResult result;
    result.spec = RunSpec::parse(line.getString("spec"));
    result.cached = line.getBool("cached");
    result.fromStore = line.getBool("store");
    result.stats.cycles = line.get("cycles").asU64();
    result.stats.dispatches = line.get("dispatches").asU64();
    result.speedup = line.getNumber("speedup");
    result.mthOccupation = line.getNumber("mthOccupation");
    result.refOccupation = line.getNumber("refOccupation");
    result.mthVopc = line.getNumber("mthVopc");
    result.refVopc = line.getNumber("refVopc");
    if (line.has("blob")) {
        const std::string bytes = hexDecode(line.getString("blob"));
        result.stats = deserializeSimStats(bytes);
        if (blob)
            *blob = bytes;
    }
    return result;
}

Json
sweepRequestToJson(const SweepRequest &request)
{
    Json j = Json::object();
    j.set("family", request.family);
    j.set("scale", request.scale);
    if (!request.program.empty())
        j.set("program", request.program);
    if (request.contexts != 0)
        j.set("contexts", request.contexts);
    if (!request.jobs.empty()) {
        Json jobs = Json::array();
        for (const auto &job : request.jobs)
            jobs.push(job);
        j.set("jobs", std::move(jobs));
    }
    if (!request.latencies.empty()) {
        Json lats = Json::array();
        for (const int lat : request.latencies)
            lats.push(lat);
        j.set("latencies", std::move(lats));
    }
    return j;
}

SweepRequest
sweepRequestFromJson(const Json &request)
{
    SweepRequest out;
    out.family = request.getString("family");
    if (out.family.empty())
        fatal("sweep request names no family");
    out.scale = request.getNumber("scale", workloadDefaultScale);
    out.program = request.getString("program");
    out.contexts =
        static_cast<int>(request.getNumber("contexts", 0));
    if (request.has("jobs")) {
        for (const Json &job : request.get("jobs").asArray())
            out.jobs.push_back(job.asString());
    }
    if (request.has("latencies")) {
        for (const Json &lat : request.get("latencies").asArray())
            out.latencies.push_back(
                static_cast<int>(lat.asNumber()));
    }
    return out;
}

Json
sliceToJson(const SweepSlice &slice)
{
    Json j = Json::object();
    j.set("label", slice.label);
    j.set("contexts", slice.contexts);
    j.set("first", static_cast<uint64_t>(slice.first));
    j.set("count", static_cast<uint64_t>(slice.count));
    return j;
}

SweepSlice
sliceFromJson(const Json &json)
{
    SweepSlice slice;
    slice.label = json.getString("label");
    slice.contexts = static_cast<int>(json.getNumber("contexts"));
    slice.first = json.get("first").asU64();
    slice.count = json.get("count").asU64();
    return slice;
}

Json
compareRowToJson(const CompareRow &row)
{
    Json j = Json::object();
    j.set("design", row.design);
    j.set("contexts", row.contexts);
    j.set("ports", row.ports);
    j.set("latency", row.memLatency);
    j.set("cycles", row.cycles);
    j.set("speedup", row.speedup);
    j.set("occupation", row.occupation);
    j.set("vopc", row.vopc);
    return j;
}

CompareRow
compareRowFromJson(const Json &json)
{
    CompareRow row;
    row.design = json.getString("design");
    if (row.design.empty())
        fatal("compare row names no design");
    row.contexts = static_cast<int>(json.getNumber("contexts"));
    row.ports = static_cast<int>(json.getNumber("ports"));
    row.memLatency = static_cast<int>(json.getNumber("latency"));
    row.cycles = json.get("cycles").asU64();
    row.speedup = json.getNumber("speedup");
    row.occupation = json.getNumber("occupation");
    row.vopc = json.getNumber("vopc");
    return row;
}

Json
engineStatsToJson(const ExperimentEngine &engine)
{
    Json j = Json::object();
    j.set("size", static_cast<uint64_t>(engine.cacheSize()));
    j.set("capacity", static_cast<uint64_t>(engine.maxCacheEntries()));
    j.set("hits", engine.cacheHits());
    j.set("misses", engine.cacheMisses());
    j.set("storeHits", engine.storeHits());
    j.set("evictions", engine.cacheEvictions());
    j.set("uncached", engine.uncachedRuns());
    j.set("queueDepth", static_cast<uint64_t>(engine.queueDepth()));
    j.set("cancelled", engine.cancelledRuns());
    j.set("discarded", engine.discardedTasks());
    return j;
}

Json
storeStatsToJson(const ResultStore &store)
{
    const ResultStore::Stats s = store.stats();
    Json j = Json::object();
    j.set("directory", store.directory());
    j.set("records", static_cast<uint64_t>(store.size()));
    j.set("shards", static_cast<uint64_t>(s.shards));
    j.set("segments", static_cast<uint64_t>(s.segments));
    j.set("staleSegments", static_cast<uint64_t>(s.staleSegments));
    j.set("badSegments", static_cast<uint64_t>(s.badSegments));
    j.set("loadedRecords", s.loadedRecords);
    j.set("droppedRecords", s.droppedRecords);
    j.set("migratedRecords", s.migratedRecords);
    j.set("appends", s.appends);
    j.set("hits", s.hits);
    j.set("misses", s.misses);
    return j;
}

Json
metricsToJson(const MetricsSnapshot &snapshot)
{
    Json counters = Json::object();
    for (const auto &kv : snapshot.counters)
        counters.set(kv.first, kv.second);
    Json gauges = Json::object();
    for (const auto &kv : snapshot.gauges)
        gauges.set(kv.first, static_cast<double>(kv.second));
    Json histograms = Json::object();
    for (const HistogramSnapshot &h : snapshot.histograms) {
        Json hist = Json::object();
        hist.set("count", h.count);
        hist.set("sum", h.sum);
        hist.set("p50", h.quantile(0.50));
        hist.set("p95", h.quantile(0.95));
        hist.set("p99", h.quantile(0.99));
        Json bounds = Json::array();
        for (const uint64_t b : h.bounds)
            bounds.push(b);
        hist.set("bounds", std::move(bounds));
        Json counts = Json::array();
        for (const uint64_t c : h.counts)
            counts.push(c);
        hist.set("counts", std::move(counts));
        histograms.set(h.name, std::move(hist));
    }
    Json j = Json::object();
    j.set("counters", std::move(counters));
    j.set("gauges", std::move(gauges));
    j.set("histograms", std::move(histograms));
    return j;
}

LineChannel::LineChannel(int fd) : fd_(fd) {}

LineChannel::~LineChannel()
{
    if (fd_ >= 0)
        ::close(fd_);
}

bool
LineChannel::readLine(std::string *line)
{
    for (;;) {
        // Scan only bytes not examined on previous iterations, so a
        // line arriving in many chunks costs linear, not quadratic,
        // work.
        const size_t newline = buffer_.find('\n', searchPos_);
        if (newline != std::string::npos) {
            *line = buffer_.substr(0, newline);
            buffer_.erase(0, newline + 1);
            searchPos_ = 0;
            return true;
        }
        searchPos_ = buffer_.size();
        if (buffer_.size() > maxLineBytes) {
            warn("service: dropping connection with a %zu-byte "
                 "unterminated line",
                 buffer_.size());
            return false;
        }
        char chunk[65536];
        const ssize_t got = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR)
            continue;
        if (got <= 0)
            return false;  // EOF or error
        buffer_.append(chunk, static_cast<size_t>(got));
    }
}

bool
LineChannel::writeLine(const std::string &line)
{
    std::string framed = line;
    framed.push_back('\n');
    size_t sent = 0;
    while (sent < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + sent,
                                 framed.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false;
        sent += static_cast<size_t>(n);
    }
    return true;
}

namespace
{

/** getaddrinfo over the endpoint's host/port, SOCK_STREAM. Returns
 *  null (with @p error set) on resolution failure. */
addrinfo *
resolveTcp(const Endpoint &endpoint, bool passive, std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (passive)
        hints.ai_flags = AI_PASSIVE;
    const std::string port = std::to_string(endpoint.port);
    addrinfo *info = nullptr;
    const int rc = ::getaddrinfo(endpoint.host.c_str(), port.c_str(),
                                 &hints, &info);
    if (rc != 0) {
        if (error) {
            *error = endpoint.describe() + ": " + ::gai_strerror(rc);
        }
        return nullptr;
    }
    return info;
}

/** Disable Nagle on a connected/accepted TCP socket: the protocol
 *  exchanges small request lines and a 40ms coalescing delay per
 *  round trip would dominate every ping/ack. */
void
setNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int
connectTcp(const Endpoint &endpoint, std::string *error)
{
    addrinfo *info = resolveTcp(endpoint, /*passive=*/false, error);
    if (!info)
        return -1;
    int fd = -1;
    int lastErrno = ECONNREFUSED;
    for (addrinfo *ai = info; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0) {
            lastErrno = errno;
            continue;
        }
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        lastErrno = errno;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
        if (error) {
            *error = endpoint.describe() + ": " +
                     std::strerror(lastErrno) +
                     " (is mtvd running?)";
        }
        return -1;
    }
    setNoDelay(fd);
    return fd;
}

} // namespace

int
connectToDaemon(const std::string &socketPath, std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path too long: " + socketPath;
        return -1;
    }
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::strerror(errno);
        return -1;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error) {
            *error = socketPath + ": " + std::strerror(errno) +
                     " (is mtvd running?)";
        }
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectToEndpoint(const Endpoint &endpoint, std::string *error)
{
    if (endpoint.kind == Endpoint::Kind::Unix)
        return connectToDaemon(endpoint.path, error);
    return connectTcp(endpoint, error);
}

int
listenOnEndpoint(const Endpoint &endpoint, Endpoint *bound,
                 int backlog)
{
    if (bound)
        *bound = endpoint;

    if (endpoint.kind == Endpoint::Kind::Unix) {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (endpoint.path.size() >= sizeof(addr.sun_path)) {
            fatal("socket path too long (%zu bytes): %s",
                  endpoint.path.size(), endpoint.path.c_str());
        }
        std::strncpy(addr.sun_path, endpoint.path.c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            fatal("cannot create server socket: %s",
                  std::strerror(errno));
        }
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            fatal("cannot bind '%s': %s", endpoint.path.c_str(),
                  std::strerror(errno));
        }
        if (::listen(fd, backlog) != 0) {
            fatal("cannot listen on '%s': %s", endpoint.path.c_str(),
                  std::strerror(errno));
        }
        return fd;
    }

    std::string error;
    addrinfo *info = resolveTcp(endpoint, /*passive=*/true, &error);
    if (!info)
        fatal("cannot resolve %s", error.c_str());
    int fd = -1;
    std::string lastError = "no usable address";
    for (addrinfo *ai = info; ai; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype,
                      ai->ai_protocol);
        if (fd < 0) {
            lastError = std::strerror(errno);
            continue;
        }
        // Restarting a node must not wait out TIME_WAIT of its own
        // previous life (the fleet failover scenario restarts nodes
        // on their old ports).
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
            ::listen(fd, backlog) == 0) {
            break;
        }
        lastError = std::strerror(errno);
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(info);
    if (fd < 0) {
        fatal("cannot listen on %s: %s", endpoint.describe().c_str(),
              lastError.c_str());
    }
    if (bound) {
        // Report the kernel-chosen port of an ephemeral (port 0)
        // bind, so tests and smoke scripts get collision-free ports.
        sockaddr_storage addr{};
        socklen_t len = sizeof(addr);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                          &len) == 0) {
            if (addr.ss_family == AF_INET) {
                bound->port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&addr)->sin_port);
            } else if (addr.ss_family == AF_INET6) {
                bound->port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&addr)
                        ->sin6_port);
            }
        }
    }
    return fd;
}

} // namespace mtv
