/**
 * @file
 * Experiment runner: the original single-threaded driver API, kept as
 * a thin adapter over ExperimentEngine (src/api). The engine owns the
 * memoized reference-run cache and the worker pool; Runner adds
 * nothing but the familiar method names and a fixed workload scale.
 * New code should use RunSpec/ExperimentEngine/SweepBuilder directly.
 */

#ifndef MTV_DRIVER_RUNNER_HH
#define MTV_DRIVER_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "src/api/engine.hh"
#include "src/core/sim.hh"
#include "src/trace/analyzer.hh"
#include "src/workload/suite.hh"

namespace mtv
{

/** Everything a grouped (section 4.1) experiment produces. */
struct GroupResult
{
    SimStats mth;            ///< the multithreaded run itself
    double speedup = 0;      ///< paper eq. in section 4.1
    double mthOccupation = 0;///< memory-port occupation, mth machine
    double refOccupation = 0;///< tuple run sequentially on reference
    double mthVopc = 0;      ///< vector ops per cycle, mth machine
    double refVopc = 0;      ///< tuple VOPC on the reference machine
};

/**
 * Adapter binding an ExperimentEngine to one workload scale.
 * Reference runs are memoized in the engine's shared cache, exactly
 * as the grouped methodology needs.
 */
class Runner
{
  public:
    /**
     * @param scale   Workload scale all programs instantiate at.
     * @param workers Engine worker threads (0 = hardware threads).
     *                Defaults to 1: most Runner methods execute on
     *                the calling thread; only sequentialReferenceTime
     *                and averagesFor() dispatch batches to the pool,
     *                so pass a larger count when those dominate.
     */
    explicit Runner(double scale = workloadDefaultScale,
                    int workers = 1);

    /**
     * Full-control variant: bind the runner to an engine built from
     * @p options — e.g. attach a persistent ResultStore backend so
     * Runner experiments warm-start from disk. The cache must stay
     * unbounded (fatal otherwise): referenceRun()/programStats()
     * return references into it.
     */
    Runner(double scale, EngineOptions options);

    /** Workload scale this runner generates programs at. */
    double scale() const { return scale_; }

    /** The engine (and shared cache) backing this runner. */
    ExperimentEngine &engine() { return engine_; }

    /** Fresh, slot-private instance of a suite program's stream. */
    std::unique_ptr<SyntheticProgram>
    instantiate(const std::string &program) const;

    /**
     * Full single run of @p program on a machine with @p params
     * (forced to one context); memoized.
     */
    const SimStats &referenceRun(const std::string &program,
                                 const MachineParams &params);

    /**
     * Reference run truncated after @p instructions dispatches —
     * the F_i terms of the speedup formula. Not memoized (the
     * dispatch-count keys essentially never repeat).
     */
    SimStats truncatedReferenceRun(const std::string &program,
                                   const MachineParams &params,
                                   uint64_t instructions);

    /**
     * Section 4.1 group experiment. programs[0] is the measured
     * program (thread 0); the multithreaded machine has
     * programs.size() contexts. Speedup is computed exactly as in the
     * paper: the reference machine's time for the same amount of work
     * (full runs C_i plus fractional runs F_i) over the multithreaded
     * time T. The reference machine derives from @p mthParams by
     * dropping all multithreading features.
     */
    GroupResult runGroup(const std::vector<std::string> &programs,
                         MachineParams mthParams);

    /** Section 7 job-queue run of @p jobs (in order) on @p params. */
    SimStats runJobQueue(const std::vector<std::string> &jobs,
                         const MachineParams &params);

    /** Σ C_i: the job list run sequentially on the reference machine. */
    uint64_t sequentialReferenceTime(const std::vector<std::string> &jobs,
                                     const MachineParams &refParams);

    /** Aggregate Table 3-style statistics of a program; memoized. */
    const TraceStats &programStats(const std::string &program);

    /** Paper's IDEAL bound for the combined work of @p jobs. */
    IdealBound idealTime(const std::vector<std::string> &jobs,
                         int decodeWidth = 1);

    /** Reference machine derived from @p params (multithreading off). */
    static MachineParams referenceOf(MachineParams params);

  private:
    double scale_;
    ExperimentEngine engine_;
};

} // namespace mtv

#endif // MTV_DRIVER_RUNNER_HH
