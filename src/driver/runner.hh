/**
 * @file
 * Experiment runner: instantiates workloads, caches reference-machine
 * runs, and implements the paper's two benchmarking methodologies —
 * the restart-based group speedup of section 4.1 and the fixed-work
 * job queue of section 7 — plus the IDEAL lower bound of Figure 10.
 */

#ifndef MTV_DRIVER_RUNNER_HH
#define MTV_DRIVER_RUNNER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/sim.hh"
#include "src/trace/analyzer.hh"
#include "src/workload/suite.hh"

namespace mtv
{

/** Everything a grouped (section 4.1) experiment produces. */
struct GroupResult
{
    SimStats mth;            ///< the multithreaded run itself
    double speedup = 0;      ///< paper eq. in section 4.1
    double mthOccupation = 0;///< memory-port occupation, mth machine
    double refOccupation = 0;///< tuple run sequentially on reference
    double mthVopc = 0;      ///< vector ops per cycle, mth machine
    double refVopc = 0;      ///< tuple VOPC on the reference machine
};

/**
 * Stateful experiment driver. A Runner is bound to one workload scale;
 * reference runs are memoized per (program, machine-parameter) pair,
 * since the grouped methodology re-uses them heavily.
 */
class Runner
{
  public:
    explicit Runner(double scale = workloadDefaultScale);

    /** Workload scale this runner generates programs at. */
    double scale() const { return scale_; }

    /** Fresh, slot-private instance of a suite program's stream. */
    std::unique_ptr<SyntheticProgram>
    instantiate(const std::string &program) const;

    /**
     * Full single run of @p program on a machine with @p params
     * (forced to one context); memoized.
     */
    const SimStats &referenceRun(const std::string &program,
                                 const MachineParams &params);

    /**
     * Reference run truncated after @p instructions dispatches —
     * the F_i terms of the speedup formula. Not memoized.
     */
    SimStats truncatedReferenceRun(const std::string &program,
                                   const MachineParams &params,
                                   uint64_t instructions);

    /**
     * Section 4.1 group experiment. programs[0] is the measured
     * program (thread 0); the multithreaded machine has
     * programs.size() contexts. Speedup is computed exactly as in the
     * paper: the reference machine's time for the same amount of work
     * (full runs C_i plus fractional runs F_i) over the multithreaded
     * time T. The reference machine derives from @p mthParams by
     * dropping all multithreading features.
     */
    GroupResult runGroup(const std::vector<std::string> &programs,
                         MachineParams mthParams);

    /** Section 7 job-queue run of @p jobs (in order) on @p params. */
    SimStats runJobQueue(const std::vector<std::string> &jobs,
                         const MachineParams &params);

    /** Σ C_i: the job list run sequentially on the reference machine. */
    uint64_t sequentialReferenceTime(const std::vector<std::string> &jobs,
                                     const MachineParams &refParams);

    /** Aggregate Table 3-style statistics of a program; memoized. */
    const TraceStats &programStats(const std::string &program);

    /** Paper's IDEAL bound for the combined work of @p jobs. */
    IdealBound idealTime(const std::vector<std::string> &jobs,
                         int decodeWidth = 1);

    /** Reference machine derived from @p params (multithreading off). */
    static MachineParams referenceOf(MachineParams params);

  private:
    std::string cacheKey(const std::string &program,
                         const MachineParams &params) const;

    double scale_;
    std::map<std::string, SimStats> refCache_;
    std::map<std::string, TraceStats> statsCache_;
};

} // namespace mtv

#endif // MTV_DRIVER_RUNNER_HH
