#include "src/driver/runner.hh"

#include "src/common/logging.hh"

namespace mtv
{

Runner::Runner(double scale, int workers)
    : Runner(scale, EngineOptions(workers))
{
}

Runner::Runner(double scale, EngineOptions options)
    : scale_(scale), engine_(std::move(options))
{
    if (scale <= 0)
        fatal("runner scale must be positive");
    if (engine_.maxCacheEntries() != 0) {
        // referenceRun()/programStats() hand out references into the
        // cache, which eviction would dangle (statsFor fatal()s).
        fatal("Runner needs an unbounded engine cache; drop "
              "maxCacheEntries (use ExperimentEngine directly for "
              "capped caches)");
    }
}

std::unique_ptr<SyntheticProgram>
Runner::instantiate(const std::string &program) const
{
    return std::make_unique<SyntheticProgram>(findProgram(program),
                                              scale_);
}

const SimStats &
Runner::referenceRun(const std::string &program,
                     const MachineParams &params)
{
    return engine_.statsFor(RunSpec::reference(program, params, scale_));
}

SimStats
Runner::truncatedReferenceRun(const std::string &program,
                              const MachineParams &params,
                              uint64_t instructions)
{
    if (instructions == 0)
        return SimStats{};
    return engine_
        .run(RunSpec::reference(program, params, scale_, instructions))
        .stats;
}

MachineParams
Runner::referenceOf(MachineParams params)
{
    return referenceMachineOf(params);
}

GroupResult
Runner::runGroup(const std::vector<std::string> &programs,
                 MachineParams mthParams)
{
    MTV_ASSERT(!programs.empty());
    const RunResult r =
        engine_.run(RunSpec::group(programs, mthParams, scale_));
    GroupResult result;
    result.mth = r.stats;
    result.speedup = r.speedup;
    result.mthOccupation = r.mthOccupation;
    result.refOccupation = r.refOccupation;
    result.mthVopc = r.mthVopc;
    result.refVopc = r.refVopc;
    return result;
}

SimStats
Runner::runJobQueue(const std::vector<std::string> &jobs,
                    const MachineParams &params)
{
    return engine_.statsFor(RunSpec::jobQueue(jobs, params, scale_));
}

uint64_t
Runner::sequentialReferenceTime(const std::vector<std::string> &jobs,
                                const MachineParams &refParams)
{
    return engine_.sequentialReferenceCycles(jobs, refParams, scale_);
}

const TraceStats &
Runner::programStats(const std::string &program)
{
    return engine_.programStats(program, scale_);
}

IdealBound
Runner::idealTime(const std::vector<std::string> &jobs, int decodeWidth)
{
    return engine_.idealTime(jobs, scale_, decodeWidth);
}

} // namespace mtv
