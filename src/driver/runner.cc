#include "src/driver/runner.hh"

#include "src/common/logging.hh"

namespace mtv
{

Runner::Runner(double scale)
    : scale_(scale)
{
    if (scale <= 0)
        fatal("runner scale must be positive");
}

std::unique_ptr<SyntheticProgram>
Runner::instantiate(const std::string &program) const
{
    return std::make_unique<SyntheticProgram>(findProgram(program),
                                              scale_);
}

std::string
Runner::cacheKey(const std::string &program,
                 const MachineParams &params) const
{
    return program + "|" + params.describe();
}

const SimStats &
Runner::referenceRun(const std::string &program,
                     const MachineParams &params)
{
    MachineParams ref = referenceOf(params);
    const std::string key = cacheKey(program, ref);
    auto it = refCache_.find(key);
    if (it != refCache_.end())
        return it->second;

    auto source = instantiate(program);
    VectorSim sim(ref);
    SimStats stats = sim.runSingle(*source);
    return refCache_.emplace(key, std::move(stats)).first->second;
}

SimStats
Runner::truncatedReferenceRun(const std::string &program,
                              const MachineParams &params,
                              uint64_t instructions)
{
    if (instructions == 0)
        return SimStats{};
    auto source = instantiate(program);
    VectorSim sim(referenceOf(params));
    return sim.runSingle(*source, instructions);
}

MachineParams
Runner::referenceOf(MachineParams params)
{
    params.contexts = 1;
    params.decodeWidth = 1;
    params.dualScalar = false;
    params.sched = SchedPolicy::UnfairLowest;
    return params;
}

GroupResult
Runner::runGroup(const std::vector<std::string> &programs,
                 MachineParams mthParams)
{
    MTV_ASSERT(!programs.empty());
    mthParams.contexts = static_cast<int>(programs.size());

    // Slot-private program instances (a program may appear twice).
    std::vector<std::unique_ptr<SyntheticProgram>> sources;
    std::vector<InstructionSource *> raw;
    for (const auto &name : programs) {
        sources.push_back(instantiate(name));
        raw.push_back(sources.back().get());
    }

    VectorSim sim(mthParams);
    GroupResult result;
    result.mth = sim.runGroup(raw);

    // --- Speedup: reference time for the same amount of work.
    // Thread 0 ran exactly once (C_0); thread i>0 ran r_i full times
    // plus a fraction measured in dispatched instructions (F_i).
    const uint64_t t = result.mth.cycles;
    double refWork = 0;
    for (size_t i = 0; i < programs.size(); ++i) {
        const ThreadStats &ts = result.mth.threads[i];
        const SimStats &full = referenceRun(programs[i], mthParams);
        if (i == 0) {
            refWork += static_cast<double>(full.cycles);
        } else {
            refWork += static_cast<double>(ts.runsCompleted) *
                       static_cast<double>(full.cycles);
            if (ts.instructionsThisRun > 0) {
                const SimStats frac = truncatedReferenceRun(
                    programs[i], mthParams, ts.instructionsThisRun);
                refWork += static_cast<double>(frac.cycles);
            }
        }
    }
    result.speedup = t ? refWork / static_cast<double>(t) : 0.0;

    // --- Occupation / VOPC comparison: the tuple run sequentially
    // (once each) on the reference machine.
    uint64_t refCycles = 0;
    uint64_t refRequests = 0;
    uint64_t refOps = 0;
    for (const auto &name : programs) {
        const SimStats &full = referenceRun(name, mthParams);
        refCycles += full.cycles;
        refRequests += full.memRequests;
        refOps += full.vecOpsFu1 + full.vecOpsFu2;
    }
    result.mthOccupation = result.mth.memPortOccupation();
    result.mthVopc = result.mth.vopc();
    result.refOccupation =
        refCycles ? static_cast<double>(refRequests) / refCycles : 0.0;
    result.refVopc =
        refCycles ? static_cast<double>(refOps) / refCycles : 0.0;
    return result;
}

SimStats
Runner::runJobQueue(const std::vector<std::string> &jobs,
                    const MachineParams &params)
{
    std::vector<std::unique_ptr<SyntheticProgram>> sources;
    std::vector<InstructionSource *> raw;
    for (const auto &name : jobs) {
        sources.push_back(instantiate(name));
        raw.push_back(sources.back().get());
    }
    VectorSim sim(params);
    return sim.runJobQueue(raw);
}

uint64_t
Runner::sequentialReferenceTime(const std::vector<std::string> &jobs,
                                const MachineParams &refParams)
{
    uint64_t total = 0;
    for (const auto &name : jobs)
        total += referenceRun(name, refParams).cycles;
    return total;
}

const TraceStats &
Runner::programStats(const std::string &program)
{
    auto it = statsCache_.find(program);
    if (it != statsCache_.end())
        return it->second;
    auto source = instantiate(program);
    TraceStats stats = analyzeSource(*source);
    return statsCache_.emplace(program, stats).first->second;
}

IdealBound
Runner::idealTime(const std::vector<std::string> &jobs, int decodeWidth)
{
    TraceStats total;
    for (const auto &name : jobs)
        total += programStats(name);
    return idealBound(total, decodeWidth);
}

} // namespace mtv
