#include "src/driver/experiments.hh"

namespace mtv
{

ProgramAverages
averagesFor(Runner &runner, const std::string &program, int contexts,
            const MachineParams &params)
{
    SweepBuilder sweep(runner.scale());
    sweep.addGroupings(program, contexts, params);
    const std::vector<RunResult> results =
        runner.engine().runAll(sweep.specs());
    return averageOf(sweep.slices().front(), results);
}

const std::vector<int> &
figure4Latencies()
{
    static const std::vector<int> lats = {1, 20, 70, 100};
    return lats;
}

} // namespace mtv
