#include "src/driver/experiments.hh"

#include "src/common/logging.hh"

namespace mtv
{

std::vector<std::vector<std::string>>
groupingsFor(const std::string &x, int contexts)
{
    const std::string name = findProgram(x).name;  // canonicalize
    std::vector<std::vector<std::string>> groups;
    switch (contexts) {
      case 2:
        for (const auto &c2 : groupingColumn2())
            groups.push_back({name, c2});
        break;
      case 3:
        for (const auto &c2 : groupingColumn2())
            for (const auto &c3 : groupingColumn3())
                groups.push_back({name, c2, c3});
        break;
      case 4:
        for (const auto &c2 : groupingColumn2())
            for (const auto &c3 : groupingColumn3())
                for (const auto &c4 : groupingColumn4())
                    groups.push_back({name, c2, c3, c4});
        break;
      default:
        fatal("groupings are defined for 2..4 contexts, got %d",
              contexts);
    }
    return groups;
}

ProgramAverages
averagesFor(Runner &runner, const std::string &program, int contexts,
            const MachineParams &params)
{
    ProgramAverages avg;
    avg.program = findProgram(program).name;
    avg.contexts = contexts;
    for (const auto &group : groupingsFor(program, contexts)) {
        const GroupResult r = runner.runGroup(group, params);
        avg.speedup += r.speedup;
        avg.mthOccupation += r.mthOccupation;
        avg.refOccupation += r.refOccupation;
        avg.mthVopc += r.mthVopc;
        avg.refVopc += r.refVopc;
        ++avg.runs;
    }
    MTV_ASSERT(avg.runs > 0);
    const double n = avg.runs;
    avg.speedup /= n;
    avg.mthOccupation /= n;
    avg.refOccupation /= n;
    avg.mthVopc /= n;
    avg.refVopc /= n;
    return avg;
}

const std::vector<int> &
figure4Latencies()
{
    static const std::vector<int> lats = {1, 20, 70, 100};
    return lats;
}

const std::vector<int> &
sweepLatencies()
{
    static const std::vector<int> lats = {1, 20, 40, 50, 60, 80, 100};
    return lats;
}

} // namespace mtv
