/**
 * @file
 * Experiment definitions shared by the figure benches, now thin
 * wrappers over the src/api sweep helpers: the Table 2 grouping
 * enumeration (re-exported from src/api/sweep.hh), per-program
 * averaging (section 4.1), and the latency sweep values used across
 * Figures 4-12.
 */

#ifndef MTV_DRIVER_EXPERIMENTS_HH
#define MTV_DRIVER_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "src/api/sweep.hh"
#include "src/driver/runner.hh"

namespace mtv
{

/** Per-program figure data point: the average over its groupings. */
using ProgramAverages = GroupAverages;

/**
 * Run every grouping of @p program at @p contexts on @p params and
 * average the metrics — one bar of Figures 6, 7 or 8. Groupings run
 * in parallel across the runner's engine workers.
 */
ProgramAverages averagesFor(Runner &runner, const std::string &program,
                            int contexts, const MachineParams &params);

/** Memory latencies used in Figures 4 and 5: 1, 20, 70, 100. */
const std::vector<int> &figure4Latencies();

// sweepLatencies() (Figures 10-12) moved to src/api/sweep.hh so the
// service's named "latency" sweep family can default to it; it is
// re-exported here through that include.

} // namespace mtv

#endif // MTV_DRIVER_EXPERIMENTS_HH
