/**
 * @file
 * Experiment definitions shared by the figure benches: the Table 2
 * grouping enumeration and per-program averaging (section 4.1), and
 * the latency sweep values used across Figures 4-12.
 */

#ifndef MTV_DRIVER_EXPERIMENTS_HH
#define MTV_DRIVER_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "src/driver/runner.hh"

namespace mtv
{

/**
 * All groupings for program @p x at @p contexts threads, following the
 * paper's methodology: 5 pairs (x + column-2 entries), 10 triples
 * (x + column-2 + column-3) or 10 quadruples (x + column-2 + column-3
 * + column-4). Each grouping's first element is x (= thread 0).
 */
std::vector<std::vector<std::string>>
groupingsFor(const std::string &x, int contexts);

/** Per-program figure data point: the average over its groupings. */
struct ProgramAverages
{
    std::string program;
    int contexts = 0;
    int runs = 0;
    double speedup = 0;
    double mthOccupation = 0;
    double refOccupation = 0;
    double mthVopc = 0;
    double refVopc = 0;
};

/**
 * Run every grouping of @p program at @p contexts on @p params and
 * average the metrics — one bar of Figures 6, 7 or 8.
 */
ProgramAverages averagesFor(Runner &runner, const std::string &program,
                            int contexts, const MachineParams &params);

/** Memory latencies used in Figures 4 and 5: 1, 20, 70, 100. */
const std::vector<int> &figure4Latencies();

/** Memory latencies swept in Figures 10-12. */
const std::vector<int> &sweepLatencies();

} // namespace mtv

#endif // MTV_DRIVER_EXPERIMENTS_HH
