#include "src/fleet/fleet_service.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/service/json.hh"

namespace mtv
{

namespace
{

Json
errorJson(const std::string &message)
{
    Json j = Json::object();
    j.set("error", message);
    return j;
}

Json
requestErrorJson(uint64_t id, const std::string &message)
{
    Json j = errorJson(message);
    j.set("id", id);
    return j;
}

/**
 * Re-orders the fleet's arrival-order point stream back into global
 * submission order for one client: seq = global index, parked until
 * every earlier point has been emitted. Invoked under the router's
 * gather mutex, so writes are serialized.
 */
class OrderedEmitter
{
  public:
    OrderedEmitter(LineChannel &channel, uint64_t id, bool quiet,
                   WireFormat wire)
        : channel_(channel), id_(id), quiet_(quiet),
          binary_(wire == WireFormat::Binary)
    {
    }

    void
    reset(size_t count)
    {
        ready_.assign(count, 0);
        results_.assign(count, RunResult());
        blobs_.assign(count, std::string());
        nextEmit_ = 0;
    }

    /** The FleetRouter::PointHook. */
    void
    land(size_t global, const RunResult &result,
         const std::string &blob)
    {
        ready_[global] = 1;
        results_[global] = result;
        blobs_[global] = blob;
        while (nextEmit_ < ready_.size() && ready_[nextEmit_]) {
            const size_t seq = nextEmit_++;
            if (writeFailed_)
                continue;
            if (binary_) {
                // Re-framed, not re-encoded: the blob bytes a node
                // streamed pass through verbatim — only the frame
                // envelope (id, global seq) is rebuilt, so the
                // client folds the identical digest.
                std::string frame;
                appendResultFrame(&frame, results_[seq], id_, seq,
                                  quiet_ ? nullptr : &blobs_[seq]);
                if (!channel_.writeBytes(frame))
                    writeFailed_ = true;
            } else {
                const Json line = resultToJson(
                    results_[seq], id_, seq,
                    /*includeBlob=*/!quiet_, &blobs_[seq]);
                if (!channel_.writeLine(line.dump()))
                    writeFailed_ = true;
            }
            // Emitted points are not needed again (the router holds
            // its own copies for the final fold).
            results_[seq] = RunResult();
            blobs_[seq].clear();
        }
    }

    bool writeFailed() const { return writeFailed_; }

    /** The terminator, with the fleet extras the smoke test greps. */
    bool
    writeDone(const FleetOutcome &outcome)
    {
        Json done = Json::object();
        done.set("id", id_);
        done.set("done", true);
        done.set("count",
                 static_cast<uint64_t>(outcome.results.size()));
        done.set("simulated", outcome.simulated);
        done.set("cacheServed", outcome.cacheServed);
        done.set("storeServed", outcome.storeServed);
        done.set("digest",
                 format("%016llx", static_cast<unsigned long long>(
                                       outcome.digest)));
        done.set("rerouted", outcome.rerouted);
        if (!outcome.deadNodes.empty()) {
            Json dead = Json::array();
            for (const std::string &name : outcome.deadNodes)
                dead.push(name);
            done.set("deadNodes", std::move(dead));
        }
        return channel_.writeLine(done.dump());
    }

  private:
    LineChannel &channel_;
    uint64_t id_;
    bool quiet_;
    bool binary_;
    std::vector<char> ready_;
    std::vector<RunResult> results_;
    std::vector<std::string> blobs_;
    size_t nextEmit_ = 0;
    bool writeFailed_ = false;
};

} // namespace

FleetService::FleetService(FleetServiceOptions options)
    : router_(options.nodes, options.fleet)
{
    socketPath_ = options.socketPath.empty() ? defaultSocketPath()
                                             : options.socketPath;

    // Same stale-socket policy as MtvService: only a *connectable*
    // socket means a live daemon; a leftover file is unlinked.
    std::string connectError;
    const int probe = connectToDaemon(socketPath_, &connectError);
    if (probe >= 0) {
        ::close(probe);
        fatal("another mtvd is already serving '%s'",
              socketPath_.c_str());
    }
    ::unlink(socketPath_.c_str());

    Listener unixListener;
    unixListener.endpoint = Endpoint::unixSocket(socketPath_);
    unixListener.fd =
        listenOnEndpoint(unixListener.endpoint, nullptr);
    listeners_.push_back(unixListener);

    if (!options.tcpHost.empty()) {
        Listener tcpListener;
        tcpListener.fd = listenOnEndpoint(
            Endpoint::tcp(options.tcpHost, options.tcpPort),
            &tcpListener.endpoint);
        tcpPort_ = tcpListener.endpoint.port;
        listeners_.push_back(tcpListener);
    }
}

FleetService::~FleetService()
{
    stop();
    teardownClients();
    router_.stopHealthMonitor();
    for (const Listener &listener : listeners_) {
        if (listener.fd >= 0)
            ::close(listener.fd);
    }
    ::unlink(socketPath_.c_str());
}

void
FleetService::joinFinishedLocked()
{
    for (auto &thread : finishedClients_)
        thread.join();
    finishedClients_.clear();
}

void
FleetService::teardownClients()
{
    // Joins happen OUTSIDE clientsMutex_: a connection thread's last
    // act is to lock it and retire its own handle.
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(clientsMutex_);
        for (auto &client : activeClients_) {
            ::shutdown(client.first, SHUT_RDWR);
            threads.push_back(std::move(client.second));
        }
        activeClients_.clear();
        for (auto &thread : finishedClients_)
            threads.push_back(std::move(thread));
        finishedClients_.clear();
    }
    for (auto &thread : threads)
        thread.join();
}

void
FleetService::stop()
{
    // Async-signal-safe (mtvd wires this to SIGTERM/SIGINT): flag +
    // shutdown only.
    stopping_.store(true);
    for (const Listener &listener : listeners_) {
        if (listener.fd >= 0)
            ::shutdown(listener.fd, SHUT_RDWR);
    }
}

void
FleetService::serve()
{
    for (const Listener &listener : listeners_) {
        inform("mtvd: routing for %zu nodes, listening on %s",
               router_.nodeCount(),
               listener.endpoint.describe().c_str());
    }
    // Dead nodes are discovered between requests too, not only when
    // a scatter trips over them.
    router_.startHealthMonitor();

    std::vector<pollfd> fds;
    fds.reserve(listeners_.size());
    for (const Listener &listener : listeners_)
        fds.push_back(pollfd{listener.fd, POLLIN, 0});
    while (!stopping_.load()) {
        for (pollfd &p : fds)
            p.revents = 0;
        const int ready = ::poll(fds.data(), fds.size(), 500);
        if (stopping_.load())
            break;
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        for (size_t i = 0; i < fds.size(); ++i) {
            if (!(fds[i].revents & (POLLIN | POLLERR | POLLHUP)))
                continue;
            const int fd = ::accept(listeners_[i].fd, nullptr,
                                    nullptr);
            if (fd < 0) {
                if (stopping_.load())
                    break;
                if (errno == EMFILE || errno == ENFILE ||
                    errno == ECONNABORTED || errno == EPROTO) {
                    warn("mtvd: accept failed: %s — retrying",
                         std::strerror(errno));
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                }
                continue;
            }
            std::lock_guard<std::mutex> lock(clientsMutex_);
            joinFinishedLocked();
            activeClients_.emplace(
                fd,
                std::thread([this, fd] { handleConnection(fd); }));
        }
    }

    router_.stopHealthMonitor();
    teardownClients();
}

void
FleetService::handleConnection(int fd)
{
    LineChannel channel(fd);
    WireFormat wire = WireFormat::Json;
    std::string line;
    while (!stopping_.load()) {
        const LineChannel::MessageKind kind =
            channel.readMessage(&line);
        if (kind == LineChannel::MessageKind::Eof)
            break;
        if (kind != LineChannel::MessageKind::Line) {
            // Frames flow router->client only; same policy as a
            // regular daemon — one structured error, clean close.
            Json err = errorJson(
                "binary frame on the request channel");
            err.set("badFrame", true);
            channel.writeLine(err.dump());
            break;
        }
        if (line.empty())
            continue;
        Json request;
        std::string parseError;
        if (!Json::parse(line, &request, &parseError)) {
            if (!channel.writeLine(errorJson(parseError).dump()))
                break;
            continue;
        }
        if (!handleRequest(request, channel, wire))
            break;
    }
    // Hand our own thread handle to the finished list; during
    // teardown the entry may already be gone (the teardown side owns
    // it then).
    std::lock_guard<std::mutex> lock(clientsMutex_);
    auto self = activeClients_.find(fd);
    if (self != activeClients_.end()) {
        finishedClients_.push_back(std::move(self->second));
        activeClients_.erase(self);
    }
}

bool
FleetService::handleRequest(const Json &request, LineChannel &channel,
                            WireFormat &wire)
{
    try {
        // Client input (and downstream-node fatality: a fleet with
        // zero live nodes left) reports through fatal(); either must
        // answer this client, not kill the router.
        ScopedFatalAsException fatalScope;
        const std::string op = request.getString("op");
        if (op == "hello") {
            // Same negotiation a regular daemon offers: the router
            // is transparent, so a client negotiating binary gets
            // frames regardless of what the downstream nodes speak.
            const std::string wanted =
                request.has("wire") ? request.getString("wire")
                                    : "json";
            if (wanted != "json" && wanted != "binary") {
                return channel.writeLine(
                    errorJson("unknown wire format '" + wanted +
                              "' (expected json or binary)")
                        .dump());
            }
            wire = wanted == "binary" ? WireFormat::Binary
                                      : WireFormat::Json;
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("hello", true);
            ok.set("wire", wanted);
            ok.set("protocol", serviceProtocolVersion);
            return channel.writeLine(ok.dump());
        }
        if (op == "ping") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("pong", true);
            ok.set("protocol", serviceProtocolVersion);
            ok.set("fleet", true);
            ok.set("nodes",
                   static_cast<uint64_t>(router_.nodeCount()));
            ok.set("alive",
                   static_cast<uint64_t>(router_.aliveCount()));
            Json families = Json::array();
            for (const SweepFamilyInfo &family : sweepFamilies())
                families.push(family.name);
            ok.set("sweepFamilies", std::move(families));
            return channel.writeLine(ok.dump());
        }
        if (op == "status") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("fleet", true);
            Json nodes = Json::array();
            for (const FleetNodeStatus &s : router_.status()) {
                Json node = Json::object();
                node.set("endpoint", s.name);
                node.set("alive", s.alive);
                if (!s.lastError.empty())
                    node.set("error", s.lastError);
                node.set("served", s.pointsServed);
                nodes.push(std::move(node));
            }
            ok.set("nodes", std::move(nodes));
            return channel.writeLine(ok.dump());
        }
        if (op == "metrics")
            return handleMetrics(request, channel);
        if (op == "sweep")
            return handleSweep(request, channel, wire);
        if (op == "compare")
            return handleCompare(request, channel);
        if (op == "run")
            return handleRun(request, channel, wire);
        if (op == "shutdown") {
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("stopping", true);
            channel.writeLine(ok.dump());
            inform("mtvd: shutdown requested by client");
            stop();
            return false;
        }
        if (op == "stats" || op == "clear" || op == "cancel") {
            // The router owns no engine: nothing to clear, no cache
            // counters, and in-flight bookkeeping lives node-side.
            return channel.writeLine(
                errorJson(format("op '%s' is not served by a fleet "
                                 "router — talk to a node directly",
                                 op.c_str()))
                    .dump());
        }
        return channel.writeLine(
            errorJson(op.empty() ? "request names no op"
                                 : "unknown op '" + op + "'")
                .dump());
    } catch (const FatalError &e) {
        return channel.writeLine(
            requestErrorJson(
                request.get("id").type() == Json::Type::Number
                    ? static_cast<uint64_t>(
                          request.getNumber("id"))
                    : 0,
                e.what())
                .dump());
    }
}

bool
FleetService::handleMetrics(const Json &request, LineChannel &channel)
{
    (void)request;  // prom exposition is per-node; nothing to forward
    Json ok = Json::object();
    ok.set("ok", true);
    ok.set("fleet", true);
    ok.set("router",
           metricsToJson(MetricsRegistry::instance().snapshot()));

    // Fleet-wide counter sums over the nodes that answered. Gauges
    // and histograms stay per-node: summing a queue-depth gauge or
    // averaging quantiles would manufacture numbers nobody measured.
    std::map<std::string, uint64_t> totals;
    Json nodes = Json::array();
    for (const FleetNodeStatus &s : router_.status()) {
        Json node = Json::object();
        node.set("endpoint", s.name);
        if (!s.alive) {
            node.set("ok", false);
            node.set("error", s.lastError.empty()
                                  ? "node marked dead"
                                  : s.lastError);
            nodes.push(std::move(node));
            continue;
        }
        Json metrics;
        bool gathered = false;
        std::string error = "metrics request failed";
        try {
            // A node failing its metrics request degrades THIS
            // response, never the router. (Deliberately no markDead:
            // the health monitor owns liveness; an observability read
            // should not reshape the ring.)
            ScopedFatalAsException scope;
            std::string connectError;
            const int fd = connectToEndpoint(parseEndpoint(s.name),
                                             &connectError);
            if (fd < 0) {
                error = connectError;
            } else {
                LineChannel nodeChannel(fd);
                Json nodeRequest = Json::object();
                nodeRequest.set("op", "metrics");
                std::string line;
                if (nodeChannel.writeLine(nodeRequest.dump()) &&
                    nodeChannel.readLine(&line)) {
                    Json response;
                    std::string parseError;
                    if (!Json::parse(line, &response, &parseError)) {
                        error = "malformed metrics response: " +
                                parseError;
                    } else if (!response.getBool("ok")) {
                        error = response.getString("error",
                                                   response.dump());
                    } else {
                        metrics = response.get("metrics");
                        gathered =
                            metrics.type() == Json::Type::Object;
                        if (!gathered)
                            error = "metrics response carries no "
                                    "metrics object";
                    }
                }
            }
        } catch (const FatalError &e) {
            error = e.what();
        }
        node.set("ok", gathered);
        if (gathered) {
            if (metrics.get("counters").type() ==
                Json::Type::Object) {
                for (const auto &counter :
                     metrics.get("counters").asMembers()) {
                    totals[counter.first] += static_cast<uint64_t>(
                        counter.second.asNumber());
                }
            }
            node.set("metrics", std::move(metrics));
        } else {
            node.set("error", error);
        }
        nodes.push(std::move(node));
    }
    ok.set("nodes", std::move(nodes));
    Json totalsJson = Json::object();
    for (const auto &total : totals)
        totalsJson.set(total.first, total.second);
    ok.set("totals", std::move(totalsJson));
    return channel.writeLine(ok.dump());
}

bool
FleetService::handleSweep(const Json &request, LineChannel &channel,
                          WireFormat wire)
{
    const uint64_t id = request.get("id").asU64();
    if (request.has("points")) {
        // A router is not a node: the scatter path terminates here.
        return channel.writeLine(
            requestErrorJson(id, "a fleet router does not accept "
                                 "point subsets")
                .dump());
    }
    const SweepRequest sweep = sweepRequestFromJson(request);
    OrderedEmitter emitter(channel, id,
                           request.getBool("quiet", false), wire);

    bool ackOk = true;
    const FleetOutcome outcome = router_.runSweep(
        sweep,
        [&emitter](size_t global, const RunResult &result,
                   const std::string &blob) {
            emitter.land(global, result, blob);
        },
        [&](size_t count, const std::vector<SweepSlice> &slices) {
            emitter.reset(count);
            Json ack = Json::object();
            ack.set("id", id);
            ack.set("ack", true);
            ack.set("count", static_cast<uint64_t>(count));
            ack.set("total", static_cast<uint64_t>(count));
            Json sliceArray = Json::array();
            for (const SweepSlice &slice : slices)
                sliceArray.push(sliceToJson(slice));
            ack.set("slices", std::move(sliceArray));
            ackOk = channel.writeLine(ack.dump());
        });

    if (!ackOk || emitter.writeFailed())
        return false;  // the client vanished mid-stream
    return emitter.writeDone(outcome);
}

bool
FleetService::handleCompare(const Json &request,
                            LineChannel &channel)
{
    const uint64_t id = request.get("id").asU64();
    const SweepRequest sweep = sweepRequestFromJson(request);

    // Comparability is checked against the local expansion before
    // any node is contacted — the expansion is deterministic, so the
    // router's copy and every node's copy agree.
    {
        SweepBuilder expansion = expandSweep(sweep);
        const std::vector<SweepSlice> &slices = expansion.slices();
        bool comparable = slices.size() >= 2;
        for (const SweepSlice &s : slices)
            comparable = comparable && s.count == slices[0].count;
        if (!comparable) {
            Json err = requestErrorJson(
                id, "sweep family '" + sweep.family +
                        "' is not design-parallel and cannot be "
                        "compared");
            err.set("notComparable", sweep.family);
            return channel.writeLine(err.dump());
        }
    }

    // Gather fleet-wide; the points stay router-side (no per-point
    // stream), exactly like a single daemon's compare.
    const FleetOutcome outcome = router_.runSweep(sweep);

    Json ok = Json::object();
    ok.set("id", id);
    ok.set("ok", true);
    ok.set("compare", true);
    ok.set("fleet", true);
    ok.set("family", sweep.family);
    ok.set("count", static_cast<uint64_t>(outcome.results.size()));
    ok.set("baseline", outcome.slices.empty()
                           ? std::string()
                           : outcome.slices[0].label);
    ok.set("simulated", outcome.simulated);
    ok.set("cacheServed", outcome.cacheServed);
    ok.set("storeServed", outcome.storeServed);
    ok.set("digest",
           format("%016llx",
                  static_cast<unsigned long long>(outcome.digest)));
    Json rows = Json::array();
    for (const CompareRow &row :
         compareDesigns(outcome.slices, outcome.results))
        rows.push(compareRowToJson(row));
    ok.set("rows", std::move(rows));
    return channel.writeLine(ok.dump());
}

bool
FleetService::handleRun(const Json &request, LineChannel &channel,
                        WireFormat wire)
{
    const uint64_t id = request.get("id").asU64();
    std::vector<RunSpec> specs;
    for (const Json &spec : request.get("specs").asArray())
        specs.push_back(RunSpec::parse(spec.asString()));
    if (specs.empty())
        fatal("run request carries no specs");

    OrderedEmitter emitter(channel, id,
                           request.getBool("quiet", false), wire);
    emitter.reset(specs.size());
    const FleetOutcome outcome = router_.runSpecs(
        specs, [&emitter](size_t global, const RunResult &result,
                          const std::string &blob) {
            emitter.land(global, result, blob);
        });
    if (emitter.writeFailed())
        return false;
    return emitter.writeDone(outcome);
}

} // namespace mtv
