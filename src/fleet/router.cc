#include "src/fleet/router.hh"

#include <chrono>
#include <unordered_set>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/service/json.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{

namespace
{

/** Ring identities must be distinct and non-empty: a duplicate
 *  endpoint would be the same daemon owning two ring slots. */
std::vector<std::string>
validatedNodeNames(const std::vector<std::string> &endpointTexts)
{
    if (endpointTexts.empty())
        fatal("fleet: node list is empty");
    std::unordered_set<std::string> seen;
    for (const std::string &text : endpointTexts) {
        if (text.empty())
            fatal("fleet: empty node endpoint in list");
        if (!seen.insert(text).second)
            fatal("fleet: duplicate node endpoint '%s'",
                  text.c_str());
    }
    return endpointTexts;
}

} // namespace

/** Shared state of one gather: the global result table the per-node
 *  reader threads land points into. */
struct FleetRouter::Gather
{
    std::mutex mutex;
    const std::vector<RunSpec> *specs = nullptr;
    std::vector<char> done;
    std::vector<RunResult> results;
    std::vector<std::string> blobs;
    const PointHook *hook = nullptr;
};

FleetRouter::FleetRouter(
    const std::vector<std::string> &endpointTexts,
    FleetOptions options)
    : options_(options),
      ring_(validatedNodeNames(endpointTexts), options.vnodesPerNode)
{
    nodes_.reserve(endpointTexts.size());
    for (const std::string &text : endpointTexts) {
        Node node;
        node.name = text;
        node.endpoint = parseEndpoint(text);
        nodes_.push_back(std::move(node));
    }

    MetricsRegistry &reg = MetricsRegistry::instance();
    obsDeadMarks_ = reg.counter("fleet_dead_marks_total");
    obsRevives_ = reg.counter("fleet_revives_total");
    obsReroutes_ = reg.counter("fleet_reroutes_total");
    obsPingRttUs_ = reg.histogram("fleet_ping_rtt_us");
    obsScatterPoints_ = reg.histogram(
        "fleet_scatter_points", MetricsRegistry::countBuckets());
}

FleetRouter::~FleetRouter() { stopHealthMonitor(); }

size_t
FleetRouter::nodeCount() const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    return nodes_.size();
}

size_t
FleetRouter::aliveCount() const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    return ring_.liveCount();
}

std::vector<FleetNodeStatus>
FleetRouter::status() const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    std::vector<FleetNodeStatus> out;
    out.reserve(nodes_.size());
    for (const Node &node : nodes_) {
        FleetNodeStatus s;
        s.name = node.name;
        s.alive = node.alive;
        s.lastError = node.lastError;
        s.pointsServed = node.pointsServed;
        out.push_back(std::move(s));
    }
    return out;
}

size_t
FleetRouter::nodeForKey(const std::string &canonical) const
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    return ring_.nodeFor(canonical);
}

void
FleetRouter::markDead(size_t index, const std::string &error)
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    Node &node = nodes_[index];
    if (!node.alive)
        return;
    node.alive = false;
    node.lastError = error;
    ring_.removeNode(index);
    deadDuringBatch_.push_back(node.name);
    obsDeadMarks_->inc();
    warn("fleet: node %s marked dead (%s); %zu of %zu nodes left",
         node.name.c_str(), error.c_str(), ring_.liveCount(),
         nodes_.size());
}

void
FleetRouter::revive(size_t index)
{
    std::lock_guard<std::mutex> lock(membershipMutex_);
    Node &node = nodes_[index];
    if (node.alive)
        return;
    node.alive = true;
    node.lastError.clear();
    ring_.restoreNode(index);
    obsRevives_->inc();
    inform("fleet: node %s revived; %zu of %zu nodes live",
           node.name.c_str(), ring_.liveCount(), nodes_.size());
}

size_t
FleetRouter::pingAll()
{
    const size_t count = nodeCount();
    for (size_t i = 0; i < count; ++i) {
        Endpoint endpoint;
        bool wasAlive;
        {
            std::lock_guard<std::mutex> lock(membershipMutex_);
            wasAlive = nodes_[i].alive;
            endpoint = nodes_[i].endpoint;
        }
        std::string error;
        const uint64_t pingStartUs = monotonicMicros();
        const int fd = connectToEndpoint(endpoint, &error);
        if (fd < 0) {
            // A dead node that still refuses connections simply stays
            // dead — no counter churn, no re-mark.
            if (wasAlive)
                markDead(i, error);
            continue;
        }
        LineChannel channel(fd);
        bool healthy = false;
        std::string why = "status ping failed";
        try {
            // A garbled pong is a node failure, not a router crash.
            ScopedFatalAsException scope;
            Json request = Json::object();
            request.set("op", "ping");
            std::string line;
            if (channel.writeLine(request.dump()) &&
                channel.readLine(&line)) {
                Json response;
                std::string parseError;
                if (Json::parse(line, &response, &parseError)) {
                    const int protocol = static_cast<int>(
                        response.getNumber("protocol"));
                    if (!response.getBool("ok")) {
                        why = "ping answered: " +
                              response.getString("error",
                                                 response.dump());
                    } else if (protocol != serviceProtocolVersion) {
                        why = format("protocol mismatch: node "
                                     "speaks v%d, router v%d",
                                     protocol,
                                     serviceProtocolVersion);
                    } else {
                        healthy = true;
                    }
                } else {
                    why = "malformed pong: " + parseError;
                }
            }
        } catch (const FatalError &e) {
            why = e.what();
        }
        if (healthy) {
            obsPingRttUs_->observe(monotonicMicros() - pingStartUs);
            if (!wasAlive)
                revive(i);  // a restarted daemon rejoins the ring
        } else if (wasAlive) {
            markDead(i, why);
        }
    }
    return aliveCount();
}

void
FleetRouter::startHealthMonitor()
{
    if (monitor_.joinable())
        return;
    monitorStop_ = false;
    monitor_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(monitorMutex_);
        for (;;) {
            if (monitorWake_.wait_for(
                    lock,
                    std::chrono::duration<double>(
                        options_.healthIntervalSeconds),
                    [this] { return monitorStop_; })) {
                return;
            }
            lock.unlock();
            pingAll();
            lock.lock();
        }
    });
}

void
FleetRouter::stopHealthMonitor()
{
    {
        std::lock_guard<std::mutex> lock(monitorMutex_);
        monitorStop_ = true;
    }
    monitorWake_.notify_all();
    if (monitor_.joinable())
        monitor_.join();
}

void
FleetRouter::streamSubset(size_t nodeIndex,
                          const std::vector<size_t> &indices,
                          const SweepRequest *sweep, Gather &gather)
{
    Endpoint endpoint;
    {
        std::lock_guard<std::mutex> lock(membershipMutex_);
        endpoint = nodes_[nodeIndex].endpoint;
    }
    std::string error;
    const int fd = connectToEndpoint(endpoint, &error);
    if (fd < 0) {
        markDead(nodeIndex, error);
        return;
    }
    // The channel's destructor closes the socket on every exit path.
    // On a half-dead node that close triggers the daemon-side reap
    // (cancel tokens + lane drop), so the abandoned slice stops
    // simulating for nobody.
    LineChannel channel(fd);

    // Negotiate the binary result wire (protocol v6): frames carry
    // the canonical stats blob verbatim, so the router folds its
    // digest and forwards bytes without a JSON round-trip. A node
    // that refuses (or an old daemon answering "unknown op") simply
    // leaves this stream on JSON lines — mixed fleets fold the same
    // blob bytes either way, so the digest is unaffected.
    {
        Json hello = Json::object();
        hello.set("op", "hello");
        hello.set("wire", "binary");
        std::string line;
        if (!channel.writeLine(hello.dump()) ||
            !channel.readLine(&line)) {
            markDead(nodeIndex, "connection lost during hello");
            return;
        }
        Json response;
        std::string parseError;
        if (!Json::parse(line, &response, &parseError)) {
            markDead(nodeIndex,
                     "malformed hello response: " + parseError);
            return;
        }
        // The answer only matters as "did binary get negotiated";
        // an error answer is the JSON fallback, not a failure.
        (void)response;
    }

    constexpr uint64_t id = 1;
    Json request;
    if (sweep) {
        // The family compresses the scatter: every node expands the
        // sweep itself and runs only the global indices it owns.
        request = sweepRequestToJson(*sweep);
        Json points = Json::array();
        for (const size_t global : indices)
            points.push(static_cast<uint64_t>(global));
        request.set("points", std::move(points));
    } else {
        request = Json::object();
        Json specs = Json::array();
        for (const size_t global : indices)
            specs.push((*gather.specs)[global].canonical());
        request.set("specs", std::move(specs));
    }
    request.set("op", sweep ? "sweep" : "run");
    request.set("id", id);
    // Never quiet: the blobs are the digest fold input.
    request.set("quiet", false);
    if (!channel.writeLine(request.dump())) {
        markDead(nodeIndex, "write failed (connection lost)");
        return;
    }

    // Consume the subset stream. ANY malformed line is treated as a
    // node failure — the scatter loop reroutes, a bad node must not
    // take the router down.
    uint64_t subsetDigest = 0xcbf29ce484222325ull;
    size_t received = 0;
    bool sawAck = sweep == nullptr;  // the run op has no ack line
    for (;;) {
        std::string line;
        const LineChannel::MessageKind kind =
            channel.readMessage(&line);
        if (kind == LineChannel::MessageKind::Eof) {
            markDead(nodeIndex,
                     format("connection closed after %zu of %zu "
                            "points",
                            received, indices.size()));
            return;
        }
        if (kind == LineChannel::MessageKind::BadFrame) {
            markDead(nodeIndex,
                     format("bad result frame after %zu of %zu "
                            "points",
                            received, indices.size()));
            return;
        }
        if (kind == LineChannel::MessageKind::Frame) {
            // A binary result point. The spec check and the digest
            // fold work on the frame's raw strings — no JSON object,
            // no stats decode on the integrity path; only the result
            // landed in the gather table is decoded (the caller's
            // hook and compare folds want a RunResult).
            try {
                ScopedFatalAsException scope;
                ResultFrame frame;
                std::string frameError;
                if (!decodeResultFrame(line, &frame, &frameError))
                    fatal("bad result frame: %s", frameError.c_str());
                if (frame.id != id) {
                    fatal("frame for unknown request id %llu",
                          static_cast<unsigned long long>(frame.id));
                }
                if (!sawAck)
                    fatal("result frame before the sweep ack");
                const size_t seq = frame.seq;
                if (seq != received || seq >= indices.size()) {
                    fatal("result stream out of order (seq %zu, "
                          "expected %zu)",
                          seq, received);
                }
                if (!frame.hasBlob)
                    fatal("node streamed a result without a blob");
                if (frame.spec !=
                    (*gather.specs)[indices[seq]].canonical()) {
                    fatal("node answered the wrong spec for point "
                          "%zu",
                          indices[seq]);
                }
                subsetDigest = fnv1a64(frame.blob.data(),
                                       frame.blob.size(),
                                       subsetDigest);
                const size_t global = indices[seq];
                ++received;
                {
                    std::lock_guard<std::mutex> lock(gather.mutex);
                    if (!gather.done[global]) {
                        gather.done[global] = 1;
                        gather.results[global] =
                            resultFromFrame(frame);
                        gather.blobs[global] = std::move(frame.blob);
                        if (*gather.hook) {
                            (*gather.hook)(global,
                                           gather.results[global],
                                           gather.blobs[global]);
                        }
                    }
                }
                {
                    std::lock_guard<std::mutex> lock(
                        membershipMutex_);
                    ++nodes_[nodeIndex].pointsServed;
                }
            } catch (const FatalError &e) {
                markDead(nodeIndex, e.what());
                return;
            }
            continue;
        }
        Json msg;
        std::string parseError;
        if (!Json::parse(line, &msg, &parseError)) {
            markDead(nodeIndex, "malformed response: " + parseError);
            return;
        }
        if (msg.has("error")) {
            markDead(nodeIndex,
                     "node error: " + msg.getString("error"));
            return;
        }
        try {
            ScopedFatalAsException scope;
            if (msg.get("id").asU64() != id) {
                fatal("response for unknown request id %llu",
                      static_cast<unsigned long long>(
                          msg.get("id").asU64()));
            }
            if (!sawAck) {
                if (!msg.getBool("ack", false) ||
                    msg.get("count").asU64() != indices.size()) {
                    fatal("bad sweep ack: %s", msg.dump().c_str());
                }
                sawAck = true;
                continue;
            }
            if (msg.getBool("done", false)) {
                if (msg.getBool("cancelled", false) ||
                    received != indices.size()) {
                    fatal("stream ended after %zu of %zu points",
                          received, indices.size());
                }
                // Integrity cross-check: the node folded the same
                // digest over the bytes it sent; a mismatch means
                // the subset we received is not what it computed.
                const std::string server = msg.getString("digest");
                const std::string local = format(
                    "%016llx", static_cast<unsigned long long>(
                                   subsetDigest));
                if (server != local) {
                    fatal("node digest %s != router fold %s",
                          server.c_str(), local.c_str());
                }
                return;  // subset complete
            }
            const size_t seq = msg.get("seq").asU64();
            if (seq != received || seq >= indices.size()) {
                fatal("result stream out of order (seq %zu, "
                      "expected %zu)",
                      seq, received);
            }
            std::string blob;
            RunResult result = resultFromJson(msg, &blob);
            if (blob.empty())
                fatal("node streamed a result without a blob");
            if (result.spec != (*gather.specs)[indices[seq]]) {
                fatal("node answered the wrong spec for point %zu",
                      indices[seq]);
            }
            subsetDigest = fnv1a64(blob.data(), blob.size(),
                                   subsetDigest);
            const size_t global = indices[seq];
            ++received;
            {
                std::lock_guard<std::mutex> lock(gather.mutex);
                if (!gather.done[global]) {
                    gather.done[global] = 1;
                    gather.results[global] = result;
                    gather.blobs[global] = blob;
                    if (*gather.hook)
                        (*gather.hook)(global, result, blob);
                }
            }
            {
                std::lock_guard<std::mutex> lock(membershipMutex_);
                ++nodes_[nodeIndex].pointsServed;
            }
        } catch (const FatalError &e) {
            markDead(nodeIndex, e.what());
            return;
        }
    }
}

FleetOutcome
FleetRouter::scatter(const std::vector<RunSpec> &specs,
                     const SweepRequest *sweep,
                     std::vector<SweepSlice> slices,
                     const PointHook &hook)
{
    const size_t n = specs.size();
    Gather gather;
    gather.specs = &specs;
    gather.done.assign(n, 0);
    gather.results.resize(n);
    gather.blobs.resize(n);
    gather.hook = &hook;

    FleetOutcome outcome;
    outcome.slices = std::move(slices);
    {
        std::lock_guard<std::mutex> lock(membershipMutex_);
        deadDuringBatch_.clear();
    }

    // Scatter rounds: assign every unfinished point to its ring
    // owner, stream all subsets concurrently, then re-assign whatever
    // a dying node left behind. Each extra round means at least one
    // node was newly marked dead (a successful subset lands all its
    // points), so the loop terminates: the batch completes or the
    // last node dies and nodeFor() fatal()s.
    bool firstRound = true;
    for (;;) {
        std::vector<std::vector<size_t>> assignment(nodes_.size());
        size_t pending = 0;
        {
            std::lock_guard<std::mutex> lock(membershipMutex_);
            if (ring_.liveCount() == 0) {
                fatal("fleet: all %zu nodes are dead (last error: "
                      "%s)",
                      nodes_.size(),
                      nodes_.empty()
                          ? "none"
                          : nodes_.back().lastError.c_str());
            }
            for (size_t i = 0; i < n; ++i) {
                if (gather.done[i])
                    continue;
                assignment[ring_.nodeFor(specs[i].canonical())]
                    .push_back(i);
                ++pending;
            }
        }
        if (pending == 0)
            break;
        if (!firstRound) {
            // These points were assigned to a node that died before
            // finishing them — this round recomputes them on the
            // survivors.
            outcome.rerouted += pending;
            obsReroutes_->inc(pending);
            inform("fleet: rerouting %zu unfinished points to %zu "
                   "surviving nodes",
                   pending, aliveCount());
        }
        firstRound = false;

        std::vector<std::thread> readers;
        for (size_t node = 0; node < assignment.size(); ++node) {
            if (assignment[node].empty())
                continue;
            obsScatterPoints_->observe(assignment[node].size());
            readers.emplace_back([this, node, &assignment, sweep,
                                  &gather] {
                streamSubset(node, assignment[node], sweep, gather);
            });
        }
        for (std::thread &reader : readers)
            reader.join();
    }

    // Fold the fleet-wide digest in GLOBAL submission order — the
    // property that makes it bit-identical to a single-node run.
    outcome.results = std::move(gather.results);
    uint64_t digest = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        const std::string &blob = gather.blobs[i];
        digest = fnv1a64(blob.data(), blob.size(), digest);
        const RunResult &r = outcome.results[i];
        if (r.cached)
            ++outcome.cacheServed;
        else if (r.fromStore)
            ++outcome.storeServed;
        else
            ++outcome.simulated;
    }
    outcome.digest = digest;
    {
        std::lock_guard<std::mutex> lock(membershipMutex_);
        outcome.deadNodes = deadDuringBatch_;
    }
    return outcome;
}

FleetOutcome
FleetRouter::runSweep(const SweepRequest &request,
                      const PointHook &hook,
                      const ExpandHook &onExpanded)
{
    // Expanded ONCE, router-side: the slice map and the global point
    // order come from here; nodes re-derive the identical expansion
    // from the family name (expandSweep is deterministic).
    SweepBuilder sweep = expandSweep(request);
    std::vector<SweepSlice> slices = sweep.slices();
    const std::vector<RunSpec> specs = sweep.take();
    if (onExpanded)
        onExpanded(specs.size(), slices);
    return scatter(specs, &request, std::move(slices), hook);
}

FleetOutcome
FleetRouter::runSpecs(const std::vector<RunSpec> &specs,
                      const PointHook &hook)
{
    return scatter(specs, nullptr, {}, hook);
}

} // namespace mtv
