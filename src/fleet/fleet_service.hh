/**
 * @file
 * FleetService: the `mtvd --route node1,node2,...` mode — a thin
 * routing daemon that owns NO engine. It listens like a regular mtvd
 * (unix socket and/or TCP) and speaks the same protocol v3 framing,
 * but serves requests by scattering them across its downstream nodes
 * through a FleetRouter: a client pointed at the router sees one
 * ordinary daemon whose sweep stream is the folded, in-order merge of
 * N nodes — same ack, same per-point lines, same done-line digest
 * (bit-identical to a single node or `mtvctl sweep --local`), with
 * mid-sweep node deaths absorbed by the router's reroute path.
 *
 * Served ops: ping (answers with fleet:true plus node counts),
 * status (the membership/health table), metrics (every live node's
 * registry gathered per-node plus fleet-wide counter totals and the
 * router's own registry), sweep, run, shutdown.
 * Engine-bound ops (stats, clear, cancel) answer with an error
 * naming a node to talk to instead — the router has no cache to
 * clear and its in-flight bookkeeping lives in the downstream nodes.
 *
 * Concurrency: one thread per client connection, requests served
 * synchronously in its read loop (a routed sweep streams inline).
 * The router's background health monitor runs while serve() does, so
 * dead nodes are discovered between requests, not only mid-sweep.
 */

#ifndef MTV_FLEET_FLEET_SERVICE_HH
#define MTV_FLEET_FLEET_SERVICE_HH

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/fleet/router.hh"
#include "src/service/protocol.hh"

namespace mtv
{

/** Configuration of one FleetService instance. */
struct FleetServiceOptions
{
    /** Unix socket to listen on. Empty = defaultSocketPath(). */
    std::string socketPath;
    /** TCP listen host; empty = unix socket only. */
    std::string tcpHost;
    /** TCP listen port; 0 = ephemeral (see tcpPort()). */
    int tcpPort = 0;
    /** Downstream node endpoints ("HOST:PORT" or socket paths). */
    std::vector<std::string> nodes;
    FleetOptions fleet;
};

/** The mtvd routing-daemon core (a FleetRouter behind listeners). */
class FleetService
{
  public:
    /** Parses the node list and binds the listeners; fatal()s on an
     *  unusable endpoint. Does NOT require the nodes to be up yet. */
    explicit FleetService(FleetServiceOptions options);
    ~FleetService();

    FleetService(const FleetService &) = delete;
    FleetService &operator=(const FleetService &) = delete;

    /** Accept and serve clients until stop(); blocks. */
    void serve();

    /** Ask serve() to return. Safe from any thread / signal. */
    void stop();

    const std::string &socketPath() const { return socketPath_; }

    /** Bound TCP port (kernel-chosen for an ephemeral bind), or 0
     *  when no TCP listener was configured. */
    int tcpPort() const { return tcpPort_; }

    FleetRouter &router() { return router_; }

  private:
    void handleConnection(int fd);
    /** Serve one request line; returns false when the connection
     *  should close (shutdown or write failure). @p wire is the
     *  connection's negotiated result-point format — the "hello" op
     *  writes it, the streaming ops read it. */
    bool handleRequest(const Json &request, LineChannel &channel,
                       WireFormat &wire);
    /** Scatter one sweep and stream the folded merge, re-ordering
     *  the nodes' arrival order back into global submission order. */
    bool handleSweep(const Json &request, LineChannel &channel,
                     WireFormat wire);
    /** The "compare" op, fleet-wide: scatter the family's expansion
     *  across the nodes, gather, fold through compareDesigns(), and
     *  answer the one aggregated line. */
    bool handleCompare(const Json &request, LineChannel &channel);
    /** Scatter an explicit spec batch the same way. */
    bool handleRun(const Json &request, LineChannel &channel,
                   WireFormat wire);
    /** Gather every live node's "metrics" response plus the router's
     *  own registry; answers with per-node trees and counter totals. */
    bool handleMetrics(const Json &request, LineChannel &channel);
    void joinFinishedLocked();
    /** Shut down connections and join every client thread. */
    void teardownClients();

    struct Listener
    {
        int fd = -1;
        Endpoint endpoint;
    };

    std::string socketPath_;
    FleetRouter router_;
    std::vector<Listener> listeners_;
    int tcpPort_ = 0;
    std::atomic<bool> stopping_{false};

    std::mutex clientsMutex_;
    std::unordered_map<int, std::thread> activeClients_;
    std::vector<std::thread> finishedClients_;
};

} // namespace mtv

#endif // MTV_FLEET_FLEET_SERVICE_HH
