/**
 * @file
 * HashRing: the consistent-hash ring behind fleet routing. Each node
 * contributes a fixed number of virtual points (FNV-1a of
 * "name#vnode", avalanche-finalized — see ring.cc) on a 64-bit ring;
 * a key is owned by the first live point clockwise from the key's
 * position, hashed the same way. Removing a dead node deletes only
 * its points, so exactly the keys it owned remap (to their next live
 * successor) and every other key keeps its owner — the property that
 * lets a mid-sweep failover recompute only the dead node's slice.
 *
 * The ring is a value type and fully deterministic: the same node
 * list (order included — ties between identical hash points break by
 * node index) always produces the same assignment, on the router and
 * in tests alike. Not thread-safe; FleetRouter guards its ring with
 * the membership mutex.
 */

#ifndef MTV_FLEET_RING_HH
#define MTV_FLEET_RING_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mtv
{

/** Consistent-hash ring over a fixed node list with liveness. */
class HashRing
{
  public:
    /**
     * Build the ring over @p nodes (names must be unique — fleet
     * endpoints are), @p vnodesPerNode points each. More vnodes
     * smooth the key distribution at the cost of a larger sorted
     * array; 64 keeps the max/min node share within ~2x.
     */
    explicit HashRing(std::vector<std::string> nodes,
                      int vnodesPerNode = 64);

    /** Total nodes (live and dead). */
    size_t size() const { return nodes_.size(); }

    /** Nodes still on the ring. */
    size_t liveCount() const { return liveCount_; }

    const std::vector<std::string> &nodes() const { return nodes_; }

    bool isLive(size_t index) const { return live_.at(index); }

    /**
     * Index (into nodes()) of the live node owning @p key. fatal()s
     * when every node has been removed — the caller (FleetRouter)
     * turns that into "all fleet nodes dead".
     */
    size_t nodeFor(const std::string &key) const;

    /**
     * Drop node @p index's points from the ring (it died): only keys
     * it owned remap. Idempotent.
     */
    void removeNode(size_t index);

    /**
     * Re-insert node @p index's points (it came back): exactly the
     * keys those points own clockwise remap back to it, restoring the
     * assignment the full ring had — revival is the inverse of
     * removal, deterministically. Idempotent.
     */
    void restoreNode(size_t index);

  private:
    std::vector<std::string> nodes_;
    std::vector<bool> live_;
    size_t liveCount_ = 0;
    int vnodesPerNode_ = 0;
    /** (point hash, node index), sorted — the ring itself. */
    std::vector<std::pair<uint64_t, uint32_t>> ring_;
};

} // namespace mtv

#endif // MTV_FLEET_RING_HH
