#include "src/fleet/ring.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{

namespace
{

/**
 * Ring positions need every bit of the 64-bit space well mixed, and
 * raw FNV-1a is not enough: strings differing only in their suffix
 * ("name#0" vs "name#63", "...latency=20" vs "...latency=21") get
 * one trailing multiply by the ~2^40 prime, so their top ~24 bits
 * barely move and a node's vnodes cluster into one arc — one node
 * ends up owning nearly every key. A finalizer (the murmur3 fmix64
 * avalanche) on top restores the spread while keeping the position a
 * pure deterministic function of the string.
 */
uint64_t
ringPosition(const std::string &text)
{
    uint64_t h = fnv1a64(text.data(), text.size());
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 33;
    return h;
}

} // namespace

HashRing::HashRing(std::vector<std::string> nodes, int vnodesPerNode)
    : nodes_(std::move(nodes)), vnodesPerNode_(vnodesPerNode)
{
    if (nodes_.empty())
        fatal("hash ring needs at least one node");
    if (vnodesPerNode < 1)
        fatal("hash ring needs at least one vnode per node, got %d",
              vnodesPerNode);
    live_.assign(nodes_.size(), true);
    liveCount_ = nodes_.size();
    ring_.reserve(nodes_.size() * static_cast<size_t>(vnodesPerNode));
    for (size_t i = 0; i < nodes_.size(); ++i) {
        for (int v = 0; v < vnodesPerNode; ++v) {
            const std::string point =
                format("%s#%d", nodes_[i].c_str(), v);
            ring_.emplace_back(ringPosition(point),
                               static_cast<uint32_t>(i));
        }
    }
    // Ties between identical hash points (possible only for duplicate
    // node names) break by node index, keeping the ring deterministic.
    std::sort(ring_.begin(), ring_.end());
}

size_t
HashRing::nodeFor(const std::string &key) const
{
    if (ring_.empty())
        fatal("hash ring has no live nodes left");
    const uint64_t h = ringPosition(key);
    // First point clockwise from h, wrapping past the top.
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(),
        std::make_pair(h, static_cast<uint32_t>(0)));
    if (it == ring_.end())
        it = ring_.begin();
    return it->second;
}

void
HashRing::removeNode(size_t index)
{
    if (!live_.at(index))
        return;
    live_[index] = false;
    --liveCount_;
    ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                               [index](const auto &point) {
                                   return point.second == index;
                               }),
                ring_.end());
}

void
HashRing::restoreNode(size_t index)
{
    if (live_.at(index))
        return;
    live_[index] = true;
    ++liveCount_;
    // The point positions are a pure function of name and vnode, so
    // re-insertion reproduces exactly the points removeNode() erased.
    for (int v = 0; v < vnodesPerNode_; ++v) {
        const std::string point =
            format("%s#%d", nodes_[index].c_str(), v);
        ring_.emplace_back(ringPosition(point),
                           static_cast<uint32_t>(index));
    }
    std::sort(ring_.begin(), ring_.end());
}

} // namespace mtv
