/**
 * @file
 * FleetRouter: scatter/gather of experiment batches across N mtvd
 * nodes with mid-sweep failover. The router is pure protocol client —
 * it owns no engine — so the same class serves both deployments:
 * client-side routing inside `mtvctl --fleet` and the thin routing
 * daemon `mtvd --route` (src/fleet/fleet_service.hh).
 *
 * Routing: each point's RunSpec::canonical() string is consistent-
 * hashed (HashRing) across the nodes, so each node's sharded
 * ResultStore owns a disjoint slice of the key space and a re-run of
 * the same sweep warms the same node caches. Sweep families are
 * expanded ONCE (by the router); every node receives the family name
 * plus only the global point indices it owns via the existing "sweep"
 * op's "points" field, and expands the family itself — ~100 bytes of
 * request per node instead of megabytes of specs.
 *
 * Gather: one reader thread per node consumes that node's result
 * stream, mapping subset seq numbers back to global indices. Results
 * land in a global table, so the caller sees one multiplexed stream
 * (via the per-point hook, arrival order) and ONE digest: FNV-1a
 * folded over the canonical stats blobs in GLOBAL submission order,
 * bit-identical to running the whole sweep on a single node or
 * `mtvctl sweep --local`.
 *
 * Failover: membership is a health table; a node is marked dead by a
 * sticky mark on any connect/write/read/protocol failure (or by the
 * periodic status pings of startHealthMonitor()). Death removes the
 * node from the ring and closes the router's connection to it — on a
 * half-dead node that close triggers the daemon-side reap path
 * (cancel tokens + lane drop, see src/service/server.hh), so a
 * wedged node stops simulating for nobody. Points the dead node had
 * already streamed are kept (its acked slice map); the unfinished
 * remainder is rerouted to the survivors on the next scatter round.
 * The batch completes as long as one node lives; with zero survivors
 * the router fatal()s (FleetService turns that into a protocol error
 * for its client).
 */

#ifndef MTV_FLEET_ROUTER_HH
#define MTV_FLEET_ROUTER_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/api/run_spec.hh"
#include "src/api/sweep.hh"
#include "src/fleet/ring.hh"
#include "src/obs/metrics.hh"
#include "src/service/protocol.hh"

namespace mtv
{

/** Tunables of one FleetRouter. */
struct FleetOptions
{
    /** Virtual points per node on the hash ring. */
    int vnodesPerNode = 64;
    /** Period of the background health pings (startHealthMonitor). */
    double healthIntervalSeconds = 2.0;
};

/** Health-table snapshot of one fleet node. */
struct FleetNodeStatus
{
    /** The endpoint text as configured (ring identity). */
    std::string name;
    bool alive = true;
    /** Last connect/protocol failure (empty while healthy). */
    std::string lastError;
    /** Result lines this node streamed to us. */
    uint64_t pointsServed = 0;
};

/** One gathered batch (the fleet analogue of a done line). */
struct FleetOutcome
{
    /** Global submission order — position i is spec i. */
    std::vector<RunResult> results;
    /** Slice map of the sweep expansion (empty for spec batches). */
    std::vector<SweepSlice> slices;
    /** FNV-1a over the stats blobs in global submission order —
     *  bit-identical to a single-node or --local run. */
    uint64_t digest = 0;
    uint64_t simulated = 0;
    uint64_t cacheServed = 0;
    uint64_t storeServed = 0;
    /** Points re-homed to survivors after a node died mid-batch. */
    uint64_t rerouted = 0;
    /** Nodes lost (newly marked dead) while this batch ran. */
    std::vector<std::string> deadNodes;
};

/** Consistent-hash scatter/gather client over N mtvd nodes. */
class FleetRouter
{
  public:
    /**
     * @p endpointTexts: one "HOST:PORT" or unix socket path per node
     * (parsed strictly via parseEndpoint()). The texts are the ring
     * identities — every router configured with the same list routes
     * identically. fatal()s on an empty list.
     */
    explicit FleetRouter(
        const std::vector<std::string> &endpointTexts,
        FleetOptions options = {});
    ~FleetRouter();

    FleetRouter(const FleetRouter &) = delete;
    FleetRouter &operator=(const FleetRouter &) = delete;

    size_t nodeCount() const;
    size_t aliveCount() const;

    /** Health-table snapshot (status op of `mtvd --route`). */
    std::vector<FleetNodeStatus> status() const;

    /** Ring owner (node index) of one canonical spec key among the
     *  currently-live nodes. Exposed for ownership tests. */
    size_t nodeForKey(const std::string &canonical) const;

    /**
     * Ping every node — the live ones AND the dead ones. A failure
     * marks a live node dead (sticky within a batch round); a healthy
     * pong from a dead node revives it: its ring points come back, so
     * exactly its old key slice re-homes to it and subsequent scatter
     * rounds use it again — a restarted daemon rejoins the fleet
     * without a router restart. Returns the number of live nodes
     * afterwards.
     */
    size_t pingAll();

    /**
     * Start the periodic health monitor (pingAll() every
     * healthIntervalSeconds) — `mtvd --route` runs one so dead nodes
     * are discovered between requests, not only mid-sweep.
     */
    void startHealthMonitor();
    void stopHealthMonitor();

    /**
     * Per-point callback, invoked as results arrive (arrival order,
     * concurrent node streams serialized by the router). @p blob is
     * the canonical stats blob — what the digest folds over.
     */
    using PointHook = std::function<void(
        size_t globalIndex, const RunResult &result,
        const std::string &blob)>;

    /** Called once after the sweep family expanded, before any node
     *  is contacted — the ack data (count + slice map). */
    using ExpandHook = std::function<void(
        size_t count, const std::vector<SweepSlice> &slices)>;

    /**
     * Expand @p request once, scatter it across the live nodes, and
     * gather the folded outcome. Retries dead nodes' unfinished
     * points on survivors until the batch completes; fatal()s only
     * when no node is left alive.
     */
    FleetOutcome runSweep(const SweepRequest &request,
                          const PointHook &hook = nullptr,
                          const ExpandHook &onExpanded = nullptr);

    /**
     * Scatter an explicit spec batch (the "run" op per node) — the
     * routing/failover machinery without a sweep family. Duplicate
     * canonical specs are fine (distinct global positions; the
     * engine coalesces them node-side).
     */
    FleetOutcome runSpecs(const std::vector<RunSpec> &specs,
                          const PointHook &hook = nullptr);

  private:
    struct Node
    {
        std::string name;  ///< endpoint text (ring identity)
        Endpoint endpoint;
        bool alive = true;
        std::string lastError;
        uint64_t pointsServed = 0;
    };

    /** Mutable state of one gather in progress (shared by the node
     *  reader threads of one scatter round). */
    struct Gather;

    /** Mark @p index dead (sticky) and drop it from the ring; no-op
     *  when already dead. Caller must NOT hold membershipMutex_. */
    void markDead(size_t index, const std::string &error);

    /** The inverse: put a healthy-again node back on the ring; no-op
     *  when already alive. Caller must NOT hold membershipMutex_. */
    void revive(size_t index);

    /** Stream one node's subset: send the request, consume the
     *  stream, land results in @p gather. Any failure marks the node
     *  dead; already-landed points are kept. */
    void streamSubset(size_t nodeIndex,
                      const std::vector<size_t> &indices,
                      const SweepRequest *sweep, Gather &gather);

    /** The scatter/gather/reroute loop shared by runSweep (sweep op,
     *  @p sweep non-null) and runSpecs (run op). */
    FleetOutcome scatter(const std::vector<RunSpec> &specs,
                         const SweepRequest *sweep,
                         std::vector<SweepSlice> slices,
                         const PointHook &hook);

    FleetOptions options_;

    /** Guards nodes_, ring_ and deadDuringBatch_. */
    mutable std::mutex membershipMutex_;
    std::vector<Node> nodes_;
    HashRing ring_;
    /** Names newly marked dead since the current batch started. */
    std::vector<std::string> deadDuringBatch_;

    std::mutex monitorMutex_;
    std::condition_variable monitorWake_;
    std::thread monitor_;
    bool monitorStop_ = false;

    // Process-wide observability handles (src/obs/metrics.hh).
    Counter *obsDeadMarks_ = nullptr;
    Counter *obsRevives_ = nullptr;
    Counter *obsReroutes_ = nullptr;
    Histogram *obsPingRttUs_ = nullptr;
    Histogram *obsScatterPoints_ = nullptr;
};

} // namespace mtv

#endif // MTV_FLEET_ROUTER_HH
