#include "src/core/pipelines.hh"

#include "src/common/logging.hh"

namespace mtv
{

void
PipelineSet::integrateInto(std::array<uint64_t, numFuStates> &hist,
                           uint64_t from, uint64_t to,
                           const MemSystem &mem) const
{
    UnitSpan units[16];
    size_t count = 0;
    const auto add = [&units, &count](int bit, const PipeUnit &pipe) {
        if (pipe.freeCycle() > pipe.busyFrom()) {
            MTV_ASSERT(count < 16);
            units[count++] = {bit, pipe.busyFrom(), pipe.freeCycle()};
        }
    };
    add(2, fu2_);
    add(1, fu1_);
    for (const auto &port : mem.ports())
        add(0, port.pipe);
    accumulateJointStates(hist, from, to, units, count);
}

} // namespace mtv
