#include "src/core/sim_error.hh"

#include "src/common/strutil.hh"

namespace mtv
{

SimError::SimError(uint64_t cycle, uint64_t stalledCycles,
                   std::vector<BlockedContext> contexts)
    : std::runtime_error(buildMessage(cycle, stalledCycles, contexts)),
      cycle_(cycle), stalledCycles_(stalledCycles),
      contexts_(std::move(contexts))
{
}

std::string
SimError::buildMessage(uint64_t cycle, uint64_t stalledCycles,
                       const std::vector<BlockedContext> &contexts)
{
    std::string msg = format(
        "simulator deadlock: no dispatch for %llu cycles at cycle "
        "%llu",
        static_cast<unsigned long long>(stalledCycles),
        static_cast<unsigned long long>(cycle));
    for (const auto &ctx : contexts) {
        msg += format("; ctx%d(%s) %s", ctx.context,
                      ctx.program.empty() ? "-" : ctx.program.c_str(),
                      blockReasonName(ctx.reason));
        if (!ctx.windowHead.empty())
            msg += format(" at '%s'", ctx.windowHead.c_str());
    }
    return msg;
}

} // namespace mtv
