/**
 * @file
 * The batched lockstep kernel (SimKernel::Batched): run K sweep
 * points — near-identical machines over the same programs — in one
 * kernel instance, amortizing the per-point costs the event kernel
 * still pays K times.
 *
 * Three layers (DESIGN.md section 1.3):
 *
 *  - DecodedProgram: the per-instruction work that depends only on
 *    the instruction stream — functional-unit class, operand/bank
 *    indices, clamped vector length, operand validation — hoisted out
 *    of the per-cycle loop and cached process-wide, so a family of K
 *    points decodes its programs exactly once (the makeProgram stream
 *    cache extended from shared bytes to shared decode).
 *
 *  - A fast lane per point: a transliteration of the event kernel
 *    (VectorSim::runEvent + DispatchUnit plan/commit/wakeups)
 *    specialized to the machines sweeps actually run — one decode
 *    slot, no decoupled slip window — with per-lane precomputed
 *    latencies. State is structure-of-arrays point-major: each lane
 *    owns flat context blocks (scoreboards, bank ports, blocked[]
 *    reasons) with no per-cycle allocation. Points outside the fast
 *    lane's shape (dual-scalar, decode width > 1, decoupled) fall
 *    back to a plain VectorSim(Event) inside the batch — slower,
 *    never wrong.
 *
 *  - The lockstep driver: all lanes advance through one loop that
 *    repeatedly picks the lane with the minimum local clock
 *    (min-reduction over the lane-now array) and advances it one
 *    event step; a lane whose next event is far away catches up in
 *    bulk through the PR 3 span machinery it inherits. Lanes share
 *    read-only decode state but no mutable state, so per-point
 *    results are bit-identical to single-point runs — the invariant
 *    the golden digests pin.
 */

#ifndef MTV_CORE_BATCH_KERNEL_HH
#define MTV_CORE_BATCH_KERNEL_HH

#include <exception>
#include <vector>

#include "src/core/metrics.hh"
#include "src/isa/machine_params.hh"
#include "src/trace/source.hh"

namespace mtv
{

/** One sweep point of a batch: a machine plus its run request. */
struct BatchPoint
{
    MachineParams params;

    /** Mirrors the three VectorSim entry points. */
    enum class Kind : uint8_t
    {
        Single,   ///< sources = {program} on context 0
        Group,    ///< sources = per-context programs (section 4.1)
        JobQueue  ///< sources = the job list (section 7)
    };
    Kind kind = Kind::Single;

    /** Per Kind above. Group requires distinct instances sized to
     *  params.contexts; JobQueue requires at least one job. */
    std::vector<InstructionSource *> sources;

    /** Fetch budget for truncated reference runs (Kind::Single). */
    uint64_t maxInstructions = 0;
};

/**
 * Outcome of one point. A wedged machine (SimError) fails only its
 * own point; batchmates complete normally.
 */
struct BatchResult
{
    SimStats stats;
    std::exception_ptr error;  ///< non-null: stats is meaningless
};

/**
 * Simulate every point, lockstep where eligible. Results are indexed
 * like @p points and each is bit-identical to the same point run
 * through SimKernel::Event. fatal()s on malformed points (the same
 * user errors the VectorSim entry points reject).
 */
std::vector<BatchResult> runBatch(const std::vector<BatchPoint> &points);

/** Unwrap one point: rethrow its error or move its stats out. */
SimStats takeBatchResult(std::vector<BatchResult> results, size_t index);

} // namespace mtv

#endif // MTV_CORE_BATCH_KERNEL_HH
