/**
 * @file
 * The architectural state one hardware context owns: its instruction
 * source and fetch window, its scalar/vector scoreboards and register
 * bank ports, and its per-thread statistics. Shared by the dispatch
 * unit (which plans and commits against this state), the scheduler
 * (which reads the pending ready-times out of it) and the run
 * machinery in VectorSim.
 */

#ifndef MTV_CORE_CONTEXT_HH
#define MTV_CORE_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "src/core/metrics.hh"
#include "src/core/resources.hh"
#include "src/isa/instruction.hh"
#include "src/trace/source.hh"

namespace mtv
{

/** Everything one hardware context owns. */
struct Context
{
    InstructionSource *source = nullptr;
    /** Fetched-but-not-dispatched instructions, program order.
     *  Size 1 normally; up to 1+decoupleDepth when decoupled. */
    std::vector<Instruction> window;
    bool finished = false;        ///< no more work will be fetched
    bool restartable = false;     ///< restart source at end-of-run
    uint64_t fetchReadyAt = 0;    ///< branch-shadow gate
    /** Unified S0-7 + A0-7 scoreboard, sized from the ISA widths
     *  (indices are checked against it at fetch). */
    uint64_t scalarReady[numSRegs + numARegs] = {};
    VRegTiming vregs[numVRegs] = {};
    BankPorts banks[numVRegs / 2] = {};
    /**
     * Bounded-renaming pool (MachineParams::renameDepth slots in use;
     * the array is sized for the validated maximum). Each entry is the
     * cycle its spare physical register retires — the displaced
     * register's last read/write. A slot is free once its time has
     * passed; min over the in-use prefix gates a renamed dispatch.
     */
    uint64_t renameSlots[8] = {};
    ThreadStats stats;
    int jobIndex = -1;            ///< job currently assigned

    /** Still holds or will fetch work (round-robin eligibility). */
    bool hasWork() const { return !finished || !window.empty(); }

    /** Earliest-retiring rename slot among the first @p depth. */
    uint64_t
    minRenameSlot(int depth) const
    {
        uint64_t best = renameSlots[0];
        for (int i = 1; i < depth; ++i)
            best = best < renameSlots[i] ? best : renameSlots[i];
        return best;
    }
};

} // namespace mtv

#endif // MTV_CORE_CONTEXT_HH
