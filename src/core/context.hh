/**
 * @file
 * The architectural state one hardware context owns: its instruction
 * source and fetch window, its scalar/vector scoreboards and register
 * bank ports, and its per-thread statistics. Shared by the dispatch
 * unit (which plans and commits against this state), the scheduler
 * (which reads the pending ready-times out of it) and the run
 * machinery in VectorSim.
 */

#ifndef MTV_CORE_CONTEXT_HH
#define MTV_CORE_CONTEXT_HH

#include <cstdint>
#include <vector>

#include "src/core/metrics.hh"
#include "src/core/resources.hh"
#include "src/isa/instruction.hh"
#include "src/trace/source.hh"

namespace mtv
{

/** Everything one hardware context owns. */
struct Context
{
    InstructionSource *source = nullptr;
    /** Fetched-but-not-dispatched instructions, program order.
     *  Size 1 normally; up to 1+decoupleDepth when decoupled. */
    std::vector<Instruction> window;
    bool finished = false;        ///< no more work will be fetched
    bool restartable = false;     ///< restart source at end-of-run
    uint64_t fetchReadyAt = 0;    ///< branch-shadow gate
    /** Unified S0-7 + A0-7 scoreboard, sized from the ISA widths
     *  (indices are checked against it at fetch). */
    uint64_t scalarReady[numSRegs + numARegs] = {};
    VRegTiming vregs[numVRegs] = {};
    BankPorts banks[numVRegs / 2] = {};
    ThreadStats stats;
    int jobIndex = -1;            ///< job currently assigned

    /** Still holds or will fetch work (round-robin eligibility). */
    bool hasWork() const { return !finished || !window.empty(); }
};

} // namespace mtv

#endif // MTV_CORE_CONTEXT_HH
