/**
 * @file
 * PipelineSet: the machine's two vector arithmetic pipelines plus the
 * joint busy-state accounting of the paper's (FU2, FU1, LD) tuple.
 *
 * Like the memory ports, the pipes report the cycle they next change
 * state (nextEventAfter) so the event-driven kernel never polls them,
 * and the joint-state histogram can be either sampled one cycle at a
 * time (the stepped kernel) or integrated over a whole idle span
 * (the event kernel) with bit-identical results.
 */

#ifndef MTV_CORE_PIPELINES_HH
#define MTV_CORE_PIPELINES_HH

#include <array>
#include <cstdint>

#include "src/core/metrics.hh"
#include "src/core/resources.hh"
#include "src/memsys/mem_system.hh"

namespace mtv
{

/** The two shared vector arithmetic pipelines (FU1 general, FU2). */
class PipelineSet
{
  public:
    PipeUnit &fu1() { return fu1_; }
    PipeUnit &fu2() { return fu2_; }
    const PipeUnit &fu1() const { return fu1_; }
    const PipeUnit &fu2() const { return fu2_; }

    /** Reset both pipes to pristine state. */
    void
    clear()
    {
        fu1_.clear();
        fu2_.clear();
    }

    /** Joint (FU2, FU1, LD) busy bits at @p now (paper's encoding). */
    int
    stateBitsAt(uint64_t now, const MemSystem &mem) const
    {
        return (fu2_.busyAt(now) ? 4 : 0) | (fu1_.busyAt(now) ? 2 : 0) |
               (mem.pipeBusyAt(now) ? 1 : 0);
    }

    /** Sample one cycle into the joint-state histogram. */
    void
    sampleInto(std::array<uint64_t, numFuStates> &hist, uint64_t now,
               const MemSystem &mem) const
    {
        ++hist[static_cast<size_t>(stateBitsAt(now, mem))];
    }

    /**
     * Add the cycles [from, to) to @p hist, bit-identically to
     * sampling each cycle. Occupations never change while the decode
     * stage is blocked (only a commit occupies a unit), so the busy
     * intervals captured here are exact for the whole span.
     */
    void integrateInto(std::array<uint64_t, numFuStates> &hist,
                       uint64_t from, uint64_t to,
                       const MemSystem &mem) const;

  private:
    PipeUnit fu1_;
    PipeUnit fu2_;
};

} // namespace mtv

#endif // MTV_CORE_PIPELINES_HH
