/**
 * @file
 * The cycle-level simulator of the (multithreaded) vector machine.
 *
 * One facade models the whole design space of the paper:
 *  - contexts == 1 reproduces the reference Convex C3400;
 *  - contexts in 2..4 is the multithreaded architecture of section 3;
 *  - dualScalar == true is the Fujitsu VP2000-style machine of
 *    section 9 (one decoder/scalar unit per context, shared vector
 *    facility);
 *  - decodeWidth > 1 is the "simultaneous issue from several threads"
 *    future-work extension (section 10);
 *  - loadPorts/storePorts model the Cray-like multi-port memory of
 *    section 10;
 *  - renaming removes WAW/WAR dispatch hazards (section 10);
 *  - decoupleDepth > 0 models the authors' earlier decoupled vector
 *    architecture (HPCA-2 1996): vector memory instructions may slip
 *    past a blocked head within a small window.
 *
 * The machine is decomposed into components (DESIGN.md section 1):
 * MemSystem (ports + main memory), PipelineSet (the two arithmetic
 * pipes + joint-state accounting), DispatchUnit (pure planning +
 * commit) and Scheduler (next-event extraction). VectorSim owns the
 * run machinery — fetch, thread selection, termination — and drives
 * the components through one of two kernels:
 *
 *  - SimKernel::Stepped evaluates decode every cycle (the historical
 *    loop, kept as the executable specification);
 *  - SimKernel::Event (the default) runs the same per-cycle code
 *    while anything can dispatch, but when every context is blocked
 *    it jumps `now` straight to the earliest pending ready-time and
 *    integrates the per-cycle accounting over the skipped span.
 *
 * Both kernels produce bit-identical SimStats (guarded by
 * tests/test_golden.cc and the CI kernel-parity job); the event
 * kernel is simply faster the longer the memory latency.
 *
 * Timing model summary (see DESIGN.md section 3.3): dispatch is
 * in-order per thread (except the decoupled slip), one instruction
 * per decode slot per cycle, and succeeds only when the instruction
 * can actually begin (a failed attempt loses the cycle and the switch
 * logic picks another thread). Vector pipelines process one element
 * per cycle; chaining is fully flexible between functional units and
 * into the store unit, and forbidden out of memory loads (matching
 * the Convex C34/Cray-2/Cray-3).
 */

#ifndef MTV_CORE_SIM_HH
#define MTV_CORE_SIM_HH

#include <vector>

#include "src/core/context.hh"
#include "src/core/dispatch.hh"
#include "src/core/metrics.hh"
#include "src/core/pipelines.hh"
#include "src/core/scheduler.hh"
#include "src/isa/machine_params.hh"
#include "src/memsys/mem_system.hh"
#include "src/trace/source.hh"

namespace mtv
{

/** How a simulation run terminates. */
enum class RunMode : uint8_t
{
    /**
     * Context 0 runs its program exactly once; other contexts (group
     * runs) restart their programs when they finish. This is the
     * paper's section 4.1 speedup methodology; ThreadStats records
     * full runs and the fractional progress of the last run.
     */
    UntilThreadZero,
    /**
     * A fixed list of jobs is distributed over the contexts; a context
     * finishing its job takes the next one. The run ends when all jobs
     * are done (section 7 methodology; SimStats::jobs records the
     * execution profile of Figure 9).
     */
    JobQueue
};

/** Which advancement strategy the simulator runs. */
enum class SimKernel : uint8_t
{
    /** Event-driven: skip spans where no context can dispatch. */
    Event,
    /** Cycle-stepped: evaluate decode every cycle (the reference). */
    Stepped,
    /**
     * Lockstep batch driver (src/core/batch_kernel.hh): runs K sweep
     * points in one kernel instance over pre-decoded programs. On a
     * VectorSim it simulates its single point through the same fast
     * lane; the K-way win comes from ExperimentEngine coalescing.
     * Bit-identical to Event/Stepped (tests/test_golden.cc).
     */
    Batched
};

/** Short name for reports and the MTV_KERNEL environment knob. */
const char *simKernelName(SimKernel kernel);

/** The multithreaded vector machine. */
class VectorSim
{
  public:
    /** Build a machine; @p params is validated (fatal on user error). */
    explicit VectorSim(const MachineParams &params,
                       SimKernel kernel = SimKernel::Event);

    VectorSim(const VectorSim &) = delete;
    VectorSim &operator=(const VectorSim &) = delete;

    /**
     * Run a single program to completion on context 0 (the reference-
     * machine experiment; also usable with multithreaded params, the
     * other contexts simply stay empty).
     *
     * @param source          The program.
     * @param maxInstructions When non-zero, stop fetching after this
     *                        many instructions (the truncated runs of
     *                        the speedup accounting).
     */
    SimStats runSingle(InstructionSource &source,
                       uint64_t maxInstructions = 0);

    /**
     * Group run (paper section 4.1): programs[i] runs on context i;
     * the run ends when context 0 completes its (single) run, with
     * other programs restarted as often as needed.
     * Requires programs.size() == params.contexts.
     */
    SimStats runGroup(const std::vector<InstructionSource *> &programs);

    /**
     * Job-queue run (paper section 7): the job list is served by all
     * contexts; each context takes the next job when its current one
     * finishes.
     */
    SimStats runJobQueue(const std::vector<InstructionSource *> &jobs);

    /** The machine description this simulator was built with. */
    const MachineParams &params() const { return params_; }

    /** The advancement strategy this simulator runs. */
    SimKernel kernel() const { return kernel_; }

  private:
    // --- run machinery ---
    void resetMachine(RunMode mode);
    SimStats run();
    SimStats runStepped();
    SimStats runEvent();
    bool done(uint64_t now) const;

    /**
     * One decode cycle: attempt dispatch on the current slot(s).
     * Returns true when at least one instruction dispatched; on an
     * idle cycle, scanWhy_ holds every context's block reason
     * (BlockReason::None = ready but not holding the slot).
     */
    bool decodeCycle(uint64_t now);
    bool decodeSingleSlot(uint64_t now);
    bool decodeMultiSlot(uint64_t now);

    /** Fill scanWhy_: each context's block reason at @p now. */
    void scanContexts(uint64_t now);

    /**
     * Bulk-account the fully-blocked cycles (from, to) — the decode
     * side of each skipped cycle, using the scanWhy_ reasons frozen
     * over the span — plus the joint-state histogram over [from, to).
     */
    void accountIdleSpan(uint64_t from, uint64_t to);

    /** Replicate @p steps round-robin holder advances in one go. */
    void advanceRoundRobin(uint64_t steps);

    /** Throw SimError when @p now is past the no-dispatch watchdog. */
    void checkWatchdog(uint64_t now);

    /** Build and throw the structured wedged-machine error. */
    [[noreturn]] void throwWedged(uint64_t now);

    SimStats takeStats(uint64_t cycles);

    /** Keep every context's fetch window primed at @p t. */
    void primeFetch(uint64_t t);

    /**
     * Keep the context's fetch window filled (up to its depth, never
     * past a branch). Handles end-of-run per mode (restart / next
     * job / finish) once the window has drained.
     * @return true when at least one instruction is waiting.
     */
    bool ensureWindow(Context &ctx, uint64_t now, BlockReason &why);

    /**
     * Validate a fetched instruction's register indices against the
     * scoreboard/register-file sizes, so a corrupt trace or a buggy
     * generator fails loudly instead of indexing out of bounds.
     */
    void checkOperands(const Instruction &inst) const;

    /** Window capacity for this machine. */
    size_t
    windowDepth() const
    {
        return 1 + static_cast<size_t>(params_.decoupleDepth);
    }

    /** Pick the next context for the single decode slot, using the
     *  readiness recorded in scanWhy_ (round-robin ignores it). */
    void switchThread();

    /** More than one dispatch slot per cycle on this machine? */
    bool
    multiSlot() const
    {
        return params_.dualScalar || params_.decodeWidth > 1;
    }

    // --- configuration ---
    MachineParams params_;
    SimKernel kernel_;

    // --- components ---
    MemSystem mem_;
    PipelineSet pipes_;
    DispatchUnit dispatch_;
    Scheduler scheduler_;

    // --- shared machine state ---
    std::vector<Context> contexts_;
    int currentThread_ = 0;
    std::vector<uint64_t> lastSelected_;  ///< per context, for FairLru
    std::vector<BlockReason> scanWhy_;    ///< per context, per cycle

    // --- run bookkeeping ---
    RunMode mode_ = RunMode::UntilThreadZero;
    std::vector<InstructionSource *> jobs_;
    size_t nextJob_ = 0;
    uint64_t maxInstructions_ = 0;
    uint64_t lastDispatchCycle_ = 0;
    uint64_t stallLimit_ = 0;

    // --- statistics ---
    uint64_t decodeIdle_ = 0;
    std::array<uint64_t, numFuStates> stateHist_{};
    std::vector<JobRecord> jobRecords_;
};

} // namespace mtv

#endif // MTV_CORE_SIM_HH
