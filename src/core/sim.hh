/**
 * @file
 * The cycle-level simulator of the (multithreaded) vector machine.
 *
 * One class models the whole design space of the paper:
 *  - contexts == 1 reproduces the reference Convex C3400;
 *  - contexts in 2..4 is the multithreaded architecture of section 3;
 *  - dualScalar == true is the Fujitsu VP2000-style machine of
 *    section 9 (one decoder/scalar unit per context, shared vector
 *    facility);
 *  - decodeWidth > 1 is the "simultaneous issue from several threads"
 *    future-work extension (section 10);
 *  - loadPorts/storePorts model the Cray-like multi-port memory of
 *    section 10;
 *  - renaming removes WAW/WAR dispatch hazards (section 10);
 *  - decoupleDepth > 0 models the authors' earlier decoupled vector
 *    architecture (HPCA-2 1996): vector memory instructions may slip
 *    past a blocked head within a small window.
 *
 * Timing model summary (see DESIGN.md section 3.3): dispatch is
 * in-order per thread (except the decoupled slip), one instruction
 * per decode slot per cycle, and succeeds only when the instruction
 * can actually begin (a failed attempt loses the cycle and the switch
 * logic picks another thread). Vector pipelines process one element
 * per cycle; chaining is fully flexible between functional units and
 * into the store unit, and forbidden out of memory loads (matching
 * the Convex C34/Cray-2/Cray-3).
 */

#ifndef MTV_CORE_SIM_HH
#define MTV_CORE_SIM_HH

#include <optional>
#include <vector>

#include "src/core/metrics.hh"
#include "src/core/resources.hh"
#include "src/isa/machine_params.hh"
#include "src/memsys/address_bus.hh"
#include "src/memsys/main_memory.hh"
#include "src/trace/source.hh"

namespace mtv
{

/** How a simulation run terminates. */
enum class RunMode : uint8_t
{
    /**
     * Context 0 runs its program exactly once; other contexts (group
     * runs) restart their programs when they finish. This is the
     * paper's section 4.1 speedup methodology; ThreadStats records
     * full runs and the fractional progress of the last run.
     */
    UntilThreadZero,
    /**
     * A fixed list of jobs is distributed over the contexts; a context
     * finishing its job takes the next one. The run ends when all jobs
     * are done (section 7 methodology; SimStats::jobs records the
     * execution profile of Figure 9).
     */
    JobQueue
};

/** The multithreaded vector machine. */
class VectorSim
{
  public:
    /** Build a machine; @p params is validated (fatal on user error). */
    explicit VectorSim(const MachineParams &params);

    /**
     * Run a single program to completion on context 0 (the reference-
     * machine experiment; also usable with multithreaded params, the
     * other contexts simply stay empty).
     *
     * @param source          The program.
     * @param maxInstructions When non-zero, stop fetching after this
     *                        many instructions (the truncated runs of
     *                        the speedup accounting).
     */
    SimStats runSingle(InstructionSource &source,
                       uint64_t maxInstructions = 0);

    /**
     * Group run (paper section 4.1): programs[i] runs on context i;
     * the run ends when context 0 completes its (single) run, with
     * other programs restarted as often as needed.
     * Requires programs.size() == params.contexts.
     */
    SimStats runGroup(const std::vector<InstructionSource *> &programs);

    /**
     * Job-queue run (paper section 7): the job list is served by all
     * contexts; each context takes the next job when its current one
     * finishes.
     */
    SimStats runJobQueue(const std::vector<InstructionSource *> &jobs);

    /** The machine description this simulator was built with. */
    const MachineParams &params() const { return params_; }

  private:
    /** One memory port: an address path and its data pipe. */
    struct MemPort
    {
        PipeUnit pipe;
        AddressBus bus;
    };

    /** Everything one hardware context owns. */
    struct Context
    {
        InstructionSource *source = nullptr;
        /** Fetched-but-not-dispatched instructions, program order.
         *  Size 1 normally; up to 1+decoupleDepth when decoupled. */
        std::vector<Instruction> window;
        bool finished = false;        ///< no more work will be fetched
        bool restartable = false;     ///< restart source at end-of-run
        uint64_t fetchReadyAt = 0;    ///< branch-shadow gate
        /** Unified S0-7 + A0-7 scoreboard, sized from the ISA widths
         *  (indices are checked against it at fetch; see
         *  checkOperands). */
        uint64_t scalarReady[numSRegs + numARegs] = {};
        VRegTiming vregs[numVRegs] = {};
        BankPorts banks[numVRegs / 2] = {};
        ThreadStats stats;
        int jobIndex = -1;            ///< job currently assigned
    };

    /** A validated dispatch decision, ready to commit. */
    struct Plan
    {
        enum class Unit : uint8_t { Scalar, Fu1, Fu2, Mem } unit;
        size_t windowIndex = 0;   ///< which window entry dispatches
        MemPort *port = nullptr;  ///< memory port (Unit::Mem)
        uint64_t start = 0;       ///< first cycle of unit occupation
        uint64_t pipeUntil = 0;   ///< memory pipe occupation end
        uint64_t prodFirst = 0;   ///< first-element availability (V dst)
        uint64_t writeDone = 0;   ///< last-element write (V dst)
        uint64_t completion = 0;  ///< retire time for run accounting
        uint64_t scalarReady = 0; ///< scalar dst ready time
        bool chainableOut = false;
    };

    // --- run machinery ---
    void resetMachine(RunMode mode);
    SimStats run(RunMode mode);
    bool done(uint64_t now) const;
    void decodeCycle(uint64_t now);
    void decodeSingleSlot(uint64_t now);
    void decodeMultiSlot(uint64_t now);
    void sampleState(uint64_t now);
    SimStats takeStats(uint64_t cycles);

    /**
     * Keep the context's fetch window filled (up to its depth, never
     * past a branch). Handles end-of-run per mode (restart / next
     * job / finish) once the window has drained.
     * @return true when at least one instruction is waiting.
     */
    bool ensureWindow(Context &ctx, uint64_t now, BlockReason &why);

    /**
     * Validate a fetched instruction's register indices against the
     * scoreboard/register-file sizes, so a corrupt trace or a buggy
     * generator fails loudly instead of indexing out of bounds.
     */
    void checkOperands(const Instruction &inst) const;

    /** Window capacity for this machine. */
    size_t
    windowDepth() const
    {
        return 1 + static_cast<size_t>(params_.decoupleDepth);
    }

    /** Pure dispatch feasibility check + timing computation. */
    std::optional<Plan> planDispatch(const Context &ctx,
                                     const Instruction &inst,
                                     uint64_t now,
                                     BlockReason &why) const;

    /**
     * Find a dispatchable instruction in the window: the head, or —
     * when decoupling is on — a vector memory instruction that
     * conflicts with none of the skipped entries.
     */
    std::optional<Plan> planAny(const Context &ctx, uint64_t now,
                                BlockReason &why) const;

    /** Commit @p plan: reserve resources, update scoreboards, stats. */
    void commit(Context &ctx, const Plan &plan, uint64_t now);

    /** Pick the next context for the single decode slot. */
    void switchThread(uint64_t now);

    bool contextReady(Context &ctx, uint64_t now);

    /** Any memory pipe processing an element at @p now? */
    bool memPipeBusyAt(uint64_t now) const;

    /** Ports that serve @p op (loads vs stores vs scalar memory). */
    const std::vector<MemPort *> &portsFor(Opcode op) const;

    // --- configuration ---
    MachineParams params_;
    MainMemory memory_;

    // --- shared machine state ---
    std::vector<MemPort> memPorts_;        ///< load ports then store
    std::vector<MemPort *> loadPortRefs_;  ///< views into memPorts_
    std::vector<MemPort *> storePortRefs_;
    PipeUnit fu1_;
    PipeUnit fu2_;
    std::vector<Context> contexts_;
    int currentThread_ = 0;
    std::vector<uint64_t> lastSelected_;  ///< per context, for FairLru

    // --- run bookkeeping ---
    RunMode mode_ = RunMode::UntilThreadZero;
    std::vector<InstructionSource *> jobs_;
    size_t nextJob_ = 0;
    uint64_t maxInstructions_ = 0;
    uint64_t lastDispatchCycle_ = 0;

    // --- statistics ---
    uint64_t vecOpsFu1_ = 0;
    uint64_t vecOpsFu2_ = 0;
    uint64_t dispatches_ = 0;
    uint64_t decodeIdle_ = 0;
    uint64_t decoupledSlips_ = 0;
    std::array<uint64_t, numFuStates> stateHist_{};
    std::vector<JobRecord> jobRecords_;
};

} // namespace mtv

#endif // MTV_CORE_SIM_HH
