/**
 * @file
 * SimError: the structured exception a wedged simulation raises.
 *
 * When no context has dispatched for far longer than any legitimate
 * stall (one memory round trip plus a full vector drain), the kernel
 * used to panic() with a formatted string — killing the process, or
 * in the daemon relying on string-typed error plumbing. Instead it
 * now throws this exception, which carries the machine state a user
 * (or the daemon's JSON error response) needs to see *why* the run
 * wedged: per-context blocked reasons and window heads at the cycle
 * the watchdog fired.
 */

#ifndef MTV_CORE_SIM_ERROR_HH
#define MTV_CORE_SIM_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/metrics.hh"

namespace mtv
{

/** One context's view of a wedged machine. */
struct BlockedContext
{
    int context = 0;            ///< hardware context index
    std::string program;        ///< program the context is running
    BlockReason reason = BlockReason::NoWork;  ///< why it cannot dispatch
    std::string windowHead;     ///< disassembly of the stuck head, if any
    uint64_t windowDepth = 0;   ///< fetched-but-undispatched instructions
};

/** A simulation watchdog failure with per-context diagnosis. */
class SimError : public std::runtime_error
{
  public:
    SimError(uint64_t cycle, uint64_t stalledCycles,
             std::vector<BlockedContext> contexts);

    /** Cycle at which the watchdog fired. */
    uint64_t cycle() const { return cycle_; }

    /** Cycles since the last successful dispatch. */
    uint64_t stalledCycles() const { return stalledCycles_; }

    /** Per-context blocked state at the firing cycle. */
    const std::vector<BlockedContext> &contexts() const
    {
        return contexts_;
    }

  private:
    static std::string buildMessage(
        uint64_t cycle, uint64_t stalledCycles,
        const std::vector<BlockedContext> &contexts);

    uint64_t cycle_;
    uint64_t stalledCycles_;
    std::vector<BlockedContext> contexts_;
};

} // namespace mtv

#endif // MTV_CORE_SIM_ERROR_HH
