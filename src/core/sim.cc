#include "src/core/sim.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/core/batch_kernel.hh"
#include "src/core/sim_error.hh"

namespace mtv
{

const char *
simKernelName(SimKernel kernel)
{
    switch (kernel) {
      case SimKernel::Event: return "event";
      case SimKernel::Stepped: return "stepped";
      case SimKernel::Batched: return "batched";
    }
    return "unknown";
}

namespace
{

/** Validate before any component sizes itself from the values. */
MachineParams
validated(MachineParams params)
{
    params.validate();
    return params;
}

} // namespace

VectorSim::VectorSim(const MachineParams &params, SimKernel kernel)
    : params_(validated(params)), kernel_(kernel), mem_(params_),
      dispatch_(params_, pipes_, mem_)
{
    contexts_.resize(params_.contexts);
    lastSelected_.resize(params_.contexts, 0);
    scanWhy_.resize(params_.contexts, BlockReason::NoWork);
}

// ---------------------------------------------------------------------
// Run entry points
// ---------------------------------------------------------------------

SimStats
VectorSim::runSingle(InstructionSource &source, uint64_t maxInstructions)
{
    if (kernel_ == SimKernel::Batched) {
        BatchPoint point;
        point.params = params_;
        point.kind = BatchPoint::Kind::Single;
        point.sources = {&source};
        point.maxInstructions = maxInstructions;
        return takeBatchResult(runBatch({point}), 0);
    }
    resetMachine(RunMode::UntilThreadZero);
    maxInstructions_ = maxInstructions;
    contexts_[0].source = &source;
    contexts_[0].stats.program = source.name();
    source.reset();
    return run();
}

SimStats
VectorSim::runGroup(const std::vector<InstructionSource *> &programs)
{
    if (static_cast<int>(programs.size()) != params_.contexts) {
        fatal("group run needs exactly %d programs, got %zu",
              params_.contexts, programs.size());
    }
    for (size_t i = 0; i < programs.size(); ++i) {
        for (size_t j = i + 1; j < programs.size(); ++j) {
            if (programs[i] == programs[j]) {
                fatal("group run requires distinct source instances "
                      "(program '%s' passed twice)",
                      programs[i]->name().c_str());
            }
        }
    }
    if (kernel_ == SimKernel::Batched) {
        BatchPoint point;
        point.params = params_;
        point.kind = BatchPoint::Kind::Group;
        point.sources = programs;
        return takeBatchResult(runBatch({point}), 0);
    }
    resetMachine(RunMode::UntilThreadZero);
    for (size_t i = 0; i < programs.size(); ++i) {
        Context &ctx = contexts_[i];
        ctx.source = programs[i];
        ctx.source->reset();
        ctx.restartable = i != 0;
        ctx.stats.program = programs[i]->name();
    }
    return run();
}

SimStats
VectorSim::runJobQueue(const std::vector<InstructionSource *> &jobs)
{
    if (jobs.empty())
        fatal("job-queue run needs at least one job");
    if (kernel_ == SimKernel::Batched) {
        BatchPoint point;
        point.params = params_;
        point.kind = BatchPoint::Kind::JobQueue;
        point.sources = jobs;
        return takeBatchResult(runBatch({point}), 0);
    }
    resetMachine(RunMode::JobQueue);
    jobs_ = jobs;
    nextJob_ = 0;
    for (auto &ctx : contexts_) {
        if (nextJob_ >= jobs_.size()) {
            ctx.finished = true;
            continue;
        }
        ctx.source = jobs_[nextJob_];
        ctx.source->reset();
        ctx.stats.program = ctx.source->name();
        ctx.jobIndex = static_cast<int>(jobRecords_.size());
        jobRecords_.push_back(
            {ctx.source->name(),
             static_cast<int>(&ctx - contexts_.data()), 0, 0});
        ++nextJob_;
    }
    return run();
}

// ---------------------------------------------------------------------
// Run machinery
// ---------------------------------------------------------------------

void
VectorSim::resetMachine(RunMode mode)
{
    mode_ = mode;
    mem_.clear();
    pipes_.clear();
    dispatch_.clear();
    scheduler_.clear();
    for (auto &ctx : contexts_)
        ctx = Context{};
    currentThread_ = 0;
    std::fill(lastSelected_.begin(), lastSelected_.end(), 0);
    std::fill(scanWhy_.begin(), scanWhy_.end(), BlockReason::NoWork);
    jobs_.clear();
    nextJob_ = 0;
    maxInstructions_ = 0;
    lastDispatchCycle_ = 0;
    decodeIdle_ = 0;
    stateHist_.fill(0);
    jobRecords_.clear();
    // Legitimate stalls are bounded by one memory round trip plus a
    // full vector drain; anything hugely beyond that is a model bug.
    stallLimit_ = 16 * (static_cast<uint64_t>(params_.memLatency) +
                        maxVectorLength * 8) +
                  1000000;
}

bool
VectorSim::done(uint64_t now) const
{
    if (mode_ == RunMode::UntilThreadZero) {
        const Context &ctx0 = contexts_[0];
        return ctx0.finished && ctx0.window.empty() &&
               now >= ctx0.stats.lastCompletion;
    }
    uint64_t maxCompletion = 0;
    for (const auto &ctx : contexts_) {
        if (!ctx.finished || !ctx.window.empty())
            return false;
        maxCompletion = std::max(maxCompletion, ctx.stats.lastCompletion);
    }
    return now >= maxCompletion;
}

SimStats
VectorSim::run()
{
    return kernel_ == SimKernel::Stepped ? runStepped() : runEvent();
}

/**
 * The reference kernel: evaluate decode every cycle. Kept as the
 * executable specification the event kernel is validated against.
 */
SimStats
VectorSim::runStepped()
{
    uint64_t now = 0;
    // The fetch stage runs ahead of decode: prime every context's
    // window before evaluating termination, so end-of-program is
    // discovered the cycle the last instruction leaves, not one
    // cycle later.
    primeFetch(0);
    while (!done(now)) {
        decodeCycle(now);
        pipes_.sampleInto(stateHist_, now, mem_);
        ++now;
        primeFetch(now);
        checkWatchdog(now);
    }
    return takeStats(now);
}

/**
 * The event-driven kernel. While anything can dispatch it runs the
 * exact per-cycle code of the stepped kernel; once every context is
 * blocked it asks the scheduler for the earliest pending ready-time
 * and jumps there, bulk-accounting the skipped span. Soundness: all
 * wakeups are computed from state that is immutable while blocked
 * (only a commit writes ready-times), so no decode outcome — and no
 * per-cycle statistic — can differ from stepping (see the proof
 * sketch in DESIGN.md section 1.2).
 */
SimStats
VectorSim::runEvent()
{
    uint64_t now = 0;
    primeFetch(0);
    while (!done(now)) {
        const bool dispatched = decodeCycle(now);
        bool anyReady = false;
        if (!dispatched) {
            for (const BlockReason why : scanWhy_)
                anyReady |= why == BlockReason::None;
        }
        if (dispatched || anyReady) {
            // Progress this cycle or next: step like the reference.
            pipes_.sampleInto(stateHist_, now, mem_);
            ++now;
            primeFetch(now);
            checkWatchdog(now);
            continue;
        }
        // Every context blocked (cycle `now` already charged by
        // decodeCycle). Jump to the earliest cycle anything can
        // change; an eventless machine is wedged, so fast-forward
        // straight to the watchdog.
        const uint64_t watchdogAt =
            lastDispatchCycle_ + stallLimit_ + 1;
        uint64_t wake =
            scheduler_.nextWakeup(now, dispatch_, contexts_);
        if (wake == 0 || wake > watchdogAt)
            wake = watchdogAt;
        accountIdleSpan(now, wake);
        now = wake;
        primeFetch(now);
        checkWatchdog(now);
    }
    return takeStats(now);
}

bool
VectorSim::decodeCycle(uint64_t now)
{
    return multiSlot() ? decodeMultiSlot(now) : decodeSingleSlot(now);
}

bool
VectorSim::decodeSingleSlot(uint64_t now)
{
    Context &held = contexts_[currentThread_];
    lastSelected_[currentThread_] = now;
    BlockReason heldWhy = BlockReason::NoWork;
    bool dispatched = false;
    if (ensureWindow(held, now, heldWhy)) {
        if (auto plan = dispatch_.planAny(held, now, heldWhy)) {
            dispatch_.commit(held, *plan, now);
            lastDispatchCycle_ = now;
            dispatched = true;
        }
    }
    if (!dispatched) {
        // The decode slot is lost. Charge every context its own
        // blocking resource (not just the slot holder): a thread
        // waiting on the memory port is losing this cycle to the
        // memory port whether or not it holds the slot, which is
        // what Figure 5's idle breakdown wants to count.
        scanWhy_[currentThread_] = heldWhy;
        scanContexts(now);
        for (int c = 0; c < params_.contexts; ++c) {
            if (scanWhy_[c] != BlockReason::None) {
                contexts_[c].stats.blocked[static_cast<size_t>(
                    scanWhy_[c])]++;
            }
        }
        ++decodeIdle_;
        switchThread();
    } else if (params_.sched == SchedPolicy::RoundRobin) {
        switchThread();
    }
    return dispatched;
}

bool
VectorSim::decodeMultiSlot(uint64_t now)
{
    const int width =
        params_.dualScalar ? params_.contexts : params_.decodeWidth;
    int issued = 0;
    bool scalarUsed = false;
    for (int c = 0; c < params_.contexts && issued < width; ++c) {
        Context &ctx = contexts_[c];
        BlockReason why = BlockReason::NoWork;
        if (!ensureWindow(ctx, now, why)) {
            ctx.stats.blocked[static_cast<size_t>(why)]++;
            scanWhy_[c] = why;
            continue;
        }
        auto plan = dispatch_.planAny(ctx, now, why);
        if (!plan) {
            ctx.stats.blocked[static_cast<size_t>(why)]++;
            scanWhy_[c] = why;
            continue;
        }
        const bool isScalar = plan->unit == DispatchPlan::Unit::Scalar;
        if (isScalar && scalarUsed && !params_.dualScalar) {
            // One shared scalar unit: the second scalar instruction of
            // this cycle loses its slot.
            ctx.stats.blocked[static_cast<size_t>(
                BlockReason::ScalarDep)]++;
            scanWhy_[c] = BlockReason::ScalarDep;
            continue;
        }
        dispatch_.commit(ctx, *plan, now);
        lastDispatchCycle_ = now;
        ++issued;
        scanWhy_[c] = BlockReason::None;
        if (isScalar)
            scalarUsed = true;
    }
    if (!issued)
        ++decodeIdle_;
    return issued > 0;
}

void
VectorSim::scanContexts(uint64_t now)
{
    for (int c = 0; c < params_.contexts; ++c) {
        if (c == currentThread_ && !multiSlot())
            continue;  // the dispatch attempt already recorded it
        Context &ctx = contexts_[c];
        BlockReason why = BlockReason::NoWork;
        if (ensureWindow(ctx, now, why) &&
            dispatch_.planAny(ctx, now, why)) {
            why = BlockReason::None;
        }
        scanWhy_[c] = why;
    }
}

void
VectorSim::accountIdleSpan(uint64_t from, uint64_t to)
{
    // Joint-state histogram over [from, to): cycle `from` was decoded
    // but not yet sampled; later cycles are skipped entirely.
    pipes_.integrateInto(stateHist_, from, to, mem_);
    const uint64_t skipped = to - from - 1;
    if (skipped == 0)
        return;
    decodeIdle_ += skipped;
    // Block reasons are frozen over the span: every predicate behind
    // them compares a pending ready-time against `now`, and the jump
    // target is no later than the earliest such time.
    for (int c = 0; c < params_.contexts; ++c) {
        MTV_ASSERT(scanWhy_[c] != BlockReason::None);
        contexts_[c].stats.blocked[static_cast<size_t>(scanWhy_[c])] +=
            skipped;
    }
    if (!multiSlot() && params_.sched == SchedPolicy::RoundRobin)
        advanceRoundRobin(skipped);
}

void
VectorSim::advanceRoundRobin(uint64_t steps)
{
    // Replicate `steps` single-cycle switchThread() advances: the
    // holder walks the has-work contexts in cyclic index order.
    int active[8];
    int m = 0;
    MTV_ASSERT(params_.contexts <= 8);
    for (int c = 0; c < params_.contexts; ++c) {
        if (contexts_[c].hasWork())
            active[m++] = c;
    }
    if (m == 0)
        return;
    // Position of the first active index strictly after the holder
    // (cyclic), i.e. where one step lands.
    int p0 = 0;
    while (p0 < m && active[p0] <= currentThread_)
        ++p0;
    if (p0 == m)
        p0 = 0;
    currentThread_ =
        active[(p0 + (steps - 1)) % static_cast<uint64_t>(m)];
}

void
VectorSim::switchThread()
{
    const int n = params_.contexts;
    if (n == 1)
        return;

    switch (params_.sched) {
      case SchedPolicy::UnfairLowest:
        // Lowest-numbered thread known not to be blocked (the paper's
        // baseline; biased towards thread 0 by construction).
        for (int c = 0; c < n; ++c) {
            if (scanWhy_[c] == BlockReason::None) {
                currentThread_ = c;
                return;
            }
        }
        return;  // everyone blocked; retry the same thread next cycle

      case SchedPolicy::FairLru: {
        int best = -1;
        for (int c = 0; c < n; ++c) {
            if (scanWhy_[c] == BlockReason::None &&
                (best < 0 || lastSelected_[c] < lastSelected_[best])) {
                best = c;
            }
        }
        if (best >= 0)
            currentThread_ = best;
        return;
      }

      case SchedPolicy::RoundRobin:
        // Naive policy: advance regardless of readiness.
        for (int step = 1; step <= n; ++step) {
            const int c = (currentThread_ + step) % n;
            if (contexts_[c].hasWork()) {
                currentThread_ = c;
                return;
            }
        }
        return;
    }
}

void
VectorSim::checkWatchdog(uint64_t now)
{
    if (now - lastDispatchCycle_ > stallLimit_)
        throwWedged(now);
}

void
VectorSim::throwWedged(uint64_t now)
{
    // Snapshot every context's blocked state for the error. The
    // round-robin rotation means the slot holder is arbitrary, so
    // record them all.
    scanContexts(now);
    if (!multiSlot()) {
        // scanContexts leaves the holder's entry to the decode
        // attempt; compute it here where no attempt ran.
        Context &held = contexts_[currentThread_];
        BlockReason why = BlockReason::NoWork;
        if (ensureWindow(held, now, why) &&
            dispatch_.planAny(held, now, why)) {
            why = BlockReason::None;
        }
        scanWhy_[currentThread_] = why;
    }
    std::vector<BlockedContext> blocked;
    blocked.reserve(contexts_.size());
    for (int c = 0; c < params_.contexts; ++c) {
        const Context &ctx = contexts_[c];
        BlockedContext b;
        b.context = c;
        b.program = ctx.stats.program;
        b.reason = scanWhy_[c];
        b.windowDepth = ctx.window.size();
        if (!ctx.window.empty())
            b.windowHead = ctx.window.front().disasm();
        blocked.push_back(std::move(b));
    }
    throw SimError(now, now - lastDispatchCycle_, std::move(blocked));
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
VectorSim::primeFetch(uint64_t t)
{
    for (auto &ctx : contexts_) {
        BlockReason why;
        ensureWindow(ctx, t, why);
    }
}

void
VectorSim::checkOperands(const Instruction &inst) const
{
    const auto checkReg = [&inst](uint8_t reg, RegSpace space) {
        if (reg == noReg || space == RegSpace::None)
            return;
        const int limit = space == RegSpace::V ? numVRegs
                                               : numSRegs + numARegs;
        if (reg >= limit) {
            fatal("instruction '%s' references out-of-range register "
                  "%u (space holds %d)",
                  inst.disasm().c_str(), reg, limit);
        }
    };
    checkReg(inst.dst, inst.dstSpace());
    checkReg(inst.srcA, inst.srcSpace());
    checkReg(inst.srcB, inst.srcSpace());
    if (isVector(inst.op) && inst.vl > maxVectorLength)
        fatal("instruction '%s' exceeds the maximum vector length %d",
              inst.disasm().c_str(), maxVectorLength);
}

bool
VectorSim::ensureWindow(Context &ctx, uint64_t now, BlockReason &why)
{
    const size_t depth = windowDepth();
    bool fetchStalled = false;

    while (!ctx.finished && ctx.source && ctx.window.size() < depth) {
        if (ctx.fetchReadyAt > now) {
            fetchStalled = true;
            break;
        }
        // Never fetch past an unresolved branch.
        if (!ctx.window.empty() &&
            ctx.window.back().op == Opcode::SBranch) {
            break;
        }
        // Truncated reference runs: stop fetching at the budget.
        if (maxInstructions_ &&
            ctx.stats.instructions + ctx.window.size() >=
                maxInstructions_) {
            if (ctx.window.empty()) {
                ctx.finished = true;
                ctx.stats.runsCompleted = 0;
            }
            break;
        }

        Instruction inst;
        if (ctx.source->next(inst)) {
            checkOperands(inst);
            ctx.window.push_back(inst);
            continue;
        }

        // End of the current run: drain the window before restarting
        // or taking the next job, so runs never interleave.
        if (!ctx.window.empty())
            break;

        if (mode_ == RunMode::JobQueue) {
            if (ctx.jobIndex >= 0) {
                jobRecords_[ctx.jobIndex].endCycle =
                    ctx.stats.lastCompletion;
                ctx.jobIndex = -1;
            }
            ++ctx.stats.runsCompleted;
            if (nextJob_ < jobs_.size()) {
                ctx.source = jobs_[nextJob_++];
                ctx.source->reset();
                ctx.stats.instructionsThisRun = 0;
                ctx.jobIndex = static_cast<int>(jobRecords_.size());
                jobRecords_.push_back(
                    {ctx.source->name(),
                     static_cast<int>(&ctx - contexts_.data()), now, 0});
                continue;
            }
            ctx.finished = true;
            break;
        }

        if (ctx.restartable) {
            ++ctx.stats.runsCompleted;
            ctx.stats.instructionsThisRun = 0;
            ctx.source->reset();
            continue;
        }

        // Context 0 of an UntilThreadZero run: one run and done.
        ctx.finished = true;
        ctx.stats.runsCompleted = 1;
        break;
    }

    if (!ctx.window.empty())
        return true;
    why = fetchStalled ? BlockReason::FetchStall : BlockReason::NoWork;
    return false;
}

// ---------------------------------------------------------------------
// Stats assembly
// ---------------------------------------------------------------------

SimStats
VectorSim::takeStats(uint64_t cycles)
{
    SimStats stats;
    stats.cycles = cycles;
    for (const auto &port : mem_.ports()) {
        stats.memRequests += port.bus.requests();
        stats.ldBusyCycles += port.pipe.busyCycles();
    }
    stats.memPorts = static_cast<int>(mem_.ports().size());
    stats.vecOpsFu1 = dispatch_.vecOpsFu1();
    stats.vecOpsFu2 = dispatch_.vecOpsFu2();
    stats.dispatches = dispatch_.dispatches();
    stats.decodeIdle = decodeIdle_;
    stats.decoupledSlips = dispatch_.decoupledSlips();
    stats.fu1BusyCycles = pipes_.fu1().busyCycles();
    stats.fu2BusyCycles = pipes_.fu2().busyCycles();
    stats.stateHist = stateHist_;
    for (const auto &ctx : contexts_)
        stats.threads.push_back(ctx.stats);
    stats.jobs = jobRecords_;
    return stats;
}

} // namespace mtv
