#include "src/core/sim.hh"

#include <algorithm>

#include "src/common/logging.hh"

namespace mtv
{

namespace
{

/** Bitmask of vector registers read by @p inst. */
uint8_t
vregReadMask(const Instruction &inst)
{
    uint8_t mask = 0;
    if (!isVector(inst.op))
        return mask;
    if (isStore(inst.op)) {
        mask |= 1u << inst.srcA;
    } else if (isVectorArith(inst.op) || inst.op == Opcode::VReduce) {
        if (inst.srcA != noReg)
            mask |= 1u << inst.srcA;
        if (inst.srcB != noReg)
            mask |= 1u << inst.srcB;
    }
    return mask;
}

/** Bitmask of vector registers written by @p inst. */
uint8_t
vregWriteMask(const Instruction &inst)
{
    if (!isVector(inst.op) || isStore(inst.op) ||
        inst.op == Opcode::VReduce || inst.dst == noReg) {
        return 0;
    }
    return static_cast<uint8_t>(1u << inst.dst);
}

/**
 * May @p cand (a vector memory instruction) dispatch ahead of the
 * not-yet-dispatched @p prior? Memory stays ordered among itself,
 * nothing passes a branch, and all vector-register dependences
 * (RAW/WAW/WAR) are respected. Scalar operands are safe to ignore:
 * the trace records the effective VL/stride/address of every
 * instruction, which is exactly the address-side state a decoupled
 * machine's address processor runs ahead to produce.
 */
bool
canSlipPast(const Instruction &cand, const Instruction &prior)
{
    if (prior.op == Opcode::SBranch)
        return false;
    if (isMemory(cand.op) && isMemory(prior.op))
        return false;
    const uint8_t priorWrites = vregWriteMask(prior);
    const uint8_t priorReads = vregReadMask(prior);
    const uint8_t candWrites = vregWriteMask(cand);
    const uint8_t candReads = vregReadMask(cand);
    if (priorWrites & (candReads | candWrites))
        return false;  // RAW or WAW
    if (priorReads & candWrites)
        return false;  // WAR
    return true;
}

} // namespace

VectorSim::VectorSim(const MachineParams &params)
    : params_(params), memory_(params)
{
    params_.validate();
    contexts_.resize(params_.contexts);
    lastSelected_.resize(params_.contexts, 0);
    memPorts_.resize(params_.loadPorts + params_.storePorts);
    for (int i = 0; i < params_.loadPorts; ++i)
        loadPortRefs_.push_back(&memPorts_[i]);
    for (int i = 0; i < params_.storePorts; ++i)
        storePortRefs_.push_back(&memPorts_[params_.loadPorts + i]);
}

const std::vector<VectorSim::MemPort *> &
VectorSim::portsFor(Opcode op) const
{
    if (isStore(op) && !storePortRefs_.empty())
        return storePortRefs_;
    return loadPortRefs_;
}

bool
VectorSim::memPipeBusyAt(uint64_t now) const
{
    for (const auto &port : memPorts_) {
        if (port.pipe.busyAt(now))
            return true;
    }
    return false;
}

// ---------------------------------------------------------------------
// Run entry points
// ---------------------------------------------------------------------

SimStats
VectorSim::runSingle(InstructionSource &source, uint64_t maxInstructions)
{
    resetMachine(RunMode::UntilThreadZero);
    maxInstructions_ = maxInstructions;
    contexts_[0].source = &source;
    contexts_[0].stats.program = source.name();
    source.reset();
    return run(RunMode::UntilThreadZero);
}

SimStats
VectorSim::runGroup(const std::vector<InstructionSource *> &programs)
{
    if (static_cast<int>(programs.size()) != params_.contexts) {
        fatal("group run needs exactly %d programs, got %zu",
              params_.contexts, programs.size());
    }
    for (size_t i = 0; i < programs.size(); ++i) {
        for (size_t j = i + 1; j < programs.size(); ++j) {
            if (programs[i] == programs[j]) {
                fatal("group run requires distinct source instances "
                      "(program '%s' passed twice)",
                      programs[i]->name().c_str());
            }
        }
    }
    resetMachine(RunMode::UntilThreadZero);
    for (size_t i = 0; i < programs.size(); ++i) {
        Context &ctx = contexts_[i];
        ctx.source = programs[i];
        ctx.source->reset();
        ctx.restartable = i != 0;
        ctx.stats.program = programs[i]->name();
    }
    return run(RunMode::UntilThreadZero);
}

SimStats
VectorSim::runJobQueue(const std::vector<InstructionSource *> &jobs)
{
    if (jobs.empty())
        fatal("job-queue run needs at least one job");
    resetMachine(RunMode::JobQueue);
    jobs_ = jobs;
    nextJob_ = 0;
    for (auto &ctx : contexts_) {
        if (nextJob_ >= jobs_.size()) {
            ctx.finished = true;
            continue;
        }
        ctx.source = jobs_[nextJob_];
        ctx.source->reset();
        ctx.stats.program = ctx.source->name();
        ctx.jobIndex = static_cast<int>(jobRecords_.size());
        jobRecords_.push_back(
            {ctx.source->name(),
             static_cast<int>(&ctx - contexts_.data()), 0, 0});
        ++nextJob_;
    }
    return run(RunMode::JobQueue);
}

// ---------------------------------------------------------------------
// Run machinery
// ---------------------------------------------------------------------

void
VectorSim::resetMachine(RunMode mode)
{
    mode_ = mode;
    for (auto &port : memPorts_) {
        port.pipe.clear();
        port.bus.clear();
    }
    fu1_.clear();
    fu2_.clear();
    for (auto &ctx : contexts_)
        ctx = Context{};
    currentThread_ = 0;
    std::fill(lastSelected_.begin(), lastSelected_.end(), 0);
    jobs_.clear();
    nextJob_ = 0;
    maxInstructions_ = 0;
    lastDispatchCycle_ = 0;
    vecOpsFu1_ = vecOpsFu2_ = dispatches_ = decodeIdle_ = 0;
    decoupledSlips_ = 0;
    stateHist_.fill(0);
    jobRecords_.clear();
}

bool
VectorSim::done(uint64_t now) const
{
    if (mode_ == RunMode::UntilThreadZero) {
        const Context &ctx0 = contexts_[0];
        return ctx0.finished && ctx0.window.empty() &&
               now >= ctx0.stats.lastCompletion;
    }
    uint64_t maxCompletion = 0;
    for (const auto &ctx : contexts_) {
        if (!ctx.finished || !ctx.window.empty())
            return false;
        maxCompletion = std::max(maxCompletion, ctx.stats.lastCompletion);
    }
    return now >= maxCompletion;
}

SimStats
VectorSim::run(RunMode mode)
{
    (void)mode;
    uint64_t now = 0;
    // Legitimate stalls are bounded by one memory round trip plus a
    // full vector drain; anything hugely beyond that is a model bug.
    const uint64_t stallLimit =
        16 * (static_cast<uint64_t>(params_.memLatency) +
              maxVectorLength * 8) +
        1000000;
    // The fetch stage runs ahead of decode: prime every context's
    // window before evaluating termination, so end-of-program is
    // discovered the cycle the last instruction leaves, not one
    // cycle later.
    auto primeFetch = [this](uint64_t t) {
        for (auto &ctx : contexts_) {
            BlockReason why;
            ensureWindow(ctx, t, why);
        }
    };
    primeFetch(0);
    while (!done(now)) {
        decodeCycle(now);
        sampleState(now);
        ++now;
        primeFetch(now);
        if (now - lastDispatchCycle_ > stallLimit) {
            panic("no dispatch for %llu cycles at cycle %llu: "
                  "simulator deadlock",
                  static_cast<unsigned long long>(now -
                                                  lastDispatchCycle_),
                  static_cast<unsigned long long>(now));
        }
    }
    return takeStats(now);
}

void
VectorSim::decodeCycle(uint64_t now)
{
    if (params_.dualScalar || params_.decodeWidth > 1)
        decodeMultiSlot(now);
    else
        decodeSingleSlot(now);
}

void
VectorSim::decodeSingleSlot(uint64_t now)
{
    Context &ctx = contexts_[currentThread_];
    lastSelected_[currentThread_] = now;
    BlockReason why = BlockReason::NoWork;
    bool dispatched = false;
    if (ensureWindow(ctx, now, why)) {
        if (auto plan = planAny(ctx, now, why)) {
            commit(ctx, *plan, now);
            lastDispatchCycle_ = now;
            dispatched = true;
        }
    }
    if (!dispatched) {
        ctx.stats.blocked[static_cast<size_t>(why)]++;
        ++decodeIdle_;
        switchThread(now);
    } else if (params_.sched == SchedPolicy::RoundRobin) {
        switchThread(now);
    }
}

void
VectorSim::decodeMultiSlot(uint64_t now)
{
    const int width =
        params_.dualScalar ? params_.contexts : params_.decodeWidth;
    int issued = 0;
    bool scalarUsed = false;
    for (int c = 0; c < params_.contexts && issued < width; ++c) {
        Context &ctx = contexts_[c];
        BlockReason why = BlockReason::NoWork;
        if (!ensureWindow(ctx, now, why)) {
            ctx.stats.blocked[static_cast<size_t>(why)]++;
            continue;
        }
        auto plan = planAny(ctx, now, why);
        if (!plan) {
            ctx.stats.blocked[static_cast<size_t>(why)]++;
            continue;
        }
        const bool isScalar = plan->unit == Plan::Unit::Scalar;
        if (isScalar && scalarUsed && !params_.dualScalar) {
            // One shared scalar unit: the second scalar instruction of
            // this cycle loses its slot.
            ctx.stats.blocked[static_cast<size_t>(
                BlockReason::ScalarDep)]++;
            continue;
        }
        commit(ctx, *plan, now);
        lastDispatchCycle_ = now;
        ++issued;
        if (isScalar)
            scalarUsed = true;
    }
    if (!issued)
        ++decodeIdle_;
}

bool
VectorSim::contextReady(Context &ctx, uint64_t now)
{
    BlockReason why = BlockReason::NoWork;
    if (!ensureWindow(ctx, now, why))
        return false;
    return planAny(ctx, now, why).has_value();
}

void
VectorSim::switchThread(uint64_t now)
{
    const int n = params_.contexts;
    if (n == 1)
        return;

    switch (params_.sched) {
      case SchedPolicy::UnfairLowest:
        // Lowest-numbered thread known not to be blocked (the paper's
        // baseline; biased towards thread 0 by construction).
        for (int c = 0; c < n; ++c) {
            if (contextReady(contexts_[c], now)) {
                currentThread_ = c;
                return;
            }
        }
        return;  // everyone blocked; retry the same thread next cycle

      case SchedPolicy::FairLru: {
        int best = -1;
        for (int c = 0; c < n; ++c) {
            if (contextReady(contexts_[c], now) &&
                (best < 0 || lastSelected_[c] < lastSelected_[best])) {
                best = c;
            }
        }
        if (best >= 0)
            currentThread_ = best;
        return;
      }

      case SchedPolicy::RoundRobin:
        // Naive policy: advance regardless of readiness.
        for (int step = 1; step <= n; ++step) {
            const int c = (currentThread_ + step) % n;
            if (!contexts_[c].finished || !contexts_[c].window.empty()) {
                currentThread_ = c;
                return;
            }
        }
        return;
    }
}

void
VectorSim::sampleState(uint64_t now)
{
    const int bits = (fu2_.busyAt(now) ? 4 : 0) |
                     (fu1_.busyAt(now) ? 2 : 0) |
                     (memPipeBusyAt(now) ? 1 : 0);
    ++stateHist_[bits];
}

// ---------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------

void
VectorSim::checkOperands(const Instruction &inst) const
{
    const auto checkReg = [&inst](uint8_t reg, RegSpace space) {
        if (reg == noReg || space == RegSpace::None)
            return;
        const int limit = space == RegSpace::V ? numVRegs
                                               : numSRegs + numARegs;
        if (reg >= limit) {
            fatal("instruction '%s' references out-of-range register "
                  "%u (space holds %d)",
                  inst.disasm().c_str(), reg, limit);
        }
    };
    checkReg(inst.dst, inst.dstSpace());
    checkReg(inst.srcA, inst.srcSpace());
    checkReg(inst.srcB, inst.srcSpace());
    if (isVector(inst.op) && inst.vl > maxVectorLength)
        fatal("instruction '%s' exceeds the maximum vector length %d",
              inst.disasm().c_str(), maxVectorLength);
}

bool
VectorSim::ensureWindow(Context &ctx, uint64_t now, BlockReason &why)
{
    const size_t depth = windowDepth();
    bool fetchStalled = false;

    while (!ctx.finished && ctx.source && ctx.window.size() < depth) {
        if (ctx.fetchReadyAt > now) {
            fetchStalled = true;
            break;
        }
        // Never fetch past an unresolved branch.
        if (!ctx.window.empty() &&
            ctx.window.back().op == Opcode::SBranch) {
            break;
        }
        // Truncated reference runs: stop fetching at the budget.
        if (maxInstructions_ &&
            ctx.stats.instructions + ctx.window.size() >=
                maxInstructions_) {
            if (ctx.window.empty()) {
                ctx.finished = true;
                ctx.stats.runsCompleted = 0;
            }
            break;
        }

        Instruction inst;
        if (ctx.source->next(inst)) {
            checkOperands(inst);
            ctx.window.push_back(inst);
            continue;
        }

        // End of the current run: drain the window before restarting
        // or taking the next job, so runs never interleave.
        if (!ctx.window.empty())
            break;

        if (mode_ == RunMode::JobQueue) {
            if (ctx.jobIndex >= 0) {
                jobRecords_[ctx.jobIndex].endCycle =
                    ctx.stats.lastCompletion;
                ctx.jobIndex = -1;
            }
            ++ctx.stats.runsCompleted;
            if (nextJob_ < jobs_.size()) {
                ctx.source = jobs_[nextJob_++];
                ctx.source->reset();
                ctx.stats.instructionsThisRun = 0;
                ctx.jobIndex = static_cast<int>(jobRecords_.size());
                jobRecords_.push_back(
                    {ctx.source->name(),
                     static_cast<int>(&ctx - contexts_.data()), now, 0});
                continue;
            }
            ctx.finished = true;
            break;
        }

        if (ctx.restartable) {
            ++ctx.stats.runsCompleted;
            ctx.stats.instructionsThisRun = 0;
            ctx.source->reset();
            continue;
        }

        // Context 0 of an UntilThreadZero run: one run and done.
        ctx.finished = true;
        ctx.stats.runsCompleted = 1;
        break;
    }

    if (!ctx.window.empty())
        return true;
    why = fetchStalled ? BlockReason::FetchStall : BlockReason::NoWork;
    return false;
}

// ---------------------------------------------------------------------
// Dispatch planning
// ---------------------------------------------------------------------

std::optional<VectorSim::Plan>
VectorSim::planAny(const Context &ctx, uint64_t now,
                   BlockReason &why) const
{
    MTV_ASSERT(!ctx.window.empty());
    auto plan = planDispatch(ctx, ctx.window.front(), now, why);
    if (plan || params_.decoupleDepth == 0)
        return plan;

    // Decoupled slip: look for a vector memory instruction behind the
    // blocked head that conflicts with none of the skipped entries.
    for (size_t k = 1; k < ctx.window.size(); ++k) {
        const Instruction &cand = ctx.window[k];
        if (!isVector(cand.op) || !isMemory(cand.op))
            continue;
        bool clear = true;
        for (size_t j = 0; j < k && clear; ++j)
            clear = canSlipPast(cand, ctx.window[j]);
        if (!clear)
            continue;
        BlockReason slipWhy = BlockReason::NoWork;
        if (auto slipped = planDispatch(ctx, cand, now, slipWhy)) {
            slipped->windowIndex = k;
            return slipped;
        }
    }
    return std::nullopt;  // `why` keeps the head's block reason
}

std::optional<VectorSim::Plan>
VectorSim::planDispatch(const Context &ctx, const Instruction &inst,
                        uint64_t now, BlockReason &why) const
{
    const FuClass fu = fuClass(inst.op);
    Plan plan{};

    if (fu == FuClass::Scalar) {
        // --- Scalar instruction ---
        for (const uint8_t src : {inst.srcA, inst.srcB}) {
            if (src != noReg && ctx.scalarReady[src] > now) {
                why = BlockReason::ScalarDep;
                return std::nullopt;
            }
        }
        if (inst.dst != noReg && ctx.scalarReady[inst.dst] > now) {
            why = BlockReason::ScalarDep;
            return std::nullopt;
        }
        if (isMemory(inst.op)) {
            plan.port = nullptr;
            for (MemPort *port : portsFor(inst.op)) {
                if (port->bus.freeAt(now)) {
                    plan.port = port;
                    break;
                }
            }
            if (!plan.port) {
                why = BlockReason::MemPortBusy;
                return std::nullopt;
            }
        }
        plan.unit = Plan::Unit::Scalar;
        plan.start = now;
        const int lat = params_.opLatency(inst.op);
        plan.scalarReady = now + static_cast<uint64_t>(lat);
        plan.completion =
            inst.op == Opcode::SStore ? now + 1 : plan.scalarReady;
        return plan;
    }

    const uint16_t vl = std::max<uint16_t>(inst.vl, 1);

    if (fu == FuClass::VecAny || fu == FuClass::VecFu2) {
        // --- Vector arithmetic (including reductions) ---
        if (fu == FuClass::VecFu2) {
            if (!fu2_.freeAt(now)) {
                why = BlockReason::FuBusy;
                return std::nullopt;
            }
            plan.unit = Plan::Unit::Fu2;
        } else if (fu1_.freeAt(now)) {
            plan.unit = Plan::Unit::Fu1;
        } else if (fu2_.freeAt(now)) {
            plan.unit = Plan::Unit::Fu2;
        } else {
            why = BlockReason::FuBusy;
            return std::nullopt;
        }

        uint64_t chainStart = 0;
        int bankReads[numVRegs / 2] = {};
        for (const uint8_t src : {inst.srcA, inst.srcB}) {
            if (src == noReg)
                continue;
            const VRegTiming &reg = ctx.vregs[src];
            if (!reg.completeAt(now)) {
                if (!reg.chainable) {
                    why = BlockReason::SourceNotReady;
                    return std::nullopt;
                }
                chainStart = std::max(chainStart, reg.prodFirst + 1);
            }
            ++bankReads[vregBank(src)];
        }
        // Reading the same register through both operand ports still
        // needs only one physical port.
        if (inst.srcA != noReg && inst.srcA == inst.srcB)
            --bankReads[vregBank(inst.srcA)];

        const bool isReduce = inst.op == Opcode::VReduce;
        if (!isReduce) {
            const VRegTiming &dst = ctx.vregs[inst.dst];
            // Renaming allocates a fresh physical register, so WAW
            // and WAR hazards vanish (section 10 extension).
            if (!params_.renaming && !dst.idleAt(now)) {
                why = BlockReason::DestBusy;
                return std::nullopt;
            }
        } else if (inst.dst != noReg &&
                   ctx.scalarReady[inst.dst] > now) {
            why = BlockReason::ScalarDep;
            return std::nullopt;
        }

        if (params_.modelBankPorts) {
            for (int b = 0; b < numVRegs / 2; ++b) {
                if (bankReads[b] > ctx.banks[b].freeReadPorts(now)) {
                    why = BlockReason::BankPortBusy;
                    return std::nullopt;
                }
            }
            if (!isReduce && !params_.renaming &&
                !ctx.banks[vregBank(inst.dst)].writeFreeAt(now)) {
                why = BlockReason::BankPortBusy;
                return std::nullopt;
            }
        }

        const uint64_t r0 = std::max(
            now + static_cast<uint64_t>(params_.vectorStartup),
            chainStart);
        const int fuLat = params_.opLatency(inst.op);
        plan.start = r0;
        plan.prodFirst =
            r0 + params_.readXbar + fuLat + params_.writeXbar;
        plan.writeDone = plan.prodFirst + vl;
        plan.chainableOut = true;
        if (isReduce) {
            // The reduction drains the pipe before the scalar result
            // appears; no vector destination is written.
            plan.scalarReady = r0 + params_.readXbar + fuLat + vl;
            plan.completion = plan.scalarReady;
        } else {
            plan.completion = plan.writeDone;
        }
        return plan;
    }

    if (fu == FuClass::VecLoad) {
        // --- Vector load / gather ---
        plan.port = nullptr;
        bool anyPipeFree = false;
        for (MemPort *port : portsFor(inst.op)) {
            if (!port->pipe.freeAt(now))
                continue;
            anyPipeFree = true;
            if (port->bus.freeAt(now)) {
                plan.port = port;
                break;
            }
        }
        if (!plan.port) {
            why = anyPipeFree ? BlockReason::MemPortBusy
                              : BlockReason::MemPipeBusy;
            return std::nullopt;
        }
        const VRegTiming &dst = ctx.vregs[inst.dst];
        if (!params_.renaming && !dst.idleAt(now)) {
            why = BlockReason::DestBusy;
            return std::nullopt;
        }
        if (params_.modelBankPorts && !params_.renaming &&
            !ctx.banks[vregBank(inst.dst)].writeFreeAt(now)) {
            why = BlockReason::BankPortBusy;
            return std::nullopt;
        }
        const bool indexed = inst.op == Opcode::VGather;
        const int period = memory_.deliveryPeriod(inst.stride, indexed);
        plan.unit = Plan::Unit::Mem;
        plan.start = now + static_cast<uint64_t>(params_.vectorStartup);
        plan.pipeUntil =
            plan.start + static_cast<uint64_t>(vl) * period;
        plan.prodFirst =
            plan.start + params_.memLatency + params_.writeXbar;
        plan.writeDone =
            plan.prodFirst + static_cast<uint64_t>(vl) * period;
        plan.chainableOut = params_.loadChaining;
        plan.completion = plan.writeDone;
        return plan;
    }

    // --- Vector store / scatter ---
    MTV_ASSERT(fu == FuClass::VecStore);
    plan.port = nullptr;
    bool anyPipeFree = false;
    for (MemPort *port : portsFor(inst.op)) {
        if (!port->pipe.freeAt(now))
            continue;
        anyPipeFree = true;
        if (port->bus.freeAt(now)) {
            plan.port = port;
            break;
        }
    }
    if (!plan.port) {
        why = anyPipeFree ? BlockReason::MemPortBusy
                          : BlockReason::MemPipeBusy;
        return std::nullopt;
    }
    const VRegTiming &src = ctx.vregs[inst.srcA];
    uint64_t chainStart = 0;
    if (!src.completeAt(now)) {
        if (!src.chainable) {
            why = BlockReason::SourceNotReady;
            return std::nullopt;
        }
        chainStart = src.prodFirst + 1;
    }
    if (params_.modelBankPorts &&
        ctx.banks[vregBank(inst.srcA)].freeReadPorts(now) < 1) {
        why = BlockReason::BankPortBusy;
        return std::nullopt;
    }
    plan.unit = Plan::Unit::Mem;
    plan.start = std::max(
        now + static_cast<uint64_t>(params_.vectorStartup), chainStart);
    plan.pipeUntil = plan.start + vl;
    // Stores are fire-and-forget: the processor does not wait for the
    // memory write to complete (paper section 3.1).
    plan.completion = plan.start + vl;
    return plan;
}

// ---------------------------------------------------------------------
// Commit
// ---------------------------------------------------------------------

void
VectorSim::commit(Context &ctx, const Plan &plan, uint64_t now)
{
    MTV_ASSERT(plan.windowIndex < ctx.window.size());
    const Instruction inst = ctx.window[plan.windowIndex];
    const uint16_t vl = std::max<uint16_t>(inst.vl, 1);

    switch (plan.unit) {
      case Plan::Unit::Scalar:
        if (inst.dst != noReg)
            ctx.scalarReady[inst.dst] = plan.scalarReady;
        if (isMemory(inst.op))
            plan.port->bus.reserve(now, 1);
        if (inst.op == Opcode::SBranch) {
            ctx.fetchReadyAt =
                now + 1 + static_cast<uint64_t>(params_.branchStall);
        }
        break;

      case Plan::Unit::Fu1:
      case Plan::Unit::Fu2: {
        PipeUnit &unit = plan.unit == Plan::Unit::Fu1 ? fu1_ : fu2_;
        unit.occupy(plan.start, plan.start + vl);
        if (plan.unit == Plan::Unit::Fu1)
            vecOpsFu1_ += vl;
        else
            vecOpsFu2_ += vl;

        const uint64_t readUntil = plan.start + vl;
        for (const uint8_t src : {inst.srcA, inst.srcB}) {
            if (src == noReg)
                continue;
            VRegTiming &reg = ctx.vregs[src];
            reg.readBusy = std::max(reg.readBusy, readUntil);
            ctx.banks[vregBank(src)].takeReadPort(now, readUntil);
        }
        if (inst.op == Opcode::VReduce) {
            if (inst.dst != noReg)
                ctx.scalarReady[inst.dst] = plan.scalarReady;
        } else {
            VRegTiming &dst = ctx.vregs[inst.dst];
            dst.prodFirst = plan.prodFirst;
            dst.writeDone = plan.writeDone;
            dst.chainable = plan.chainableOut;
            ctx.banks[vregBank(inst.dst)].writeUntil = plan.writeDone;
        }
        break;
      }

      case Plan::Unit::Mem: {
        plan.port->pipe.occupy(plan.start, plan.pipeUntil);
        plan.port->bus.reserve(plan.start, vl);
        if (isLoad(inst.op)) {
            VRegTiming &dst = ctx.vregs[inst.dst];
            dst.prodFirst = plan.prodFirst;
            dst.writeDone = plan.writeDone;
            dst.chainable = plan.chainableOut;
            ctx.banks[vregBank(inst.dst)].writeUntil = plan.writeDone;
        } else {
            VRegTiming &src = ctx.vregs[inst.srcA];
            const uint64_t readUntil = plan.start + vl;
            src.readBusy = std::max(src.readBusy, readUntil);
            ctx.banks[vregBank(inst.srcA)].takeReadPort(now, readUntil);
        }
        break;
      }
    }

    // Common accounting.
    ++dispatches_;
    ++ctx.stats.instructions;
    ++ctx.stats.instructionsThisRun;
    if (isVector(inst.op))
        ++ctx.stats.vectorInstructions;
    else
        ++ctx.stats.scalarInstructions;
    ctx.stats.lastCompletion =
        std::max(ctx.stats.lastCompletion, plan.completion);
    if (plan.windowIndex > 0)
        ++decoupledSlips_;
    ctx.window.erase(ctx.window.begin() +
                     static_cast<ptrdiff_t>(plan.windowIndex));
}

SimStats
VectorSim::takeStats(uint64_t cycles)
{
    SimStats stats;
    stats.cycles = cycles;
    for (const auto &port : memPorts_) {
        stats.memRequests += port.bus.requests();
        stats.ldBusyCycles += port.pipe.busyCycles();
    }
    stats.memPorts = static_cast<int>(memPorts_.size());
    stats.vecOpsFu1 = vecOpsFu1_;
    stats.vecOpsFu2 = vecOpsFu2_;
    stats.dispatches = dispatches_;
    stats.decodeIdle = decodeIdle_;
    stats.decoupledSlips = decoupledSlips_;
    stats.fu1BusyCycles = fu1_.busyCycles();
    stats.fu2BusyCycles = fu2_.busyCycles();
    stats.stateHist = stateHist_;
    for (const auto &ctx : contexts_)
        stats.threads.push_back(ctx.stats);
    stats.jobs = jobRecords_;
    return stats;
}

} // namespace mtv
