/**
 * @file
 * DispatchUnit: the decode-stage dispatch logic of the machine —
 * "can this instruction begin right now, and what does it occupy if
 * it does?" — split out of the monolithic simulator.
 *
 * Planning (planAny/planDispatch) is pure: it computes a validated
 * DispatchPlan from context state, the pipelines and the memory
 * system without modifying anything, reporting the *first failing
 * resource* as a BlockReason otherwise. Commit applies a plan:
 * reserves units/ports/registers and updates the dispatch counters.
 * Every predicate planning evaluates is a comparison of a stored
 * ready-time against `now`, which is what makes the event-driven
 * kernel sound: while no ready-time expires, a blocked plan stays
 * blocked for the same reason.
 */

#ifndef MTV_CORE_DISPATCH_HH
#define MTV_CORE_DISPATCH_HH

#include <cstdint>
#include <optional>

#include "src/core/context.hh"
#include "src/core/pipelines.hh"
#include "src/isa/machine_params.hh"
#include "src/memsys/mem_system.hh"

namespace mtv
{

/** A validated dispatch decision, ready to commit. */
struct DispatchPlan
{
    enum class Unit : uint8_t { Scalar, Fu1, Fu2, Mem } unit;
    size_t windowIndex = 0;   ///< which window entry dispatches
    MemPort *port = nullptr;  ///< memory port (Unit::Mem)
    uint64_t start = 0;       ///< first cycle of unit occupation
    uint64_t pipeUntil = 0;   ///< memory pipe occupation end
    uint64_t prodFirst = 0;   ///< first-element availability (V dst)
    uint64_t writeDone = 0;   ///< last-element write (V dst)
    uint64_t completion = 0;  ///< retire time for run accounting
    uint64_t scalarReady = 0; ///< scalar dst ready time
    bool chainableOut = false;
    /** Bounded renaming: this dispatch claims a rename-pool slot
     *  (its busy destination is displaced to a spare register). */
    bool renamed = false;
};

/** Plans and commits dispatches against the shared machine state. */
class DispatchUnit
{
  public:
    DispatchUnit(const MachineParams &params, PipelineSet &pipes,
                 MemSystem &mem)
        : params_(params), pipes_(pipes), mem_(mem)
    {
    }

    /**
     * Find a dispatchable instruction in the window: the head, or —
     * when decoupling is on — a vector memory instruction that
     * conflicts with none of the skipped entries. On failure @p why
     * holds the head's block reason.
     */
    std::optional<DispatchPlan> planAny(const Context &ctx,
                                        uint64_t now,
                                        BlockReason &why) const;

    /** Pure dispatch feasibility check + timing computation. */
    std::optional<DispatchPlan> planDispatch(const Context &ctx,
                                             const Instruction &inst,
                                             uint64_t now,
                                             BlockReason &why) const;

    /** Commit @p plan: reserve resources, update scoreboards, stats. */
    void commit(Context &ctx, const DispatchPlan &plan, uint64_t now);

    /**
     * Feed every ready-time that planAny() could compare against
     * `now` for this context into @p em: the resources referenced by
     * the window head and by every decoupled-slip candidate (unit
     * and port free-cycles, source/destination register horizons,
     * bank ports, scalar scoreboard entries). This is the event
     * kernel's wakeup set — a superset of the times the reachable
     * checks examine, so no block reason or feasibility flip can
     * precede the earliest of them (waking early is harmless; waking
     * late would break bit-identity). Kept next to planDispatch() so
     * the two stay in sync check for check.
     */
    void considerWakeups(const Context &ctx, EventMin &em) const;

    /** Reset the dispatch counters. */
    void clear();

    // --- counters (SimStats inputs) ---
    uint64_t dispatches() const { return dispatches_; }
    uint64_t vecOpsFu1() const { return vecOpsFu1_; }
    uint64_t vecOpsFu2() const { return vecOpsFu2_; }
    uint64_t decoupledSlips() const { return decoupledSlips_; }

  private:
    const MachineParams &params_;
    PipelineSet &pipes_;
    MemSystem &mem_;

    uint64_t dispatches_ = 0;
    uint64_t vecOpsFu1_ = 0;
    uint64_t vecOpsFu2_ = 0;
    uint64_t decoupledSlips_ = 0;
};

} // namespace mtv

#endif // MTV_CORE_DISPATCH_HH
