/**
 * @file
 * The batched lockstep kernel. The fast lane below is a
 * transliteration of the event kernel — VectorSim::runEvent plus
 * DispatchUnit::planDispatch/commit/considerWakeups — specialized to
 * the machine shape sweeps run (one decode slot, no decoupled slip,
 * so a one-deep fetch window), over pre-decoded programs. Every
 * check, charge and ready-time write below mirrors its original
 * check-for-check; the golden digests (tests/test_golden.cc) and the
 * CI kernel-parity job hold the two in lockstep. When you change
 * dispatch semantics in src/core/dispatch.cc or run machinery in
 * src/core/sim.cc, change the mirror here.
 */

#include "src/core/batch_kernel.hh"

#include <algorithm>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/common/logging.hh"
#include "src/core/context.hh"
#include "src/core/dispatch.hh"
#include "src/core/pipelines.hh"
#include "src/core/sim.hh"
#include "src/core/sim_error.hh"
#include "src/memsys/mem_system.hh"

namespace mtv
{

namespace
{

// ---------------------------------------------------------------------
// Shared decode
// ---------------------------------------------------------------------

/** Predicate bits resolved at decode time. */
constexpr uint8_t kFlagMem = 1u << 0;
constexpr uint8_t kFlagLoad = 1u << 1;
constexpr uint8_t kFlagVector = 1u << 2;
constexpr uint8_t kFlagBranch = 1u << 3;
constexpr uint8_t kFlagStore = 1u << 4;

/**
 * One pre-decoded instruction: the per-instruction work that depends
 * only on the stream — unit class, operand/bank indices, clamped
 * vector length, predicate flags — done once per family instead of
 * once per fetched instruction per point.
 */
struct DecodedInst
{
    Opcode op;
    FuClass fu;
    uint8_t flags;
    uint8_t dst;
    uint8_t srcA;
    uint8_t srcB;
    uint16_t vl;      ///< pre-clamped: max(raw vl, 1)
    int32_t stride;
};

/** A fully decoded program, shared by every lane of a family. */
struct DecodedProgram
{
    std::string name;
    /** The raw stream, retained so the cache key (its address) can
     *  never alias a recycled allocation; also the disasm source for
     *  wedged-machine errors. */
    std::shared_ptr<const std::vector<Instruction>> raw;
    std::vector<DecodedInst> code;
};

/**
 * Mirror of VectorSim::checkOperands: validate register indices and
 * vector lengths once at decode instead of once per fetch.
 */
void
checkOperands(const Instruction &inst)
{
    const auto checkReg = [&inst](uint8_t reg, RegSpace space) {
        if (reg == noReg || space == RegSpace::None)
            return;
        const int limit = space == RegSpace::V ? numVRegs
                                               : numSRegs + numARegs;
        if (reg >= limit) {
            fatal("instruction '%s' references out-of-range register "
                  "%u (space holds %d)",
                  inst.disasm().c_str(), reg, limit);
        }
    };
    checkReg(inst.dst, inst.dstSpace());
    checkReg(inst.srcA, inst.srcSpace());
    checkReg(inst.srcB, inst.srcSpace());
    if (isVector(inst.op) && inst.vl > maxVectorLength)
        fatal("instruction '%s' exceeds the maximum vector length %d",
              inst.disasm().c_str(), maxVectorLength);
}

std::shared_ptr<const DecodedProgram>
decodeStream(const std::string &name,
             std::shared_ptr<const std::vector<Instruction>> raw)
{
    auto prog = std::make_shared<DecodedProgram>();
    prog->name = name;
    prog->raw = std::move(raw);
    prog->code.reserve(prog->raw->size());
    for (const Instruction &inst : *prog->raw) {
        checkOperands(inst);
        DecodedInst d;
        d.op = inst.op;
        d.fu = fuClass(inst.op);
        d.flags = static_cast<uint8_t>(
            (isMemory(inst.op) ? kFlagMem : 0) |
            (isLoad(inst.op) ? kFlagLoad : 0) |
            (isVector(inst.op) ? kFlagVector : 0) |
            (inst.op == Opcode::SBranch ? kFlagBranch : 0) |
            (isStore(inst.op) ? kFlagStore : 0));
        d.dst = inst.dst;
        d.srcA = inst.srcA;
        d.srcB = inst.srcB;
        d.vl = std::max<uint16_t>(inst.vl, 1);
        d.stride = inst.stride;
        prog->code.push_back(d);
    }
    return prog;
}

/**
 * Process-wide decode cache, keyed on the shared stream object (the
 * held `raw` pointer keeps the key address alive). Extends the
 * makeProgram() stream cache from shared bytes to shared decode: a
 * 16-lane family decodes each program once, as does every later
 * batch over the same cached stream.
 */
std::shared_ptr<const DecodedProgram>
decodedProgram(const InstructionSource &source)
{
    auto raw = source.sharedStream();
    MTV_ASSERT(raw);
    static std::mutex mutex;
    static std::unordered_map<const void *,
                              std::shared_ptr<const DecodedProgram>>
        cache;
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(raw.get());
        if (it != cache.end())
            return it->second;
    }
    // Decode outside the lock (streams run to ~100k instructions);
    // a racing duplicate decode is identical, last insert wins.
    auto prog = decodeStream(source.name(), std::move(raw));
    std::lock_guard<std::mutex> lock(mutex);
    return cache[prog->raw.get()] = prog;
}

// ---------------------------------------------------------------------
// The fast lane
// ---------------------------------------------------------------------

/**
 * Per-context state, flat. Mirrors mtv::Context with the one-deep
 * window collapsed to a single decoded-instruction pointer and the
 * source cursor inlined (no virtual next(), no Instruction copies).
 */
struct FastContext
{
    const DecodedProgram *prog = nullptr;  ///< null: empty context
    size_t pos = 0;                        ///< fetch cursor
    const DecodedInst *head = nullptr;     ///< the 1-deep window
    bool finished = false;
    bool restartable = false;
    uint64_t fetchReadyAt = 0;
    uint64_t scalarReady[numSRegs + numARegs] = {};
    VRegTiming vregs[numVRegs] = {};
    BankPorts banks[numVRegs / 2] = {};
    ThreadStats stats;
    int jobIndex = -1;

    bool hasWork() const { return !finished || head; }
};

/** Machines the fast lane's specialization covers exactly. Bounded
 *  renaming (renameDepth > 0) is excluded like decoupling: both add
 *  per-context pool state the SoA lockstep loop does not model, so
 *  such points take the per-point generic (Event) fallback. Infinite-
 *  pool renaming and multi-port memory are handled natively. */
bool
fastLaneShape(const MachineParams &params)
{
    return params.decodeWidth == 1 && !params.dualScalar &&
           params.decoupleDepth == 0 && params.renameDepth == 0;
}

/**
 * One point's machine, advanced one event step at a time so the
 * lockstep driver can interleave K of them. Equivalent to
 * VectorSim(params, SimKernel::Event) on the same point.
 */
class FastLane
{
  public:
    FastLane(const BatchPoint &point,
             std::vector<std::shared_ptr<const DecodedProgram>> programs)
        : params_(point.params), mem_(params_),
          mode_(point.kind == BatchPoint::Kind::JobQueue
                    ? RunMode::JobQueue
                    : RunMode::UntilThreadZero),
          maxInstructions_(point.kind == BatchPoint::Kind::Single
                               ? point.maxInstructions
                               : 0),
          programs_(std::move(programs))
    {
        MTV_ASSERT(fastLaneShape(params_));
        contexts_.resize(params_.contexts);
        lastSelected_.assign(params_.contexts, 0);
        scanWhy_.assign(params_.contexts, BlockReason::NoWork);
        for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op)
            latByOp_[op] = params_.opLatency(static_cast<Opcode>(op));
        // Resolve MemSystem::portsFor once: the split is per op-class,
        // not per op (stores fall back to the load ports when the
        // machine has no store port).
        loadPorts_ = &mem_.portsFor(Opcode::VLoad);
        storePorts_ = &mem_.portsFor(Opcode::VStore);
        stallLimit_ =
            16 * (static_cast<uint64_t>(params_.memLatency) +
                  maxVectorLength * 8) +
            1000000;

        switch (point.kind) {
          case BatchPoint::Kind::Single: {
            FastContext &ctx0 = contexts_[0];
            ctx0.prog = programs_[0].get();
            ctx0.stats.program = ctx0.prog->name;
            break;
          }
          case BatchPoint::Kind::Group:
            for (size_t i = 0; i < programs_.size(); ++i) {
                FastContext &ctx = contexts_[i];
                ctx.prog = programs_[i].get();
                ctx.restartable = i != 0;
                ctx.stats.program = ctx.prog->name;
            }
            break;
          case BatchPoint::Kind::JobQueue:
            for (const auto &job : programs_)
                jobs_.push_back(job.get());
            for (auto &ctx : contexts_) {
                if (nextJob_ >= jobs_.size()) {
                    ctx.finished = true;
                    continue;
                }
                ctx.prog = jobs_[nextJob_];
                ctx.stats.program = ctx.prog->name;
                ctx.jobIndex = static_cast<int>(jobRecords_.size());
                jobRecords_.push_back(
                    {ctx.prog->name,
                     static_cast<int>(&ctx - contexts_.data()), 0, 0});
                ++nextJob_;
            }
            break;
        }

        primeFetch(0);
        finished_ = done(now_);
    }

    bool finished() const { return finished_; }
    uint64_t now() const { return now_; }

    /**
     * Advance until the local clock passes @p stop (or the run ends).
     * Always takes at least one step, so a caller that hands each
     * lane the second-lowest clock in the batch keeps the lanes in
     * approximate lockstep without paying the driver shell per step.
     */
    void
    advanceUntil(uint64_t stop)
    {
        MTV_ASSERT(!finished_);
        if (contexts_.size() == 1) {
            do {
                advanceSingle();
            } while (!finished_ && now_ <= stop);
        } else {
            do {
                advanceMulti();
            } while (!finished_ && now_ <= stop);
        }
    }

    /** One iteration of the event-kernel loop (see runEvent()). */
    void
    advanceMulti()
    {
        const bool dispatched = decodeCycle(now_);
        bool anyReady = false;
        if (!dispatched) {
            for (int c = 0; c < params_.contexts; ++c)
                anyReady |= scanWhy_[c] == BlockReason::None;
        }
        if (dispatched || anyReady) {
            // Non-dispatch step cycles stay in the pending region:
            // nothing committed, so the deferred integration over them
            // equals the per-cycle sample.
            if (dispatched) {
                ++stateHist_[static_cast<size_t>(stateBits(now_))];
                histPending_ = now_ + 1;
            }
            ++now_;
            primeFetch(now_);
            checkWatchdog(now_);
        } else {
            const uint64_t watchdogAt =
                lastDispatchCycle_ + stallLimit_ + 1;
            uint64_t wake = nextWakeup(now_);
            if (wake == 0 || wake > watchdogAt)
                wake = watchdogAt;
            accountIdleSpan(now_, wake);
            now_ = wake;
            primeFetch(now_);
            checkWatchdog(now_);
        }
        finished_ = done(now_);
    }

    /**
     * The single-context step: the advance() loop with the context
     * scan, thread-switch machinery and per-span accounting shells
     * collapsed. Reference-machine sweeps (the Figure 10 ratchet)
     * spend their whole run here.
     */
    void
    advanceSingle()
    {
        FastContext &ctx = contexts_[0];
        BlockReason why = BlockReason::NoWork;
        if (ctx.head || refillWindow(ctx, now_, why)) {
            DispatchPlan plan{};
            if (planHead(ctx, *ctx.head, now_, plan, why)) {
                commit(ctx, *ctx.head, plan, now_);
                lastDispatchCycle_ = now_;
                ++stateHist_[static_cast<size_t>(stateBits(now_))];
                histPending_ = now_ + 1;
                ++now_;
                if (!ctx.head)
                    refillWindow(ctx, now_, why);
                checkWatchdog(now_);
                finished_ = done(now_);
                return;
            }
        }
        // Blocked: one reason covers the whole span (nothing commits
        // while blocked), so the cycle-by-cycle charges of the multi-
        // context path collapse to one add. With a head, the span end
        // comes straight from the failed plan: every dispatch predicate
        // is monotone until the next commit, so the first-failing check
        // (= the reason) cannot change before its own threshold, and
        // intermediate wakeups the event kernel takes inside the span
        // replan to the same reason. Jumping over them charges the same
        // totals without enumerating every resource's next event.
        scanWhy_[0] = why;
        const uint64_t watchdogAt = lastDispatchCycle_ + stallLimit_ + 1;
        uint64_t wake;
        if (ctx.head) {
            wake = unblockAt_;
        } else {
            EventMin em(now_);
            em.consider(ctx.fetchReadyAt);
            em.consider(ctx.stats.lastCompletion);
            wake = em.next;
        }
        if (wake <= now_ || wake > watchdogAt)
            wake = watchdogAt;
        const uint64_t span = wake - now_;
        decodeIdle_ += span;
        ctx.stats.blocked[static_cast<size_t>(why)] += span;
        now_ = wake;
        if (!ctx.head)
            refillWindow(ctx, now_, why);
        checkWatchdog(now_);
        finished_ = done(now_);
    }

    SimStats
    takeStats()
    {
        flushHist(now_);
        SimStats stats;
        stats.cycles = now_;
        for (const auto &port : mem_.ports()) {
            stats.memRequests += port.bus.requests();
            stats.ldBusyCycles += port.pipe.busyCycles();
        }
        stats.memPorts = static_cast<int>(mem_.ports().size());
        stats.vecOpsFu1 = vecOpsFu1_;
        stats.vecOpsFu2 = vecOpsFu2_;
        stats.dispatches = dispatches_;
        stats.decodeIdle = decodeIdle_;
        stats.decoupledSlips = 0;
        stats.fu1BusyCycles = pipes_.fu1().busyCycles();
        stats.fu2BusyCycles = pipes_.fu2().busyCycles();
        stats.stateHist = stateHist_;
        for (const auto &ctx : contexts_)
            stats.threads.push_back(ctx.stats);
        stats.jobs = jobRecords_;
        return stats;
    }

  private:
    // --- the deferred joint-state histogram ---

    /** The ports serving @p d (the portsFor() split, pre-resolved). */
    const std::vector<MemPort *> &
    portsForInst(const DecodedInst &d) const
    {
        return d.flags & kFlagStore ? *storePorts_ : *loadPorts_;
    }

    /** Joint (FU2, FU1, LD) busy bits at @p now (stateBitsAt, with the
     *  port scan inlined). */
    int
    stateBits(uint64_t now) const
    {
        int bits = (pipes_.fu2().busyAt(now) ? 4 : 0) |
                   (pipes_.fu1().busyAt(now) ? 2 : 0);
        for (const auto &port : mem_.ports()) {
            if (port.pipe.busyAt(now)) {
                bits |= 1;
                break;
            }
        }
        return bits;
    }

    /**
     * Integrate the unaccounted region [histPending_, to) into the
     * joint-state histogram. Unit occupations only change at commits
     * (see PipelineSet::integrateInto), so deferring the integration
     * until just before the next commit — across any number of
     * blocked spans and non-dispatch step cycles — produces the same
     * counts as the event kernel's span-by-span accounting, with one
     * integrator pass per dispatch instead of one per span.
     *
     * The integration itself restates PipelineSet::integrateInto with
     * the busy intervals clamped up front and the one-interval case
     * (a lone load port covering a memory wait — most of a reference
     * machine's cycles) resolved without the generic edge sort.
     */
    void
    flushHist(uint64_t to)
    {
        if (histPending_ >= to)
            return;
        const uint64_t from = histPending_;
        histPending_ = to;

        struct Clamped
        {
            uint64_t from, until;
            int bits;
        };
        Clamped iv[16];
        size_t n = 0;
        const auto add = [&](int bits, const PipeUnit &pipe) {
            uint64_t f = std::max(pipe.busyFrom(), from);
            uint64_t u = std::min(pipe.freeCycle(), to);
            if (f < u) {
                MTV_ASSERT(n < 16);
                iv[n++] = {f, u, bits};
            }
        };
        add(4, pipes_.fu2());
        add(2, pipes_.fu1());
        for (const auto &port : mem_.ports())
            add(1, port.pipe);

        if (n == 0) {
            stateHist_[0] += to - from;
            return;
        }
        if (n == 1) {
            stateHist_[0] += (iv[0].from - from) + (to - iv[0].until);
            stateHist_[static_cast<size_t>(iv[0].bits)] +=
                iv[0].until - iv[0].from;
            return;
        }
        // General case: segment at every interval edge (insertion-
        // sorted; at most 2n+2 of them) and charge each segment to
        // the OR of the intervals covering it.
        uint64_t edges[2 * 16 + 2];
        size_t numEdges = 0;
        edges[numEdges++] = from;
        edges[numEdges++] = to;
        for (size_t i = 0; i < n; ++i) {
            edges[numEdges++] = iv[i].from;
            edges[numEdges++] = iv[i].until;
        }
        for (size_t i = 1; i < numEdges; ++i) {
            const uint64_t e = edges[i];
            size_t j = i;
            for (; j > 0 && edges[j - 1] > e; --j)
                edges[j] = edges[j - 1];
            edges[j] = e;
        }
        for (size_t e = 0; e + 1 < numEdges; ++e) {
            const uint64_t start = edges[e];
            const uint64_t end = edges[e + 1];
            if (start == end)
                continue;
            int bits = 0;
            for (size_t i = 0; i < n; ++i) {
                if (iv[i].from <= start && start < iv[i].until)
                    bits |= iv[i].bits;
            }
            stateHist_[static_cast<size_t>(bits)] += end - start;
        }
    }

    // --- fetch (mirrors VectorSim::ensureWindow at window depth 1) ---

    bool
    ensureWindow(FastContext &ctx, uint64_t now, BlockReason &why)
    {
        if (ctx.head)
            return true;
        return refillWindow(ctx, now, why);
    }

    bool
    refillWindow(FastContext &ctx, uint64_t now, BlockReason &why)
    {
        bool fetchStalled = false;
        while (!ctx.finished && ctx.prog && !ctx.head) {
            if (ctx.fetchReadyAt > now) {
                fetchStalled = true;
                break;
            }
            // (The never-fetch-past-a-branch guard is unreachable at
            // depth 1: the loop only runs with an empty window.)
            if (maxInstructions_ &&
                ctx.stats.instructions >= maxInstructions_) {
                ctx.finished = true;
                ctx.stats.runsCompleted = 0;
                break;
            }

            if (ctx.pos < ctx.prog->code.size()) {
                ctx.head = &ctx.prog->code[ctx.pos++];
                break;  // window full (depth 1)
            }

            // End of the current run.
            if (mode_ == RunMode::JobQueue) {
                if (ctx.jobIndex >= 0) {
                    jobRecords_[ctx.jobIndex].endCycle =
                        ctx.stats.lastCompletion;
                    ctx.jobIndex = -1;
                }
                ++ctx.stats.runsCompleted;
                if (nextJob_ < jobs_.size()) {
                    ctx.prog = jobs_[nextJob_++];
                    ctx.pos = 0;
                    ctx.stats.instructionsThisRun = 0;
                    ctx.jobIndex = static_cast<int>(jobRecords_.size());
                    jobRecords_.push_back(
                        {ctx.prog->name,
                         static_cast<int>(&ctx - contexts_.data()), now,
                         0});
                    continue;
                }
                ctx.finished = true;
                break;
            }

            if (ctx.restartable) {
                ++ctx.stats.runsCompleted;
                ctx.stats.instructionsThisRun = 0;
                ctx.pos = 0;
                continue;
            }

            ctx.finished = true;
            ctx.stats.runsCompleted = 1;
            break;
        }

        if (ctx.head)
            return true;
        why = fetchStalled ? BlockReason::FetchStall
                           : BlockReason::NoWork;
        return false;
    }

    void
    primeFetch(uint64_t t)
    {
        for (auto &ctx : contexts_) {
            BlockReason why;
            ensureWindow(ctx, t, why);
        }
    }

    // --- dispatch (mirrors DispatchUnit::planDispatch/commit) ---

    /** Earliest pipe/bus state change on the ports serving @p d. */
    uint64_t
    nextPortEvent(const DecodedInst &d, uint64_t now) const
    {
        EventMin em(now);
        for (const MemPort *port : portsForInst(d))
            em.consider(port->nextEventAfter(now));
        return em.next;
    }

    bool
    planHead(const FastContext &ctx, const DecodedInst &d, uint64_t now,
             DispatchPlan &plan, BlockReason &why)
    {
        if (d.fu == FuClass::Scalar) {
            for (const uint8_t src : {d.srcA, d.srcB}) {
                if (src != noReg && ctx.scalarReady[src] > now) {
                    why = BlockReason::ScalarDep;
                    unblockAt_ = ctx.scalarReady[src];
                    return false;
                }
            }
            if (d.dst != noReg && ctx.scalarReady[d.dst] > now) {
                why = BlockReason::ScalarDep;
                unblockAt_ = ctx.scalarReady[d.dst];
                return false;
            }
            if (d.flags & kFlagMem) {
                plan.port = nullptr;
                uint64_t busFree = 0;
                for (MemPort *port : portsForInst(d)) {
                    if (port->bus.freeAt(now)) {
                        plan.port = port;
                        break;
                    }
                    const uint64_t f = port->bus.freeCycle();
                    if (busFree == 0 || f < busFree)
                        busFree = f;
                }
                if (!plan.port) {
                    why = BlockReason::MemPortBusy;
                    unblockAt_ = busFree;
                    return false;
                }
            }
            plan.unit = DispatchPlan::Unit::Scalar;
            plan.start = now;
            plan.scalarReady =
                now + static_cast<uint64_t>(
                          latByOp_[static_cast<size_t>(d.op)]);
            plan.completion =
                d.op == Opcode::SStore ? now + 1 : plan.scalarReady;
            return true;
        }

        const uint16_t vl = d.vl;

        if (d.fu == FuClass::VecAny || d.fu == FuClass::VecFu2) {
            if (d.fu == FuClass::VecFu2) {
                if (!pipes_.fu2().freeAt(now)) {
                    why = BlockReason::FuBusy;
                    unblockAt_ = pipes_.fu2().freeCycle();
                    return false;
                }
                plan.unit = DispatchPlan::Unit::Fu2;
            } else if (pipes_.fu1().freeAt(now)) {
                plan.unit = DispatchPlan::Unit::Fu1;
            } else if (pipes_.fu2().freeAt(now)) {
                plan.unit = DispatchPlan::Unit::Fu2;
            } else {
                why = BlockReason::FuBusy;
                unblockAt_ = std::min(pipes_.fu1().freeCycle(),
                                      pipes_.fu2().freeCycle());
                return false;
            }

            uint64_t chainStart = 0;
            int bankReads[numVRegs / 2] = {};
            for (const uint8_t src : {d.srcA, d.srcB}) {
                if (src == noReg)
                    continue;
                const VRegTiming &reg = ctx.vregs[src];
                if (!reg.completeAt(now)) {
                    if (!reg.chainable) {
                        why = BlockReason::SourceNotReady;
                        unblockAt_ = reg.writeDone;
                        return false;
                    }
                    chainStart = std::max(chainStart, reg.prodFirst + 1);
                }
                ++bankReads[vregBank(src)];
            }
            if (d.srcA != noReg && d.srcA == d.srcB)
                --bankReads[vregBank(d.srcA)];

            const bool isReduce = d.op == Opcode::VReduce;
            if (!isReduce) {
                const VRegTiming &dst = ctx.vregs[d.dst];
                if (!params_.renaming && !dst.idleAt(now)) {
                    why = BlockReason::DestBusy;
                    unblockAt_ = std::max(dst.writeDone, dst.readBusy);
                    return false;
                }
            } else if (d.dst != noReg && ctx.scalarReady[d.dst] > now) {
                why = BlockReason::ScalarDep;
                unblockAt_ = ctx.scalarReady[d.dst];
                return false;
            }

            if (params_.modelBankPorts) {
                for (int b = 0; b < numVRegs / 2; ++b) {
                    if (bankReads[b] >
                        ctx.banks[b].freeReadPorts(now)) {
                        why = BlockReason::BankPortBusy;
                        // Need both ports => wait for the later one;
                        // need one (and both busy) => the earlier.
                        const BankPorts &bank = ctx.banks[b];
                        unblockAt_ =
                            bankReads[b] >= 2
                                ? std::max(bank.readUntil[0],
                                           bank.readUntil[1])
                                : std::min(bank.readUntil[0],
                                           bank.readUntil[1]);
                        return false;
                    }
                }
                if (!isReduce && !params_.renaming &&
                    !ctx.banks[vregBank(d.dst)].writeFreeAt(now)) {
                    why = BlockReason::BankPortBusy;
                    unblockAt_ = ctx.banks[vregBank(d.dst)].writeUntil;
                    return false;
                }
            }

            const uint64_t r0 = std::max(
                now + static_cast<uint64_t>(params_.vectorStartup),
                chainStart);
            const int fuLat = latByOp_[static_cast<size_t>(d.op)];
            plan.start = r0;
            plan.prodFirst =
                r0 + params_.readXbar + fuLat + params_.writeXbar;
            plan.writeDone = plan.prodFirst + vl;
            plan.chainableOut = true;
            if (isReduce) {
                plan.scalarReady = r0 + params_.readXbar + fuLat + vl;
                plan.completion = plan.scalarReady;
            } else {
                plan.completion = plan.writeDone;
            }
            return true;
        }

        if (d.fu == FuClass::VecLoad) {
            plan.port = nullptr;
            bool anyPipeFree = false;
            for (MemPort *port : portsForInst(d)) {
                if (!port->pipe.freeAt(now))
                    continue;
                anyPipeFree = true;
                if (port->bus.freeAt(now)) {
                    plan.port = port;
                    break;
                }
            }
            if (!plan.port) {
                why = anyPipeFree ? BlockReason::MemPortBusy
                                  : BlockReason::MemPipeBusy;
                // The pipe/port reason can flip mid-wait, so stop at
                // the next port event and replan rather than jumping
                // to the final dispatch time in one span.
                unblockAt_ = nextPortEvent(d, now);
                return false;
            }
            const VRegTiming &dst = ctx.vregs[d.dst];
            if (!params_.renaming && !dst.idleAt(now)) {
                why = BlockReason::DestBusy;
                unblockAt_ = std::max(dst.writeDone, dst.readBusy);
                return false;
            }
            if (params_.modelBankPorts && !params_.renaming &&
                !ctx.banks[vregBank(d.dst)].writeFreeAt(now)) {
                why = BlockReason::BankPortBusy;
                unblockAt_ = ctx.banks[vregBank(d.dst)].writeUntil;
                return false;
            }
            const bool indexed = d.op == Opcode::VGather;
            const int period =
                mem_.memory().deliveryPeriod(d.stride, indexed);
            plan.unit = DispatchPlan::Unit::Mem;
            plan.start =
                now + static_cast<uint64_t>(params_.vectorStartup);
            plan.pipeUntil =
                plan.start + static_cast<uint64_t>(vl) * period;
            plan.prodFirst =
                plan.start + params_.memLatency + params_.writeXbar;
            plan.writeDone =
                plan.prodFirst + static_cast<uint64_t>(vl) * period;
            plan.chainableOut = params_.loadChaining;
            plan.completion = plan.writeDone;
            return true;
        }

        MTV_ASSERT(d.fu == FuClass::VecStore);
        plan.port = nullptr;
        bool anyPipeFree = false;
        for (MemPort *port : portsForInst(d)) {
            if (!port->pipe.freeAt(now))
                continue;
            anyPipeFree = true;
            if (port->bus.freeAt(now)) {
                plan.port = port;
                break;
            }
        }
        if (!plan.port) {
            why = anyPipeFree ? BlockReason::MemPortBusy
                              : BlockReason::MemPipeBusy;
            unblockAt_ = nextPortEvent(d, now);
            return false;
        }
        const VRegTiming &src = ctx.vregs[d.srcA];
        uint64_t chainStart = 0;
        if (!src.completeAt(now)) {
            if (!src.chainable) {
                why = BlockReason::SourceNotReady;
                unblockAt_ = src.writeDone;
                return false;
            }
            chainStart = src.prodFirst + 1;
        }
        if (params_.modelBankPorts &&
            ctx.banks[vregBank(d.srcA)].freeReadPorts(now) < 1) {
            why = BlockReason::BankPortBusy;
            const BankPorts &bank = ctx.banks[vregBank(d.srcA)];
            unblockAt_ =
                std::min(bank.readUntil[0], bank.readUntil[1]);
            return false;
        }
        plan.unit = DispatchPlan::Unit::Mem;
        plan.start = std::max(
            now + static_cast<uint64_t>(params_.vectorStartup),
            chainStart);
        plan.pipeUntil = plan.start + vl;
        plan.completion = plan.start + vl;
        return true;
    }

    void
    commit(FastContext &ctx, const DecodedInst &d,
           const DispatchPlan &plan, uint64_t now)
    {
        // The occupations below invalidate the frozen intervals the
        // deferred histogram relies on: integrate up to here first.
        flushHist(now);
        const uint16_t vl = d.vl;

        switch (plan.unit) {
          case DispatchPlan::Unit::Scalar:
            if (d.dst != noReg)
                ctx.scalarReady[d.dst] = plan.scalarReady;
            if (d.flags & kFlagMem)
                plan.port->bus.reserve(now, 1);
            if (d.flags & kFlagBranch) {
                ctx.fetchReadyAt =
                    now + 1 +
                    static_cast<uint64_t>(params_.branchStall);
            }
            break;

          case DispatchPlan::Unit::Fu1:
          case DispatchPlan::Unit::Fu2: {
            PipeUnit &unit = plan.unit == DispatchPlan::Unit::Fu1
                                 ? pipes_.fu1()
                                 : pipes_.fu2();
            unit.occupy(plan.start, plan.start + vl);
            if (plan.unit == DispatchPlan::Unit::Fu1)
                vecOpsFu1_ += vl;
            else
                vecOpsFu2_ += vl;

            const uint64_t readUntil = plan.start + vl;
            for (const uint8_t src : {d.srcA, d.srcB}) {
                if (src == noReg)
                    continue;
                VRegTiming &reg = ctx.vregs[src];
                reg.readBusy = std::max(reg.readBusy, readUntil);
                ctx.banks[vregBank(src)].takeReadPort(now, readUntil);
            }
            if (d.op == Opcode::VReduce) {
                if (d.dst != noReg)
                    ctx.scalarReady[d.dst] = plan.scalarReady;
            } else {
                VRegTiming &dst = ctx.vregs[d.dst];
                dst.prodFirst = plan.prodFirst;
                dst.writeDone = plan.writeDone;
                dst.chainable = plan.chainableOut;
                ctx.banks[vregBank(d.dst)].writeUntil = plan.writeDone;
            }
            break;
          }

          case DispatchPlan::Unit::Mem: {
            plan.port->pipe.occupy(plan.start, plan.pipeUntil);
            plan.port->bus.reserve(plan.start, vl);
            if (d.flags & kFlagLoad) {
                VRegTiming &dst = ctx.vregs[d.dst];
                dst.prodFirst = plan.prodFirst;
                dst.writeDone = plan.writeDone;
                dst.chainable = plan.chainableOut;
                ctx.banks[vregBank(d.dst)].writeUntil = plan.writeDone;
            } else {
                VRegTiming &src = ctx.vregs[d.srcA];
                const uint64_t readUntil = plan.start + vl;
                src.readBusy = std::max(src.readBusy, readUntil);
                ctx.banks[vregBank(d.srcA)].takeReadPort(now, readUntil);
            }
            break;
          }
        }

        ++dispatches_;
        ++ctx.stats.instructions;
        ++ctx.stats.instructionsThisRun;
        if (d.flags & kFlagVector)
            ++ctx.stats.vectorInstructions;
        else
            ++ctx.stats.scalarInstructions;
        ctx.stats.lastCompletion =
            std::max(ctx.stats.lastCompletion, plan.completion);
        ctx.head = nullptr;
    }

    // --- the decode cycle (mirrors VectorSim::decodeSingleSlot) ---

    bool
    decodeCycle(uint64_t now)
    {
        FastContext &held = contexts_[currentThread_];
        lastSelected_[currentThread_] = now;
        BlockReason heldWhy = BlockReason::NoWork;
        bool dispatched = false;
        if (ensureWindow(held, now, heldWhy)) {
            DispatchPlan plan{};
            if (planHead(held, *held.head, now, plan, heldWhy)) {
                commit(held, *held.head, plan, now);
                lastDispatchCycle_ = now;
                dispatched = true;
            }
        }
        if (!dispatched) {
            scanWhy_[currentThread_] = heldWhy;
            scanContexts(now);
            for (int c = 0; c < params_.contexts; ++c) {
                if (scanWhy_[c] != BlockReason::None) {
                    contexts_[c].stats.blocked[static_cast<size_t>(
                        scanWhy_[c])]++;
                }
            }
            ++decodeIdle_;
            switchThread();
        } else if (params_.sched == SchedPolicy::RoundRobin) {
            switchThread();
        }
        return dispatched;
    }

    void
    scanContexts(uint64_t now)
    {
        for (int c = 0; c < params_.contexts; ++c) {
            if (c == currentThread_)
                continue;  // the dispatch attempt already recorded it
            FastContext &ctx = contexts_[c];
            BlockReason why = BlockReason::NoWork;
            if (ensureWindow(ctx, now, why)) {
                DispatchPlan plan{};
                if (planHead(ctx, *ctx.head, now, plan, why))
                    why = BlockReason::None;
            }
            scanWhy_[c] = why;
        }
    }

    void
    switchThread()
    {
        const int n = params_.contexts;
        if (n == 1)
            return;

        switch (params_.sched) {
          case SchedPolicy::UnfairLowest:
            for (int c = 0; c < n; ++c) {
                if (scanWhy_[c] == BlockReason::None) {
                    currentThread_ = c;
                    return;
                }
            }
            return;

          case SchedPolicy::FairLru: {
            int best = -1;
            for (int c = 0; c < n; ++c) {
                if (scanWhy_[c] == BlockReason::None &&
                    (best < 0 ||
                     lastSelected_[c] < lastSelected_[best])) {
                    best = c;
                }
            }
            if (best >= 0)
                currentThread_ = best;
            return;
          }

          case SchedPolicy::RoundRobin:
            for (int step = 1; step <= n; ++step) {
                const int c = (currentThread_ + step) % n;
                if (contexts_[c].hasWork()) {
                    currentThread_ = c;
                    return;
                }
            }
            return;
        }
    }

    // --- idle spans (mirrors accountIdleSpan / advanceRoundRobin) ---

    void
    accountIdleSpan(uint64_t from, uint64_t to)
    {
        // The histogram cycles of [from, to) stay in the deferred
        // region (flushHist); only the block charges are per-span.
        const uint64_t skipped = to - from - 1;
        if (skipped == 0)
            return;
        decodeIdle_ += skipped;
        for (int c = 0; c < params_.contexts; ++c) {
            MTV_ASSERT(scanWhy_[c] != BlockReason::None);
            contexts_[c].stats.blocked[static_cast<size_t>(
                scanWhy_[c])] += skipped;
        }
        if (params_.sched == SchedPolicy::RoundRobin)
            advanceRoundRobin(skipped);
    }

    void
    advanceRoundRobin(uint64_t steps)
    {
        int active[8];
        int m = 0;
        MTV_ASSERT(params_.contexts <= 8);
        for (int c = 0; c < params_.contexts; ++c) {
            if (contexts_[c].hasWork())
                active[m++] = c;
        }
        if (m == 0)
            return;
        int p0 = 0;
        while (p0 < m && active[p0] <= currentThread_)
            ++p0;
        if (p0 == m)
            p0 = 0;
        currentThread_ =
            active[(p0 + (steps - 1)) % static_cast<uint64_t>(m)];
    }

    // --- wakeups (mirrors Scheduler::nextWakeup + considerWakeups) ---

    void
    considerWakeups(const FastContext &ctx, EventMin &em) const
    {
        if (!ctx.head)
            return;
        const DecodedInst &d = *ctx.head;

        if (d.fu == FuClass::Scalar) {
            for (const uint8_t reg : {d.srcA, d.srcB, d.dst}) {
                if (reg != noReg)
                    em.consider(ctx.scalarReady[reg]);
            }
            if (d.flags & kFlagMem) {
                for (const MemPort *port : portsForInst(d))
                    em.consider(port->bus.freeCycle());
            }
            return;
        }

        if (d.fu == FuClass::VecAny || d.fu == FuClass::VecFu2) {
            em.consider(pipes_.fu2().freeCycle());
            if (d.fu == FuClass::VecAny)
                em.consider(pipes_.fu1().freeCycle());
            for (const uint8_t src : {d.srcA, d.srcB}) {
                if (src == noReg)
                    continue;
                const VRegTiming &reg = ctx.vregs[src];
                if (!reg.chainable)
                    em.consider(reg.writeDone);
                if (params_.modelBankPorts) {
                    em.consider(ctx.banks[vregBank(src)].nextEventAfter(
                        em.now));
                }
            }
            if (d.op == Opcode::VReduce) {
                if (d.dst != noReg)
                    em.consider(ctx.scalarReady[d.dst]);
            } else if (!params_.renaming) {
                const VRegTiming &dst = ctx.vregs[d.dst];
                em.consider(dst.writeDone);
                em.consider(dst.readBusy);
                if (params_.modelBankPorts) {
                    em.consider(
                        ctx.banks[vregBank(d.dst)].writeUntil);
                }
            }
            return;
        }

        for (const MemPort *port : portsForInst(d))
            em.consider(port->nextEventAfter(em.now));
        if (d.fu == FuClass::VecLoad) {
            if (!params_.renaming) {
                const VRegTiming &dst = ctx.vregs[d.dst];
                em.consider(dst.writeDone);
                em.consider(dst.readBusy);
                if (params_.modelBankPorts) {
                    em.consider(
                        ctx.banks[vregBank(d.dst)].writeUntil);
                }
            }
        } else {
            const VRegTiming &src = ctx.vregs[d.srcA];
            if (!src.chainable)
                em.consider(src.writeDone);
            if (params_.modelBankPorts) {
                em.consider(ctx.banks[vregBank(d.srcA)].nextEventAfter(
                    em.now));
            }
        }
    }

    uint64_t
    nextWakeup(uint64_t now) const
    {
        EventMin em(now);
        for (const auto &ctx : contexts_) {
            em.consider(ctx.fetchReadyAt);
            em.consider(ctx.stats.lastCompletion);
            considerWakeups(ctx, em);
        }
        return em.next;
    }

    // --- termination and the watchdog ---

    bool
    done(uint64_t now) const
    {
        if (mode_ == RunMode::UntilThreadZero) {
            const FastContext &ctx0 = contexts_[0];
            return ctx0.finished && !ctx0.head &&
                   now >= ctx0.stats.lastCompletion;
        }
        uint64_t maxCompletion = 0;
        for (const auto &ctx : contexts_) {
            if (!ctx.finished || ctx.head)
                return false;
            maxCompletion =
                std::max(maxCompletion, ctx.stats.lastCompletion);
        }
        return now >= maxCompletion;
    }

    void
    checkWatchdog(uint64_t now)
    {
        if (now - lastDispatchCycle_ > stallLimit_)
            throwWedged(now);
    }

    [[noreturn]] void
    throwWedged(uint64_t now)
    {
        scanContexts(now);
        {
            FastContext &held = contexts_[currentThread_];
            BlockReason why = BlockReason::NoWork;
            if (ensureWindow(held, now, why)) {
                DispatchPlan plan{};
                if (planHead(held, *held.head, now, plan, why))
                    why = BlockReason::None;
            }
            scanWhy_[currentThread_] = why;
        }
        std::vector<BlockedContext> blocked;
        blocked.reserve(contexts_.size());
        for (int c = 0; c < params_.contexts; ++c) {
            const FastContext &ctx = contexts_[c];
            BlockedContext b;
            b.context = c;
            b.program = ctx.stats.program;
            b.reason = scanWhy_[c];
            b.windowDepth = ctx.head ? 1 : 0;
            if (ctx.head) {
                const size_t idx = static_cast<size_t>(
                    ctx.head - ctx.prog->code.data());
                b.windowHead = (*ctx.prog->raw)[idx].disasm();
            }
            blocked.push_back(std::move(b));
        }
        throw SimError(now, now - lastDispatchCycle_,
                       std::move(blocked));
    }

    // --- configuration ---
    MachineParams params_;
    MemSystem mem_;
    PipelineSet pipes_;
    int latByOp_[static_cast<size_t>(Opcode::NumOpcodes)] = {};
    const std::vector<MemPort *> *loadPorts_ = nullptr;
    const std::vector<MemPort *> *storePorts_ = nullptr;

    // --- machine state ---
    std::vector<FastContext> contexts_;
    int currentThread_ = 0;
    std::vector<uint64_t> lastSelected_;
    std::vector<BlockReason> scanWhy_;

    // --- run bookkeeping ---
    RunMode mode_;
    std::vector<const DecodedProgram *> jobs_;
    size_t nextJob_ = 0;
    uint64_t maxInstructions_;
    uint64_t lastDispatchCycle_ = 0;
    uint64_t stallLimit_;
    uint64_t now_ = 0;
    bool finished_ = false;
    /** Start of the cycle region not yet in stateHist_. */
    uint64_t histPending_ = 0;
    /** Threshold of the last failed planHead() predicate: the first
     *  cycle at which that plan's blocking check can pass. */
    uint64_t unblockAt_ = 0;

    // --- statistics ---
    uint64_t dispatches_ = 0;
    uint64_t vecOpsFu1_ = 0;
    uint64_t vecOpsFu2_ = 0;
    uint64_t decodeIdle_ = 0;
    std::array<uint64_t, numFuStates> stateHist_{};
    std::vector<JobRecord> jobRecords_;

    /** Keeps the shared decode alive for the lane's lifetime. */
    std::vector<std::shared_ptr<const DecodedProgram>> programs_;
};

// ---------------------------------------------------------------------
// Point validation and the generic fallback
// ---------------------------------------------------------------------

/** The user-error checks of the VectorSim entry points. */
void
validatePoint(const BatchPoint &point)
{
    switch (point.kind) {
      case BatchPoint::Kind::Single:
        if (point.sources.size() != 1)
            fatal("single-point batch entry needs exactly one source");
        break;
      case BatchPoint::Kind::Group:
        if (static_cast<int>(point.sources.size()) !=
            point.params.contexts) {
            fatal("group run needs exactly %d programs, got %zu",
                  point.params.contexts, point.sources.size());
        }
        for (size_t i = 0; i < point.sources.size(); ++i) {
            for (size_t j = i + 1; j < point.sources.size(); ++j) {
                if (point.sources[i] == point.sources[j]) {
                    fatal("group run requires distinct source "
                          "instances (program '%s' passed twice)",
                          point.sources[i]->name().c_str());
                }
            }
        }
        break;
      case BatchPoint::Kind::JobQueue:
        if (point.sources.empty())
            fatal("job-queue run needs at least one job");
        break;
    }
    for (const InstructionSource *source : point.sources) {
        if (!source)
            fatal("batch point carries a null instruction source");
    }
}

/** Points outside the fast lane simulate through the event kernel. */
SimStats
runGenericPoint(const BatchPoint &point)
{
    VectorSim sim(point.params, SimKernel::Event);
    switch (point.kind) {
      case BatchPoint::Kind::Single:
        return sim.runSingle(*point.sources[0], point.maxInstructions);
      case BatchPoint::Kind::Group:
        return sim.runGroup(point.sources);
      case BatchPoint::Kind::JobQueue:
        return sim.runJobQueue(point.sources);
    }
    fatal("unreachable batch point kind");
}

} // namespace

// ---------------------------------------------------------------------
// The lockstep driver
// ---------------------------------------------------------------------

namespace
{
/**
 * Minimum stride per lane pick, in simulated cycles. Event-step
 * interleaving is only a locality heuristic — lanes are independent —
 * and fine-grained switching costs more (cold branch-predictor and
 * cache state per switch) than marching together saves, so each lane
 * catches up in generous spans.
 */
constexpr uint64_t kCatchUpSpan = 100000;
} // namespace

std::vector<BatchResult>
runBatch(const std::vector<BatchPoint> &points)
{
    std::vector<BatchResult> results(points.size());
    std::vector<std::unique_ptr<FastLane>> lanes(points.size());

    // Partition: fast lanes for eligible points, the event kernel for
    // the rest (also run here so a mixed batch stays one call).
    std::vector<size_t> live;
    for (size_t i = 0; i < points.size(); ++i) {
        const BatchPoint &point = points[i];
        point.params.validate();
        validatePoint(point);
        bool fast = fastLaneShape(point.params);
        std::vector<std::shared_ptr<const DecodedProgram>> programs;
        if (fast) {
            programs.reserve(point.sources.size());
            for (const InstructionSource *source : point.sources) {
                if (!source->sharedStream()) {
                    fast = false;
                    break;
                }
                programs.push_back(decodedProgram(*source));
            }
        }
        try {
            if (fast) {
                lanes[i] = std::make_unique<FastLane>(
                    point, std::move(programs));
                if (lanes[i]->finished())
                    results[i].stats = lanes[i]->takeStats();
                else
                    live.push_back(i);
            } else {
                results[i].stats = runGenericPoint(point);
            }
        } catch (const SimError &) {
            results[i].error = std::current_exception();
        }
        if (results[i].error || !lanes[i] || lanes[i]->finished())
            lanes[i].reset();
    }

    // Lockstep: repeatedly pick the lane with the minimum local clock
    // and advance it until it passes the second-lowest clock. Lanes
    // share read-only decode state only, so each finishes
    // bit-identical to a solo run; the min-reduction just orders the
    // interleaving (and keeps the working set of the K machines
    // marching through the same program region together), while the
    // until-second-clock stride amortizes the reduction itself.
    while (!live.empty()) {
        size_t best = 0;
        uint64_t bestNow = lanes[live[0]]->now();
        uint64_t secondNow = UINT64_MAX;
        for (size_t k = 1; k < live.size(); ++k) {
            const uint64_t laneNow = lanes[live[k]]->now();
            if (laneNow < bestNow) {
                secondNow = bestNow;
                bestNow = laneNow;
                best = k;
            } else {
                secondNow = std::min(secondNow, laneNow);
            }
        }
        const size_t index = live[best];
        FastLane &lane = *lanes[index];
        bool reap = false;
        try {
            lane.advanceUntil(
                std::max(secondNow, lane.now() + kCatchUpSpan));
            if (lane.finished()) {
                results[index].stats = lane.takeStats();
                reap = true;
            }
        } catch (const SimError &) {
            results[index].error = std::current_exception();
            reap = true;
        }
        if (reap) {
            lanes[index].reset();
            live[best] = live.back();
            live.pop_back();
        }
    }
    return results;
}

SimStats
takeBatchResult(std::vector<BatchResult> results, size_t index)
{
    MTV_ASSERT(index < results.size());
    if (results[index].error)
        std::rethrow_exception(results[index].error);
    return std::move(results[index].stats);
}

} // namespace mtv
