/**
 * @file
 * Simulation statistics: everything the paper's figures consume.
 */

#ifndef MTV_CORE_METRICS_HH
#define MTV_CORE_METRICS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace mtv
{

/** Why a decode attempt failed (for utilization analysis). */
enum class BlockReason : uint8_t
{
    None,          ///< dispatched
    NoWork,        ///< program finished / nothing fetched
    FetchStall,    ///< branch shadow, instruction not fetched yet
    ScalarDep,     ///< scalar scoreboard hazard
    SourceNotReady,///< vector RAW that cannot chain (e.g. from a load)
    DestBusy,      ///< vector WAW/WAR hazard
    FuBusy,        ///< required arithmetic pipe occupied
    MemPipeBusy,   ///< LD pipe occupied
    MemPortBusy,   ///< address bus occupied
    BankPortBusy,  ///< register-bank port conflict
    NumReasons
};

/** Short name for reports. */
const char *blockReasonName(BlockReason reason);

/**
 * Joint busy-state of the three vector units, encoded as the paper's
 * 3-tuple (FU2, FU1, LD): bit 2 = FU2 busy, bit 1 = FU1, bit 0 = LD.
 */
constexpr int numFuStates = 8;

/** Render state @p index as the paper's tuple, e.g. "<FU2, , LD>". */
std::string fuStateName(int index);

/**
 * One unit's busy interval for joint-state integration: the unit
 * drives @p bit of the state tuple and is busy over [from, until).
 * Several spans may drive the same bit (the LD bit is the OR of
 * every memory port's pipe).
 */
struct UnitSpan
{
    int bit = 0;
    uint64_t from = 0;
    uint64_t until = 0;
};

/**
 * Add the cycles [from, to) to @p hist exactly as per-cycle sampling
 * of the given unit occupations would: each cycle lands in the bucket
 * whose bits are the units busy that cycle. Used by the event-driven
 * kernel to integrate the joint-state histogram over skipped idle
 * spans in O(units log units) instead of O(cycles).
 */
void accumulateJointStates(std::array<uint64_t, numFuStates> &hist,
                           uint64_t from, uint64_t to,
                           const UnitSpan *units, size_t count);

/** Per-context accounting. */
struct ThreadStats
{
    std::string program;            ///< program running on this context
    uint64_t instructions = 0;      ///< total dispatched
    uint64_t scalarInstructions = 0;
    uint64_t vectorInstructions = 0;
    uint64_t runsCompleted = 0;     ///< full restarts finished
    uint64_t instructionsThisRun = 0;  ///< progress into current run
    uint64_t lastCompletion = 0;    ///< completion cycle of last instr
    std::array<uint64_t, static_cast<size_t>(BlockReason::NumReasons)>
        blocked{};                  ///< lost decode cycles by reason
};

/** One job-queue assignment (Figure 9's execution profile). */
struct JobRecord
{
    std::string program;
    int context = 0;
    uint64_t startCycle = 0;
    uint64_t endCycle = 0;
};

/** Results of one simulation. */
struct SimStats
{
    uint64_t cycles = 0;            ///< total execution time
    uint64_t memRequests = 0;       ///< address-bus transfers
    uint64_t vecOpsFu1 = 0;         ///< element ops executed on FU1
    uint64_t vecOpsFu2 = 0;         ///< element ops executed on FU2
    uint64_t dispatches = 0;        ///< instructions dispatched
    uint64_t decodeIdle = 0;        ///< cycles with no dispatch
    uint64_t decoupledSlips = 0;    ///< memory ops that slipped ahead
    int memPorts = 1;               ///< address ports on this machine
    uint64_t fu1BusyCycles = 0;
    uint64_t fu2BusyCycles = 0;
    uint64_t ldBusyCycles = 0;
    /** Cycles spent in each (FU2, FU1, LD) joint state. */
    std::array<uint64_t, numFuStates> stateHist{};
    std::vector<ThreadStats> threads;
    std::vector<JobRecord> jobs;

    /**
     * Paper metric: memory-port occupation in [0, 1] (requests per
     * port-cycle; the paper's machine has one port, multi-port
     * machines normalize by their port count).
     */
    double
    memPortOccupation() const
    {
        return cycles ? static_cast<double>(memRequests) /
                            (static_cast<double>(cycles) * memPorts)
                      : 0.0;
    }

    /** Paper metric: vector (arithmetic) operations per cycle, [0,2]. */
    double
    vopc() const
    {
        return cycles ? static_cast<double>(vecOpsFu1 + vecOpsFu2) /
                            cycles
                      : 0.0;
    }

    /** Fraction of cycles the memory port (LD pipe) was idle. */
    double
    memPortIdleFraction() const
    {
        uint64_t idle = 0;
        for (int s = 0; s < numFuStates; ++s) {
            if (!(s & 1))  // LD bit clear
                idle += stateHist[s];
        }
        return cycles ? static_cast<double>(idle) / cycles : 0.0;
    }
};

} // namespace mtv

#endif // MTV_CORE_METRICS_HH
