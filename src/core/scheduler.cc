#include "src/core/scheduler.hh"

namespace mtv
{

uint64_t
Scheduler::nextWakeup(uint64_t now, const DispatchUnit &dispatch,
                      const std::vector<Context> &contexts) const
{
    ++wakeups_;
    EventMin em(now);
    for (const auto &ctx : contexts) {
        em.consider(ctx.fetchReadyAt);
        em.consider(ctx.stats.lastCompletion);
        dispatch.considerWakeups(ctx, em);
    }
    return em.next;
}

} // namespace mtv
