/**
 * @file
 * Small occupancy primitives shared by the simulator's pipelines.
 */

#ifndef MTV_CORE_RESOURCES_HH
#define MTV_CORE_RESOURCES_HH

#include <cstdint>

namespace mtv
{

/**
 * Running minimum of pending ready-times strictly after a reference
 * cycle — the accumulator the event-driven kernel's wakeup
 * computation folds resource report times into.
 */
struct EventMin
{
    explicit EventMin(uint64_t now) : now(now) {}

    /** Fold in @p t; times at or before `now` are not pending. */
    void
    consider(uint64_t t)
    {
        if (t > now && (next == 0 || t < next))
            next = t;
    }

    uint64_t now;
    uint64_t next = 0;  ///< earliest considered time > now; 0 = none
};

/**
 * Occupancy state of one fully-pipelined unit (FU1, FU2 or the LD
 * pipe). A unit accepts a new instruction only when the previous one
 * has completely finished occupying it, so a single [from, until)
 * interval describes its state at all times.
 */
class PipeUnit
{
  public:
    /** True when no occupation extends past @p cycle. */
    bool freeAt(uint64_t cycle) const { return until_ <= cycle; }

    /** True when the unit is processing an element at @p cycle. */
    bool
    busyAt(uint64_t cycle) const
    {
        return from_ <= cycle && cycle < until_;
    }

    /** Occupy [from, until). Caller must have checked freeAt(). */
    void
    occupy(uint64_t from, uint64_t until)
    {
        from_ = from;
        until_ = until;
        busyCycles_ += until - from;
    }

    /** Cycle at which the unit becomes free. */
    uint64_t freeCycle() const { return until_; }

    /** First cycle of the current/last occupation ([from, until)). */
    uint64_t busyFrom() const { return from_; }

    /** Total cycles this unit has been occupied. */
    uint64_t busyCycles() const { return busyCycles_; }

    /** Reset to pristine state. */
    void
    clear()
    {
        from_ = until_ = busyCycles_ = 0;
    }

  private:
    uint64_t from_ = 0;
    uint64_t until_ = 0;
    uint64_t busyCycles_ = 0;
};

/**
 * Architectural state of one vector register as the timing model sees
 * it: when its in-flight write completes, when its first element is
 * available for chaining, and until when in-flight readers occupy it.
 */
struct VRegTiming
{
    uint64_t writeDone = 0;   ///< cycle the last element is written
    uint64_t prodFirst = 0;   ///< cycle the first element is written
    bool chainable = false;   ///< producer allows chaining out of it
    uint64_t readBusy = 0;    ///< last cycle any active reader touches it

    /** Fully written at @p cycle? */
    bool completeAt(uint64_t cycle) const { return writeDone <= cycle; }

    /** Free of both writer and readers (WAW/WAR safe)? */
    bool
    idleAt(uint64_t cycle) const
    {
        return writeDone <= cycle && readBusy <= cycle;
    }

    /**
     * Earliest cycle strictly after @p now at which a dispatch
     * predicate over this register (completeAt/idleAt) can change,
     * or 0 when none is pending. prodFirst is deliberately excluded:
     * it shifts a chained plan's timing but never gates feasibility.
     */
    uint64_t
    nextEventAfter(uint64_t now) const
    {
        EventMin em(now);
        em.consider(writeDone);
        em.consider(readBusy);
        return em.next;
    }
};

/**
 * Port state of one vector register bank (two registers sharing two
 * read ports and one write port, paper section 3). Port reservations
 * follow the same single-future-interval reasoning as PipeUnit, so
 * busy-until times suffice.
 */
struct BankPorts
{
    uint64_t readUntil[2] = {0, 0};
    uint64_t writeUntil = 0;

    /** Number of read ports free at @p cycle. */
    int
    freeReadPorts(uint64_t cycle) const
    {
        return (readUntil[0] <= cycle ? 1 : 0) +
               (readUntil[1] <= cycle ? 1 : 0);
    }

    /** Reserve one read port until @p until. */
    void
    takeReadPort(uint64_t cycle, uint64_t until)
    {
        if (readUntil[0] <= cycle)
            readUntil[0] = until;
        else
            readUntil[1] = until;
    }

    bool writeFreeAt(uint64_t cycle) const { return writeUntil <= cycle; }

    /**
     * Earliest cycle strictly after @p now at which a port of this
     * bank frees, or 0 when none is pending.
     */
    uint64_t
    nextEventAfter(uint64_t now) const
    {
        EventMin em(now);
        em.consider(readUntil[0]);
        em.consider(readUntil[1]);
        em.consider(writeUntil);
        return em.next;
    }
};

/** Bank index of a vector register (registers are paired). */
constexpr int
vregBank(int vreg)
{
    return vreg / 2;
}

} // namespace mtv

#endif // MTV_CORE_RESOURCES_HH
