#include "src/core/metrics.hh"

#include <algorithm>

#include "src/common/logging.hh"

namespace mtv
{

void
accumulateJointStates(std::array<uint64_t, numFuStates> &hist,
                      uint64_t from, uint64_t to,
                      const UnitSpan *units, size_t count)
{
    if (from >= to)
        return;
    // Segment [from, to) at every clamped interval edge; within a
    // segment the joint state is constant.
    uint64_t edges[2 * 16 + 2];
    size_t numEdges = 0;
    MTV_ASSERT(count <= 16);
    edges[numEdges++] = from;
    edges[numEdges++] = to;
    for (size_t i = 0; i < count; ++i) {
        if (units[i].from > from && units[i].from < to)
            edges[numEdges++] = units[i].from;
        if (units[i].until > from && units[i].until < to)
            edges[numEdges++] = units[i].until;
    }
    std::sort(edges, edges + numEdges);
    for (size_t e = 0; e + 1 < numEdges; ++e) {
        const uint64_t start = edges[e];
        const uint64_t end = edges[e + 1];
        if (start == end)
            continue;
        int bits = 0;
        for (size_t i = 0; i < count; ++i) {
            if (units[i].from <= start && start < units[i].until)
                bits |= 1 << units[i].bit;
        }
        hist[static_cast<size_t>(bits)] += end - start;
    }
}

const char *
blockReasonName(BlockReason reason)
{
    switch (reason) {
      case BlockReason::None: return "dispatched";
      case BlockReason::NoWork: return "no-work";
      case BlockReason::FetchStall: return "fetch-stall";
      case BlockReason::ScalarDep: return "scalar-dep";
      case BlockReason::SourceNotReady: return "source-not-ready";
      case BlockReason::DestBusy: return "dest-busy";
      case BlockReason::FuBusy: return "fu-busy";
      case BlockReason::MemPipeBusy: return "mem-pipe-busy";
      case BlockReason::MemPortBusy: return "mem-port-busy";
      case BlockReason::BankPortBusy: return "bank-port-busy";
      default: return "unknown";
    }
}

std::string
fuStateName(int index)
{
    MTV_ASSERT(index >= 0 && index < numFuStates);
    std::string out = "<";
    out += (index & 4) ? "FU2" : "   ";
    out += ",";
    out += (index & 2) ? "FU1" : "   ";
    out += ",";
    out += (index & 1) ? "LD" : "  ";
    out += ">";
    return out;
}

} // namespace mtv
