#include "src/core/metrics.hh"

#include "src/common/logging.hh"

namespace mtv
{

const char *
blockReasonName(BlockReason reason)
{
    switch (reason) {
      case BlockReason::None: return "dispatched";
      case BlockReason::NoWork: return "no-work";
      case BlockReason::FetchStall: return "fetch-stall";
      case BlockReason::ScalarDep: return "scalar-dep";
      case BlockReason::SourceNotReady: return "source-not-ready";
      case BlockReason::DestBusy: return "dest-busy";
      case BlockReason::FuBusy: return "fu-busy";
      case BlockReason::MemPipeBusy: return "mem-pipe-busy";
      case BlockReason::MemPortBusy: return "mem-port-busy";
      case BlockReason::BankPortBusy: return "bank-port-busy";
      default: return "unknown";
    }
}

std::string
fuStateName(int index)
{
    MTV_ASSERT(index >= 0 && index < numFuStates);
    std::string out = "<";
    out += (index & 4) ? "FU2" : "   ";
    out += ",";
    out += (index & 2) ? "FU1" : "   ";
    out += ",";
    out += (index & 1) ? "LD" : "  ";
    out += ">";
    return out;
}

} // namespace mtv
