/**
 * @file
 * Scheduler: the next-event extraction at the heart of the
 * event-driven kernel.
 *
 * The machine keeps no explicit event queue — every future state
 * change is already stored somewhere as a ready-time: pipe and bus
 * free-cycles, vector-register write/read horizons, the scalar
 * scoreboard, bank-port reservations, branch-shadow fetch gates and
 * per-context completion times. This "time wheel" is therefore
 * implicit: each component reports the earliest of its own pending
 * times (nextEventAfter), and the scheduler folds them into the one
 * cycle at which *anything* about decode feasibility can change.
 *
 * Soundness: while every context is blocked, no new reservation is
 * made (only a commit writes ready-times), so the set of pending
 * times is frozen; every dispatch predicate compares one of these
 * times against `now`; hence no predicate — and no decode outcome —
 * can change strictly before the minimum pending time. Jumping there
 * is exact, not approximate. The scheduler may return a wakeup at
 * which the machine is *still* blocked (a freed resource was not the
 * binding one); the kernel then simply charges that cycle and asks
 * again, which preserves bit-identity at a small cost in wakeups.
 */

#ifndef MTV_CORE_SCHEDULER_HH
#define MTV_CORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "src/core/context.hh"
#include "src/core/dispatch.hh"

namespace mtv
{

/** Earliest-pending-event extraction over the machine's ready-times. */
class Scheduler
{
  public:
    /**
     * Earliest cycle strictly after @p now at which any pending
     * ready-time that could change a decode outcome expires, or 0
     * when nothing at all is pending (a machine that is blocked
     * *and* eventless is wedged — the kernel fast-forwards straight
     * to the watchdog). The set is the per-context fetch gate and
     * completion horizon plus the dispatch unit's per-instruction
     * resource report (DispatchUnit::considerWakeups) — deliberately
     * *not* every ready-time in the machine, so a long memory stall
     * costs one or two wakeups, not one per unrelated pipe drain.
     */
    uint64_t nextWakeup(uint64_t now, const DispatchUnit &dispatch,
                        const std::vector<Context> &contexts) const;

    /** Wakeups computed so far (kernel diagnostics). */
    uint64_t wakeups() const { return wakeups_; }

    /** Reset the diagnostics counter. */
    void clear() { wakeups_ = 0; }

  private:
    mutable uint64_t wakeups_ = 0;
};

} // namespace mtv

#endif // MTV_CORE_SCHEDULER_HH
