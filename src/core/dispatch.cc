#include "src/core/dispatch.hh"

#include <algorithm>

#include "src/common/logging.hh"

namespace mtv
{

namespace
{

/** Bitmask of vector registers read by @p inst. */
uint8_t
vregReadMask(const Instruction &inst)
{
    uint8_t mask = 0;
    if (!isVector(inst.op))
        return mask;
    if (isStore(inst.op)) {
        mask |= 1u << inst.srcA;
    } else if (isVectorArith(inst.op) || inst.op == Opcode::VReduce) {
        if (inst.srcA != noReg)
            mask |= 1u << inst.srcA;
        if (inst.srcB != noReg)
            mask |= 1u << inst.srcB;
    }
    return mask;
}

/** Bitmask of vector registers written by @p inst. */
uint8_t
vregWriteMask(const Instruction &inst)
{
    if (!isVector(inst.op) || isStore(inst.op) ||
        inst.op == Opcode::VReduce || inst.dst == noReg) {
        return 0;
    }
    return static_cast<uint8_t>(1u << inst.dst);
}

/**
 * May @p cand (a vector memory instruction) dispatch ahead of the
 * not-yet-dispatched @p prior? Memory stays ordered among itself,
 * nothing passes a branch, and all vector-register dependences
 * (RAW/WAW/WAR) are respected. Scalar operands are safe to ignore:
 * the trace records the effective VL/stride/address of every
 * instruction, which is exactly the address-side state a decoupled
 * machine's address processor runs ahead to produce.
 */
bool
canSlipPast(const Instruction &cand, const Instruction &prior)
{
    if (prior.op == Opcode::SBranch)
        return false;
    if (isMemory(cand.op) && isMemory(prior.op))
        return false;
    const uint8_t priorWrites = vregWriteMask(prior);
    const uint8_t priorReads = vregReadMask(prior);
    const uint8_t candWrites = vregWriteMask(cand);
    const uint8_t candReads = vregReadMask(cand);
    if (priorWrites & (candReads | candWrites))
        return false;  // RAW or WAW
    if (priorReads & candWrites)
        return false;  // WAR
    return true;
}

/**
 * Claim the earliest-retiring rename slot for the physical register
 * @p dst displaces: the spare holds the old value until its in-flight
 * write and last reader complete. Caller checked a slot is free.
 */
void
takeRenameSlot(Context &ctx, const VRegTiming &dst, int depth)
{
    int best = 0;
    for (int i = 1; i < depth; ++i) {
        if (ctx.renameSlots[i] < ctx.renameSlots[best])
            best = i;
    }
    ctx.renameSlots[best] = std::max(dst.writeDone, dst.readBusy);
}

} // namespace

std::optional<DispatchPlan>
DispatchUnit::planAny(const Context &ctx, uint64_t now,
                      BlockReason &why) const
{
    MTV_ASSERT(!ctx.window.empty());
    auto plan = planDispatch(ctx, ctx.window.front(), now, why);
    if (plan || params_.decoupleDepth == 0)
        return plan;

    // Decoupled slip: look for a vector memory instruction behind the
    // blocked head that conflicts with none of the skipped entries.
    for (size_t k = 1; k < ctx.window.size(); ++k) {
        const Instruction &cand = ctx.window[k];
        if (!isVector(cand.op) || !isMemory(cand.op))
            continue;
        bool clear = true;
        for (size_t j = 0; j < k && clear; ++j)
            clear = canSlipPast(cand, ctx.window[j]);
        if (!clear)
            continue;
        BlockReason slipWhy = BlockReason::NoWork;
        if (auto slipped = planDispatch(ctx, cand, now, slipWhy)) {
            slipped->windowIndex = k;
            return slipped;
        }
    }
    return std::nullopt;  // `why` keeps the head's block reason
}

std::optional<DispatchPlan>
DispatchUnit::planDispatch(const Context &ctx, const Instruction &inst,
                           uint64_t now, BlockReason &why) const
{
    const FuClass fu = fuClass(inst.op);
    DispatchPlan plan{};

    if (fu == FuClass::Scalar) {
        // --- Scalar instruction ---
        for (const uint8_t src : {inst.srcA, inst.srcB}) {
            if (src != noReg && ctx.scalarReady[src] > now) {
                why = BlockReason::ScalarDep;
                return std::nullopt;
            }
        }
        if (inst.dst != noReg && ctx.scalarReady[inst.dst] > now) {
            why = BlockReason::ScalarDep;
            return std::nullopt;
        }
        if (isMemory(inst.op)) {
            plan.port = nullptr;
            for (MemPort *port : mem_.portsFor(inst.op)) {
                if (port->bus.freeAt(now)) {
                    plan.port = port;
                    break;
                }
            }
            if (!plan.port) {
                why = BlockReason::MemPortBusy;
                return std::nullopt;
            }
        }
        plan.unit = DispatchPlan::Unit::Scalar;
        plan.start = now;
        const int lat = params_.opLatency(inst.op);
        plan.scalarReady = now + static_cast<uint64_t>(lat);
        plan.completion =
            inst.op == Opcode::SStore ? now + 1 : plan.scalarReady;
        return plan;
    }

    const uint16_t vl = std::max<uint16_t>(inst.vl, 1);

    if (fu == FuClass::VecAny || fu == FuClass::VecFu2) {
        // --- Vector arithmetic (including reductions) ---
        if (fu == FuClass::VecFu2) {
            if (!pipes_.fu2().freeAt(now)) {
                why = BlockReason::FuBusy;
                return std::nullopt;
            }
            plan.unit = DispatchPlan::Unit::Fu2;
        } else if (pipes_.fu1().freeAt(now)) {
            plan.unit = DispatchPlan::Unit::Fu1;
        } else if (pipes_.fu2().freeAt(now)) {
            plan.unit = DispatchPlan::Unit::Fu2;
        } else {
            why = BlockReason::FuBusy;
            return std::nullopt;
        }

        uint64_t chainStart = 0;
        int bankReads[numVRegs / 2] = {};
        for (const uint8_t src : {inst.srcA, inst.srcB}) {
            if (src == noReg)
                continue;
            const VRegTiming &reg = ctx.vregs[src];
            if (!reg.completeAt(now)) {
                if (!reg.chainable) {
                    why = BlockReason::SourceNotReady;
                    return std::nullopt;
                }
                chainStart = std::max(chainStart, reg.prodFirst + 1);
            }
            ++bankReads[vregBank(src)];
        }
        // Reading the same register through both operand ports still
        // needs only one physical port.
        if (inst.srcA != noReg && inst.srcA == inst.srcB)
            --bankReads[vregBank(inst.srcA)];

        const bool isReduce = inst.op == Opcode::VReduce;
        if (!isReduce) {
            const VRegTiming &dst = ctx.vregs[inst.dst];
            // Renaming allocates a fresh physical register, so WAW
            // and WAR hazards vanish (section 10 extension). The
            // bounded pool hides a hazard only while a spare slot is
            // free; with none, the stall is charged as DestBusy like
            // the baseline's.
            if (!dst.idleAt(now)) {
                if (params_.renameBounded()) {
                    if (ctx.minRenameSlot(params_.renameDepth) > now) {
                        why = BlockReason::DestBusy;
                        return std::nullopt;
                    }
                    plan.renamed = true;
                } else if (!params_.renaming) {
                    why = BlockReason::DestBusy;
                    return std::nullopt;
                }
            }
        } else if (inst.dst != noReg &&
                   ctx.scalarReady[inst.dst] > now) {
            why = BlockReason::ScalarDep;
            return std::nullopt;
        }

        if (params_.modelBankPorts) {
            for (int b = 0; b < numVRegs / 2; ++b) {
                if (bankReads[b] > ctx.banks[b].freeReadPorts(now)) {
                    why = BlockReason::BankPortBusy;
                    return std::nullopt;
                }
            }
            if (!isReduce && !params_.renamingEnabled() &&
                !ctx.banks[vregBank(inst.dst)].writeFreeAt(now)) {
                why = BlockReason::BankPortBusy;
                return std::nullopt;
            }
        }

        const uint64_t r0 = std::max(
            now + static_cast<uint64_t>(params_.vectorStartup),
            chainStart);
        const int fuLat = params_.opLatency(inst.op);
        plan.start = r0;
        plan.prodFirst =
            r0 + params_.readXbar + fuLat + params_.writeXbar;
        plan.writeDone = plan.prodFirst + vl;
        plan.chainableOut = true;
        if (isReduce) {
            // The reduction drains the pipe before the scalar result
            // appears; no vector destination is written.
            plan.scalarReady = r0 + params_.readXbar + fuLat + vl;
            plan.completion = plan.scalarReady;
        } else {
            plan.completion = plan.writeDone;
        }
        return plan;
    }

    if (fu == FuClass::VecLoad) {
        // --- Vector load / gather ---
        plan.port = nullptr;
        bool anyPipeFree = false;
        for (MemPort *port : mem_.portsFor(inst.op)) {
            if (!port->pipe.freeAt(now))
                continue;
            anyPipeFree = true;
            if (port->bus.freeAt(now)) {
                plan.port = port;
                break;
            }
        }
        if (!plan.port) {
            why = anyPipeFree ? BlockReason::MemPortBusy
                              : BlockReason::MemPipeBusy;
            return std::nullopt;
        }
        const VRegTiming &dst = ctx.vregs[inst.dst];
        if (!dst.idleAt(now)) {
            if (params_.renameBounded()) {
                if (ctx.minRenameSlot(params_.renameDepth) > now) {
                    why = BlockReason::DestBusy;
                    return std::nullopt;
                }
                plan.renamed = true;
            } else if (!params_.renaming) {
                why = BlockReason::DestBusy;
                return std::nullopt;
            }
        }
        if (params_.modelBankPorts && !params_.renamingEnabled() &&
            !ctx.banks[vregBank(inst.dst)].writeFreeAt(now)) {
            why = BlockReason::BankPortBusy;
            return std::nullopt;
        }
        const bool indexed = inst.op == Opcode::VGather;
        const int period =
            mem_.memory().deliveryPeriod(inst.stride, indexed);
        plan.unit = DispatchPlan::Unit::Mem;
        plan.start = now + static_cast<uint64_t>(params_.vectorStartup);
        plan.pipeUntil =
            plan.start + static_cast<uint64_t>(vl) * period;
        plan.prodFirst =
            plan.start + params_.memLatency + params_.writeXbar;
        plan.writeDone =
            plan.prodFirst + static_cast<uint64_t>(vl) * period;
        plan.chainableOut = params_.loadChaining;
        plan.completion = plan.writeDone;
        return plan;
    }

    // --- Vector store / scatter ---
    MTV_ASSERT(fu == FuClass::VecStore);
    plan.port = nullptr;
    bool anyPipeFree = false;
    for (MemPort *port : mem_.portsFor(inst.op)) {
        if (!port->pipe.freeAt(now))
            continue;
        anyPipeFree = true;
        if (port->bus.freeAt(now)) {
            plan.port = port;
            break;
        }
    }
    if (!plan.port) {
        why = anyPipeFree ? BlockReason::MemPortBusy
                          : BlockReason::MemPipeBusy;
        return std::nullopt;
    }
    const VRegTiming &src = ctx.vregs[inst.srcA];
    uint64_t chainStart = 0;
    if (!src.completeAt(now)) {
        if (!src.chainable) {
            why = BlockReason::SourceNotReady;
            return std::nullopt;
        }
        chainStart = src.prodFirst + 1;
    }
    if (params_.modelBankPorts &&
        ctx.banks[vregBank(inst.srcA)].freeReadPorts(now) < 1) {
        why = BlockReason::BankPortBusy;
        return std::nullopt;
    }
    plan.unit = DispatchPlan::Unit::Mem;
    plan.start = std::max(
        now + static_cast<uint64_t>(params_.vectorStartup), chainStart);
    plan.pipeUntil = plan.start + vl;
    // Stores are fire-and-forget: the processor does not wait for the
    // memory write to complete (paper section 3.1).
    plan.completion = plan.start + vl;
    return plan;
}

void
DispatchUnit::commit(Context &ctx, const DispatchPlan &plan,
                     uint64_t now)
{
    MTV_ASSERT(plan.windowIndex < ctx.window.size());
    const Instruction inst = ctx.window[plan.windowIndex];
    const uint16_t vl = std::max<uint16_t>(inst.vl, 1);

    switch (plan.unit) {
      case DispatchPlan::Unit::Scalar:
        if (inst.dst != noReg)
            ctx.scalarReady[inst.dst] = plan.scalarReady;
        if (isMemory(inst.op))
            plan.port->bus.reserve(now, 1);
        if (inst.op == Opcode::SBranch) {
            ctx.fetchReadyAt =
                now + 1 + static_cast<uint64_t>(params_.branchStall);
        }
        break;

      case DispatchPlan::Unit::Fu1:
      case DispatchPlan::Unit::Fu2: {
        PipeUnit &unit = plan.unit == DispatchPlan::Unit::Fu1
                             ? pipes_.fu1()
                             : pipes_.fu2();
        unit.occupy(plan.start, plan.start + vl);
        if (plan.unit == DispatchPlan::Unit::Fu1)
            vecOpsFu1_ += vl;
        else
            vecOpsFu2_ += vl;

        const uint64_t readUntil = plan.start + vl;
        for (const uint8_t src : {inst.srcA, inst.srcB}) {
            if (src == noReg)
                continue;
            VRegTiming &reg = ctx.vregs[src];
            reg.readBusy = std::max(reg.readBusy, readUntil);
            ctx.banks[vregBank(src)].takeReadPort(now, readUntil);
        }
        if (inst.op == Opcode::VReduce) {
            if (inst.dst != noReg)
                ctx.scalarReady[inst.dst] = plan.scalarReady;
        } else {
            VRegTiming &dst = ctx.vregs[inst.dst];
            if (plan.renamed)
                takeRenameSlot(ctx, dst, params_.renameDepth);
            dst.prodFirst = plan.prodFirst;
            dst.writeDone = plan.writeDone;
            dst.chainable = plan.chainableOut;
            ctx.banks[vregBank(inst.dst)].writeUntil = plan.writeDone;
        }
        break;
      }

      case DispatchPlan::Unit::Mem: {
        plan.port->pipe.occupy(plan.start, plan.pipeUntil);
        plan.port->bus.reserve(plan.start, vl);
        if (isLoad(inst.op)) {
            VRegTiming &dst = ctx.vregs[inst.dst];
            if (plan.renamed)
                takeRenameSlot(ctx, dst, params_.renameDepth);
            dst.prodFirst = plan.prodFirst;
            dst.writeDone = plan.writeDone;
            dst.chainable = plan.chainableOut;
            ctx.banks[vregBank(inst.dst)].writeUntil = plan.writeDone;
        } else {
            VRegTiming &src = ctx.vregs[inst.srcA];
            const uint64_t readUntil = plan.start + vl;
            src.readBusy = std::max(src.readBusy, readUntil);
            ctx.banks[vregBank(inst.srcA)].takeReadPort(now, readUntil);
        }
        break;
      }
    }

    // Common accounting.
    ++dispatches_;
    ++ctx.stats.instructions;
    ++ctx.stats.instructionsThisRun;
    if (isVector(inst.op))
        ++ctx.stats.vectorInstructions;
    else
        ++ctx.stats.scalarInstructions;
    ctx.stats.lastCompletion =
        std::max(ctx.stats.lastCompletion, plan.completion);
    if (plan.windowIndex > 0)
        ++decoupledSlips_;
    ctx.window.erase(ctx.window.begin() +
                     static_cast<ptrdiff_t>(plan.windowIndex));
}

void
DispatchUnit::considerWakeups(const Context &ctx, EventMin &em) const
{
    for (size_t k = 0; k < ctx.window.size(); ++k) {
        const Instruction &inst = ctx.window[k];
        // Behind the head, planAny() only ever probes vector memory
        // instructions (decoupled slip); nothing else's resources can
        // matter before the head dispatches.
        if (k > 0 && !(isVector(inst.op) && isMemory(inst.op)))
            continue;

        const FuClass fu = fuClass(inst.op);
        if (fu == FuClass::Scalar) {
            for (const uint8_t reg : {inst.srcA, inst.srcB, inst.dst}) {
                if (reg != noReg)
                    em.consider(ctx.scalarReady[reg]);
            }
            if (isMemory(inst.op)) {
                for (const MemPort *port : mem_.portsFor(inst.op))
                    em.consider(port->bus.freeCycle());
            }
            continue;
        }

        if (fu == FuClass::VecAny || fu == FuClass::VecFu2) {
            em.consider(pipes_.fu2().freeCycle());
            if (fu == FuClass::VecAny)
                em.consider(pipes_.fu1().freeCycle());
            for (const uint8_t src : {inst.srcA, inst.srcB}) {
                if (src == noReg)
                    continue;
                const VRegTiming &reg = ctx.vregs[src];
                if (!reg.chainable)
                    em.consider(reg.writeDone);
                if (params_.modelBankPorts) {
                    em.consider(
                        ctx.banks[vregBank(src)].nextEventAfter(em.now));
                }
            }
            if (inst.op == Opcode::VReduce) {
                if (inst.dst != noReg)
                    em.consider(ctx.scalarReady[inst.dst]);
            } else if (params_.renameBounded()) {
                // The blocked predicate is "dst idle OR slot free";
                // both arms are stored-time comparisons.
                const VRegTiming &dst = ctx.vregs[inst.dst];
                em.consider(dst.writeDone);
                em.consider(dst.readBusy);
                em.consider(ctx.minRenameSlot(params_.renameDepth));
            } else if (!params_.renaming) {
                const VRegTiming &dst = ctx.vregs[inst.dst];
                em.consider(dst.writeDone);
                em.consider(dst.readBusy);
                if (params_.modelBankPorts) {
                    em.consider(
                        ctx.banks[vregBank(inst.dst)].writeUntil);
                }
            }
            continue;
        }

        for (const MemPort *port : mem_.portsFor(inst.op))
            em.consider(port->nextEventAfter(em.now));
        if (fu == FuClass::VecLoad) {
            if (params_.renameBounded()) {
                const VRegTiming &dst = ctx.vregs[inst.dst];
                em.consider(dst.writeDone);
                em.consider(dst.readBusy);
                em.consider(ctx.minRenameSlot(params_.renameDepth));
            } else if (!params_.renaming) {
                const VRegTiming &dst = ctx.vregs[inst.dst];
                em.consider(dst.writeDone);
                em.consider(dst.readBusy);
                if (params_.modelBankPorts) {
                    em.consider(
                        ctx.banks[vregBank(inst.dst)].writeUntil);
                }
            }
        } else {
            const VRegTiming &src = ctx.vregs[inst.srcA];
            if (!src.chainable)
                em.consider(src.writeDone);
            if (params_.modelBankPorts) {
                em.consider(
                    ctx.banks[vregBank(inst.srcA)].nextEventAfter(
                        em.now));
            }
        }
    }
}

void
DispatchUnit::clear()
{
    dispatches_ = vecOpsFu1_ = vecOpsFu2_ = decoupledSlips_ = 0;
}

} // namespace mtv
