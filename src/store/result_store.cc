#include "src/store/result_store.hh"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/common/endian.hh"
#include "src/common/logging.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{

namespace
{

/** Sanity bounds on record fields (a corrupt length must not drive a
 *  multi-GB allocation). Canonical spec keys are well under 64 KiB;
 *  blobs of job-queue runs are comfortably under 64 MiB. */
constexpr uint32_t maxKeyLen = 64u * 1024;
constexpr uint32_t maxBlobLen = 64u * 1024 * 1024;

constexpr size_t segmentHeaderBytes = 16;
constexpr size_t recordHeaderBytes = 16;

/** Checksum of one record's key + blob. */
uint64_t
recordChecksum(const std::string &key, const std::string &blob)
{
    return fnv1a64(blob.data(), blob.size(),
                   fnv1a64(key.data(), key.size()));
}

bool
isSegmentName(const std::string &name)
{
    return name.size() == std::strlen("seg-000000.mtvs") &&
           name.compare(0, 4, "seg-") == 0 &&
           name.compare(name.size() - 5, 5, ".mtvs") == 0;
}

} // namespace

ResultStore::ResultStore(const std::string &dir) : dir_(dir)
{
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("cannot create store directory '%s': %s", dir_.c_str(),
              std::strerror(errno));

    const std::string lockPath = dir_ + "/LOCK";
    lockFd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR, 0644);
    if (lockFd_ < 0)
        fatal("cannot open store lock '%s': %s", lockPath.c_str(),
              std::strerror(errno));
    if (::flock(lockFd_, LOCK_EX | LOCK_NB) != 0)
        fatal("store '%s' is locked by another process", dir_.c_str());

    schemaHash_ = storeSchemaHash();

    // Load existing segments in name (= creation) order, so a key
    // written in two sessions resolves to the latest copy (the values
    // are identical anyway — runs are deterministic).
    std::vector<std::string> names;
    DIR *d = ::opendir(dir_.c_str());
    if (!d)
        fatal("cannot read store directory '%s': %s", dir_.c_str(),
              std::strerror(errno));
    while (const dirent *entry = ::readdir(d)) {
        if (isSegmentName(entry->d_name))
            names.push_back(entry->d_name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    for (const auto &name : names)
        loadSegment(dir_ + "/" + name);

    openSessionSegment();
}

ResultStore::~ResultStore()
{
    bool removeEmpty = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (std::FILE *handle : readHandles_) {
            if (handle)
                std::fclose(handle);
        }
        if (segment_) {
            std::fclose(segment_);
            segment_ = nullptr;
            removeEmpty = stats_.appends == 0;
        }
    }
    // A session that stored nothing leaves no header-only litter.
    if (removeEmpty)
        ::unlink(segmentPath_.c_str());
    if (lockFd_ >= 0)
        ::close(lockFd_);
}

void
ResultStore::loadSegment(const std::string &path)
{
    // Verify every record's checksum once, here, and keep only its
    // disk location: load() reads blobs back on demand, so resident
    // memory is the index, not the payloads.
    ++stats_.segments;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        warn("store: cannot open segment '%s': %s — skipping",
             path.c_str(), std::strerror(errno));
        ++stats_.badSegments;
        return;
    }

    uint8_t header[segmentHeaderBytes];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header) ||
        readLe32(header) != storeMagic ||
        readLe32(header + 4) != storeVersion) {
        warn("store: '%s' is not a v%u segment — skipping",
             path.c_str(), storeVersion);
        ++stats_.badSegments;
        std::fclose(f);
        return;
    }
    if (readLe64(header + 8) != schemaHash_) {
        warn("store: '%s' was written under schema %016llx, this "
             "build is %016llx — rejecting its results",
             path.c_str(),
             static_cast<unsigned long long>(readLe64(header + 8)),
             static_cast<unsigned long long>(schemaHash_));
        ++stats_.staleSegments;
        std::fclose(f);
        return;
    }

    for (;;) {
        uint8_t rec[recordHeaderBytes];
        const size_t got = std::fread(rec, 1, sizeof(rec), f);
        if (got == 0)
            break;  // clean end of segment
        if (got != sizeof(rec)) {
            warn("store: '%s' ends in a partial record header — "
                 "dropping the tail (crash recovery)",
                 path.c_str());
            ++stats_.droppedRecords;
            break;
        }
        const uint32_t keyLen = readLe32(rec);
        const uint32_t blobLen = readLe32(rec + 4);
        const uint64_t checksum = readLe64(rec + 8);
        if (keyLen == 0 || keyLen > maxKeyLen || blobLen > maxBlobLen) {
            warn("store: '%s' has a record with implausible lengths "
                 "(%u/%u) — dropping the tail",
                 path.c_str(), keyLen, blobLen);
            ++stats_.droppedRecords;
            break;
        }
        std::string key(keyLen, '\0');
        std::string blob(blobLen, '\0');
        if (std::fread(key.data(), 1, keyLen, f) != keyLen ||
            std::fread(blob.data(), 1, blobLen, f) != blobLen) {
            warn("store: '%s' ends in a truncated record — dropping "
                 "the tail (crash recovery)",
                 path.c_str());
            ++stats_.droppedRecords;
            break;
        }
        if (recordChecksum(key, blob) != checksum) {
            warn("store: '%s' has a checksum-failing record — "
                 "dropping the tail",
                 path.c_str());
            ++stats_.droppedRecords;
            break;
        }
        const long end = std::ftell(f);
        if (end < 0)
            fatal("cannot tell position in '%s'", path.c_str());
        RecordLocation location;
        location.segment =
            static_cast<uint32_t>(segmentPaths_.size());
        location.offset = end - static_cast<long>(blobLen);
        location.length = blobLen;
        index_[key] = location;  // later segments override earlier
        ++stats_.loadedRecords;
    }
    std::fclose(f);
    segmentPaths_.push_back(path);
    readHandles_.push_back(nullptr);
}

void
ResultStore::openSessionSegment()
{
    // Fresh segment per session: recovery never rewrites old files,
    // and two sessions' appends cannot interleave.
    for (unsigned n = 0; ; ++n) {
        char name[32];
        std::snprintf(name, sizeof(name), "seg-%06u.mtvs", n);
        const std::string path = dir_ + "/" + name;
        struct stat st;
        if (::stat(path.c_str(), &st) == 0)
            continue;  // exists (possibly stale/corrupt); keep looking
        segmentPath_ = path;
        break;
    }
    segment_ = std::fopen(segmentPath_.c_str(), "wb");
    if (!segment_)
        fatal("cannot create store segment '%s': %s",
              segmentPath_.c_str(), std::strerror(errno));
    uint8_t header[segmentHeaderBytes];
    writeLe32(header, storeMagic);
    writeLe32(header + 4, storeVersion);
    writeLe64(header + 8, schemaHash_);
    if (std::fwrite(header, 1, sizeof(header), segment_) !=
        sizeof(header)) {
        fatal("short write on store segment header '%s'",
              segmentPath_.c_str());
    }
    std::fflush(segment_);
    segmentPaths_.push_back(segmentPath_);
    readHandles_.push_back(nullptr);
}

std::FILE *
ResultStore::readHandle(uint32_t segment)
{
    MTV_ASSERT(segment < readHandles_.size());
    if (!readHandles_[segment]) {
        readHandles_[segment] =
            std::fopen(segmentPaths_[segment].c_str(), "rb");
        if (!readHandles_[segment]) {
            fatal("store segment '%s' disappeared: %s",
                  segmentPaths_[segment].c_str(),
                  std::strerror(errno));
        }
    }
    return readHandles_[segment];
}

std::shared_ptr<const SimStats>
ResultStore::load(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    const RecordLocation &location = it->second;
    std::FILE *f = readHandle(location.segment);
    std::string blob(location.length, '\0');
    if (std::fseek(f, location.offset, SEEK_SET) != 0 ||
        std::fread(blob.data(), 1, blob.size(), f) != blob.size()) {
        fatal("store segment '%s' shrank underneath us (offset %ld)",
              segmentPaths_[location.segment].c_str(),
              location.offset);
    }
    ++stats_.hits;
    return std::make_shared<const SimStats>(deserializeSimStats(blob));
}

void
ResultStore::store(const std::string &key, const SimStats &stats)
{
    if (key.empty() || key.size() > maxKeyLen)
        panic("store key has invalid length %zu", key.size());
    const std::string blob = serializeSimStats(stats);

    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(key))
        return;  // deterministic runs: the existing copy is identical

    const long recordStart = std::ftell(segment_);
    if (recordStart < 0)
        fatal("cannot tell position in '%s'", segmentPath_.c_str());
    uint8_t rec[recordHeaderBytes];
    writeLe32(rec, static_cast<uint32_t>(key.size()));
    writeLe32(rec + 4, static_cast<uint32_t>(blob.size()));
    writeLe64(rec + 8, recordChecksum(key, blob));
    if (std::fwrite(rec, 1, sizeof(rec), segment_) != sizeof(rec) ||
        std::fwrite(key.data(), 1, key.size(), segment_) !=
            key.size() ||
        std::fwrite(blob.data(), 1, blob.size(), segment_) !=
            blob.size()) {
        fatal("short write on store segment '%s' (disk full?)",
              segmentPath_.c_str());
    }
    // Flushed before store() returns: the write-ahead guarantee, and
    // what makes the blob readable through the segment's read handle.
    std::fflush(segment_);

    RecordLocation location;
    location.segment =
        static_cast<uint32_t>(segmentPaths_.size() - 1);
    location.offset = recordStart +
                      static_cast<long>(recordHeaderBytes) +
                      static_cast<long>(key.size());
    location.length = static_cast<uint32_t>(blob.size());
    index_[key] = location;
    ++stats_.appends;
}

size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
}

ResultStore::Stats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace mtv
