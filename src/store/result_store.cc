#include "src/store/result_store.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/common/endian.hh"
#include "src/common/logging.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{

namespace
{

/** Sanity bounds on record fields (a corrupt length must not drive a
 *  multi-GB allocation). Canonical spec keys are well under 64 KiB;
 *  blobs of job-queue runs are comfortably under 64 MiB. */
constexpr uint32_t maxKeyLen = 64u * 1024;
constexpr uint32_t maxBlobLen = 64u * 1024 * 1024;

constexpr size_t segmentHeaderBytes = 16;
constexpr size_t recordHeaderBytes = 16;

/** Checksum of one record's key + blob. */
uint64_t
recordChecksum(const std::string &key, const std::string &blob)
{
    return fnv1a64(blob.data(), blob.size(),
                   fnv1a64(key.data(), key.size()));
}

bool
isSegmentName(const std::string &name)
{
    return name.size() == std::strlen("seg-000000.mtvs") &&
           name.compare(0, 4, "seg-") == 0 &&
           name.compare(name.size() - 5, 5, ".mtvs") == 0;
}

bool
isShardDirName(const std::string &name)
{
    return name.size() == std::strlen("shard-00") &&
           name.compare(0, 6, "shard-") == 0 &&
           std::isdigit(static_cast<unsigned char>(name[6])) &&
           std::isdigit(static_cast<unsigned char>(name[7]));
}

std::string
shardDirName(int shard)
{
    char name[16];
    std::snprintf(name, sizeof(name), "shard-%02d", shard);
    return name;
}

/** Names in @p dir matching @p keep, sorted. */
std::vector<std::string>
listDir(const std::string &dir, bool (*keep)(const std::string &))
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        fatal("cannot read store directory '%s': %s", dir.c_str(),
              std::strerror(errno));
    while (const dirent *entry = ::readdir(d)) {
        if (keep(entry->d_name))
            names.push_back(entry->d_name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

} // namespace

ResultStore::ResultStore(const std::string &dir, int shards)
    : dir_(dir)
{
    if (shards < 0 || shards > maxStoreShards)
        fatal("store shard count must be 0..%d, got %d",
              maxStoreShards, shards);
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("cannot create store directory '%s': %s", dir_.c_str(),
              std::strerror(errno));

    const std::string lockPath = dir_ + "/LOCK";
    lockFd_ = ::open(lockPath.c_str(), O_CREAT | O_RDWR, 0644);
    if (lockFd_ < 0)
        fatal("cannot open store lock '%s': %s", lockPath.c_str(),
              std::strerror(errno));
    if (::flock(lockFd_, LOCK_EX | LOCK_NB) != 0)
        fatal("store '%s' is locked by another process", dir_.c_str());

    schemaHash_ = storeSchemaHash();

    // An existing store keeps the partition count it was created
    // with: records were routed by key % count, so reading under a
    // different count would lose them.
    const std::vector<std::string> existing =
        listDir(dir_, isShardDirName);
    int count = shards == 0 ? defaultStoreShards : shards;
    if (!existing.empty()) {
        count = static_cast<int>(existing.size());
        // The directories must be exactly shard-00..shard-(N-1): a
        // missing one (torn copy of the store) would silently
        // re-route every key and orphan that shard's records.
        for (int i = 0; i < count; ++i) {
            if (existing[i] != shardDirName(i)) {
                fatal("store '%s' is missing %s (found %s): torn "
                      "copy? refusing to re-route its keys",
                      dir_.c_str(), shardDirName(i).c_str(),
                      existing[i].c_str());
            }
        }
        if (shards != 0 && shards != count) {
            warn("store '%s' was created with %d shards; ignoring "
                 "the requested %d",
                 dir_.c_str(), count, shards);
        }
    }

    shards_.reserve(count);
    MetricsRegistry &reg = MetricsRegistry::instance();
    for (int i = 0; i < count; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->dir = dir_ + "/" + shardDirName(i);
        if (::mkdir(shard->dir.c_str(), 0755) != 0 && errno != EEXIST)
            fatal("cannot create store shard '%s': %s",
                  shard->dir.c_str(), std::strerror(errno));
        char label[48];
        std::snprintf(label, sizeof(label), "{shard=\"%d\"}", i);
        shard->obsAppends =
            reg.counter(std::string("store_appends_total") + label);
        shard->obsHits =
            reg.counter(std::string("store_hits_total") + label);
        shard->obsMisses =
            reg.counter(std::string("store_misses_total") + label);
        shards_.push_back(std::move(shard));
    }

    // Warm-load the shards in parallel: they are disjoint on disk and
    // in memory, so a loader thread per shard (capped by the hardware
    // thread count) needs no locking at all.
    const size_t loaders = std::min<size_t>(
        shards_.size(),
        std::max(1u, std::thread::hardware_concurrency()));
    if (loaders <= 1) {
        for (auto &shard : shards_)
            loadShard(*shard);
    } else {
        std::vector<std::thread> threads;
        std::atomic<size_t> next{0};
        threads.reserve(loaders);
        for (size_t t = 0; t < loaders; ++t) {
            threads.emplace_back([this, &next] {
                for (size_t i = next.fetch_add(1);
                     i < shards_.size(); i = next.fetch_add(1)) {
                    loadShard(*shards_[i]);
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
    }

    migrateLegacySegments();

    // Recovery observability: what the open scan found, per shard.
    for (size_t i = 0; i < shards_.size(); ++i) {
        char label[48];
        std::snprintf(label, sizeof(label), "{shard=\"%zu\"}", i);
        reg.counter(std::string("store_recovered_records_total")
                    + label)->inc(shards_[i]->loadedRecords);
        reg.counter(std::string("store_dropped_records_total")
                    + label)->inc(shards_[i]->droppedRecords);
    }
}

ResultStore::~ResultStore()
{
    for (auto &shardPtr : shards_) {
        Shard &shard = *shardPtr;
        bool removeEmpty = false;
        {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (std::FILE *handle : shard.readHandles) {
                if (handle)
                    std::fclose(handle);
            }
            if (shard.segment) {
                std::fclose(shard.segment);
                shard.segment = nullptr;
                removeEmpty = shard.appends == 0;
            }
        }
        // A session that stored nothing in this shard leaves no
        // header-only litter.
        if (removeEmpty)
            ::unlink(shard.segmentPath.c_str());
    }
    if (lockFd_ >= 0)
        ::close(lockFd_);
}

ResultStore::Shard &
ResultStore::shardFor(const std::string &key)
{
    const uint64_t hash = fnv1a64(key.data(), key.size());
    return *shards_[hash % shards_.size()];
}

ResultStore::SegmentVerdict
ResultStore::scanSegment(
    const std::string &path, uint64_t *dropped,
    const std::function<void(std::string &&, std::string &&, long)>
        &record) const
{
    // Verify every record's checksum once, here; callers decide what
    // to retain (an index location on load, the blob on migration).
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        warn("store: cannot open segment '%s': %s — skipping",
             path.c_str(), std::strerror(errno));
        return SegmentVerdict::Bad;
    }

    uint8_t header[segmentHeaderBytes];
    if (std::fread(header, 1, sizeof(header), f) != sizeof(header) ||
        readLe32(header) != storeMagic ||
        readLe32(header + 4) != storeVersion) {
        warn("store: '%s' is not a v%u segment — skipping",
             path.c_str(), storeVersion);
        std::fclose(f);
        return SegmentVerdict::Bad;
    }
    if (readLe64(header + 8) != schemaHash_) {
        warn("store: '%s' was written under schema %016llx, this "
             "build is %016llx — rejecting its results",
             path.c_str(),
             static_cast<unsigned long long>(readLe64(header + 8)),
             static_cast<unsigned long long>(schemaHash_));
        std::fclose(f);
        return SegmentVerdict::Stale;
    }

    for (;;) {
        uint8_t rec[recordHeaderBytes];
        const size_t got = std::fread(rec, 1, sizeof(rec), f);
        if (got == 0)
            break;  // clean end of segment
        if (got != sizeof(rec)) {
            warn("store: '%s' ends in a partial record header — "
                 "dropping the tail (crash recovery)",
                 path.c_str());
            ++*dropped;
            break;
        }
        const uint32_t keyLen = readLe32(rec);
        const uint32_t blobLen = readLe32(rec + 4);
        const uint64_t checksum = readLe64(rec + 8);
        if (keyLen == 0 || keyLen > maxKeyLen || blobLen > maxBlobLen) {
            warn("store: '%s' has a record with implausible lengths "
                 "(%u/%u) — dropping the tail",
                 path.c_str(), keyLen, blobLen);
            ++*dropped;
            break;
        }
        std::string key(keyLen, '\0');
        std::string blob(blobLen, '\0');
        if (std::fread(key.data(), 1, keyLen, f) != keyLen ||
            std::fread(blob.data(), 1, blobLen, f) != blobLen) {
            warn("store: '%s' ends in a truncated record — dropping "
                 "the tail (crash recovery)",
                 path.c_str());
            ++*dropped;
            break;
        }
        if (recordChecksum(key, blob) != checksum) {
            warn("store: '%s' has a checksum-failing record — "
                 "dropping the tail",
                 path.c_str());
            ++*dropped;
            break;
        }
        const long end = std::ftell(f);
        if (end < 0)
            fatal("cannot tell position in '%s'", path.c_str());
        record(std::move(key), std::move(blob),
               end - static_cast<long>(blobLen));
    }
    std::fclose(f);
    return SegmentVerdict::Scanned;
}

void
ResultStore::loadShard(Shard &shard)
{
    // Segments load in name (= creation) order, so a key written in
    // two sessions resolves to the latest copy (the values are
    // identical anyway — runs are deterministic).
    for (const auto &name : listDir(shard.dir, isSegmentName)) {
        const std::string path = shard.dir + "/" + name;
        ++shard.segments;
        const SegmentVerdict verdict = scanSegment(
            path, &shard.droppedRecords,
            [&shard](std::string &&key, std::string &&blob,
                     long blobOffset) {
                RecordLocation location;
                location.segment =
                    static_cast<uint32_t>(shard.segmentPaths.size());
                location.offset = blobOffset;
                location.length = static_cast<uint32_t>(blob.size());
                // Later segments override earlier ones.
                shard.index[std::move(key)] = location;
                ++shard.loadedRecords;
            });
        switch (verdict) {
          case SegmentVerdict::Scanned:
            shard.segmentPaths.push_back(path);
            shard.readHandles.push_back(nullptr);
            break;
          case SegmentVerdict::Stale:
            ++shard.staleSegments;
            break;
          case SegmentVerdict::Bad:
            ++shard.badSegments;
            break;
        }
    }
    openSessionSegment(shard);
}

void
ResultStore::openSessionSegment(Shard &shard)
{
    // Fresh segment per session: recovery never rewrites old files,
    // and two sessions' appends cannot interleave.
    for (unsigned n = 0; ; ++n) {
        char name[32];
        std::snprintf(name, sizeof(name), "seg-%06u.mtvs", n);
        const std::string path = shard.dir + "/" + name;
        struct stat st;
        if (::stat(path.c_str(), &st) == 0)
            continue;  // exists (possibly stale/corrupt); keep looking
        shard.segmentPath = path;
        break;
    }
    shard.segment = std::fopen(shard.segmentPath.c_str(), "wb");
    if (!shard.segment)
        fatal("cannot create store segment '%s': %s",
              shard.segmentPath.c_str(), std::strerror(errno));
    uint8_t header[segmentHeaderBytes];
    writeLe32(header, storeMagic);
    writeLe32(header + 4, storeVersion);
    writeLe64(header + 8, schemaHash_);
    if (std::fwrite(header, 1, sizeof(header), shard.segment) !=
        sizeof(header)) {
        fatal("short write on store segment header '%s'",
              shard.segmentPath.c_str());
    }
    std::fflush(shard.segment);
    shard.segmentPaths.push_back(shard.segmentPath);
    shard.readHandles.push_back(nullptr);
}

void
ResultStore::appendLocked(Shard &shard, const std::string &key,
                          const std::string &blob)
{
    const long recordStart = std::ftell(shard.segment);
    if (recordStart < 0)
        fatal("cannot tell position in '%s'",
              shard.segmentPath.c_str());
    uint8_t rec[recordHeaderBytes];
    writeLe32(rec, static_cast<uint32_t>(key.size()));
    writeLe32(rec + 4, static_cast<uint32_t>(blob.size()));
    writeLe64(rec + 8, recordChecksum(key, blob));
    if (std::fwrite(rec, 1, sizeof(rec), shard.segment) !=
            sizeof(rec) ||
        std::fwrite(key.data(), 1, key.size(), shard.segment) !=
            key.size() ||
        std::fwrite(blob.data(), 1, blob.size(), shard.segment) !=
            blob.size()) {
        fatal("short write on store segment '%s' (disk full?)",
              shard.segmentPath.c_str());
    }
    // Flushed before the append returns: the write-ahead guarantee,
    // and what makes the blob readable through the read handle.
    std::fflush(shard.segment);

    RecordLocation location;
    location.segment =
        static_cast<uint32_t>(shard.segmentPaths.size() - 1);
    location.offset = recordStart +
                      static_cast<long>(recordHeaderBytes) +
                      static_cast<long>(key.size());
    location.length = static_cast<uint32_t>(blob.size());
    shard.index[key] = location;
    ++shard.appends;
    shard.obsAppends->inc();
}

void
ResultStore::migrateLegacySegments()
{
    // Pre-shard stores kept their segments at the directory root.
    // Re-home every intact record into its shard, then delete the
    // legacy file — only after its records are flushed, so a crash
    // mid-migration re-migrates (and the key dedup makes that a
    // no-op for records already re-homed).
    const std::vector<std::string> names =
        listDir(dir_, isSegmentName);
    for (const auto &name : names) {
        const std::string path = dir_ + "/" + name;
        ++legacySegments_;
        const SegmentVerdict verdict = scanSegment(
            path, &legacyDropped_,
            [this](std::string &&key, std::string &&blob, long) {
                Shard &shard = shardFor(key);
                if (shard.index.count(key))
                    return;  // already re-homed (or re-written since)
                appendLocked(shard, key, blob);
                ++migratedRecords_;
            });
        switch (verdict) {
          case SegmentVerdict::Scanned:
            ::unlink(path.c_str());
            break;
          case SegmentVerdict::Stale:
            // Left in place (their data is not ours to destroy), and
            // rejected again on every open.
            ++legacyStale_;
            break;
          case SegmentVerdict::Bad:
            ++legacyBad_;
            break;
        }
    }
    if (migratedRecords_ > 0) {
        inform("store: migrated %llu records from %zu legacy "
               "segments into %zu shards",
               static_cast<unsigned long long>(migratedRecords_),
               legacySegments_, shards_.size());
    }
}

std::FILE *
ResultStore::readHandle(Shard &shard, uint32_t segment)
{
    MTV_ASSERT(segment < shard.readHandles.size());
    if (!shard.readHandles[segment]) {
        shard.readHandles[segment] =
            std::fopen(shard.segmentPaths[segment].c_str(), "rb");
        if (!shard.readHandles[segment]) {
            fatal("store segment '%s' disappeared: %s",
                  shard.segmentPaths[segment].c_str(),
                  std::strerror(errno));
        }
    }
    return shard.readHandles[segment];
}

std::shared_ptr<const SimStats>
ResultStore::load(const std::string &key)
{
    return loadRecord(key).stats;
}

StoredRecord
ResultStore::loadRecord(const std::string &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.misses;
        shard.obsMisses->inc();
        return {nullptr, nullptr};
    }
    const RecordLocation &location = it->second;
    std::FILE *f = readHandle(shard, location.segment);
    // The segment stores the record's blob as the verbatim
    // serializeSimStats() output, so these disk bytes double as the
    // canonical wire/digest encoding — hand them out unmodified.
    auto blob = std::make_shared<std::string>(location.length, '\0');
    if (std::fseek(f, location.offset, SEEK_SET) != 0 ||
        std::fread(blob->data(), 1, blob->size(), f) !=
            blob->size()) {
        fatal("store segment '%s' shrank underneath us (offset %ld)",
              shard.segmentPaths[location.segment].c_str(),
              location.offset);
    }
    ++shard.hits;
    shard.obsHits->inc();
    StoredRecord record;
    record.stats = std::make_shared<const SimStats>(
        deserializeSimStats(*blob));
    record.blob = std::move(blob);
    return record;
}

void
ResultStore::store(const std::string &key, const SimStats &stats)
{
    if (key.empty() || key.size() > maxKeyLen)
        panic("store key has invalid length %zu", key.size());
    // Serialize outside the shard lock: appends to different shards
    // only ever contend on the filesystem, not on each other.
    const std::string blob = serializeSimStats(stats);

    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.index.count(key))
        return;  // deterministic runs: the existing copy is identical
    appendLocked(shard, key, blob);
}

size_t
ResultStore::size() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total += shard->index.size();
    }
    return total;
}

ResultStore::Stats
ResultStore::stats() const
{
    Stats total;
    total.shards = shards_.size();
    total.segments = legacySegments_;
    total.staleSegments = legacyStale_;
    total.badSegments = legacyBad_;
    total.droppedRecords = legacyDropped_;
    total.migratedRecords = migratedRecords_;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        total.segments += shard->segments;
        total.staleSegments += shard->staleSegments;
        total.badSegments += shard->badSegments;
        total.loadedRecords += shard->loadedRecords;
        total.droppedRecords += shard->droppedRecords;
        total.appends += shard->appends;
        total.hits += shard->hits;
        total.misses += shard->misses;
    }
    return total;
}

std::vector<ResultStore::ShardStats>
ResultStore::shardStats() const
{
    std::vector<ShardStats> out;
    out.reserve(shards_.size());
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        ShardStats s;
        s.appends = shard->appends;
        s.hits = shard->hits;
        s.misses = shard->misses;
        s.loadedRecords = shard->loadedRecords;
        s.droppedRecords = shard->droppedRecords;
        s.records = shard->index.size();
        out.push_back(s);
    }
    return out;
}

} // namespace mtv
