/**
 * @file
 * Binary serialization of SimStats for the persistent result store
 * and the service protocol.
 *
 * The encoding is versioned, little-endian, and packed field by field
 * (no struct memcpy), like the trace file format, so blobs are
 * portable across compilers and platforms. Encoding is canonical:
 * equal SimStats always produce byte-identical blobs, so blob
 * equality doubles as the bit-identity check of the determinism
 * guarantees (tests and the service smoke test compare digests of
 * these blobs).
 */

#ifndef MTV_STORE_STATS_CODEC_HH
#define MTV_STORE_STATS_CODEC_HH

#include <cstdint>
#include <string>

#include "src/core/metrics.hh"

namespace mtv
{

/** Version of the SimStats blob layout. Bump on any field change. */
constexpr uint32_t statsCodecVersion = 1;

/** Canonical binary encoding of @p stats. */
std::string serializeSimStats(const SimStats &stats);

/**
 * Inverse of serializeSimStats(). fatal()s on truncated or
 * version-mismatched input (a corrupt store record that slipped past
 * its checksum, or a blob from a different build).
 */
SimStats deserializeSimStats(const std::string &blob);

/**
 * FNV-1a 64-bit over @p size bytes (seeded with the standard offset
 * basis, foldable by passing a previous hash as @p seed). Used for
 * store record checksums and result digests.
 */
uint64_t fnv1a64(const void *data, size_t size,
                 uint64_t seed = 0xcbf29ce484222325ull);

/**
 * Hash of everything that determines what a stored result *means*:
 * the blob layout version, the MachineParams parameter set (canonical
 * key set and defaults), and the built-in workload registry (Table 3
 * targets and kernel shapes). Two builds with equal schema hashes
 * interpret each other's store segments; a segment with a different
 * hash is rejected at load. Custom programs registered with
 * registerProgram() are process-local and deliberately excluded —
 * see DESIGN.md.
 */
uint64_t storeSchemaHash();

/** Lower-case hex encoding of @p data (for the JSON protocol). */
std::string hexEncode(const std::string &data);

/** Inverse of hexEncode(); fatal()s on malformed input. */
std::string hexDecode(const std::string &hex);

} // namespace mtv

#endif // MTV_STORE_STATS_CODEC_HH
