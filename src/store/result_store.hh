/**
 * @file
 * ResultStore: the disk-backed, versioned ResultBackend that makes
 * experiment results persistent across processes — the moral
 * equivalent of the paper's amortization of Dixie traces across
 * experiments, applied to finished simulations.
 *
 * Layout: a store is a directory of hash-partitioned *shards*
 * (`shard-SS/`), each holding append-only segment files
 * (`seg-NNNNNN.mtvs`). A record lives in the shard selected by
 * `fnv1a64(key) % shards`, so every shard owns a disjoint slice of
 * the key space and the shards never coordinate: each has its own
 * mutex, its own index, and its own session segment. Concurrent
 * engine workers appending different keys contend only when their
 * keys land on the same shard, which removed the single append lock
 * as the daemon's multi-worker bottleneck.
 *
 * Every segment starts with a 16-byte header (magic, format version,
 * schema hash) followed by checksummed records, each mapping a
 * RunSpec::canonical() key to a serializeSimStats() blob:
 *
 *   u32 keyLen | u32 blobLen | u64 fnv1a64(key+blob) | key | blob
 *
 * Crash safety is write-ahead-append per shard: a record is flushed
 * before store() returns, a crash mid-record leaves a short or
 * checksum-failing tail in at most one segment per shard, and opening
 * the store skips such tails (warning and counting them) while
 * keeping every intact record. Each process session appends to a
 * fresh segment per shard, so recovery never rewrites existing data.
 * Segments whose schema hash differs from this build's
 * storeSchemaHash() are rejected wholesale — their results were
 * produced under a different machine-parameter vocabulary or workload
 * registry and must not be served.
 *
 * Opening warm-loads all shards in parallel (one thread per shard, up
 * to the hardware thread count), and transparently migrates stores
 * written by the pre-shard layout: root-level `seg-*.mtvs` files are
 * scanned record by record, each intact record is re-appended into
 * its shard, and the legacy file is deleted only after its records
 * are flushed — a crash mid-migration merely re-migrates (appends
 * dedup on key).
 *
 * Memory: only an index (key → segment/offset/length) is resident;
 * load() reads and decodes the blob from disk on demand, so a
 * cache-capped daemon's footprint stays bounded by the index, not by
 * the result payloads (records were checksum-verified when the index
 * was built).
 *
 * A store directory has a single writer at a time, enforced with
 * flock() on `<dir>/LOCK`; all methods are thread-safe within that
 * process (engine workers write through concurrently).
 */

#ifndef MTV_STORE_RESULT_STORE_HH
#define MTV_STORE_RESULT_STORE_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/api/backend.hh"
#include "src/obs/metrics.hh"

namespace mtv
{

/** Magic bytes at the start of a store segment ("MTVS" LE). */
constexpr uint32_t storeMagic = 0x5356544d;
/** Current segment format version (record layout; sharding is a
 *  directory-layout property, not a record-format change). */
constexpr uint32_t storeVersion = 1;
/** Shard count of a freshly created store. */
constexpr int defaultStoreShards = 8;
/** Upper bound on configurable shard counts. */
constexpr int maxStoreShards = 64;

/** Disk-backed persistent result store (see file comment). */
class ResultStore : public ResultBackend
{
  public:
    /** Load/recovery counters, fixed at open; session counters. */
    struct Stats
    {
        size_t shards = 0;         ///< hash partitions of the store
        size_t segments = 0;       ///< segment files seen at open
        size_t staleSegments = 0;  ///< rejected: schema-hash mismatch
        size_t badSegments = 0;    ///< rejected: bad magic/version
        uint64_t loadedRecords = 0;///< intact records read at open
        uint64_t droppedRecords = 0;///< corrupt/truncated tails skipped
        uint64_t migratedRecords = 0;///< re-homed from the legacy layout
        uint64_t appends = 0;      ///< records appended this session
        uint64_t hits = 0;         ///< load() calls served
        uint64_t misses = 0;       ///< load() calls not present
    };

    /**
     * Open (creating if needed) the store at @p dir, take the writer
     * lock, warm-load every shard in parallel, migrate any legacy
     * single-directory segments, and start a fresh segment per shard
     * for this session's appends. @p shards picks the partition count
     * of a *new* store (0 = defaultStoreShards); an existing store
     * keeps the count it was created with (with a warning when a
     * different count was requested). fatal()s when the directory is
     * unusable or another process holds the writer lock.
     */
    explicit ResultStore(const std::string &dir, int shards = 0);
    ~ResultStore() override;

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    std::shared_ptr<const SimStats>
    load(const std::string &key) override;

    /**
     * load() plus the record's canonical blob bytes — the zero-copy
     * path of the binary result wire: the segment stores the exact
     * serializeSimStats() output, so the bytes read off disk ARE the
     * canonical encoding and stream/digest without re-encoding.
     */
    StoredRecord loadRecord(const std::string &key) override;

    void store(const std::string &key, const SimStats &stats) override;

    size_t size() const override;

    /** Counter snapshot, aggregated over the shards. */
    Stats stats() const;

    /** One shard's session/recovery counters (for `status`). */
    struct ShardStats
    {
        uint64_t appends = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t loadedRecords = 0;
        uint64_t droppedRecords = 0;
        size_t records = 0;  ///< live index entries right now
    };

    /** Per-shard counter snapshot, index i = shard i. */
    std::vector<ShardStats> shardStats() const;

    /** The store directory. */
    const std::string &directory() const { return dir_; }

    /** Hash partitions this store is split into. */
    int shardCount() const { return static_cast<int>(shards_.size()); }

  private:
    /** Where one record's blob lives on disk. */
    struct RecordLocation
    {
        uint32_t segment = 0;  ///< index into Shard::segmentPaths
        long offset = 0;       ///< byte offset of the blob
        uint32_t length = 0;   ///< blob bytes
    };

    /**
     * One hash partition: its own lock, index, read handles and
     * session segment. Counters are per-shard and summed by stats().
     */
    struct Shard
    {
        std::mutex mutex;
        std::string dir;
        std::FILE *segment = nullptr;  ///< session segment (append)
        std::string segmentPath;
        /** Scanned segments in load order; the session one is last. */
        std::vector<std::string> segmentPaths;
        /** Lazily opened read handles, parallel to segmentPaths. */
        std::vector<std::FILE *> readHandles;
        std::unordered_map<std::string, RecordLocation> index;
        size_t segments = 0;
        size_t staleSegments = 0;
        size_t badSegments = 0;
        uint64_t loadedRecords = 0;
        uint64_t droppedRecords = 0;
        uint64_t appends = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        // Process-wide observability handles, labelled by shard index
        // (src/obs/metrics.hh); shared when several stores coexist.
        Counter *obsAppends = nullptr;
        Counter *obsHits = nullptr;
        Counter *obsMisses = nullptr;
    };

    /** How one segment scan ended. */
    enum class SegmentVerdict
    {
        Scanned,  ///< header ok; intact records were delivered
        Stale,    ///< rejected wholesale: schema-hash mismatch
        Bad       ///< rejected wholesale: bad magic/version/unreadable
    };

    Shard &shardFor(const std::string &key);

    /**
     * Scan @p path, invoking @p record for every intact record with
     * the record's key, blob, and the blob's byte offset in the file.
     * Truncated/corrupt tails bump @p dropped and stop the scan.
     */
    SegmentVerdict scanSegment(
        const std::string &path, uint64_t *dropped,
        const std::function<void(std::string &&key, std::string &&blob,
                                 long blobOffset)> &record) const;

    /** Load every segment of @p shard and open its session segment. */
    void loadShard(Shard &shard);

    void openSessionSegment(Shard &shard);

    /** Append one pre-serialized record. Caller holds shard.mutex. */
    void appendLocked(Shard &shard, const std::string &key,
                      const std::string &blob);

    /** Re-home records of pre-shard root-level segments, then delete
     *  them. Runs single-threaded at open (before concurrency). */
    void migrateLegacySegments();

    /** Read handle for @p segment of @p shard, opened lazily. Caller
     *  holds shard.mutex; fatal()s when the file vanished. */
    std::FILE *readHandle(Shard &shard, uint32_t segment);

    std::string dir_;
    int lockFd_ = -1;
    uint64_t schemaHash_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
    /** Legacy-layout counters, fixed at open. */
    size_t legacySegments_ = 0;
    size_t legacyStale_ = 0;
    size_t legacyBad_ = 0;
    uint64_t legacyDropped_ = 0;
    uint64_t migratedRecords_ = 0;
};

} // namespace mtv

#endif // MTV_STORE_RESULT_STORE_HH
