/**
 * @file
 * ResultStore: the disk-backed, versioned ResultBackend that makes
 * experiment results persistent across processes — the moral
 * equivalent of the paper's amortization of Dixie traces across
 * experiments, applied to finished simulations.
 *
 * Layout: a store is a directory of append-only segment files
 * (`seg-NNNNNN.mtvs`). Every segment starts with a 16-byte header
 * (magic, format version, schema hash) followed by checksummed
 * records, each mapping a RunSpec::canonical() key to a
 * serializeSimStats() blob:
 *
 *   u32 keyLen | u32 blobLen | u64 fnv1a64(key+blob) | key | blob
 *
 * Crash safety is write-ahead-append: a record is flushed before
 * store() returns, a crash mid-record leaves a short or checksum-
 * failing tail, and opening the store skips such tails (warning and
 * counting them) while keeping every intact record. Each process
 * session appends to a fresh segment, so recovery never rewrites
 * existing data. Segments whose schema hash differs from this
 * build's storeSchemaHash() are rejected wholesale — their results
 * were produced under a different machine-parameter vocabulary or
 * workload registry and must not be served.
 *
 * Memory: only an index (key → segment/offset/length) is resident;
 * load() reads and decodes the blob from disk on demand, so a
 * cache-capped daemon's footprint stays bounded by the index, not by
 * the result payloads (records were checksum-verified when the index
 * was built).
 *
 * A store directory has a single writer at a time, enforced with
 * flock() on `<dir>/LOCK`; all methods are thread-safe within that
 * process (engine workers write through concurrently).
 */

#ifndef MTV_STORE_RESULT_STORE_HH
#define MTV_STORE_RESULT_STORE_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/api/backend.hh"

namespace mtv
{

/** Magic bytes at the start of a store segment ("MTVS" LE). */
constexpr uint32_t storeMagic = 0x5356544d;
/** Current segment format version. */
constexpr uint32_t storeVersion = 1;

/** Disk-backed persistent result store (see file comment). */
class ResultStore : public ResultBackend
{
  public:
    /** Load/recovery counters, fixed at open; session counters. */
    struct Stats
    {
        size_t segments = 0;       ///< segment files seen at open
        size_t staleSegments = 0;  ///< rejected: schema-hash mismatch
        size_t badSegments = 0;    ///< rejected: bad magic/version
        uint64_t loadedRecords = 0;///< intact records read at open
        uint64_t droppedRecords = 0;///< corrupt/truncated tails skipped
        uint64_t appends = 0;      ///< records appended this session
        uint64_t hits = 0;         ///< load() calls served
        uint64_t misses = 0;       ///< load() calls not present
    };

    /**
     * Open (creating if needed) the store at @p dir, take the writer
     * lock, load every intact record of every schema-compatible
     * segment, and start a fresh segment for this session's appends.
     * fatal()s when the directory is unusable or another process
     * holds the writer lock.
     */
    explicit ResultStore(const std::string &dir);
    ~ResultStore() override;

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    std::shared_ptr<const SimStats>
    load(const std::string &key) override;

    void store(const std::string &key, const SimStats &stats) override;

    size_t size() const override;

    /** Counter snapshot. */
    Stats stats() const;

    /** The store directory. */
    const std::string &directory() const { return dir_; }

  private:
    /** Where one record's blob lives on disk. */
    struct RecordLocation
    {
        uint32_t segment = 0;  ///< index into segmentPaths_
        long offset = 0;       ///< byte offset of the blob
        uint32_t length = 0;   ///< blob bytes
    };

    void loadSegment(const std::string &path);
    void openSessionSegment();
    /** Read handle for @p segment, opened lazily. Caller holds
     *  mutex_; fatal()s when the file vanished underneath us. */
    std::FILE *readHandle(uint32_t segment);

    std::string dir_;
    int lockFd_ = -1;
    std::FILE *segment_ = nullptr;
    std::string segmentPath_;
    uint64_t schemaHash_ = 0;

    mutable std::mutex mutex_;
    /** All segments in load order; the session segment is last. */
    std::vector<std::string> segmentPaths_;
    /** Lazily opened read handles, parallel to segmentPaths_. */
    std::vector<std::FILE *> readHandles_;
    std::unordered_map<std::string, RecordLocation> index_;
    Stats stats_;
};

} // namespace mtv

#endif // MTV_STORE_RESULT_STORE_HH
