#include "src/store/stats_codec.hh"

#include <cstring>

#include "src/common/endian.hh"
#include "src/common/logging.hh"
#include "src/isa/machine_params.hh"
#include "src/workload/suite.hh"

namespace mtv
{

namespace
{

// ----- little-endian append helpers -----

void
appendU32(std::string &out, uint32_t v)
{
    uint8_t buf[4];
    writeLe32(buf, v);
    out.append(reinterpret_cast<const char *>(buf), sizeof(buf));
}

void
appendU64(std::string &out, uint64_t v)
{
    uint8_t buf[8];
    writeLe64(buf, v);
    out.append(reinterpret_cast<const char *>(buf), sizeof(buf));
}

void
appendI32(std::string &out, int32_t v)
{
    appendU32(out, static_cast<uint32_t>(v));
}

void
appendString(std::string &out, const std::string &s)
{
    if (s.size() > 0xffffffffu)
        panic("stats string too long to serialize (%zu bytes)",
              s.size());
    appendU32(out, static_cast<uint32_t>(s.size()));
    out.append(s);
}

/** Sequential reader over a blob; fatal()s on truncation. */
class BlobReader
{
  public:
    explicit BlobReader(const std::string &blob) : blob_(blob) {}

    uint32_t
    u32()
    {
        need(4);
        const uint32_t v = readLe32(bytes() + pos_);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8);
        const uint64_t v = readLe64(bytes() + pos_);
        pos_ += 8;
        return v;
    }

    int32_t i32() { return static_cast<int32_t>(u32()); }

    std::string
    str()
    {
        const uint32_t n = u32();
        need(n);
        std::string s = blob_.substr(pos_, n);
        pos_ += n;
        return s;
    }

    bool atEnd() const { return pos_ == blob_.size(); }

  private:
    const uint8_t *
    bytes() const
    {
        return reinterpret_cast<const uint8_t *>(blob_.data());
    }

    void
    need(size_t n) const
    {
        if (blob_.size() - pos_ < n)
            fatal("SimStats blob truncated (need %zu bytes at offset "
                  "%zu of %zu)",
                  n, pos_, blob_.size());
    }

    const std::string &blob_;
    size_t pos_ = 0;
};

void
appendThreadStats(std::string &out, const ThreadStats &ts)
{
    appendString(out, ts.program);
    appendU64(out, ts.instructions);
    appendU64(out, ts.scalarInstructions);
    appendU64(out, ts.vectorInstructions);
    appendU64(out, ts.runsCompleted);
    appendU64(out, ts.instructionsThisRun);
    appendU64(out, ts.lastCompletion);
    appendU32(out, static_cast<uint32_t>(ts.blocked.size()));
    for (const uint64_t b : ts.blocked)
        appendU64(out, b);
}

ThreadStats
readThreadStats(BlobReader &in)
{
    ThreadStats ts;
    ts.program = in.str();
    ts.instructions = in.u64();
    ts.scalarInstructions = in.u64();
    ts.vectorInstructions = in.u64();
    ts.runsCompleted = in.u64();
    ts.instructionsThisRun = in.u64();
    ts.lastCompletion = in.u64();
    const uint32_t reasons = in.u32();
    if (reasons != ts.blocked.size())
        fatal("SimStats blob has %u block reasons, this build has %zu",
              reasons, ts.blocked.size());
    for (auto &b : ts.blocked)
        b = in.u64();
    return ts;
}

} // namespace

uint64_t
fnv1a64(const void *data, size_t size, uint64_t seed)
{
    const auto *bytes = static_cast<const uint8_t *>(data);
    uint64_t hash = seed;
    for (size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
serializeSimStats(const SimStats &stats)
{
    std::string out;
    out.reserve(256);
    appendU32(out, statsCodecVersion);
    appendU64(out, stats.cycles);
    appendU64(out, stats.memRequests);
    appendU64(out, stats.vecOpsFu1);
    appendU64(out, stats.vecOpsFu2);
    appendU64(out, stats.dispatches);
    appendU64(out, stats.decodeIdle);
    appendU64(out, stats.decoupledSlips);
    appendI32(out, stats.memPorts);
    appendU64(out, stats.fu1BusyCycles);
    appendU64(out, stats.fu2BusyCycles);
    appendU64(out, stats.ldBusyCycles);
    appendU32(out, static_cast<uint32_t>(stats.stateHist.size()));
    for (const uint64_t s : stats.stateHist)
        appendU64(out, s);
    appendU32(out, static_cast<uint32_t>(stats.threads.size()));
    for (const ThreadStats &ts : stats.threads)
        appendThreadStats(out, ts);
    appendU32(out, static_cast<uint32_t>(stats.jobs.size()));
    for (const JobRecord &job : stats.jobs) {
        appendString(out, job.program);
        appendI32(out, job.context);
        appendU64(out, job.startCycle);
        appendU64(out, job.endCycle);
    }
    return out;
}

SimStats
deserializeSimStats(const std::string &blob)
{
    BlobReader in(blob);
    const uint32_t version = in.u32();
    if (version != statsCodecVersion)
        fatal("SimStats blob has codec version %u, this build speaks "
              "%u",
              version, statsCodecVersion);
    SimStats stats;
    stats.cycles = in.u64();
    stats.memRequests = in.u64();
    stats.vecOpsFu1 = in.u64();
    stats.vecOpsFu2 = in.u64();
    stats.dispatches = in.u64();
    stats.decodeIdle = in.u64();
    stats.decoupledSlips = in.u64();
    stats.memPorts = in.i32();
    stats.fu1BusyCycles = in.u64();
    stats.fu2BusyCycles = in.u64();
    stats.ldBusyCycles = in.u64();
    const uint32_t states = in.u32();
    if (states != stats.stateHist.size())
        fatal("SimStats blob has %u FU states, this build has %zu",
              states, stats.stateHist.size());
    for (auto &s : stats.stateHist)
        s = in.u64();
    const uint32_t threads = in.u32();
    stats.threads.reserve(threads);
    for (uint32_t i = 0; i < threads; ++i)
        stats.threads.push_back(readThreadStats(in));
    const uint32_t jobs = in.u32();
    stats.jobs.reserve(jobs);
    for (uint32_t i = 0; i < jobs; ++i) {
        JobRecord job;
        job.program = in.str();
        job.context = in.i32();
        job.startCycle = in.u64();
        job.endCycle = in.u64();
        stats.jobs.push_back(job);
    }
    if (!in.atEnd())
        fatal("SimStats blob has trailing bytes");
    return stats;
}

uint64_t
storeSchemaHash()
{
    // Everything that gives a stored blob its meaning: the blob
    // layout itself, the machine parameter set (canonical key names
    // and defaults — RunSpec keys embed the full parameter string, so
    // renaming/adding a parameter changes every key's vocabulary),
    // and the built-in workload registry the program names resolve
    // through. Generator changes must be reflected in the kernel
    // shapes or Table 3 targets below to invalidate stale stores.
    std::string schema;
    schema += "codec=" + std::to_string(statsCodecVersion);
    // RunSpec canonical format generation: bumped when the key string
    // grows fields (e.g. the extension axes), so segments written
    // under the old vocabulary are rejected wholesale.
    schema += ";runspec=8field";
    schema += ";reasons=" +
              std::to_string(
                  static_cast<int>(BlockReason::NumReasons));
    schema += ";fustates=" + std::to_string(numFuStates);
    schema += ";machine={" + MachineParams::reference().canonical() +
              "}";
    for (const ProgramSpec &spec : benchmarkSuite()) {
        schema += ";prog=" + spec.name + "," + spec.abbrev;
        char targets[128];
        std::snprintf(targets, sizeof(targets),
                      ",%.17g,%.17g,%.17g,%.17g,%.17g",
                      spec.scalarMillions, spec.vectorMillions,
                      spec.vectorOpsMillions, spec.percentVect,
                      spec.avgVectorLength);
        schema += targets;
        for (const KernelSpec &kernel : spec.kernels) {
            schema += ";k=" + kernel.name;
            char shape[128];
            std::snprintf(shape, sizeof(shape),
                          ",%u,%zu,%d,%d,%d,%.17g", kernel.tripCount,
                          kernel.body.size(), kernel.scalarPreamble,
                          kernel.scalarPerStrip, kernel.stride,
                          kernel.indexedFraction);
            schema += shape;
            for (const VecStep &step : kernel.body) {
                char stepDesc[64];
                std::snprintf(stepDesc, sizeof(stepDesc), ",%d:%d:%d:%d",
                              static_cast<int>(step.op), step.dst,
                              step.srcA, step.srcB);
                schema += stepDesc;
            }
        }
    }
    return fnv1a64(schema.data(), schema.size());
}

std::string
hexEncode(const std::string &data)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(data.size() * 2);
    for (const char c : data) {
        const auto b = static_cast<uint8_t>(c);
        out.push_back(digits[b >> 4]);
        out.push_back(digits[b & 0xf]);
    }
    return out;
}

std::string
hexDecode(const std::string &hex)
{
    auto nibble = [&hex](char c) -> int {
        if (c >= '0' && c <= '9')
            return c - '0';
        if (c >= 'a' && c <= 'f')
            return c - 'a' + 10;
        if (c >= 'A' && c <= 'F')
            return c - 'A' + 10;
        fatal("invalid hex digit '%c' in '%.32s...'", c, hex.c_str());
    };
    if (hex.size() % 2 != 0)
        fatal("odd-length hex string (%zu digits)", hex.size());
    std::string out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                        nibble(hex[i + 1])));
    }
    return out;
}

} // namespace mtv
