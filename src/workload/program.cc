#include "src/workload/program.hh"

#include <cmath>

#include "src/common/logging.hh"

namespace mtv
{

namespace
{

/** Stable 64-bit hash of a string (FNV-1a) for per-program seeding. */
uint64_t
hashName(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

void
ProgramSpec::validate() const
{
    if (kernels.empty())
        panic("program '%s' has no kernels", name.c_str());
    for (const auto &k : kernels)
        k.validate();
    if (vectorMillions <= 0 || scalarMillions < 0)
        panic("program '%s' has invalid instruction targets",
              name.c_str());
    // The kernels' built-in scalar overhead must stay below the
    // program's scalar/vector ratio so the standalone scalar regions
    // can make up the difference (never the other way around).
    const double targetRatio = scalarMillions / vectorMillions;
    for (const auto &k : kernels) {
        const double kernelRatio =
            static_cast<double>(k.scalarInstrsPerInvocation()) /
            static_cast<double>(k.vectorInstrsPerInvocation());
        if (kernelRatio > targetRatio * (1.0 + 1e-9) + 1e-12) {
            panic("program '%s': kernel '%s' scalar/vector ratio %.3f "
                  "exceeds program target %.3f",
                  name.c_str(), k.name.c_str(), kernelRatio, targetRatio);
        }
    }
}

SyntheticProgram::SyntheticProgram(const ProgramSpec &spec, double scale,
                                   uint64_t seed)
    : name_(spec.name)
{
    spec.validate();
    if (scale <= 0)
        fatal("workload scale must be positive, got %g", scale);

    const auto vTarget = static_cast<uint64_t>(
        std::llround(spec.vectorMillions * 1e6 * scale));
    const auto sTarget = static_cast<uint64_t>(
        std::llround(spec.scalarMillions * 1e6 * scale));

    Rng rng(hashName(spec.name) ^ seed);
    uint64_t addrCursor = 0x10000000ull +
                          (hashName(spec.name) & 0xffff000ull);

    uint64_t vEmitted = 0;
    uint64_t sEmitted = 0;
    uint64_t scalarIter = 0;
    size_t kIdx = 0;

    // Built locally, then published as the immutable shared stream.
    std::vector<Instruction> instructions;
    // Reserve an estimate to avoid repeated growth.
    instructions.reserve(vTarget + sTarget + 1024);

    while (vEmitted < vTarget || vEmitted == 0) {
        const KernelSpec &kernel = spec.kernels[kIdx];
        kIdx = (kIdx + 1) % spec.kernels.size();

        emitKernel(kernel, addrCursor, rng, instructions);
        vEmitted += kernel.vectorInstrsPerInvocation();
        sEmitted += kernel.scalarInstrsPerInvocation();

        // Keep the scalar stream in step with vector progress so the
        // non-vectorized regions are spread through the run (as they
        // are in the real programs), not bunched at the end.
        const double frac = std::min(
            1.0, static_cast<double>(vEmitted) /
                     static_cast<double>(std::max<uint64_t>(vTarget, 1)));
        const auto sWanted =
            static_cast<uint64_t>(frac * static_cast<double>(sTarget));
        while (sEmitted + scalarIterationLength <= sWanted) {
            sEmitted += emitScalarIteration(scalarIter++, addrCursor,
                                            instructions);
        }
    }

    while (sEmitted + scalarIterationLength <= sTarget) {
        sEmitted += emitScalarIteration(scalarIter++, addrCursor,
                                        instructions);
    }

    stream_ = std::make_shared<const std::vector<Instruction>>(
        std::move(instructions));
}

bool
SyntheticProgram::next(Instruction &out)
{
    if (pos_ >= stream_->size())
        return false;
    out = (*stream_)[pos_++];
    return true;
}

ProgramSpec
makeDaxpySpec(uint64_t elements)
{
    BodyBuilder b;
    const int x = b.load();
    const int y = b.load();
    const int ax = b.arith(Opcode::VMul, x, x);
    const int sum = b.arith(Opcode::VAdd, ax, y);
    b.store(sum);

    KernelSpec k;
    k.name = "daxpy";
    k.tripCount = static_cast<uint32_t>(
        std::min<uint64_t>(elements, 1u << 20));
    k.body = b.take();
    k.scalarPreamble = 2;
    k.scalarPerStrip = 2;

    ProgramSpec p;
    p.name = "daxpy";
    p.abbrev = "dx";
    p.suite = "example";
    // One invocation's worth of work at scale 1.0.
    p.vectorMillions =
        static_cast<double>(k.vectorInstrsPerInvocation()) / 1e6;
    p.scalarMillions =
        static_cast<double>(k.scalarInstrsPerInvocation()) / 1e6;
    p.vectorOpsMillions =
        static_cast<double>(k.vectorOpsPerInvocation()) / 1e6;
    p.avgVectorLength = k.averageVectorLength();
    p.percentVect = 100.0 * p.vectorOpsMillions /
                    (p.scalarMillions + p.vectorOpsMillions);
    p.kernels.push_back(k);
    return p;
}

} // namespace mtv
