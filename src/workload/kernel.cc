#include "src/workload/kernel.hh"

#include "src/common/logging.hh"

namespace mtv
{

namespace
{

/** Scalar registers 0..7 model S0-7; 8..15 model A0-7. */
constexpr uint8_t sReg(int i) { return static_cast<uint8_t>(i); }
constexpr uint8_t aReg(int i) { return static_cast<uint8_t>(8 + i); }

/** Bank-spreading permutation: consecutive slots alternate banks. */
constexpr uint8_t bankSpread[8] = {0, 2, 4, 6, 1, 3, 5, 7};

} // namespace

void
KernelSpec::validate() const
{
    if (body.empty())
        panic("kernel '%s' has an empty body", name.c_str());
    if (tripCount == 0)
        panic("kernel '%s' has zero trip count", name.c_str());
    if (scalarPerStrip < 1)
        panic("kernel '%s' needs >= 1 scalar instr per strip (the "
              "backward branch)", name.c_str());
    bool hasStore = false;
    bool hasLoadOrArith = false;
    for (const auto &step : body) {
        if (step.dst < 0 || step.dst >= numVRegs)
            panic("kernel '%s': slot %d out of range", name.c_str(),
                  step.dst);
        if (isStore(step.op))
            hasStore = true;
        else
            hasLoadOrArith = true;
        if (isVectorArith(step.op) && step.srcA < 0)
            panic("kernel '%s': arithmetic step without sources",
                  name.c_str());
    }
    // A loop body that only stores (or never produces anything) is not
    // something the vectorizer would emit; treat as a spec bug.
    if (!hasLoadOrArith)
        panic("kernel '%s' has no loads or arithmetic", name.c_str());
    (void)hasStore;
}

int
BodyBuilder::allocSlot()
{
    const int slot = next_;
    next_ = (next_ + 1) % numVRegs;
    return slot;
}

int
BodyBuilder::load()
{
    const int slot = allocSlot();
    steps_.push_back({Opcode::VLoad, slot, -1, -1});
    return slot;
}

int
BodyBuilder::arith(Opcode op, int a, int b)
{
    MTV_ASSERT(isVectorArith(op));
    const int slot = allocSlot();
    steps_.push_back({op, slot, a, b});
    return slot;
}

void
BodyBuilder::store(int a)
{
    steps_.push_back({Opcode::VStore, a, -1, -1});
}

uint8_t
slotToVReg(int slot)
{
    MTV_ASSERT(slot >= 0 && slot < numVRegs);
    return bankSpread[slot];
}

void
emitKernel(const KernelSpec &kernel, uint64_t &addrCursor, Rng &rng,
           std::vector<Instruction> &out)
{
    const uint32_t strips = kernel.strips();

    // --- Scalar preamble: base-address setup, stride, vector length.
    static const Opcode preamblePattern[] = {
        Opcode::SMove, Opcode::SAddInt, Opcode::SetVS, Opcode::SAddInt,
        Opcode::SLogic, Opcode::SMulInt,
    };
    for (int i = 0; i < kernel.scalarPreamble; ++i) {
        const Opcode op = preamblePattern[
            i % (sizeof(preamblePattern) / sizeof(preamblePattern[0]))];
        out.push_back(makeScalar(op, aReg(i % 4), aReg((i + 1) % 4)));
    }

    uint32_t remaining = kernel.tripCount;
    for (uint32_t strip = 0; strip < strips; ++strip) {
        const auto vl = static_cast<uint16_t>(
            std::min<uint32_t>(remaining, maxVectorLength));
        remaining -= vl;

        // --- Per-strip scalar overhead: setvl, address bumps, branch.
        if (kernel.scalarPerStrip >= 2) {
            out.push_back(makeScalar(Opcode::SetVL, sReg(7)));
            for (int i = 0; i < kernel.scalarPerStrip - 2; ++i)
                out.push_back(makeScalar(Opcode::SAddInt, aReg(4 + i % 3),
                                         aReg(4 + i % 3)));
        }
        // (scalarPerStrip == 1 degenerates to just the branch)

        // --- Vector body at this strip's VL.
        for (const auto &step : kernel.body) {
            if (isStore(step.op)) {
                const bool indexed = rng.chance(kernel.indexedFraction);
                out.push_back(makeVectorMem(
                    indexed ? Opcode::VScatter : Opcode::VStore,
                    slotToVReg(step.dst), vl, addrCursor,
                    kernel.stride));
                addrCursor += static_cast<uint64_t>(vl) * 8 *
                              std::max<int32_t>(1, kernel.stride);
            } else if (isLoad(step.op)) {
                const bool indexed = rng.chance(kernel.indexedFraction);
                out.push_back(makeVectorMem(
                    indexed ? Opcode::VGather : Opcode::VLoad,
                    slotToVReg(step.dst), vl, addrCursor,
                    kernel.stride));
                addrCursor += static_cast<uint64_t>(vl) * 8 *
                              std::max<int32_t>(1, kernel.stride);
            } else {
                out.push_back(makeVectorArith(
                    step.op, slotToVReg(step.dst), slotToVReg(step.srcA),
                    step.srcB >= 0 ? slotToVReg(step.srcB) : noReg, vl));
            }
        }

        // Backward branch closing the strip loop.
        out.push_back(makeScalar(Opcode::SBranch, noReg, aReg(7)));
    }
}

int
emitScalarIteration(uint64_t iteration, uint64_t &addrCursor,
                    std::vector<Instruction> &out)
{
    // Rotate the load destination over three registers so consecutive
    // iterations' loads can overlap up to the WAW distance; the
    // consumer reads the load from two iterations ago, giving the
    // compiler-scheduled "load early, use late" shape.
    const uint8_t loadReg = sReg(1 + static_cast<int>(iteration % 3));
    const uint8_t useReg = sReg(1 + static_cast<int>((iteration + 1) % 3));

    out.push_back(makeScalarMem(Opcode::SLoad, loadReg, addrCursor));
    out.push_back(makeScalar(Opcode::SAddInt, aReg(0), aReg(0)));
    out.push_back(makeScalar(Opcode::SAddInt, aReg(1), aReg(1)));
    out.push_back(makeScalar(Opcode::SAddFp, sReg(4), useReg, sReg(0)));
    out.push_back(makeScalarMem(Opcode::SStore, sReg(4),
                                addrCursor + 0x40000));
    out.push_back(makeScalar(Opcode::SAddInt, aReg(2), aReg(2)));
    out.push_back(makeScalar(Opcode::SBranch, noReg, aReg(2)));
    addrCursor += 8;
    return scalarIterationLength;
}

} // namespace mtv
