/**
 * @file
 * Whole-program synthesis: combine kernels and scalar regions into a
 * dynamic instruction stream whose aggregate statistics match a target
 * row of the paper's Table 3.
 */

#ifndef MTV_WORKLOAD_PROGRAM_HH
#define MTV_WORKLOAD_PROGRAM_HH

#include <memory>
#include <string>
#include <vector>

#include "src/trace/source.hh"
#include "src/workload/kernel.hh"

namespace mtv
{

/**
 * Description of one benchmark program. The three *Millions targets
 * are the paper's Table 3 columns at scale 1.0; generation multiplies
 * them by a scale factor.
 */
struct ProgramSpec
{
    std::string name;    ///< e.g. "swm256"
    std::string abbrev;  ///< paper's two-letter code, e.g. "sw"
    std::string suite;   ///< "Spec" or "Perf."

    double scalarMillions = 0;     ///< Table 3 col 2: scalar instrs (M)
    double vectorMillions = 0;     ///< Table 3 col 3: vector instrs (M)
    double vectorOpsMillions = 0;  ///< Table 3 col 4: vector ops (M)
    double percentVect = 0;        ///< Table 3 col 5 (consistency check)
    double avgVectorLength = 0;    ///< Table 3 col 6 (consistency check)

    /** The vectorized loop nests of this program. */
    std::vector<KernelSpec> kernels;

    /** panic()s when the spec is structurally invalid. */
    void validate() const;
};

/**
 * A complete synthetic benchmark run. The instruction stream is
 * materialized deterministically at construction (seeded from the
 * program name), then served like a recorded trace; reset() replays
 * the identical stream, which the restart-based speedup methodology
 * of the paper (section 4.1) relies on.
 *
 * The materialized stream is immutable and held by shared_ptr, so
 * copying a SyntheticProgram is cheap: copies share the stream and
 * carry their own cursor. makeProgram() exploits this with a
 * process-wide stream cache — a sweep's thousandth uncached run of
 * "flo52" costs a pointer copy, not a re-generation.
 */
class SyntheticProgram : public InstructionSource
{
  public:
    /**
     * Generate the stream.
     *
     * @param spec  Program description (kernels + Table 3 targets).
     * @param scale Fraction of the paper's dynamic instruction counts
     *              to generate (1.0 would be the full 10^7..10^8-instr
     *              run; benches default to workloadDefaultScale).
     * @param seed  PRNG seed for gather/scatter placement.
     */
    SyntheticProgram(const ProgramSpec &spec, double scale,
                     uint64_t seed = 0);

    bool next(Instruction &out) override;
    void reset() override { pos_ = 0; }
    const std::string &name() const override { return name_; }

    /** Total instructions in one run of this program. */
    uint64_t count() const { return stream_->size(); }

    /** Direct access for analysis without re-streaming. */
    const std::vector<Instruction> &instructions() const
    {
        return *stream_;
    }

    /** The shared stream itself: batched-kernel fast-lane eligibility
     *  (see InstructionSource::sharedStream). */
    std::shared_ptr<const std::vector<Instruction>>
    sharedStream() const override
    {
        return stream_;
    }

  private:
    std::string name_;
    /** Immutable generated stream, shared between copies. */
    std::shared_ptr<const std::vector<Instruction>> stream_;
    size_t pos_ = 0;
};

/** Default workload scale used by the figure benches. */
constexpr double workloadDefaultScale = 2e-4;

/**
 * Convenience: a simple strip-mined DAXPY program (y += a*x) over
 * @p elements elements — the quickstart example workload.
 */
ProgramSpec makeDaxpySpec(uint64_t elements);

} // namespace mtv

#endif // MTV_WORKLOAD_PROGRAM_HH
