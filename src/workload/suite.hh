/**
 * @file
 * The 10-program benchmark suite: synthetic stand-ins for the Perfect
 * Club and Specfp92 programs the paper traces (Table 3), plus the
 * grouping tables of the speedup methodology (Table 2) and the fixed
 * job-queue order of section 7.
 */

#ifndef MTV_WORKLOAD_SUITE_HH
#define MTV_WORKLOAD_SUITE_HH

#include <memory>
#include <string>
#include <vector>

#include "src/workload/program.hh"

namespace mtv
{

/**
 * The benchmark suite in the paper's Table 3 order (most to least
 * vectorized): swm256, hydro2d, arc2d, flo52, nasa7, su2cor, tomcatv,
 * bdna, trfd, dyfesm.
 */
const std::vector<ProgramSpec> &benchmarkSuite();

/**
 * Find a program by full name ("swm256") or paper abbreviation ("sw").
 * Looks through the built-in suite and then the custom-program
 * registry; fatal()s when unknown (user-facing lookup).
 */
const ProgramSpec &findProgram(const std::string &nameOrAbbrev);

/**
 * Register a custom program so experiment RunSpecs can reference it
 * by name like a suite program. The spec is validated; its name and
 * abbreviation must not collide with any suite or already-registered
 * identifier (fatal() otherwise). Registrations are permanent for
 * the process lifetime — findProgram hands out references into the
 * registry and cached experiment results are keyed by program name.
 * Lookups are thread-safe; registration must happen before
 * experiment batches that use the name start running.
 */
void registerProgram(const ProgramSpec &spec);

/** Instantiate a program's instruction stream at @p scale. */
std::unique_ptr<SyntheticProgram>
makeProgram(const std::string &nameOrAbbrev,
            double scale = workloadDefaultScale);

/**
 * Table 2 reconstruction (see DESIGN.md): the companion programs used
 * to form 2-, 3- and 4-thread groupings. Column "2" companions come
 * from the Figure 7 caption; columns "3" and "4" are the remaining
 * high-vectorization programs.
 */
const std::vector<std::string> &groupingColumn2();  ///< 5 programs
const std::vector<std::string> &groupingColumn3();  ///< 2 programs
const std::vector<std::string> &groupingColumn4();  ///< 1 program

/**
 * Section 7's fixed random order for the job-queue benchmark:
 * TF SW SU TI TO A7 HY NA SR SD.
 */
const std::vector<std::string> &jobQueueOrder();

} // namespace mtv

#endif // MTV_WORKLOAD_SUITE_HH
