#include "src/workload/suite.hh"

#include <map>
#include <mutex>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"

namespace mtv
{

namespace
{

/** Custom programs added via registerProgram(), keyed by name. */
std::map<std::string, ProgramSpec> &
customPrograms()
{
    static std::map<std::string, ProgramSpec> programs;
    return programs;
}

std::mutex &
customProgramsMutex()
{
    static std::mutex mutex;
    return mutex;
}

// ---------------------------------------------------------------------
// Kernel bodies. Shapes follow the dominant loop nests of each real
// program (stencils for the PDE codes, gather-heavy interaction loops
// for the MD code, short multiply-dominated loops for the integral
// transforms); sizes are chosen so each kernel's built-in scalar
// overhead stays below the program's Table 3 scalar/vector ratio.
// ---------------------------------------------------------------------

/**
 * Wide 9-point-style stencil: 6 loads, 8 flops, 3 stores, interleaved
 * the way the compiler schedules them (consumers close behind their
 * producers to minimize register pressure) — which, with no load→FU
 * chaining, produces the decode stalls the paper studies.
 */
std::vector<VecStep>
bodyWideStencil()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VAdd, a, c);
    const int d = b.load();
    const int e = b.load();
    const int t2 = b.arith(Opcode::VMul, d, e);
    const int t3 = b.arith(Opcode::VAdd, t1, t2);
    const int f = b.load();
    const int g = b.load();
    const int t4 = b.arith(Opcode::VMul, f, g);
    const int t5 = b.arith(Opcode::VAdd, t3, t4);
    b.store(t5);
    const int t6 = b.arith(Opcode::VMul, t5, a);
    const int t7 = b.arith(Opcode::VAdd, t6, c);
    b.store(t7);
    const int t8 = b.arith(Opcode::VAdd, t7, d);
    b.store(t8);
    return b.take();
}

/** Medium stencil update: 5 loads, 6 flops, 3 stores (interleaved). */
std::vector<VecStep>
bodyMediumStencil()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VAdd, a, c);
    const int d = b.load();
    const int e = b.load();
    const int t2 = b.arith(Opcode::VMul, d, e);
    const int t3 = b.arith(Opcode::VAdd, t1, t2);
    b.store(t3);
    const int f = b.load();
    const int t4 = b.arith(Opcode::VMul, t3, f);
    const int t5 = b.arith(Opcode::VAdd, t4, a);
    b.store(t5);
    const int t6 = b.arith(Opcode::VAdd, t5, c);
    b.store(t6);
    return b.take();
}

/** Flux/sweep kernel with a divide: 5 loads, 6 flops, 2 stores. */
std::vector<VecStep>
bodySweepDiv()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int d = b.load();
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    const int e = b.load();
    const int t3 = b.arith(Opcode::VDiv, t2, e);
    b.store(t3);
    const int f = b.load();
    const int t4 = b.arith(Opcode::VMul, t3, f);
    const int t5 = b.arith(Opcode::VAdd, t4, a);
    const int t6 = b.arith(Opcode::VAdd, t5, c);
    b.store(t6);
    return b.take();
}

/** Generic flux kernel: 4 loads, 5 flops, 2 stores (interleaved). */
std::vector<VecStep>
bodyFlux()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int d = b.load();
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    b.store(t2);
    const int e = b.load();
    const int t3 = b.arith(Opcode::VMul, t2, e);
    const int t4 = b.arith(Opcode::VAdd, t3, a);
    const int t5 = b.arith(Opcode::VLogic, t4, c);
    b.store(t5);
    return b.take();
}

/** Implicit solver line: 5 loads, 7 flops (with divide), 2 stores. */
std::vector<VecStep>
bodyImplicit()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int d = b.load();
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    const int e = b.load();
    const int t3 = b.arith(Opcode::VMul, t2, e);
    const int f = b.load();
    const int t4 = b.arith(Opcode::VAdd, t3, f);
    const int t5 = b.arith(Opcode::VDiv, t4, a);
    b.store(t5);
    const int t6 = b.arith(Opcode::VAdd, t5, c);
    const int t7 = b.arith(Opcode::VAdd, t6, d);
    b.store(t7);
    return b.take();
}

/** Euler-step kernel: 4 loads, 6 flops, 2 stores (interleaved). */
std::vector<VecStep>
bodyEuler()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VAdd, a, c);
    const int d = b.load();
    const int t2 = b.arith(Opcode::VMul, t1, d);
    const int e = b.load();
    const int t3 = b.arith(Opcode::VAdd, t2, e);
    b.store(t3);
    const int t4 = b.arith(Opcode::VMul, t3, a);
    const int t5 = b.arith(Opcode::VAdd, t4, c);
    const int t6 = b.arith(Opcode::VAdd, t5, d);
    b.store(t6);
    return b.take();
}

/** Residual kernel: 3 loads, 4 flops, 1 store. */
std::vector<VecStep>
bodyResidual()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int d = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    const int t3 = b.arith(Opcode::VMul, t2, a);
    const int t4 = b.arith(Opcode::VAdd, t3, c);
    b.store(t4);
    return b.take();
}

/** Matrix-multiply inner strip: 2 loads, multiply-accumulate. */
std::vector<VecStep>
bodyMxm()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    b.arith(Opcode::VAdd, t1, t1);
    return b.take();
}

/** FFT butterfly strip: 4 loads, 6 flops, 2 stores (interleaved). */
std::vector<VecStep>
bodyButterfly()
{
    BodyBuilder b;
    const int ar = b.load();
    const int br = b.load();
    const int t1 = b.arith(Opcode::VMul, br, ar);
    const int ai = b.load();
    const int bi = b.load();
    const int t2 = b.arith(Opcode::VMul, bi, ai);
    const int t3 = b.arith(Opcode::VAdd, t1, t2);
    b.store(t3);
    const int t4 = b.arith(Opcode::VMul, br, ai);
    const int t5 = b.arith(Opcode::VAdd, t4, t3);
    const int t6 = b.arith(Opcode::VAdd, t5, ar);
    b.store(t6);
    return b.take();
}

/** Factorization line with divide: 3 loads, 3 flops, 1 store. */
std::vector<VecStep>
bodyFactor()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int d = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VDiv, t1, d);
    const int t3 = b.arith(Opcode::VAdd, t2, a);
    b.store(t3);
    return b.take();
}

/** Gauge-update kernel: 3 loads, 4 flops, 1 store. */
std::vector<VecStep>
bodyGauge()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int d = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    const int t3 = b.arith(Opcode::VMul, t2, a);
    const int t4 = b.arith(Opcode::VAdd, t3, c);
    b.store(t4);
    return b.take();
}

/** Lattice propagation: 3 loads, 3 flops, 1 store. */
std::vector<VecStep>
bodyLattice()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int d = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    const int t3 = b.arith(Opcode::VLogic, t2, a);
    b.store(t3);
    return b.take();
}

/** Mesh-generation kernel with divide: 4 loads, 6 flops, 2 stores. */
std::vector<VecStep>
bodyMesh()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int d = b.load();
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    const int e = b.load();
    const int t3 = b.arith(Opcode::VDiv, t2, e);
    b.store(t3);
    const int t4 = b.arith(Opcode::VMul, t3, a);
    const int t5 = b.arith(Opcode::VAdd, t4, c);
    const int t6 = b.arith(Opcode::VAdd, t5, d);
    b.store(t6);
    return b.take();
}

/** Residual-norm kernel ending in a reduction: 2 loads + reduce. */
std::vector<VecStep>
bodyNorm()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VAdd, t1, a);
    std::vector<VecStep> steps = b.take();
    // Reductions deposit into a scalar; the slot records the V source.
    steps.push_back({Opcode::VReduce, t2, t2, -1});
    return steps;
}

/** Pairwise-force kernel with sqrt: 4 loads, 6 flops, 1 store. */
std::vector<VecStep>
bodyForces()
{
    BodyBuilder b;
    const int x = b.load();
    const int y = b.load();
    const int t1 = b.arith(Opcode::VMul, x, x);
    const int t2 = b.arith(Opcode::VMul, y, y);
    const int t3 = b.arith(Opcode::VAdd, t1, t2);
    const int t4 = b.arith(Opcode::VSqrt, t3, -1);
    const int z = b.load();
    const int q = b.load();
    const int t5 = b.arith(Opcode::VMul, t4, q);
    const int t6 = b.arith(Opcode::VAdd, t5, z);
    b.store(t6);
    return b.take();
}

/** Neighbour-pair kernel: 3 loads, 4 flops, 1 store. */
std::vector<VecStep>
bodyPairs()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int d = b.load();
    const int t1 = b.arith(Opcode::VAdd, a, c);
    const int t2 = b.arith(Opcode::VMul, t1, d);
    const int t3 = b.arith(Opcode::VAdd, t2, a);
    const int t4 = b.arith(Opcode::VLogic, t3, c);
    b.store(t4);
    return b.take();
}

/** Integral-transform kernel: 3 loads, multiply-heavy, 1 store. */
std::vector<VecStep>
bodyTransform()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int d = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VMul, t1, d);
    const int t3 = b.arith(Opcode::VAdd, t2, a);
    b.store(t3);
    return b.take();
}

/** Short contraction: 2 loads, 3 flops, 1 store. */
std::vector<VecStep>
bodyContract()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VAdd, t1, a);
    const int t3 = b.arith(Opcode::VMul, t2, c);
    b.store(t3);
    return b.take();
}

/** Element-solve kernel: 3 loads, 4 flops, 2 stores. */
std::vector<VecStep>
bodyElementSolve()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int d = b.load();
    const int t1 = b.arith(Opcode::VMul, a, c);
    const int t2 = b.arith(Opcode::VAdd, t1, d);
    const int t3 = b.arith(Opcode::VMul, t2, a);
    const int t4 = b.arith(Opcode::VAdd, t3, c);
    b.store(t2);
    b.store(t4);
    return b.take();
}

/** Stress-recovery kernel: 2 loads, 3 flops, 1 store. */
std::vector<VecStep>
bodyStress()
{
    BodyBuilder b;
    const int a = b.load();
    const int c = b.load();
    const int t1 = b.arith(Opcode::VAdd, a, c);
    const int t2 = b.arith(Opcode::VMul, t1, a);
    const int t3 = b.arith(Opcode::VAdd, t2, c);
    b.store(t3);
    return b.take();
}

KernelSpec
kernel(const std::string &name, uint32_t trip,
       std::vector<VecStep> body, int preamble, int perStrip,
       double indexed = 0.0, int32_t stride = 1)
{
    KernelSpec k;
    k.name = name;
    k.tripCount = trip;
    k.body = std::move(body);
    k.scalarPreamble = preamble;
    k.scalarPerStrip = perStrip;
    k.indexedFraction = indexed;
    k.stride = stride;
    return k;
}

ProgramSpec
program(const std::string &name, const std::string &abbrev,
        const std::string &suite, double sM, double vM, double opsM,
        double pctVect, double avgVl, std::vector<KernelSpec> kernels)
{
    ProgramSpec p;
    p.name = name;
    p.abbrev = abbrev;
    p.suite = suite;
    p.scalarMillions = sM;
    p.vectorMillions = vM;
    p.vectorOpsMillions = opsM;
    p.percentVect = pctVect;
    p.avgVectorLength = avgVl;
    p.kernels = std::move(kernels);
    return p;
}

std::vector<ProgramSpec>
buildSuite()
{
    std::vector<ProgramSpec> suite;

    // Table 3 rows (columns 2-4 in millions of dynamic instructions /
    // operations). Kernel trip counts are chosen so that
    // tripCount / ceil(tripCount/128) equals the program's average
    // vector length.
    suite.push_back(program(
        "swm256", "sw", "Spec", 6.2, 74.5, 9534.3, 99.9, 128.0,
        {kernel("sw-stencil", 1280, bodyWideStencil(), 2, 1),
         kernel("sw-update", 2560, bodyMediumStencil(), 2, 1)}));

    // hy-flux sweeps the other grid dimension: a long odd stride
    // (the row length), which an interleaved memory still serves at
    // full rate but which is not unit-stride.
    suite.push_back(program(
        "hydro2d", "hy", "Spec", 41.5, 39.2, 3973.8, 99.0, 101.4,
        {kernel("hy-sweep", 404, bodySweepDiv(), 3, 3),
         kernel("hy-flux", 404, bodyFlux(), 3, 3, 0.0, 405)}));

    // arc2d's implicit sweeps walk columns of a power-of-two-padded
    // array (stride 192 = 3*64): the classic bank-conflict pattern
    // the banked-DRAM ablation exercises.
    suite.push_back(program(
        "arc2d", "sr", "Perf.", 63.3, 42.9, 4086.5, 98.5, 95.3,
        {kernel("sr-implicit", 190, bodyImplicit(), 3, 3, 0.0, 192),
         kernel("sr-smooth", 190, bodyFlux(), 3, 3)}));

    suite.push_back(program(
        "flo52", "tf", "Perf.", 37.7, 22.8, 1242.0, 97.1, 54.5,
        {kernel("tf-euler", 54, bodyEuler(), 2, 3),
         kernel("tf-residual", 55, bodyResidual(), 2, 3)}));

    suite.push_back(program(
        "nasa7", "a7", "Spec", 152.4, 67.3, 3911.9, 96.2, 58.1,
        {kernel("a7-mxm", 58, bodyMxm(), 3, 3),
         kernel("a7-fft", 58, bodyButterfly(), 3, 3),
         kernel("a7-chol", 58, bodyFactor(), 3, 3)}));

    suite.push_back(program(
        "su2cor", "su", "Spec", 152.6, 26.8, 3356.8, 95.7, 125.3,
        {kernel("su-gauge", 500, bodyGauge(), 4, 4),
         kernel("su-lattice", 500, bodyLattice(), 4, 4, 0.2)}));

    suite.push_back(program(
        "tomcatv", "to", "Spec", 125.8, 7.2, 916.8, 87.9, 127.3,
        {kernel("to-mesh", 1016, bodyMesh(), 2, 1),
         kernel("to-norm", 1016, bodyNorm(), 2, 1)}));

    // Note: the scanned Table 3 prints bdna's scalar count as 23.9M,
    // which contradicts its own %vect column (1589.9/(23.9+1589.9) =
    // 98.5%, not 86.9%). Solving 1589.9/(S+1589.9) = 0.869 gives
    // S = 239.6M; the scan evidently dropped a digit.
    suite.push_back(program(
        "bdna", "na", "Perf.", 239.6, 19.6, 1589.9, 86.9, 81.1,
        {kernel("na-forces", 162, bodyForces(), 3, 3, 0.5),
         kernel("na-pairs", 162, bodyPairs(), 3, 3, 0.5)}));

    suite.push_back(program(
        "trfd", "ti", "Perf.", 352.2, 49.5, 1095.3, 75.7, 22.1,
        {kernel("ti-int1", 22, bodyTransform(), 2, 2),
         kernel("ti-int2", 22, bodyContract(), 2, 2)}));

    suite.push_back(program(
        "dyfesm", "sd", "Perf.", 236.1, 33.0, 696.2, 74.7, 21.1,
        {kernel("sd-solve", 21, bodyElementSolve(), 2, 2, 0.3),
         kernel("sd-stress", 21, bodyStress(), 2, 2, 0.3)}));

    for (const auto &p : suite)
        p.validate();
    return suite;
}

} // namespace

const std::vector<ProgramSpec> &
benchmarkSuite()
{
    static const std::vector<ProgramSpec> suite = buildSuite();
    return suite;
}

const ProgramSpec &
findProgram(const std::string &nameOrAbbrev)
{
    const std::string key = toLower(nameOrAbbrev);
    for (const auto &p : benchmarkSuite()) {
        if (p.name == key || p.abbrev == key)
            return p;
    }
    {
        std::lock_guard<std::mutex> lock(customProgramsMutex());
        for (const auto &entry : customPrograms()) {
            const ProgramSpec &p = entry.second;
            if (toLower(p.name) == key || toLower(p.abbrev) == key)
                return p;
        }
    }
    fatal("unknown benchmark program '%s'", nameOrAbbrev.c_str());
}

namespace
{

/**
 * Program identifiers flow into RunSpec canonical strings, which use
 * ',' (program separator), ';' (field separator) and '=' (key/value)
 * as structure — an identifier containing them would serialize
 * ambiguously and poison byte-compared cache keys.
 */
void
checkIdentifier(const std::string &id, const char *what)
{
    if (id.empty())
        fatal("custom program %s must not be empty", what);
    for (const char c : id) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                        c == '.';
        if (!ok)
            fatal("custom program %s '%s' contains invalid character "
                  "'%c' (allowed: alphanumerics, '_', '-', '.')",
                  what, id.c_str(), c);
    }
}

} // namespace

void
registerProgram(const ProgramSpec &spec)
{
    spec.validate();
    checkIdentifier(spec.name, "name");
    checkIdentifier(spec.abbrev, "abbreviation");
    const std::string name = toLower(spec.name);
    const std::string abbrev = toLower(spec.abbrev);
    // Either identifier colliding with either suite identifier would
    // make lookups ambiguous (the suite is searched first, silently
    // shadowing the custom program).
    for (const auto &p : benchmarkSuite()) {
        if (p.name == name || p.name == abbrev || p.abbrev == name ||
            p.abbrev == abbrev) {
            fatal("custom program '%s' (%s) collides with suite "
                  "program '%s' (%s)",
                  spec.name.c_str(), spec.abbrev.c_str(),
                  p.name.c_str(), p.abbrev.c_str());
        }
    }
    std::lock_guard<std::mutex> lock(customProgramsMutex());
    // Registrations are permanent for the process lifetime:
    // findProgram hands out references into this map, and cached
    // experiment results are keyed by program name — redefining a
    // name would invalidate both.
    for (const auto &entry : customPrograms()) {
        const ProgramSpec &p = entry.second;
        const std::string pName = toLower(p.name);
        const std::string pAbbrev = toLower(p.abbrev);
        if (pName == name || pName == abbrev || pAbbrev == name ||
            pAbbrev == abbrev) {
            fatal("custom program '%s' (%s) collides with already-"
                  "registered program '%s' (%s)",
                  spec.name.c_str(), spec.abbrev.c_str(),
                  p.name.c_str(), p.abbrev.c_str());
        }
    }
    customPrograms().emplace(name, spec);
}

std::unique_ptr<SyntheticProgram>
makeProgram(const std::string &nameOrAbbrev, double scale)
{
    const ProgramSpec &spec = findProgram(nameOrAbbrev);

    // Streams are deterministic per (program, scale) and immutable
    // once generated, and program registrations are permanent — so
    // one generation can serve every source for the process
    // lifetime. This is what keeps uncached sweeps cheap: the engine
    // asks for a fresh source per run, and all but the first are a
    // shared-pointer copy instead of a re-materialization.
    static std::mutex cacheMutex;
    static std::map<std::string, std::shared_ptr<const SyntheticProgram>>
        &cache = *new std::map<std::string,
                               std::shared_ptr<const SyntheticProgram>>;
    // Bound pathological scale churn (e.g. a long-lived daemon fed a
    // different scale per request); sources already handed out keep
    // their streams alive through the shared_ptr.
    constexpr size_t maxCachedStreams = 64;

    const std::string key = format("%s|%.17g", spec.name.c_str(), scale);
    {
        std::lock_guard<std::mutex> lock(cacheMutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return std::make_unique<SyntheticProgram>(*it->second);
    }
    // Generate outside the lock; a concurrent duplicate generation is
    // wasted work, not an error (first insert wins).
    auto built = std::make_shared<const SyntheticProgram>(spec, scale);
    std::lock_guard<std::mutex> lock(cacheMutex);
    if (cache.size() >= maxCachedStreams)
        cache.clear();
    auto inserted = cache.emplace(key, built);
    return std::make_unique<SyntheticProgram>(*inserted.first->second);
}

const std::vector<std::string> &
groupingColumn2()
{
    static const std::vector<std::string> col = {
        "swm256", "hydro2d", "su2cor", "tomcatv", "bdna"};
    return col;
}

const std::vector<std::string> &
groupingColumn3()
{
    static const std::vector<std::string> col = {"flo52", "arc2d"};
    return col;
}

const std::vector<std::string> &
groupingColumn4()
{
    static const std::vector<std::string> col = {"nasa7"};
    return col;
}

const std::vector<std::string> &
jobQueueOrder()
{
    // Section 7: "the order chosen is TF, SW, SU, TI, TO, A7, HY, NA,
    // SR, SD".
    static const std::vector<std::string> order = {
        "flo52", "swm256", "su2cor", "trfd", "tomcatv",
        "nasa7", "hydro2d", "bdna", "arc2d", "dyfesm"};
    return order;
}

} // namespace mtv
