/**
 * @file
 * Kernel DSL for the synthetic vectorized workloads.
 *
 * A KernelSpec describes one vectorized loop nest the way the Convex
 * compiler would have emitted it: a scalar preamble (address setup,
 * setvl/setvs), then a strip-mined loop where each strip executes the
 * vector body at VL = min(128, remaining) plus a few scalar overhead
 * instructions (address bumps and the backward branch).
 *
 * Bodies are written against virtual value slots; a bank-spreading
 * register allocator maps slots onto the 8 architectural vector
 * registers so that chained producer/consumer pairs land in different
 * register banks (mirroring what the paper says the Convex compiler
 * did to avoid read/write port conflicts).
 */

#ifndef MTV_WORKLOAD_KERNEL_HH
#define MTV_WORKLOAD_KERNEL_HH

#include <string>
#include <vector>

#include "src/common/random.hh"
#include "src/isa/instruction.hh"

namespace mtv
{

/** One step of a kernel body, operating on virtual value slots. */
struct VecStep
{
    Opcode op;      ///< VLoad/VStore/arith opcode
    int dst = -1;   ///< produced slot (or stored slot for stores)
    int srcA = -1;  ///< consumed slot, -1 if none
    int srcB = -1;  ///< consumed slot, -1 if none
};

/** A vectorized loop nest. */
struct KernelSpec
{
    std::string name;
    /** Elements processed per invocation (the loop trip count). */
    uint32_t tripCount = maxVectorLength;
    /** Vector instruction sequence executed once per strip. */
    std::vector<VecStep> body;
    /** Scalar instructions before the strip loop (address setup). */
    int scalarPreamble = 2;
    /** Scalar loop-overhead instructions per strip (>= 1; the last one
     *  is always the backward branch). */
    int scalarPerStrip = 2;
    /** Element stride of the memory accesses. */
    int32_t stride = 1;
    /** Fraction of memory steps emitted as gather/scatter. */
    double indexedFraction = 0.0;

    /** Number of strips per invocation. */
    uint32_t
    strips() const
    {
        return (tripCount + maxVectorLength - 1) / maxVectorLength;
    }

    /** Vector instructions emitted per invocation. */
    uint64_t
    vectorInstrsPerInvocation() const
    {
        return static_cast<uint64_t>(strips()) * body.size();
    }

    /** Vector element operations per invocation. */
    uint64_t
    vectorOpsPerInvocation() const
    {
        return static_cast<uint64_t>(tripCount) * body.size();
    }

    /** Scalar instructions emitted per invocation. */
    uint64_t
    scalarInstrsPerInvocation() const
    {
        return static_cast<uint64_t>(scalarPreamble) +
               static_cast<uint64_t>(strips()) * scalarPerStrip;
    }

    /** Average vector length of this kernel's instructions. */
    double
    averageVectorLength() const
    {
        return static_cast<double>(tripCount) / strips();
    }

    /** panic()s when the spec violates structural invariants. */
    void validate() const;
};

/**
 * Builder for kernel bodies. Slots are allocated round-robin over an
 * 8-entry window (values are overwritten oldest-first, as register
 * reuse in compiled code would).
 */
class BodyBuilder
{
  public:
    /** Emit a vector load producing a fresh slot; returns the slot. */
    int load();

    /** Emit an arithmetic step consuming a (and b); returns dst slot. */
    int arith(Opcode op, int a, int b = -1);

    /** Emit a store consuming slot @p a. */
    void store(int a);

    /** Finish and take the body. */
    std::vector<VecStep> take() { return std::move(steps_); }

  private:
    int allocSlot();

    std::vector<VecStep> steps_;
    int next_ = 0;
};

/**
 * Map a body slot to an architectural vector register, spreading
 * consecutive slots across the 4 register banks.
 */
uint8_t slotToVReg(int slot);

/**
 * Emit one full invocation of @p kernel into @p out.
 *
 * @param kernel      The loop nest to emit.
 * @param addrCursor  Monotonic per-program data cursor; advanced past
 *                    the touched region.
 * @param rng         Drives gather/scatter selection only.
 * @param out         Destination instruction buffer.
 */
void emitKernel(const KernelSpec &kernel, uint64_t &addrCursor, Rng &rng,
                std::vector<Instruction> &out);

/**
 * Emit one iteration of the canonical non-vectorized scalar loop
 * (7 instructions, 2 of them memory transactions — the 2-memory-ops-
 * per-6-8-instructions shape the paper describes for scalar regions).
 *
 * @param iteration   Loop iteration index (rotates load registers).
 * @param addrCursor  Data cursor, advanced by the accesses.
 * @param out         Destination instruction buffer.
 * @return The number of instructions emitted.
 */
int emitScalarIteration(uint64_t iteration, uint64_t &addrCursor,
                        std::vector<Instruction> &out);

/** Instructions per scalar-loop iteration (for budget planning). */
constexpr int scalarIterationLength = 7;

} // namespace mtv

#endif // MTV_WORKLOAD_KERNEL_HH
