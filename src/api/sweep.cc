#include "src/api/sweep.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/workload/suite.hh"

namespace mtv
{

std::vector<std::vector<std::string>>
groupingsFor(const std::string &x, int contexts)
{
    const std::string name = findProgram(x).name;  // canonicalize
    std::vector<std::vector<std::string>> groups;
    switch (contexts) {
      case 2:
        for (const auto &c2 : groupingColumn2())
            groups.push_back({name, c2});
        break;
      case 3:
        for (const auto &c2 : groupingColumn2())
            for (const auto &c3 : groupingColumn3())
                groups.push_back({name, c2, c3});
        break;
      case 4:
        for (const auto &c2 : groupingColumn2())
            for (const auto &c3 : groupingColumn3())
                for (const auto &c4 : groupingColumn4())
                    groups.push_back({name, c2, c3, c4});
        break;
      default:
        fatal("groupings are defined for 2..4 contexts, got %d",
              contexts);
    }
    return groups;
}

GroupAverages
averageOf(const SweepSlice &slice, const std::vector<RunResult> &results)
{
    MTV_ASSERT(slice.count > 0);
    MTV_ASSERT(slice.first + slice.count <= results.size());
    GroupAverages avg;
    avg.program = slice.label;
    avg.contexts = slice.contexts;
    for (size_t i = slice.first; i < slice.first + slice.count; ++i) {
        const RunResult &r = results[i];
        MTV_ASSERT(r.spec.mode == SpecMode::Group);
        avg.speedup += r.speedup;
        avg.mthOccupation += r.mthOccupation;
        avg.refOccupation += r.refOccupation;
        avg.mthVopc += r.mthVopc;
        avg.refVopc += r.refVopc;
        ++avg.runs;
    }
    const double n = avg.runs;
    avg.speedup /= n;
    avg.mthOccupation /= n;
    avg.refOccupation /= n;
    avg.mthVopc /= n;
    avg.refVopc /= n;
    return avg;
}

SweepBuilder::SweepBuilder(double scale)
    : scale_(scale)
{
    if (scale <= 0)
        fatal("sweep scale must be positive, got %g", scale);
}

SweepBuilder &
SweepBuilder::addSingle(const std::string &program,
                        const MachineParams &params,
                        uint64_t maxInstructions)
{
    specs_.push_back(
        RunSpec::single(program, params, scale_, maxInstructions));
    return *this;
}

SweepBuilder &
SweepBuilder::addReference(const std::string &program,
                           const MachineParams &params)
{
    specs_.push_back(RunSpec::reference(program, params, scale_));
    return *this;
}

SweepBuilder &
SweepBuilder::addGroup(const std::vector<std::string> &programs,
                       const MachineParams &params)
{
    specs_.push_back(RunSpec::group(programs, params, scale_));
    return *this;
}

SweepBuilder &
SweepBuilder::addJobQueue(const std::vector<std::string> &jobs,
                          const MachineParams &params)
{
    specs_.push_back(RunSpec::jobQueue(jobs, params, scale_));
    return *this;
}

SweepBuilder &
SweepBuilder::add(const RunSpec &spec)
{
    spec.validate();
    specs_.push_back(spec);
    return *this;
}

SweepBuilder &
SweepBuilder::beginSlice(const std::string &label, int contexts)
{
    if (sliceOpen_)
        fatal("beginSlice('%s') while slice '%s' is still open",
              label.c_str(), pending_.label.c_str());
    sliceOpen_ = true;
    pending_ = SweepSlice{};
    pending_.label = label;
    pending_.contexts = contexts;
    pending_.first = specs_.size();
    return *this;
}

SweepBuilder &
SweepBuilder::endSlice()
{
    if (!sliceOpen_)
        fatal("endSlice() without a matching beginSlice()");
    pending_.count = specs_.size() - pending_.first;
    if (pending_.count == 0)
        fatal("slice '%s' closed empty", pending_.label.c_str());
    slices_.push_back(pending_);
    sliceOpen_ = false;
    return *this;
}

SweepBuilder &
SweepBuilder::addGroupings(const std::string &program, int contexts,
                           const MachineParams &params)
{
    SweepSlice slice;
    slice.label = findProgram(program).name;
    slice.contexts = contexts;
    slice.first = specs_.size();
    for (const auto &group : groupingsFor(program, contexts))
        specs_.push_back(RunSpec::group(group, params, scale_));
    slice.count = specs_.size() - slice.first;
    slices_.push_back(std::move(slice));
    return *this;
}

SweepBuilder
suiteGroupingSweep(double scale)
{
    SweepBuilder sweep(scale);
    for (const auto &spec : benchmarkSuite())
        for (const int contexts : {2, 3, 4})
            sweep.addGroupings(spec.name, contexts,
                               MachineParams::multithreaded(contexts));
    return sweep;
}

const std::vector<int> &
sweepLatencies()
{
    static const std::vector<int> lats = {1, 20, 40, 50, 60, 80, 100};
    return lats;
}

const std::vector<int> &
extDecoupledLatencies()
{
    static const std::vector<int> lats = {1, 20, 50, 100};
    return lats;
}

const std::vector<SweepFamilyInfo> &
sweepFamilies()
{
    static const std::vector<SweepFamilyInfo> families = {
        {"suite-grouping",
         "every Table 2 grouping of every suite program at 2/3/4 "
         "contexts (Figures 6-8; 250 group runs)"},
        {"groupings",
         "every Table 2 grouping of one program at a given context "
         "count (one figure bar)"},
        {"latency",
         "a job-queue run per memory latency (Figure 10)"},
        {"ext-multiport",
         "Convex 1-port vs Cray 3-port machines crossed with context "
         "count and decode width (section 10)"},
        {"ext-renaming",
         "baseline vs infinite-pool vs bounded-pool vector register "
         "renaming across six machines (section 10)"},
        {"ext-decoupled",
         "baseline vs decoupled vs multithreaded vs both, per memory "
         "latency (the HPCA-2'96 comparison)"},
        {"ext-compare",
         "one job-queue run per extension design at a common context "
         "count (cross-design speedup table)"},
    };
    return families;
}

namespace
{

/** Shared job list of the ext-* families (the paper's queue order). */
const std::vector<std::string> &
extJobs(const SweepRequest &request)
{
    return request.jobs.empty() ? jobQueueOrder() : request.jobs;
}

/**
 * The section 10 multi-port study: the bench_ext_multiport grid —
 * Convex-style single unified port vs Cray-style 2ld/1st split,
 * crossed with context count and decode width (width <= contexts).
 * Every machine is its own single-spec slice, so the family is both
 * renderable row-by-row and design-comparable against slice 0
 * (convex-1ctx-w1).
 */
SweepBuilder
expandExtMultiport(const SweepRequest &request)
{
    const std::vector<std::string> &jobs = extJobs(request);
    SweepBuilder sweep(request.scale);
    for (const bool cray : {false, true}) {
        for (const int c : {1, 2, 3, 4}) {
            for (const int width : {1, 2}) {
                if (width > c)
                    continue;
                MachineParams p = MachineParams::multithreaded(c);
                p.decodeWidth = width;
                sweep.beginSlice(format("%s-%dctx-w%d",
                                        cray ? "cray" : "convex", c,
                                        width),
                                 c);
                sweep.add(
                    RunSpec::jobQueue(jobs, p, request.scale)
                        .withExtensions(cray ? 3 : 1, 0, 0));
                sweep.endSlice();
            }
        }
    }
    return sweep;
}

/**
 * The section 10 renaming study: the six bench_ext_renaming machines
 * (Convex/Cray x 1/2/4 contexts, Cray decoding min(2, contexts)
 * wide), as three design-parallel slices — no renaming, the infinite
 * physical pool (MachineParams::renaming) and the bounded 4-register
 * pool (the RunSpec renameDepth axis). Row i of every slice is the
 * same machine, so compareDesigns() yields the bench's speedup
 * column.
 */
SweepBuilder
expandExtRenaming(const SweepRequest &request)
{
    const std::vector<std::string> &jobs = extJobs(request);
    std::vector<std::pair<MachineParams, int>> machines;  // params, ports
    for (const bool cray : {false, true}) {
        for (const int c : {1, 2, 4}) {
            MachineParams p = MachineParams::multithreaded(c);
            if (cray)
                p.decodeWidth = std::min(2, c);
            machines.emplace_back(p, cray ? 3 : 1);
        }
    }
    SweepBuilder sweep(request.scale);
    sweep.beginSlice("baseline");
    for (const auto &[p, ports] : machines)
        sweep.add(RunSpec::jobQueue(jobs, p, request.scale)
                      .withExtensions(ports, 0, 0));
    sweep.endSlice();
    sweep.beginSlice("renaming");
    for (const auto &[p, ports] : machines) {
        MachineParams r = p;
        r.renaming = true;
        sweep.add(RunSpec::jobQueue(jobs, r, request.scale)
                      .withExtensions(ports, 0, 0));
    }
    sweep.endSlice();
    sweep.beginSlice("rename4");
    for (const auto &[p, ports] : machines)
        sweep.add(RunSpec::jobQueue(jobs, p, request.scale)
                      .withExtensions(ports, 4, 0));
    sweep.endSlice();
    return sweep;
}

/**
 * The HPCA-2'96 comparison of bench_ext_decoupled: baseline vs
 * decoupled vs multithreaded vs both, each design one slice swept
 * over the memory latencies (default extDecoupledLatencies()). Row i
 * of every slice is the same latency, so compareDesigns() gives the
 * per-latency speedup curves.
 */
SweepBuilder
expandExtDecoupled(const SweepRequest &request)
{
    const std::vector<std::string> &jobs = extJobs(request);
    const std::vector<int> &latencies = request.latencies.empty()
                                            ? extDecoupledLatencies()
                                            : request.latencies;
    for (const int lat : latencies) {
        if (lat <= 0)
            fatal("sweep latency must be positive, got %d", lat);
    }
    const int contexts = request.contexts == 0 ? 2 : request.contexts;
    struct Design
    {
        const char *label;
        MachineParams params;
        int decouple;
    };
    const std::vector<Design> designs = {
        {"baseline", MachineParams::reference(), 0},
        {"decoupled", MachineParams::reference(), 4},
        {"mth", MachineParams::multithreaded(contexts), 0},
        {"decoupled+mth", MachineParams::multithreaded(contexts), 4},
    };
    SweepBuilder sweep(request.scale);
    for (const Design &d : designs) {
        sweep.beginSlice(d.label, d.params.contexts);
        for (const int lat : latencies) {
            MachineParams p = d.params;
            p.memLatency = lat;
            sweep.add(RunSpec::jobQueue(jobs, p, request.scale)
                          .withExtensions(0, 0, d.decouple));
        }
        sweep.endSlice();
    }
    return sweep;
}

/**
 * The cross-design summary: one job-queue spec per extension design
 * at a common context count (default 4), every design its own
 * single-spec slice with the single-context reference machine as
 * slice 0 — compareDesigns() renders the paper-style speedup table.
 */
SweepBuilder
expandExtCompare(const SweepRequest &request)
{
    const std::vector<std::string> &jobs = extJobs(request);
    const int contexts = request.contexts == 0 ? 4 : request.contexts;
    const MachineParams mth = MachineParams::multithreaded(contexts);
    struct Design
    {
        std::string label;
        RunSpec spec;
    };
    const RunSpec mthSpec =
        RunSpec::jobQueue(jobs, mth, request.scale);
    const std::vector<Design> designs = {
        {"baseline", RunSpec::jobQueue(jobs, MachineParams::reference(),
                                       request.scale)},
        {format("mth%d", contexts), mthSpec},
        {format("mth%d+3port", contexts),
         mthSpec.withExtensions(3, 0, 0)},
        {format("mth%d+rename4", contexts),
         mthSpec.withExtensions(0, 4, 0)},
        {format("mth%d+decouple4", contexts),
         mthSpec.withExtensions(0, 0, 4)},
        {format("mth%d+all", contexts),
         mthSpec.withExtensions(3, 4, 4)},
    };
    SweepBuilder sweep(request.scale);
    for (const Design &d : designs) {
        sweep.beginSlice(d.label,
                         d.spec.effectiveParams().contexts);
        sweep.add(d.spec);
        sweep.endSlice();
    }
    return sweep;
}

} // namespace

std::vector<CompareRow>
compareDesigns(const std::vector<SweepSlice> &slices,
               const std::vector<RunResult> &results)
{
    if (slices.size() < 2)
        fatal("cross-design comparison needs at least two slices, "
              "got %zu",
              slices.size());
    const SweepSlice &base = slices[0];
    for (const SweepSlice &s : slices) {
        if (s.count != base.count) {
            fatal("slices are not design-parallel: '%s' has %zu rows "
                  "but baseline '%s' has %zu — this sweep is not "
                  "comparable",
                  s.label.c_str(), s.count, base.label.c_str(),
                  base.count);
        }
        if (s.first + s.count > results.size())
            fatal("slice '%s' runs past the result batch",
                  s.label.c_str());
    }
    std::vector<CompareRow> rows;
    rows.reserve(slices.size() * base.count);
    for (const SweepSlice &s : slices) {
        for (size_t i = 0; i < s.count; ++i) {
            const RunResult &r = results[s.first + i];
            const RunResult &b = results[base.first + i];
            const MachineParams p = r.spec.effectiveParams();
            CompareRow row;
            row.design = s.label;
            row.contexts = p.contexts;
            row.ports = p.loadPorts + p.storePorts;
            row.memLatency = p.memLatency;
            row.cycles = r.stats.cycles;
            row.speedup =
                r.stats.cycles == 0
                    ? 0
                    : static_cast<double>(b.stats.cycles) /
                          static_cast<double>(r.stats.cycles);
            row.occupation = r.stats.memPortOccupation();
            row.vopc = r.stats.vopc();
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

SweepBuilder
expandSweep(const SweepRequest &request)
{
    if (request.scale <= 0)
        fatal("sweep scale must be positive, got %g", request.scale);

    if (request.family == "suite-grouping")
        return suiteGroupingSweep(request.scale);

    if (request.family == "groupings") {
        if (request.program.empty())
            fatal("sweep family 'groupings' needs a program");
        if (request.contexts == 0)
            fatal("sweep family 'groupings' needs contexts (2..4)");
        SweepBuilder sweep(request.scale);
        sweep.addGroupings(
            request.program, request.contexts,
            MachineParams::multithreaded(request.contexts));
        return sweep;
    }

    if (request.family == "latency") {
        const std::vector<std::string> &jobs =
            request.jobs.empty() ? jobQueueOrder() : request.jobs;
        const std::vector<int> &latencies =
            request.latencies.empty() ? sweepLatencies()
                                      : request.latencies;
        const int contexts =
            request.contexts == 0 ? 4 : request.contexts;
        for (const int lat : latencies) {
            if (lat <= 0)
                fatal("sweep latency must be positive, got %d", lat);
        }
        SweepBuilder sweep(request.scale);
        sweep.addLatencySweep(jobs,
                              MachineParams::multithreaded(contexts),
                              latencies, "latency");
        return sweep;
    }

    if (request.family == "ext-multiport")
        return expandExtMultiport(request);
    if (request.family == "ext-renaming")
        return expandExtRenaming(request);
    if (request.family == "ext-decoupled")
        return expandExtDecoupled(request);
    if (request.family == "ext-compare")
        return expandExtCompare(request);

    fatal("unknown sweep family '%s'", request.family.c_str());
}

SweepBuilder &
SweepBuilder::addLatencySweep(const std::vector<std::string> &jobs,
                              const MachineParams &params,
                              const std::vector<int> &latencies,
                              const std::string &label)
{
    SweepSlice slice;
    slice.label = label;
    slice.contexts = params.contexts;
    slice.first = specs_.size();
    for (const int lat : latencies) {
        MachineParams p = params;
        p.memLatency = lat;
        specs_.push_back(RunSpec::jobQueue(jobs, p, scale_));
    }
    slice.count = specs_.size() - slice.first;
    slices_.push_back(std::move(slice));
    return *this;
}

} // namespace mtv
