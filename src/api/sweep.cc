#include "src/api/sweep.hh"

#include "src/common/logging.hh"
#include "src/workload/suite.hh"

namespace mtv
{

std::vector<std::vector<std::string>>
groupingsFor(const std::string &x, int contexts)
{
    const std::string name = findProgram(x).name;  // canonicalize
    std::vector<std::vector<std::string>> groups;
    switch (contexts) {
      case 2:
        for (const auto &c2 : groupingColumn2())
            groups.push_back({name, c2});
        break;
      case 3:
        for (const auto &c2 : groupingColumn2())
            for (const auto &c3 : groupingColumn3())
                groups.push_back({name, c2, c3});
        break;
      case 4:
        for (const auto &c2 : groupingColumn2())
            for (const auto &c3 : groupingColumn3())
                for (const auto &c4 : groupingColumn4())
                    groups.push_back({name, c2, c3, c4});
        break;
      default:
        fatal("groupings are defined for 2..4 contexts, got %d",
              contexts);
    }
    return groups;
}

GroupAverages
averageOf(const SweepSlice &slice, const std::vector<RunResult> &results)
{
    MTV_ASSERT(slice.count > 0);
    MTV_ASSERT(slice.first + slice.count <= results.size());
    GroupAverages avg;
    avg.program = slice.label;
    avg.contexts = slice.contexts;
    for (size_t i = slice.first; i < slice.first + slice.count; ++i) {
        const RunResult &r = results[i];
        MTV_ASSERT(r.spec.mode == SpecMode::Group);
        avg.speedup += r.speedup;
        avg.mthOccupation += r.mthOccupation;
        avg.refOccupation += r.refOccupation;
        avg.mthVopc += r.mthVopc;
        avg.refVopc += r.refVopc;
        ++avg.runs;
    }
    const double n = avg.runs;
    avg.speedup /= n;
    avg.mthOccupation /= n;
    avg.refOccupation /= n;
    avg.mthVopc /= n;
    avg.refVopc /= n;
    return avg;
}

SweepBuilder::SweepBuilder(double scale)
    : scale_(scale)
{
    if (scale <= 0)
        fatal("sweep scale must be positive, got %g", scale);
}

SweepBuilder &
SweepBuilder::addSingle(const std::string &program,
                        const MachineParams &params,
                        uint64_t maxInstructions)
{
    specs_.push_back(
        RunSpec::single(program, params, scale_, maxInstructions));
    return *this;
}

SweepBuilder &
SweepBuilder::addReference(const std::string &program,
                           const MachineParams &params)
{
    specs_.push_back(RunSpec::reference(program, params, scale_));
    return *this;
}

SweepBuilder &
SweepBuilder::addGroup(const std::vector<std::string> &programs,
                       const MachineParams &params)
{
    specs_.push_back(RunSpec::group(programs, params, scale_));
    return *this;
}

SweepBuilder &
SweepBuilder::addJobQueue(const std::vector<std::string> &jobs,
                          const MachineParams &params)
{
    specs_.push_back(RunSpec::jobQueue(jobs, params, scale_));
    return *this;
}

SweepBuilder &
SweepBuilder::add(const RunSpec &spec)
{
    spec.validate();
    specs_.push_back(spec);
    return *this;
}

SweepBuilder &
SweepBuilder::addGroupings(const std::string &program, int contexts,
                           const MachineParams &params)
{
    SweepSlice slice;
    slice.label = findProgram(program).name;
    slice.contexts = contexts;
    slice.first = specs_.size();
    for (const auto &group : groupingsFor(program, contexts))
        specs_.push_back(RunSpec::group(group, params, scale_));
    slice.count = specs_.size() - slice.first;
    slices_.push_back(std::move(slice));
    return *this;
}

SweepBuilder
suiteGroupingSweep(double scale)
{
    SweepBuilder sweep(scale);
    for (const auto &spec : benchmarkSuite())
        for (const int contexts : {2, 3, 4})
            sweep.addGroupings(spec.name, contexts,
                               MachineParams::multithreaded(contexts));
    return sweep;
}

const std::vector<int> &
sweepLatencies()
{
    static const std::vector<int> lats = {1, 20, 40, 50, 60, 80, 100};
    return lats;
}

const std::vector<SweepFamilyInfo> &
sweepFamilies()
{
    static const std::vector<SweepFamilyInfo> families = {
        {"suite-grouping",
         "every Table 2 grouping of every suite program at 2/3/4 "
         "contexts (Figures 6-8; 250 group runs)"},
        {"groupings",
         "every Table 2 grouping of one program at a given context "
         "count (one figure bar)"},
        {"latency",
         "a job-queue run per memory latency (Figure 10)"},
    };
    return families;
}

SweepBuilder
expandSweep(const SweepRequest &request)
{
    if (request.scale <= 0)
        fatal("sweep scale must be positive, got %g", request.scale);

    if (request.family == "suite-grouping")
        return suiteGroupingSweep(request.scale);

    if (request.family == "groupings") {
        if (request.program.empty())
            fatal("sweep family 'groupings' needs a program");
        if (request.contexts == 0)
            fatal("sweep family 'groupings' needs contexts (2..4)");
        SweepBuilder sweep(request.scale);
        sweep.addGroupings(
            request.program, request.contexts,
            MachineParams::multithreaded(request.contexts));
        return sweep;
    }

    if (request.family == "latency") {
        const std::vector<std::string> &jobs =
            request.jobs.empty() ? jobQueueOrder() : request.jobs;
        const std::vector<int> &latencies =
            request.latencies.empty() ? sweepLatencies()
                                      : request.latencies;
        const int contexts =
            request.contexts == 0 ? 4 : request.contexts;
        for (const int lat : latencies) {
            if (lat <= 0)
                fatal("sweep latency must be positive, got %d", lat);
        }
        SweepBuilder sweep(request.scale);
        sweep.addLatencySweep(jobs,
                              MachineParams::multithreaded(contexts),
                              latencies, "latency");
        return sweep;
    }

    fatal("unknown sweep family '%s'", request.family.c_str());
}

SweepBuilder &
SweepBuilder::addLatencySweep(const std::vector<std::string> &jobs,
                              const MachineParams &params,
                              const std::vector<int> &latencies,
                              const std::string &label)
{
    SweepSlice slice;
    slice.label = label;
    slice.contexts = params.contexts;
    slice.first = specs_.size();
    for (const int lat : latencies) {
        MachineParams p = params;
        p.memLatency = lat;
        specs_.push_back(RunSpec::jobQueue(jobs, p, scale_));
    }
    slice.count = specs_.size() - slice.first;
    slices_.push_back(std::move(slice));
    return *this;
}

} // namespace mtv
