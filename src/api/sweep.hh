/**
 * @file
 * SweepBuilder: expands the paper's parameter sweeps — latency lists,
 * context counts, the Table 2 grouping methodology — into RunSpec
 * batches, so a figure bench is "build sweep → engine.runAll →
 * render". The builder records where each logical slice (e.g. "all
 * groupings of tomcatv at 3 contexts") landed in the batch, so
 * results can be averaged back into figure data points.
 */

#ifndef MTV_API_SWEEP_HH
#define MTV_API_SWEEP_HH

#include <string>
#include <vector>

#include "src/api/engine.hh"
#include "src/api/run_spec.hh"

namespace mtv
{

/**
 * All groupings for program @p x at @p contexts threads, following
 * the paper's methodology: 5 pairs (x + column-2 entries), 10 triples
 * (x + column-2 + column-3) or 10 quadruples (x + column-2 +
 * column-3 + column-4). Each grouping's first element is x
 * (= thread 0).
 */
std::vector<std::vector<std::string>>
groupingsFor(const std::string &x, int contexts);

/** A contiguous range of batch entries forming one figure point. */
struct SweepSlice
{
    std::string label;    ///< e.g. the measured program
    int contexts = 0;     ///< context count of this slice (0 = n/a)
    size_t first = 0;     ///< index of the slice's first spec
    size_t count = 0;     ///< number of specs in the slice
};

/** Per-program figure data point: the average over its groupings. */
struct GroupAverages
{
    std::string program;
    int contexts = 0;
    int runs = 0;
    double speedup = 0;
    double mthOccupation = 0;
    double refOccupation = 0;
    double mthVopc = 0;
    double refVopc = 0;
};

/**
 * Average the group-mode results of @p slice — one bar of Figures 6,
 * 7 or 8. All slice entries must be group-mode results.
 */
GroupAverages averageOf(const SweepSlice &slice,
                        const std::vector<RunResult> &results);

class SweepBuilder;

/**
 * The grouping sweep behind Figures 6, 7 and 8 (and the service
 * acceptance check): every Table 2 grouping of every suite program at
 * 2, 3 and 4 contexts — 250 group runs. Consume the results through
 * the builder's slices; each slice carries its program and context
 * count, so rendering never depends on batch position.
 */
SweepBuilder suiteGroupingSweep(double scale = workloadDefaultScale);

/** Memory latencies swept in Figures 10-12. */
const std::vector<int> &sweepLatencies();

/** Memory latencies of the decoupled-architecture comparison. */
const std::vector<int> &extDecoupledLatencies();

/**
 * One row of a cross-design comparison table (the speedup-vs-baseline
 * rendering of the paper's Figure 6/12 style): design = the slice
 * label, speedup = baseline cycles / this design's cycles on the
 * matching row of slice 0.
 */
struct CompareRow
{
    std::string design;    ///< slice label of this design
    int contexts = 0;      ///< effective context count
    int ports = 0;         ///< effective memory ports (load + store)
    int memLatency = 0;    ///< effective memory latency
    uint64_t cycles = 0;   ///< total simulated cycles
    double speedup = 0;    ///< slice-0 row's cycles / this cycles
    double occupation = 0; ///< memory port occupation
    double vopc = 0;       ///< vector operations per cycle
};

/**
 * Pair every slice of a sweep row-wise against slice 0 (the baseline
 * design) and compute speedups: row i of slice s compares against row
 * i of slice 0. Every slice must have the same count — families whose
 * slices are not design-parallel (e.g. suite-grouping) are not
 * comparable, and fatal() says so. Rows come out slice-major, the
 * baseline first (speedup 1.0).
 */
std::vector<CompareRow>
compareDesigns(const std::vector<SweepSlice> &slices,
               const std::vector<RunResult> &results);

// ---------------------------------------------------------------------
// Named sweep families — the server-side expansion registry.
// ---------------------------------------------------------------------

/**
 * Parameters of one named sweep: what a protocol client sends
 * (~100 bytes) instead of a fully expanded RunSpec batch. The daemon
 * expands it through expandSweep(); which fields matter depends on
 * the family (unused ones are ignored). Deliberately JSON-free so the
 * registry lives in the api layer, below the service.
 */
struct SweepRequest
{
    /** Registered family name (see sweepFamilies()). */
    std::string family;
    /** Workload scale of every expanded spec. */
    double scale = workloadDefaultScale;
    /** "groupings": the measured program (thread 0). */
    std::string program;
    /** "groupings": 2..4, required (every slice is one program at
     *  one context count); "latency": context count of the
     *  multithreaded machine (0 = 4, the paper's largest);
     *  "ext-decoupled": contexts of the multithreaded designs
     *  (0 = 2); "ext-compare": contexts of the extended designs
     *  (0 = 4). */
    int contexts = 0;
    /** "latency"/"ext-*": the job list (empty = the paper's
     *  ten-benchmark job-queue order). */
    std::vector<std::string> jobs;
    /** "latency": memory latencies (empty = sweepLatencies());
     *  "ext-decoupled": latencies per design (empty =
     *  extDecoupledLatencies()). */
    std::vector<int> latencies;
};

/** One registered family: its name and what it expands to. */
struct SweepFamilyInfo
{
    std::string name;
    std::string description;
};

/**
 * The registered families:
 *   suite-grouping  every Table 2 grouping of every suite program at
 *                   2/3/4 contexts (Figures 6-8; 250 group runs)
 *   groupings       every Table 2 grouping of one program at a given
 *                   context count (one figure bar)
 *   latency         a job-queue run per memory latency (Figure 10)
 *   ext-multiport   Convex 1-port vs Cray 3-port machines crossed
 *                   with context count and decode width (section 10;
 *                   one single-spec slice per machine)
 *   ext-renaming    baseline vs infinite-pool vs bounded-pool vector
 *                   register renaming across six machines (section
 *                   10; one design-parallel slice per variant)
 *   ext-decoupled   baseline vs decoupled vs multithreaded vs both,
 *                   per memory latency (the HPCA-2'96 comparison;
 *                   one latency-parallel slice per design)
 *   ext-compare     one job-queue spec per extension design at a
 *                   common context count — the compareDesigns()
 *                   cross-design speedup table
 */
const std::vector<SweepFamilyInfo> &sweepFamilies();

/**
 * Expand @p request through its family into specs + slices.
 * fatal()s on an unknown family or missing/invalid parameters — the
 * daemon turns that into a protocol error for the offending client.
 */
SweepBuilder expandSweep(const SweepRequest &request);

/** Builds a RunSpec batch plus the slice map over it. */
class SweepBuilder
{
  public:
    explicit SweepBuilder(double scale = workloadDefaultScale);

    /** Workload scale every appended spec uses. */
    double scale() const { return scale_; }

    // ----- single points -----

    SweepBuilder &addSingle(const std::string &program,
                            const MachineParams &params,
                            uint64_t maxInstructions = 0);

    /** Single run on the reference machine derived from @p params. */
    SweepBuilder &addReference(const std::string &program,
                               const MachineParams &params);

    SweepBuilder &addGroup(const std::vector<std::string> &programs,
                           const MachineParams &params);

    SweepBuilder &addJobQueue(const std::vector<std::string> &jobs,
                              const MachineParams &params);

    /** Append an already-built spec verbatim. */
    SweepBuilder &add(const RunSpec &spec);

    // ----- explicit slices -----

    /**
     * Open a labelled slice: every spec appended before the matching
     * endSlice() belongs to it. For expansions that the canned
     * helpers below don't cover (e.g. the ext-* design slices).
     * Slices cannot nest.
     */
    SweepBuilder &beginSlice(const std::string &label, int contexts = 0);

    /** Close the slice opened by beginSlice() (must be non-empty). */
    SweepBuilder &endSlice();

    // ----- methodology expansions -----

    /**
     * One slice per call: every Table 2 grouping of @p program at
     * @p contexts threads on @p params (contexts is forced per
     * grouping size). averageOf() the slice to get the figure bar.
     */
    SweepBuilder &addGroupings(const std::string &program, int contexts,
                               const MachineParams &params);

    /**
     * Cross @p latencies with a job-queue run of @p jobs: one spec
     * per latency, params otherwise unchanged. Records one slice
     * labelled @p label spanning the swept specs in latency order.
     */
    SweepBuilder &addLatencySweep(const std::vector<std::string> &jobs,
                                  const MachineParams &params,
                                  const std::vector<int> &latencies,
                                  const std::string &label = "");

    // ----- results -----

    /** Number of specs appended so far (= index of the next spec). */
    size_t size() const { return specs_.size(); }

    /** The accumulated batch (builder keeps its slice map). */
    const std::vector<RunSpec> &specs() const { return specs_; }

    /** Move the batch out; the slice map survives for averaging. */
    std::vector<RunSpec> take() { return std::move(specs_); }

    /** Slices recorded by the expansion helpers, insertion order. */
    const std::vector<SweepSlice> &slices() const { return slices_; }

  private:
    double scale_;
    std::vector<RunSpec> specs_;
    std::vector<SweepSlice> slices_;
    bool sliceOpen_ = false;
    SweepSlice pending_;
};

} // namespace mtv

#endif // MTV_API_SWEEP_HH
