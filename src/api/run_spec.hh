/**
 * @file
 * RunSpec: a declarative, value-type description of one experiment
 * point — which machine, which programs, which of the paper's run
 * methodologies, at what workload scale. A RunSpec fully determines a
 * simulation's outcome (the simulator and workload generator are
 * deterministic), so its canonical string doubles as the cache key of
 * the shared result cache in ExperimentEngine.
 *
 * Specs are built with the factory functions (single/group/jobQueue/
 * reference); every factory canonicalizes program names through
 * findProgram() and validates the machine description, so an invalid
 * spec fails loudly at construction, not mid-batch.
 */

#ifndef MTV_API_RUN_SPEC_HH
#define MTV_API_RUN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/isa/machine_params.hh"
#include "src/workload/program.hh"

namespace mtv
{

/** Which of the paper's run methodologies a spec describes. */
enum class SpecMode : uint8_t
{
    /**
     * One program to completion on context 0 (the reference-machine
     * experiment). maxInstructions optionally truncates the run —
     * the F_i terms of the section 4.1 speedup accounting.
     */
    Single,
    /**
     * Section 4.1 group run: programs[0] is the measured program on
     * thread 0; companions restart until it completes. The machine
     * has exactly programs.size() contexts.
     */
    Group,
    /** Section 7 job queue: the job list served by all contexts. */
    JobQueue
};

/** Short name for canonical serialization and reports. */
const char *specModeName(SpecMode mode);

/** One declarative experiment point. */
struct RunSpec
{
    SpecMode mode = SpecMode::Single;
    MachineParams params;
    /** Canonical (full) suite program names; programs[0] = thread 0. */
    std::vector<std::string> programs;
    /** Workload scale the programs are instantiated at. */
    double scale = workloadDefaultScale;
    /** Single mode only: stop after this many dispatches (0 = none). */
    uint64_t maxInstructions = 0;

    // ----- factories (canonicalize + validate) -----

    /** Single run of @p program on @p params. */
    static RunSpec single(const std::string &program,
                          const MachineParams &params,
                          double scale = workloadDefaultScale,
                          uint64_t maxInstructions = 0);

    /**
     * Single run of @p program on the *reference machine derived
     * from* @p params (multithreading features stripped) — the C_i /
     * F_i terms of the speedup methodology.
     */
    static RunSpec reference(const std::string &program,
                             const MachineParams &params,
                             double scale = workloadDefaultScale,
                             uint64_t maxInstructions = 0);

    /**
     * Section 4.1 group run. @p params.contexts is overwritten with
     * programs.size().
     */
    static RunSpec group(const std::vector<std::string> &programs,
                         MachineParams params,
                         double scale = workloadDefaultScale);

    /** Section 7 job-queue run of @p jobs (in order) on @p params. */
    static RunSpec jobQueue(const std::vector<std::string> &jobs,
                            const MachineParams &params,
                            double scale = workloadDefaultScale);

    // ----- serialization -----

    /**
     * Canonical, lossless serialization:
     *   `mode=<m>;scale=<g>;max=<n>;programs=<a,b>;machine=<params>`
     * Two specs with equal canonical strings describe the same
     * experiment; the engine's result cache keys on this string.
     */
    std::string canonical() const;

    /** Inverse of canonical(); fatal()s on malformed input. */
    static RunSpec parse(const std::string &text);

    /** Stable 64-bit key: FNV-1a over canonical(). */
    uint64_t key() const;

    /** Re-check invariants; fatal()s on user error. */
    void validate() const;

    bool operator==(const RunSpec &other) const;
    bool operator!=(const RunSpec &other) const
    {
        return !(*this == other);
    }
};

/**
 * The reference (baseline) machine derived from @p params: one
 * context, single-width decode, no dual-scalar, baseline scheduling.
 * Everything else (latencies, ports, extensions) is preserved, so a
 * sweep's reference point tracks its multithreaded point.
 */
MachineParams referenceMachineOf(MachineParams params);

} // namespace mtv

#endif // MTV_API_RUN_SPEC_HH
