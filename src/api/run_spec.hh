/**
 * @file
 * RunSpec: a declarative, value-type description of one experiment
 * point — which machine, which programs, which of the paper's run
 * methodologies, at what workload scale. A RunSpec fully determines a
 * simulation's outcome (the simulator and workload generator are
 * deterministic), so its canonical string doubles as the cache key of
 * the shared result cache in ExperimentEngine.
 *
 * Specs are built with the factory functions (single/group/jobQueue/
 * reference); every factory canonicalizes program names through
 * findProgram() and validates the machine description, so an invalid
 * spec fails loudly at construction, not mid-batch.
 */

#ifndef MTV_API_RUN_SPEC_HH
#define MTV_API_RUN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/isa/machine_params.hh"
#include "src/workload/program.hh"

namespace mtv
{

/** Which of the paper's run methodologies a spec describes. */
enum class SpecMode : uint8_t
{
    /**
     * One program to completion on context 0 (the reference-machine
     * experiment). maxInstructions optionally truncates the run —
     * the F_i terms of the section 4.1 speedup accounting.
     */
    Single,
    /**
     * Section 4.1 group run: programs[0] is the measured program on
     * thread 0; companions restart until it completes. The machine
     * has exactly programs.size() contexts.
     */
    Group,
    /** Section 7 job queue: the job list served by all contexts. */
    JobQueue
};

/** Short name for canonical serialization and reports. */
const char *specModeName(SpecMode mode);

/** One declarative experiment point. */
struct RunSpec
{
    SpecMode mode = SpecMode::Single;
    MachineParams params;
    /** Canonical (full) suite program names; programs[0] = thread 0. */
    std::vector<std::string> programs;
    /** Workload scale the programs are instantiated at. */
    double scale = workloadDefaultScale;
    /** Single mode only: stop after this many dispatches (0 = none). */
    uint64_t maxInstructions = 0;

    // ----- extension axes (section 10 microarchitectures) -----
    //
    // Declarative overrides applied on top of `params` by
    // effectiveParams() — the sweep axes of the ext-* families. Each
    // defaults to 0 = "inherit from the machine description", so
    // every pre-existing spec is unchanged. They are part of the
    // canonical serialization (and therefore of cache keys and the
    // store schema): two specs differing in an axis never alias.

    /**
     * Memory ports (MemSystem swap): 0 = inherit; 1 = the Convex-
     * style single unified port (1 load port serving stores too);
     * N >= 2 = a Cray-style split of N-1 load ports + 1 store port
     * (N = 3 is the paper's section 10 machine). Range 0..5.
     */
    int memPorts = 0;
    /**
     * Bounded vector register renaming (DispatchUnit swap): 0 =
     * inherit; N > 0 = renaming with a pool of N spare physical
     * registers per context (MachineParams::renameDepth). Range 0..8.
     */
    int renameDepth = 0;
    /**
     * Decoupled slip window (dispatch queue sizing): 0 = inherit;
     * N > 0 overrides MachineParams::decoupleDepth. Range 0..16.
     */
    int decoupleDepth = 0;

    /**
     * The machine the kernels actually simulate: `params` with the
     * extension axes folded in (validated). Every kernel consumes
     * specs through this, so Stepped, Event and Batched honor the
     * axes identically.
     */
    MachineParams effectiveParams() const;

    // ----- factories (canonicalize + validate) -----

    /** Single run of @p program on @p params. */
    static RunSpec single(const std::string &program,
                          const MachineParams &params,
                          double scale = workloadDefaultScale,
                          uint64_t maxInstructions = 0);

    /**
     * Single run of @p program on the *reference machine derived
     * from* @p params (multithreading features stripped) — the C_i /
     * F_i terms of the speedup methodology.
     */
    static RunSpec reference(const std::string &program,
                             const MachineParams &params,
                             double scale = workloadDefaultScale,
                             uint64_t maxInstructions = 0);

    /**
     * Section 4.1 group run. @p params.contexts is overwritten with
     * programs.size().
     */
    static RunSpec group(const std::vector<std::string> &programs,
                         MachineParams params,
                         double scale = workloadDefaultScale);

    /** Section 7 job-queue run of @p jobs (in order) on @p params. */
    static RunSpec jobQueue(const std::vector<std::string> &jobs,
                            const MachineParams &params,
                            double scale = workloadDefaultScale);

    /** Copy of this spec with the extension axes set (validated). */
    RunSpec withExtensions(int memPorts, int renameDepth,
                           int decoupleDepth) const;

    // ----- serialization -----

    /**
     * Canonical, lossless serialization:
     *   `mode=<m>;scale=<g>;max=<n>;ports=<p>;rename=<r>;
     *    decouple=<d>;programs=<a,b>;machine=<params>`
     * (one line, 8 ';'-separated fields). Two specs with equal
     * canonical strings describe the same experiment; the engine's
     * result cache keys on this string. The pre-extension 5-field
     * format is NOT accepted by parse() — the store schema hash bump
     * already rejects old segments wholesale, so a stale string is a
     * caller bug worth a loud error.
     */
    std::string canonical() const;

    /** Inverse of canonical(); fatal()s on malformed input. */
    static RunSpec parse(const std::string &text);

    /** Stable 64-bit key: FNV-1a over canonical(). */
    uint64_t key() const;

    /** Re-check invariants; fatal()s on user error. */
    void validate() const;

    bool operator==(const RunSpec &other) const;
    bool operator!=(const RunSpec &other) const
    {
        return !(*this == other);
    }
};

/**
 * The reference (baseline) machine derived from @p params: one
 * context, single-width decode, no dual-scalar, baseline scheduling.
 * Everything else (latencies, ports, extensions) is preserved, so a
 * sweep's reference point tracks its multithreaded point.
 */
MachineParams referenceMachineOf(MachineParams params);

} // namespace mtv

#endif // MTV_API_RUN_SPEC_HH
