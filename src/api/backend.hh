/**
 * @file
 * ResultBackend: the pluggable persistence interface behind the
 * ExperimentEngine's in-memory cache. A backend maps a RunSpec's
 * canonical string to the finished SimStats of that (deterministic)
 * simulation; the engine consults it on every memory-cache miss and
 * writes every freshly simulated result through, so results survive
 * the process and are shared by later engines pointing at the same
 * backend.
 *
 * The interface lives in src/api (below src/store) so the engine
 * never depends on a concrete storage implementation; the disk-backed
 * ResultStore in src/store/result_store.hh is the production backend.
 *
 * Implementations must be thread-safe: engine workers call load() and
 * store() concurrently.
 */

#ifndef MTV_API_BACKEND_HH
#define MTV_API_BACKEND_HH

#include <memory>
#include <string>

#include "src/core/metrics.hh"

namespace mtv
{

/**
 * A load() hit plus, when the backend can supply it cheaply, the
 * record's canonical serializeSimStats() bytes. The blob is what a
 * wire=binary connection streams and what every digest folds over —
 * a backend that already holds the encoded bytes (the disk store
 * reads them verbatim off its segment) hands them out here so the
 * hot result path never re-encodes a stored point.
 */
struct StoredRecord
{
    std::shared_ptr<const SimStats> stats;  ///< null on a miss
    /** Canonical blob bytes, or null when the backend only has the
     *  decoded struct (callers then serialize on demand). */
    std::shared_ptr<const std::string> blob;
};

/** Persistent spec-keyed result storage behind an engine cache. */
class ResultBackend
{
  public:
    virtual ~ResultBackend() = default;

    /**
     * Result previously stored under @p key (a RunSpec::canonical()
     * string), or nullptr when unknown. The returned object is
     * immutable and shared; it stays valid independent of the
     * backend's lifetime.
     */
    virtual std::shared_ptr<const SimStats>
    load(const std::string &key) = 0;

    /**
     * load() plus the record's canonical blob when available. The
     * default forwards to load() with no blob; backends holding the
     * encoded bytes (ResultStore) override for the zero-copy path.
     */
    virtual StoredRecord loadRecord(const std::string &key)
    {
        return {load(key), nullptr};
    }

    /**
     * Persist @p stats under @p key. Storing an already-present key
     * is a no-op (results are deterministic, so the values are
     * necessarily identical).
     */
    virtual void store(const std::string &key,
                       const SimStats &stats) = 0;

    /** Number of distinct keys held. */
    virtual size_t size() const = 0;
};

} // namespace mtv

#endif // MTV_API_BACKEND_HH
