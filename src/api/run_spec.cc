#include "src/api/run_spec.hh"

#include <charconv>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/workload/suite.hh"

namespace mtv
{

namespace
{

/** Canonical full names for a list of name-or-abbreviation lookups. */
std::vector<std::string>
canonicalNames(const std::vector<std::string> &programs)
{
    std::vector<std::string> names;
    names.reserve(programs.size());
    for (const auto &p : programs)
        names.push_back(findProgram(p).name);
    return names;
}

/** Value part of a `key=value` token; fatal()s when key mismatches. */
std::string
expectField(const std::string &token, const char *key)
{
    const size_t eq = token.find('=');
    if (eq == std::string::npos || token.substr(0, eq) != key)
        fatal("malformed RunSpec field '%s' (expected '%s=...')",
              token.c_str(), key);
    return token.substr(eq + 1);
}

/** Strict double parse; fatal()s on empty or trailing garbage. */
double
parseDouble(const std::string &text, const char *what)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        fatal("malformed RunSpec %s '%s' (not a number)", what,
              text.c_str());
    return value;
}

/** Strict unsigned parse; fatal()s on empty or trailing garbage. */
uint64_t
parseUnsigned(const std::string &text, const char *what)
{
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        fatal("malformed RunSpec %s '%s' (not an unsigned integer)",
              what, text.c_str());
    return value;
}

} // namespace

const char *
specModeName(SpecMode mode)
{
    switch (mode) {
      case SpecMode::Single:
        return "single";
      case SpecMode::Group:
        return "group";
      case SpecMode::JobQueue:
        return "queue";
    }
    return "unknown";
}

MachineParams
referenceMachineOf(MachineParams params)
{
    params.contexts = 1;
    params.decodeWidth = 1;
    params.dualScalar = false;
    params.sched = SchedPolicy::UnfairLowest;
    return params;
}

RunSpec
RunSpec::single(const std::string &program, const MachineParams &params,
                double scale, uint64_t maxInstructions)
{
    RunSpec spec;
    spec.mode = SpecMode::Single;
    spec.params = params;
    spec.programs = canonicalNames({program});
    spec.scale = scale;
    spec.maxInstructions = maxInstructions;
    spec.validate();
    return spec;
}

RunSpec
RunSpec::reference(const std::string &program,
                   const MachineParams &params, double scale,
                   uint64_t maxInstructions)
{
    return single(program, referenceMachineOf(params), scale,
                  maxInstructions);
}

RunSpec
RunSpec::group(const std::vector<std::string> &programs,
               MachineParams params, double scale)
{
    params.contexts = static_cast<int>(programs.size());
    RunSpec spec;
    spec.mode = SpecMode::Group;
    spec.params = params;
    spec.programs = canonicalNames(programs);
    spec.scale = scale;
    spec.validate();
    return spec;
}

RunSpec
RunSpec::jobQueue(const std::vector<std::string> &jobs,
                  const MachineParams &params, double scale)
{
    RunSpec spec;
    spec.mode = SpecMode::JobQueue;
    spec.params = params;
    spec.programs = canonicalNames(jobs);
    spec.scale = scale;
    spec.validate();
    return spec;
}

RunSpec
RunSpec::withExtensions(int memPorts, int renameDepth,
                        int decoupleDepth) const
{
    RunSpec spec = *this;
    spec.memPorts = memPorts;
    spec.renameDepth = renameDepth;
    spec.decoupleDepth = decoupleDepth;
    spec.validate();
    return spec;
}

MachineParams
RunSpec::effectiveParams() const
{
    MachineParams p = params;
    if (memPorts == 1) {
        // The Convex-style unified port: loads and stores share it.
        p.loadPorts = 1;
        p.storePorts = 0;
    } else if (memPorts >= 2) {
        // Cray-style split: dedicated store path, the rest load.
        p.loadPorts = memPorts - 1;
        p.storePorts = 1;
    }
    if (renameDepth > 0)
        p.renameDepth = renameDepth;
    if (decoupleDepth > 0)
        p.decoupleDepth = decoupleDepth;
    p.validate();
    return p;
}

void
RunSpec::validate() const
{
    params.validate();
    if (memPorts < 0 || memPorts > 5)
        fatal("RunSpec memPorts must be in [0,5], got %d", memPorts);
    if (renameDepth < 0 || renameDepth > 8) {
        fatal("RunSpec renameDepth must be in [0,8], got %d",
              renameDepth);
    }
    if (decoupleDepth < 0 || decoupleDepth > 16) {
        fatal("RunSpec decoupleDepth must be in [0,16], got %d",
              decoupleDepth);
    }
    effectiveParams();  // overrides must compose into a valid machine
    if (scale <= 0)
        fatal("RunSpec scale must be positive, got %g", scale);
    if (programs.empty())
        fatal("RunSpec needs at least one program");
    for (const auto &name : programs)
        findProgram(name);  // fatal()s on unknown
    if (mode == SpecMode::Single && programs.size() != 1)
        fatal("single-mode RunSpec takes exactly one program, got %zu",
              programs.size());
    if (mode == SpecMode::Group &&
        static_cast<int>(programs.size()) != params.contexts) {
        fatal("group-mode RunSpec needs contexts == programs (%d vs "
              "%zu)",
              params.contexts, programs.size());
    }
    if (mode != SpecMode::Single && maxInstructions != 0)
        fatal("maxInstructions is only meaningful for single mode");
}

std::string
RunSpec::canonical() const
{
    // Appended field by field rather than through format(): this
    // string is the cache key, the store key, and the wire spec, so
    // it is rebuilt for every sweep point — and vsnprintf's
    // measure-then-write double pass dominated the hot result path.
    // std::to_chars matches %d/%llu digit for digit, and snprintf
    // keeps %.17g for the one float field, so the bytes are
    // unchanged.
    char buf[40];
    std::string out;
    out.reserve(768);
    out += "mode=";
    out += specModeName(mode);
    out += ";scale=";
    out.append(buf, static_cast<size_t>(std::snprintf(
                        buf, sizeof(buf), "%.17g", scale)));
    const auto appendNum = [&](const char *prefix, auto value) {
        out += prefix;
        const auto r = std::to_chars(buf, buf + sizeof(buf), value);
        out.append(buf, static_cast<size_t>(r.ptr - buf));
    };
    appendNum(";max=",
              static_cast<unsigned long long>(maxInstructions));
    appendNum(";ports=", memPorts);
    appendNum(";rename=", renameDepth);
    appendNum(";decouple=", decoupleDepth);
    out += ";programs=";
    bool first = true;
    for (const auto &name : programs) {
        if (!first)
            out += ',';
        first = false;
        out += name;
    }
    out += ";machine=";
    out += params.canonical();
    return out;
}

RunSpec
RunSpec::parse(const std::string &text)
{
    const std::vector<std::string> fields = split(text, ';');
    if (fields.size() != 8)
        fatal("malformed RunSpec '%s' (expected 8 ';'-separated "
              "fields, got %zu)",
              text.c_str(), fields.size());

    RunSpec spec;
    const std::string mode = expectField(fields[0], "mode");
    if (mode == "single")
        spec.mode = SpecMode::Single;
    else if (mode == "group")
        spec.mode = SpecMode::Group;
    else if (mode == "queue")
        spec.mode = SpecMode::JobQueue;
    else
        fatal("unknown RunSpec mode '%s'", mode.c_str());

    spec.scale = parseDouble(expectField(fields[1], "scale"), "scale");
    spec.maxInstructions =
        parseUnsigned(expectField(fields[2], "max"), "max");
    spec.memPorts = static_cast<int>(
        parseUnsigned(expectField(fields[3], "ports"), "ports"));
    spec.renameDepth = static_cast<int>(
        parseUnsigned(expectField(fields[4], "rename"), "rename"));
    spec.decoupleDepth = static_cast<int>(
        parseUnsigned(expectField(fields[5], "decouple"), "decouple"));
    spec.programs = canonicalNames(
        split(expectField(fields[6], "programs"), ','));
    spec.params =
        MachineParams::fromCanonical(expectField(fields[7], "machine"));
    spec.validate();
    return spec;
}

uint64_t
RunSpec::key() const
{
    // FNV-1a, 64-bit.
    uint64_t hash = 14695981039346656037ull;
    for (const char c : canonical()) {
        hash ^= static_cast<uint8_t>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

bool
RunSpec::operator==(const RunSpec &other) const
{
    return canonical() == other.canonical();
}

} // namespace mtv
