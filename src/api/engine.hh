/**
 * @file
 * ExperimentEngine: executes RunSpecs across a pool of worker
 * threads, one VectorSim per in-flight spec, with a thread-safe
 * memoized result cache shared by every batch and an optional
 * persistent ResultBackend behind it.
 *
 * Design notes:
 *  - Results come back in submission order, and every result is
 *    bit-identical regardless of worker count: each spec's simulation
 *    is self-contained (the simulator and workload generator are
 *    deterministic), and the cache/backend only change *whether* a
 *    run is recomputed, never its outcome.
 *  - Lookups go memory cache -> in-flight map -> backend -> simulate.
 *    The in-flight map keys pending runs by RunSpec::canonical()
 *    through a shared_future, so N concurrent requests for the same
 *    spec (N daemon clients, or the memoized reference runs of the
 *    section 4.1 accounting) cost one simulation — the rest wait on
 *    the first.
 *  - A backend (EngineOptions::backend, e.g. the disk-backed
 *    ResultStore) is consulted on every memory miss and written
 *    through on every completed simulation, so results persist
 *    across processes and warm-start later engines.
 *  - Group-mode specs embed the paper's full speedup methodology:
 *    the multithreaded run plus the C_i / F_i reference terms, all
 *    served through the cache.
 *  - By default cache entries are never evicted and references
 *    returned by statsFor()/programStats() stay valid for the
 *    engine's lifetime. Long-lived daemons bound the cache with
 *    EngineOptions::maxCacheEntries (LRU eviction; statsFor() is
 *    unavailable there) and/or clear() it wholesale.
 */

#ifndef MTV_API_ENGINE_HH
#define MTV_API_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/api/backend.hh"
#include "src/api/run_spec.hh"
#include "src/core/sim.hh"
#include "src/trace/analyzer.hh"

namespace mtv
{

/** Tuning knobs for an ExperimentEngine. */
struct EngineOptions
{
    EngineOptions() = default;
    /** Shorthand for "just set the worker count". */
    EngineOptions(int workers) : workers(workers) {}

    /** Worker threads; 0 = one per hardware thread (min 1). */
    int workers = 0;
    /**
     * Which simulation kernel executes the specs. The event-driven
     * kernel (the default) and the cycle-stepped reference produce
     * bit-identical SimStats (guarded by tests/test_golden.cc and
     * the CI kernel-parity job), so this knob exists purely for A/B
     * validation and for measuring the event kernel's speedup; it is
     * deliberately *not* part of RunSpec keys — results from either
     * kernel are interchangeable in the cache and the result store.
     */
    SimKernel kernel = SimKernel::Event;
    /**
     * Memoize finished runs in the shared cache (the default).
     * Disable for throughput benchmarking, where a cache hit would
     * measure a lookup instead of a simulation.
     */
    bool memoize = true;
    /**
     * Optional persistent result store consulted on memory-cache
     * misses and written through on every simulation (including the
     * truncated F_i reference runs the memory cache skips). Shared:
     * several engines may point at the same backend object.
     */
    std::shared_ptr<ResultBackend> backend;
    /**
     * Upper bound on completed entries in the memory cache
     * (0 = unbounded, the default). When set, the least recently
     * used result entry is evicted on overflow — pair with a backend
     * so evicted results stay a disk read away — the group-metric
     * and trace-stat side caches are flushed wholesale at the same
     * bound, and statsFor()/programStats() are unavailable (their
     * references could dangle).
     */
    size_t maxCacheEntries = 0;
};

/** One executed RunSpec. */
struct RunResult
{
    RunSpec spec;
    /** The run itself (the multithreaded run for group mode). */
    SimStats stats;
    /** True when the spec's own run was served from the memory cache
     *  (or coalesced onto an identical in-flight run). */
    bool cached = false;
    /** True when the spec's own run was served from the backend. */
    bool fromStore = false;

    // ----- group-mode extras (zeros for single/job-queue specs) -----
    double speedup = 0;       ///< section 4.1 reference-work formula
    double mthOccupation = 0; ///< memory-port occupation, mth machine
    double refOccupation = 0; ///< tuple run sequentially on reference
    double mthVopc = 0;       ///< vector ops/cycle, mth machine
    double refVopc = 0;       ///< tuple VOPC on the reference machine
};

/** Parallel experiment executor with a shared memoized result cache. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions options = {});
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /** Execute one spec on the calling thread (cache-served). */
    RunResult run(const RunSpec &spec);

    /**
     * Execute a batch across the worker pool. Results are returned in
     * submission order and are identical to running each spec alone.
     */
    std::vector<RunResult> runAll(const std::vector<RunSpec> &specs);

    /**
     * Progress hook of the streaming submit(): invoked once per
     * submitted spec, on the worker thread that completed it, right
     * before the future becomes ready. Hooks must be cheap and must
     * not throw (an error would unwind the worker loop) — they exist
     * so a caller juggling many in-flight batches (the mtvd sweep
     * protocol) can count completions without blocking on futures.
     * When the spec itself fails, the hook is skipped and the error
     * surfaces through the future.
     */
    using SubmitHook = std::function<void(const RunResult &)>;

    /**
     * Enqueue one spec on the worker pool and return a future for its
     * result — the streaming form of runAll(): submit a batch spec by
     * spec, then get() the futures in submission order to consume
     * results as they finish. Safe from any thread; on a worker
     * thread the spec executes inline (a queued task waiting on
     * queued tasks would deadlock the pool). An optional @p hook is
     * called on completion (see SubmitHook).
     */
    std::future<RunResult> submit(const RunSpec &spec,
                                  SubmitHook hook = nullptr);

    /**
     * Drop every task still waiting in the queue; tasks already
     * executing finish normally. Futures of dropped submit() calls
     * fail with std::future_error (broken_promise). For bounding
     * daemon shutdown: never call with a runAll() batch in flight —
     * its queued tasks reference the batch caller's stack and must
     * all run. Returns the number of tasks dropped.
     */
    size_t discardQueued();

    /**
     * Cached SimStats of @p spec's own run (no group accounting),
     * computed on the calling thread on a miss. The reference points
     * into the never-evicting cache and stays valid until clear() or
     * the engine's destruction. fatal()s on a memoize=false engine, a
     * cache-capped engine (entries evict, so there is nothing stable
     * to point into) or a truncated spec — use run() there.
     */
    const SimStats &statsFor(const RunSpec &spec);

    /**
     * Σ C_i of the speedup/job-queue methodology: the job list run
     * sequentially (once each) on the reference machine derived from
     * @p params. Parallelized over the pool and cached per program.
     */
    uint64_t sequentialReferenceCycles(
        const std::vector<std::string> &jobs,
        const MachineParams &params,
        double scale = workloadDefaultScale);

    /** Aggregate Table 3-style statistics of a program; memoized. */
    const TraceStats &programStats(const std::string &program,
                                   double scale = workloadDefaultScale);

    /** Paper's IDEAL bound for the combined work of @p jobs. */
    IdealBound idealTime(const std::vector<std::string> &jobs,
                         double scale = workloadDefaultScale,
                         int decodeWidth = 1);

    /**
     * Drop every completed memory-cache entry (result, group-metric
     * and trace-stat caches alike); in-flight runs are unaffected and
     * the backend keeps its copies. References previously returned by
     * statsFor()/programStats() are invalidated. For long-lived
     * daemons between batches.
     */
    void clear();

    /** Worker threads serving runAll(). */
    int workers() const { return workers_; }

    /** Completed runs held by the memory cache. */
    size_t cacheSize() const;

    /** Entry cap of the memory cache (0 = unbounded). */
    size_t maxCacheEntries() const { return maxCacheEntries_; }

    /** Simulation kernel executing this engine's specs. */
    SimKernel kernel() const { return kernel_; }

    /** The persistent backend, when one is attached. */
    const std::shared_ptr<ResultBackend> &backend() const
    {
        return backend_;
    }

    /** Lookups served by the memory cache or an in-flight run. */
    uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Cacheable lookups that missed the memory cache. */
    uint64_t cacheMisses() const { return cacheMisses_.load(); }

    /** Lookups (of any kind) served by the backend. */
    uint64_t storeHits() const { return storeHits_.load(); }

    /** Completed entries evicted to honor maxCacheEntries. */
    uint64_t cacheEvictions() const { return cacheEvictions_.load(); }

    /**
     * Runs that bypass the memory cache by design (truncated F_i
     * specs, or everything on a memoize=false engine) — counted
     * apart so the hit/miss ratio reflects only cacheable lookups.
     * The backend still serves/persists them.
     */
    uint64_t uncachedRuns() const { return uncachedRuns_.load(); }

  private:
    using CachedStats = std::shared_ptr<const SimStats>;

    /** Where a lookup was ultimately served from. */
    enum class Origin : uint8_t
    {
        Simulated,  ///< freshly simulated
        Cache,      ///< memory cache or coalesced in-flight run
        Store       ///< persistent backend
    };

    /** A completed cache entry and its LRU position. */
    struct CacheEntry
    {
        CachedStats stats;
        std::list<std::string>::iterator lruPos;
    };

    /** The section 4.1 accounting of one group run. */
    struct GroupMetrics
    {
        double speedup = 0;
        double mthOccupation = 0;
        double refOccupation = 0;
        double mthVopc = 0;
        double refVopc = 0;
    };

    /** Run @p spec's simulation (no cache, no group accounting). */
    SimStats simulate(const RunSpec &spec) const;

    /**
     * Cache/backend-served stats for @p spec; sets @p origin when
     * non-null. The returned pointer keeps the result alive
     * independent of cache eviction or clear().
     */
    CachedStats cachedStats(const RunSpec &spec, Origin *origin);

    /** Backend lookup (when attached) falling back to simulation +
     *  write-through; no memory-cache involvement. */
    CachedStats loadOrSimulate(const std::string &key,
                               const RunSpec &spec, Origin *origin);

    /** Insert a completed run, evicting LRU entries over the cap.
     *  Caller holds cacheMutex_. */
    void insertCompleted(const std::string &key,
                         const CachedStats &stats);

    /** Full execution incl. group accounting, on the calling thread. */
    RunResult execute(const RunSpec &spec);

    /**
     * Section 4.1 metrics of a group-mode run, memoized per spec so
     * a cache hit on the group stats does not re-pay the truncated
     * F_i reference simulations.
     */
    GroupMetrics groupMetrics(const RunSpec &spec,
                              const SimStats &mth);

    /** Compute the metrics (reference runs via the stats cache). */
    GroupMetrics computeGroupMetrics(const RunSpec &spec,
                                     const SimStats &mth);

    void workerLoop();

    int workers_ = 1;
    bool memoize_ = true;
    SimKernel kernel_ = SimKernel::Event;
    std::shared_ptr<ResultBackend> backend_;
    size_t maxCacheEntries_ = 0;
    std::vector<std::thread> pool_;
    std::deque<std::function<void()>> queue_;
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    bool stopping_ = false;

    mutable std::mutex cacheMutex_;
    /** Completed runs; bounded by maxCacheEntries_ when set. */
    std::unordered_map<std::string, CacheEntry> cache_;
    /** LRU order of cache_ keys; front = most recently used. */
    std::list<std::string> lru_;
    /** Pending runs, for coalescing concurrent identical requests. */
    std::unordered_map<std::string, std::shared_future<CachedStats>>
        inflight_;
    std::atomic<uint64_t> cacheHits_{0};
    std::atomic<uint64_t> cacheMisses_{0};
    std::atomic<uint64_t> storeHits_{0};
    std::atomic<uint64_t> cacheEvictions_{0};
    std::atomic<uint64_t> uncachedRuns_{0};

    std::mutex groupMutex_;
    std::unordered_map<std::string, std::shared_future<GroupMetrics>>
        groupCache_;

    std::mutex traceMutex_;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<
                           const TraceStats>>>
        traceCache_;
};

} // namespace mtv

#endif // MTV_API_ENGINE_HH
