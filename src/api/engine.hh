/**
 * @file
 * ExperimentEngine: executes RunSpecs across a pool of worker
 * threads, one VectorSim per in-flight spec, with a thread-safe
 * memoized result cache shared by every batch and an optional
 * persistent ResultBackend behind it.
 *
 * Design notes:
 *  - Results come back in submission order, and every result is
 *    bit-identical regardless of worker count: each spec's simulation
 *    is self-contained (the simulator and workload generator are
 *    deterministic), and the cache/backend only change *whether* a
 *    run is recomputed, never its outcome.
 *  - Lookups go memory cache -> in-flight map -> backend -> simulate.
 *    The in-flight map keys pending runs by RunSpec::canonical()
 *    through a shared_future, so N concurrent requests for the same
 *    spec (N daemon clients, or the memoized reference runs of the
 *    section 4.1 accounting) cost one simulation — the rest wait on
 *    the first.
 *  - A backend (EngineOptions::backend, e.g. the disk-backed
 *    ResultStore) is consulted on every memory miss and written
 *    through on every completed simulation, so results persist
 *    across processes and warm-start later engines.
 *  - Group-mode specs embed the paper's full speedup methodology:
 *    the multithreaded run plus the C_i / F_i reference terms, all
 *    served through the cache.
 *  - By default cache entries are never evicted and references
 *    returned by statsFor()/programStats() stay valid for the
 *    engine's lifetime. Long-lived daemons bound the cache with
 *    EngineOptions::maxCacheEntries (LRU eviction; statsFor() is
 *    unavailable there) and/or clear() it wholesale.
 *  - Multi-tenant scheduling: the queue is not one global FIFO but a
 *    set of lanes (openLane()/closeLane(), one per daemon connection;
 *    lane 0 serves runAll() and plain submit()) drained by weighted
 *    round-robin, so one tenant's 10k-point sweep cannot
 *    head-of-line-block another's interactive run.
 *  - Batched kernel coalescing: with EngineOptions::kernel ==
 *    SimKernel::Batched, queued specs sharing a sweep family
 *    (familySignature(): mode + scale + programs) coalesce into one
 *    lockstep runBatch() call of up to EngineOptions::batchWidth
 *    points — runAll() pre-groups its batch, submit() stages specs
 *    per (lane, family) with one drain task each. Results are split
 *    back per spec, so futures, hooks, cache keys, stored blobs and
 *    digests are exactly those of solo runs.
 *  - Request lifecycle: submit() takes an optional CancelToken.
 *    Cancellation is cooperative — checked when a worker dequeues the
 *    task and between the reference-term runs of the group
 *    accounting; a task already simulating finishes normally (and its
 *    result is cached/persisted: in-flight dedup keeps a spec alive
 *    while any non-cancelled batch wants it). A cancelled task never
 *    simulates and never writes through to the backend; its future
 *    fails with CancelledError.
 */

#ifndef MTV_API_ENGINE_HH
#define MTV_API_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <stdexcept>

#include "src/api/backend.hh"
#include "src/api/run_spec.hh"
#include "src/core/sim.hh"
#include "src/obs/metrics.hh"
#include "src/trace/analyzer.hh"

namespace mtv
{

/**
 * Cooperative cancellation flag shared by one batch's submit() calls.
 * cancel() is sticky, thread-safe and callable from any thread (the
 * daemon cancels from another client's connection, or from the write
 * path the moment a peer vanishes); workers observe it before
 * simulating and between the group accounting's reference runs.
 */
class CancelToken
{
  public:
    /** Request cancellation; idempotent. */
    void cancel() noexcept { cancelled_.store(true); }

    /** True once cancel() was called. */
    bool cancelled() const noexcept { return cancelled_.load(); }

  private:
    std::atomic<bool> cancelled_{false};
};

/** What the future of a cancelled submit() fails with. */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Identifies one scheduling lane (sub-queue) of the engine. Lane 0
 * always exists and serves runAll() and lane-less submit() calls;
 * further lanes come from openLane().
 */
using LaneId = uint64_t;

/** Tuning knobs for an ExperimentEngine. */
struct EngineOptions
{
    EngineOptions() = default;
    /** Shorthand for "just set the worker count". */
    EngineOptions(int workers) : workers(workers) {}

    /** Worker threads; 0 = one per hardware thread (min 1). */
    int workers = 0;
    /**
     * Which simulation kernel executes the specs. The event-driven
     * kernel (the default) and the cycle-stepped reference produce
     * bit-identical SimStats (guarded by tests/test_golden.cc and
     * the CI kernel-parity job), so this knob exists purely for A/B
     * validation and for measuring the event kernel's speedup; it is
     * deliberately *not* part of RunSpec keys — results from either
     * kernel are interchangeable in the cache and the result store.
     */
    SimKernel kernel = SimKernel::Event;
    /**
     * Memoize finished runs in the shared cache (the default).
     * Disable for throughput benchmarking, where a cache hit would
     * measure a lookup instead of a simulation.
     */
    bool memoize = true;
    /**
     * With kernel == SimKernel::Batched: how many queued specs of one
     * sweep family (same mode/scale/programs — see familySignature())
     * may coalesce into a single lockstep runBatch() call. 1 disables
     * coalescing; other kernels ignore the knob. Results are split
     * back into individual RunResults bit-identical to solo runs, so
     * cache keys, stored blobs and digests are unaffected.
     */
    int batchWidth = 16;
    /**
     * Optional persistent result store consulted on memory-cache
     * misses and written through on every simulation (including the
     * truncated F_i reference runs the memory cache skips). Shared:
     * several engines may point at the same backend object.
     */
    std::shared_ptr<ResultBackend> backend;
    /**
     * Upper bound on completed entries in the memory cache
     * (0 = unbounded, the default). When set, the least recently
     * used result entry is evicted on overflow — pair with a backend
     * so evicted results stay a disk read away — the group-metric
     * and trace-stat side caches are flushed wholesale at the same
     * bound, and statsFor()/programStats() are unavailable (their
     * references could dangle).
     */
    size_t maxCacheEntries = 0;
    /**
     * Optional canonical stats serializer (serializeSimStats). When
     * set, a memo-cache hit served by the submit() fast path memoizes
     * the run's canonical wire bytes alongside its stats: the first
     * hit pays the encode, every later hit hands the same shared
     * bytes out through RunResult::blob — the in-process analogue of
     * a backend hit's verbatim stored record. A std::function rather
     * than a direct call because the store layer owns the canonical
     * codec and links against the api, not the other way around.
     */
    std::function<std::string(const SimStats &)> canonicalSerializer;
};

/** One executed RunSpec. */
struct RunResult
{
    RunSpec spec;
    /** The run itself (the multithreaded run for group mode). */
    SimStats stats;
    /** True when the spec's own run was served from the memory cache
     *  (or coalesced onto an identical in-flight run). */
    bool cached = false;
    /** True when the spec's own run was served from the backend. */
    bool fromStore = false;
    /**
     * The canonical serializeSimStats() bytes of stats, when they
     * came for free: a backend hit hands the stored record's bytes
     * through verbatim (see ResultBackend::loadRecord()), and a
     * memo-cache hit served by the submit() fast path hands out the
     * entry's memoized bytes (EngineOptions::canonicalSerializer).
     * Null when the point was simulated, or cache-served on a path
     * that does not memoize bytes — callers serialize on demand
     * then. When set, the bytes are guaranteed equal to
     * serializeSimStats(stats) (the encoding is canonical).
     */
    std::shared_ptr<const std::string> blob;
    /**
     * spec.canonical(), when a producer already had it in hand: the
     * submit() fast path reuses its cache-lookup key, and the wire
     * decoders keep the received spec string. Empty otherwise.
     * Encoders use it to skip recanonicalizing on the hot result
     * path; when set it is guaranteed equal to spec.canonical().
     */
    std::string specCanonical;

    // ----- group-mode extras (zeros for single/job-queue specs) -----
    double speedup = 0;       ///< section 4.1 reference-work formula
    double mthOccupation = 0; ///< memory-port occupation, mth machine
    double refOccupation = 0; ///< tuple run sequentially on reference
    double mthVopc = 0;       ///< vector ops/cycle, mth machine
    double refVopc = 0;       ///< tuple VOPC on the reference machine
};

/** Parallel experiment executor with a shared memoized result cache. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions options = {});
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /** Execute one spec on the calling thread (cache-served). */
    RunResult run(const RunSpec &spec);

    /**
     * Execute a batch across the worker pool. Results are returned in
     * submission order and are identical to running each spec alone.
     */
    std::vector<RunResult> runAll(const std::vector<RunSpec> &specs);

    /**
     * Progress hook of the streaming submit(): invoked once per
     * submitted spec, on the thread that completed it (a pool worker,
     * or the submitting thread itself when a memo-cache hit settles
     * inline), right before the future becomes ready. Hooks must be cheap and must
     * not throw (an error would unwind the worker loop) — they exist
     * so a caller juggling many in-flight batches (the mtvd sweep
     * protocol) can count completions without blocking on futures.
     * When the spec itself fails, the hook is skipped and the error
     * surfaces through the future.
     */
    using SubmitHook = std::function<void(const RunResult &)>;

    /** The always-present lane runAll() and plain submit() use. */
    static constexpr LaneId defaultLane = 0;

    /**
     * Enqueue one spec on the worker pool and return a future for its
     * result — the streaming form of runAll(): submit a batch spec by
     * spec, then get() the futures in submission order to consume
     * results as they finish. Safe from any thread; on a worker
     * thread the spec executes inline (a queued task waiting on
     * queued tasks would deadlock the pool). An optional @p hook is
     * called on completion (see SubmitHook).
     *
     * @p token, when given, makes the task cancellable: a worker that
     * dequeues it after cancel() skips the simulation (and the
     * backend write-through) entirely and fails the future with
     * CancelledError; group-mode tasks also poll the token between
     * reference-term runs. @p lane routes the task to a scheduling
     * lane from openLane(); submitting to a lane that was already
     * closed abandons the task (broken_promise), since a closed lane
     * means its tenant is gone.
     */
    std::future<RunResult> submit(
        const RunSpec &spec, SubmitHook hook = nullptr,
        std::shared_ptr<CancelToken> token = nullptr,
        LaneId lane = defaultLane);

    /**
     * Add a scheduling lane with round-robin weight @p weight (>= 1:
     * tasks the lane may dequeue per rotation). One per tenant —
     * the daemon opens one per client connection.
     */
    LaneId openLane(int weight = 1);

    /**
     * Remove @p lane, dropping its queued tasks (their futures fail
     * with broken_promise; tasks already executing finish normally)
     * and counting them as discarded. Later submits to the id are
     * abandoned. Returns the number of tasks dropped. The default
     * lane cannot be closed.
     */
    size_t closeLane(LaneId lane);

    /**
     * Drop every task still waiting in any lane; tasks already
     * executing finish normally. Futures of dropped submit() calls
     * fail with std::future_error (broken_promise). For bounding
     * daemon shutdown: never call with a runAll() batch in flight —
     * its queued tasks reference the batch caller's stack and must
     * all run. Returns the number of tasks dropped.
     */
    size_t discardQueued();

    /**
     * Cached SimStats of @p spec's own run (no group accounting),
     * computed on the calling thread on a miss. The reference points
     * into the never-evicting cache and stays valid until clear() or
     * the engine's destruction. fatal()s on a memoize=false engine, a
     * cache-capped engine (entries evict, so there is nothing stable
     * to point into) or a truncated spec — use run() there.
     */
    const SimStats &statsFor(const RunSpec &spec);

    /**
     * Σ C_i of the speedup/job-queue methodology: the job list run
     * sequentially (once each) on the reference machine derived from
     * @p params. Parallelized over the pool and cached per program.
     */
    uint64_t sequentialReferenceCycles(
        const std::vector<std::string> &jobs,
        const MachineParams &params,
        double scale = workloadDefaultScale);

    /** Aggregate Table 3-style statistics of a program; memoized. */
    const TraceStats &programStats(const std::string &program,
                                   double scale = workloadDefaultScale);

    /** Paper's IDEAL bound for the combined work of @p jobs. */
    IdealBound idealTime(const std::vector<std::string> &jobs,
                         double scale = workloadDefaultScale,
                         int decodeWidth = 1);

    /**
     * Drop every completed memory-cache entry (result, group-metric
     * and trace-stat caches alike); in-flight runs are unaffected and
     * the backend keeps its copies. References previously returned by
     * statsFor()/programStats() are invalidated. For long-lived
     * daemons between batches.
     */
    void clear();

    /** Worker threads serving runAll(). */
    int workers() const { return workers_; }

    /** Completed runs held by the memory cache. */
    size_t cacheSize() const;

    /** Tasks waiting in the lanes right now (none executing yet). */
    size_t queueDepth() const;

    /**
     * Per-lane queued-task counts, in round-robin order (lane 0
     * first). For the daemon's `status` op; a snapshot, racing
     * submits/dequeues may change it immediately.
     */
    std::vector<std::pair<LaneId, size_t>> laneDepths() const;

    /** Tasks whose batch was cancelled before they ran: dequeued (or
     *  submitted) with a cancelled token and skipped without
     *  simulating or touching the backend. */
    uint64_t cancelledRuns() const { return cancelledRuns_.load(); }

    /** Queued tasks dropped by closeLane()/discardQueued() — work
     *  abandoned before a worker ever saw it. */
    uint64_t discardedTasks() const { return discardedTasks_.load(); }

    /** Entry cap of the memory cache (0 = unbounded). */
    size_t maxCacheEntries() const { return maxCacheEntries_; }

    /** Simulation kernel executing this engine's specs. */
    SimKernel kernel() const { return kernel_; }

    /**
     * The sweep-family key batching coalesces on: every spec with the
     * same signature shares one decoded program set, differing only in
     * machine parameters (and fetch budget) — exactly the shape one
     * lockstep runBatch() call accepts.
     */
    static std::string familySignature(const RunSpec &spec);

    /** Batch width this engine coalesces to (1 = no coalescing). */
    size_t batchWidth() const { return batchWidth_; }

    /** Lockstep batches this engine has executed. */
    uint64_t batchesExecuted() const { return batchesExecuted_.load(); }

    /** Points simulated inside those batches (not cache-served). */
    uint64_t batchedPoints() const { return batchedPoints_.load(); }

    /** The persistent backend, when one is attached. */
    const std::shared_ptr<ResultBackend> &backend() const
    {
        return backend_;
    }

    /** Lookups served by the memory cache or an in-flight run. */
    uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Cacheable lookups that missed the memory cache. */
    uint64_t cacheMisses() const { return cacheMisses_.load(); }

    /** Lookups (of any kind) served by the backend. */
    uint64_t storeHits() const { return storeHits_.load(); }

    /** Completed entries evicted to honor maxCacheEntries. */
    uint64_t cacheEvictions() const { return cacheEvictions_.load(); }

    /**
     * Runs that bypass the memory cache by design (truncated F_i
     * specs, or everything on a memoize=false engine) — counted
     * apart so the hit/miss ratio reflects only cacheable lookups.
     * The backend still serves/persists them.
     */
    uint64_t uncachedRuns() const { return uncachedRuns_.load(); }

  private:
    using CachedStats = std::shared_ptr<const SimStats>;

    /** Where a lookup was ultimately served from. */
    enum class Origin : uint8_t
    {
        Simulated,  ///< freshly simulated
        Cache,      ///< memory cache or coalesced in-flight run
        Store       ///< persistent backend
    };

    /** A completed cache entry and its LRU position. */
    struct CacheEntry
    {
        CachedStats stats;
        std::list<std::string>::iterator lruPos;
        /** Canonical serializeSimStats() bytes of stats, memoized by
         *  the submit() fast path on first streamed hit (null until
         *  then, or when no canonicalSerializer is configured). */
        std::shared_ptr<const std::string> blob;
    };

    /** The section 4.1 accounting of one group run. */
    struct GroupMetrics
    {
        double speedup = 0;
        double mthOccupation = 0;
        double refOccupation = 0;
        double mthVopc = 0;
        double refVopc = 0;
    };

    /** One scheduling lane: a FIFO of tasks plus its WRR weight. */
    struct Lane
    {
        std::deque<std::function<void()>> tasks;
        int weight = 1;
    };

    /** A submit() parked for coalescing (batched engines only). */
    struct StagedSpec
    {
        RunSpec spec;
        SubmitHook hook;
        std::shared_ptr<CancelToken> token;
        /** Dropping the promise (lane close / discard) breaks the
         *  caller's future, like dropping a queued task does. */
        std::shared_ptr<std::promise<RunResult>> promise;
    };

    /** Per-spec outcome of executeBatch(): exactly one side is set. */
    struct BatchOutcome
    {
        RunResult result;
        std::exception_ptr error;
    };

    /** Run @p spec's simulation (no cache, no group accounting). */
    SimStats simulate(const RunSpec &spec) const;

    /**
     * Cache/backend-served stats for @p spec; sets @p origin when
     * non-null. The returned pointer keeps the result alive
     * independent of cache eviction or clear(). @p blobOut, when
     * non-null, receives the backend record's canonical bytes on a
     * direct store hit (RunResult::blob) and is left untouched
     * otherwise.
     */
    CachedStats cachedStats(
        const RunSpec &spec, Origin *origin,
        std::shared_ptr<const std::string> *blobOut = nullptr);

    /** Backend lookup (when attached) falling back to simulation +
     *  write-through; no memory-cache involvement. */
    CachedStats loadOrSimulate(
        const std::string &key, const RunSpec &spec, Origin *origin,
        std::shared_ptr<const std::string> *blobOut = nullptr);

    /** Insert a completed run, evicting LRU entries over the cap.
     *  Caller holds cacheMutex_. */
    void insertCompleted(const std::string &key,
                         const CachedStats &stats);

    /** Full execution incl. group accounting, on the calling thread.
     *  @p token (may be null) is polled between reference runs. */
    RunResult execute(const RunSpec &spec,
                      const CancelToken *token = nullptr);

    /**
     * Execute up to batchWidth_ specs of one sweep family as a single
     * lockstep runBatch() call, splitting the results back into
     * per-spec outcomes. Every per-spec concern of execute() —
     * cancellation, cache/in-flight/backend lookups, write-through,
     * group accounting — is honored point by point; only specs that
     * would have simulated anyway enter the batch. Never throws:
     * per-spec failures (CancelledError, a wedged machine's SimError)
     * land in the outcome's error slot.
     */
    std::vector<BatchOutcome> executeBatch(
        const std::vector<RunSpec> &specs,
        const std::vector<const CancelToken *> &tokens);

    /** Staging key of @p lane and @p spec's family. */
    static std::string stageKey(LaneId lane, const RunSpec &spec);

    /**
     * Pop up to batchWidth_ staged specs for @p key and execute them
     * as one batch, settling each one's promise (and hook). A no-op
     * when an earlier drain already emptied the bucket.
     */
    void drainStaged(const std::string &key);

    /**
     * Section 4.1 metrics of a group-mode run, memoized per spec so
     * a cache hit on the group stats does not re-pay the truncated
     * F_i reference simulations.
     */
    GroupMetrics groupMetrics(const RunSpec &spec, const SimStats &mth,
                              const CancelToken *token);

    /** Compute the metrics (reference runs via the stats cache). */
    GroupMetrics computeGroupMetrics(const RunSpec &spec,
                                     const SimStats &mth,
                                     const CancelToken *token);

    void workerLoop();

    /** Pop the next task in weighted round-robin lane order. Caller
     *  holds queueMutex_ and has checked queuedTasks_ > 0. */
    std::function<void()> popTaskLocked();

    /** Move the WRR cursor to the next lane and refill its budget.
     *  Caller holds queueMutex_. */
    void advanceLaneLocked();

    int workers_ = 1;
    bool memoize_ = true;
    SimKernel kernel_ = SimKernel::Event;
    size_t batchWidth_ = 1;
    std::shared_ptr<ResultBackend> backend_;
    size_t maxCacheEntries_ = 0;
    /** EngineOptions::canonicalSerializer (may be empty). */
    std::function<std::string(const SimStats &)> canonicalSerializer_;
    std::vector<std::thread> pool_;
    /** Scheduling lanes by id; lanes_[defaultLane] always exists. */
    std::unordered_map<LaneId, Lane> lanes_;
    /** Lane rotation order for the WRR scan. */
    std::vector<LaneId> laneOrder_;
    /** Index into laneOrder_ of the lane currently being drained. */
    size_t laneCursor_ = 0;
    /** Tasks the cursor lane may still dequeue this rotation. */
    int laneBudget_ = 1;
    /** Tasks waiting across all lanes (workers wait on this). */
    size_t queuedTasks_ = 0;
    LaneId nextLaneId_ = 1;
    /** Submits parked for coalescing, keyed by stageKey(). Guarded by
     *  queueMutex_ (staging and task queueing commit together). */
    std::unordered_map<std::string, std::deque<StagedSpec>> staged_;
    mutable std::mutex queueMutex_;
    std::condition_variable queueCv_;
    bool stopping_ = false;
    std::atomic<uint64_t> cancelledRuns_{0};
    std::atomic<uint64_t> discardedTasks_{0};
    std::atomic<uint64_t> batchesExecuted_{0};
    std::atomic<uint64_t> batchedPoints_{0};

    mutable std::mutex cacheMutex_;
    /** Completed runs; bounded by maxCacheEntries_ when set. */
    std::unordered_map<std::string, CacheEntry> cache_;
    /** LRU order of cache_ keys; front = most recently used. */
    std::list<std::string> lru_;
    /** Pending runs, for coalescing concurrent identical requests. */
    std::unordered_map<std::string, std::shared_future<CachedStats>>
        inflight_;
    std::atomic<uint64_t> cacheHits_{0};
    std::atomic<uint64_t> cacheMisses_{0};
    std::atomic<uint64_t> storeHits_{0};
    std::atomic<uint64_t> cacheEvictions_{0};
    std::atomic<uint64_t> uncachedRuns_{0};

    std::mutex groupMutex_;
    std::unordered_map<std::string, std::shared_future<GroupMetrics>>
        groupCache_;

    std::mutex traceMutex_;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<
                           const TraceStats>>>
        traceCache_;

    // Process-wide observability handles (src/obs/metrics.hh).
    // Get-or-create by name, so every engine in the process feeds the
    // same series and the exported totals aggregate naturally; the
    // per-engine accessors above stay the per-instance view.
    Gauge *obsQueueDepth_ = nullptr;
    Histogram *obsLaneWaitUs_ = nullptr;
    Counter *obsPointsCompleted_ = nullptr;
    Counter *obsPointsSimulated_ = nullptr;
    Counter *obsCacheHits_ = nullptr;
    Counter *obsCacheMisses_ = nullptr;
    Counter *obsStoreHits_ = nullptr;
    Counter *obsCacheEvictions_ = nullptr;
    Counter *obsUncachedRuns_ = nullptr;
    Counter *obsCancelledRuns_ = nullptr;
    Counter *obsDiscardedTasks_ = nullptr;
    Counter *obsBatches_ = nullptr;
    Counter *obsBatchedPoints_ = nullptr;
    Histogram *obsBatchWidth_ = nullptr;
};

} // namespace mtv

#endif // MTV_API_ENGINE_HH
