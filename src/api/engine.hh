/**
 * @file
 * ExperimentEngine: executes RunSpecs across a pool of worker
 * threads, one VectorSim per in-flight spec, with a thread-safe
 * memoized result cache shared by every batch.
 *
 * Design notes:
 *  - Results come back in submission order, and every result is
 *    bit-identical regardless of worker count: each spec's simulation
 *    is self-contained (the simulator and workload generator are
 *    deterministic), and the cache only changes *whether* a run is
 *    recomputed, never its outcome.
 *  - The cache maps RunSpec::canonical() to the finished SimStats via
 *    a shared_future, so two workers needing the same run (typically
 *    a memoized reference run of the section 4.1 accounting) never
 *    compute it twice — the second waits on the first.
 *  - Group-mode specs embed the paper's full speedup methodology:
 *    the multithreaded run plus the C_i / F_i reference terms, all
 *    served through the cache.
 *  - Cache entries are never evicted; references returned by
 *    statsFor()/programStats() stay valid for the engine's lifetime.
 */

#ifndef MTV_API_ENGINE_HH
#define MTV_API_ENGINE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/api/run_spec.hh"
#include "src/core/sim.hh"
#include "src/trace/analyzer.hh"

namespace mtv
{

/** Tuning knobs for an ExperimentEngine. */
struct EngineOptions
{
    /** Worker threads; 0 = one per hardware thread (min 1). */
    int workers = 0;
    /**
     * Memoize finished runs in the shared cache (the default).
     * Disable for throughput benchmarking, where a cache hit would
     * measure a lookup instead of a simulation.
     */
    bool memoize = true;
};

/** One executed RunSpec. */
struct RunResult
{
    RunSpec spec;
    /** The run itself (the multithreaded run for group mode). */
    SimStats stats;
    /** True when the spec's own run was served from the cache. */
    bool cached = false;

    // ----- group-mode extras (zeros for single/job-queue specs) -----
    double speedup = 0;       ///< section 4.1 reference-work formula
    double mthOccupation = 0; ///< memory-port occupation, mth machine
    double refOccupation = 0; ///< tuple run sequentially on reference
    double mthVopc = 0;       ///< vector ops/cycle, mth machine
    double refVopc = 0;       ///< tuple VOPC on the reference machine
};

/** Parallel experiment executor with a shared memoized result cache. */
class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions options = {});
    ~ExperimentEngine();

    ExperimentEngine(const ExperimentEngine &) = delete;
    ExperimentEngine &operator=(const ExperimentEngine &) = delete;

    /** Execute one spec on the calling thread (cache-served). */
    RunResult run(const RunSpec &spec);

    /**
     * Execute a batch across the worker pool. Results are returned in
     * submission order and are identical to running each spec alone.
     */
    std::vector<RunResult> runAll(const std::vector<RunSpec> &specs);

    /**
     * Cached SimStats of @p spec's own run (no group accounting),
     * computed on the calling thread on a miss. The reference points
     * into the never-evicting cache and stays valid for the engine's
     * lifetime. fatal()s on a memoize=false engine or a truncated
     * spec (neither is cached; there is nothing stable to point
     * into) — use run() there.
     */
    const SimStats &statsFor(const RunSpec &spec);

    /**
     * Σ C_i of the speedup/job-queue methodology: the job list run
     * sequentially (once each) on the reference machine derived from
     * @p params. Parallelized over the pool and cached per program.
     */
    uint64_t sequentialReferenceCycles(
        const std::vector<std::string> &jobs,
        const MachineParams &params,
        double scale = workloadDefaultScale);

    /** Aggregate Table 3-style statistics of a program; memoized. */
    const TraceStats &programStats(const std::string &program,
                                   double scale = workloadDefaultScale);

    /** Paper's IDEAL bound for the combined work of @p jobs. */
    IdealBound idealTime(const std::vector<std::string> &jobs,
                         double scale = workloadDefaultScale,
                         int decodeWidth = 1);

    /** Worker threads serving runAll(). */
    int workers() const { return workers_; }

    /** Completed runs held by the shared cache. */
    size_t cacheSize() const;

    /** Cache lookups served without a simulation. */
    uint64_t cacheHits() const { return cacheHits_.load(); }

    /** Cacheable lookups that had to simulate. */
    uint64_t cacheMisses() const { return cacheMisses_.load(); }

    /**
     * Runs that are uncacheable by design (truncated F_i specs, or
     * everything on a memoize=false engine) — counted apart so the
     * hit/miss ratio reflects only cacheable lookups.
     */
    uint64_t uncachedRuns() const { return uncachedRuns_.load(); }

  private:
    using CachedStats = std::shared_ptr<const SimStats>;

    /** The section 4.1 accounting of one group run. */
    struct GroupMetrics
    {
        double speedup = 0;
        double mthOccupation = 0;
        double refOccupation = 0;
        double mthVopc = 0;
        double refVopc = 0;
    };

    /** Run @p spec's simulation (no cache, no group accounting). */
    SimStats simulate(const RunSpec &spec) const;

    /**
     * Cache-served stats for @p spec; sets @p hit when non-null.
     * The returned pointer keeps the result alive even on a
     * memoize=false engine (where nothing else owns it).
     */
    CachedStats cachedStats(const RunSpec &spec, bool *hit);

    /** Full execution incl. group accounting, on the calling thread. */
    RunResult execute(const RunSpec &spec);

    /**
     * Section 4.1 metrics of a group-mode run, memoized per spec so
     * a cache hit on the group stats does not re-pay the (uncached)
     * truncated F_i reference simulations.
     */
    GroupMetrics groupMetrics(const RunSpec &spec,
                              const SimStats &mth);

    /** Compute the metrics (reference runs via the stats cache). */
    GroupMetrics computeGroupMetrics(const RunSpec &spec,
                                     const SimStats &mth);

    void workerLoop();

    int workers_ = 1;
    bool memoize_ = true;
    std::vector<std::thread> pool_;
    std::deque<std::function<void()>> queue_;
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    bool stopping_ = false;

    mutable std::mutex cacheMutex_;
    std::unordered_map<std::string, std::shared_future<CachedStats>>
        cache_;
    std::atomic<uint64_t> cacheHits_{0};
    std::atomic<uint64_t> cacheMisses_{0};
    std::atomic<uint64_t> uncachedRuns_{0};

    std::mutex groupMutex_;
    std::unordered_map<std::string, std::shared_future<GroupMetrics>>
        groupCache_;

    std::mutex traceMutex_;
    std::unordered_map<std::string,
                       std::shared_future<std::shared_ptr<
                           const TraceStats>>>
        traceCache_;
};

} // namespace mtv

#endif // MTV_API_ENGINE_HH
