#include "src/api/engine.hh"

#include <algorithm>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"
#include "src/core/batch_kernel.hh"
#include "src/workload/suite.hh"

namespace mtv
{

namespace
{

/**
 * True on engine worker threads. runAll() from inside a worker task
 * would deadlock the pool (the task waits on tasks behind it in the
 * queue), so nested batches degrade to inline execution instead.
 */
thread_local bool insideWorker = false;

} // namespace

ExperimentEngine::ExperimentEngine(EngineOptions options)
{
    if (options.workers < 0)
        fatal("engine worker count must be >= 0, got %d",
              options.workers);
    if (options.batchWidth < 1)
        fatal("engine batch width must be >= 1, got %d",
              options.batchWidth);
    memoize_ = options.memoize;
    kernel_ = options.kernel;
    // Coalescing only pays on the lockstep kernel; other kernels run
    // one spec per task regardless of the knob.
    batchWidth_ = kernel_ == SimKernel::Batched
                      ? static_cast<size_t>(options.batchWidth)
                      : 1;
    backend_ = std::move(options.backend);
    maxCacheEntries_ = options.maxCacheEntries;
    canonicalSerializer_ = std::move(options.canonicalSerializer);
    workers_ = options.workers;
    if (workers_ == 0) {
        workers_ = static_cast<int>(
            std::max(1u, std::thread::hardware_concurrency()));
    }
    lanes_.emplace(defaultLane, Lane());
    laneOrder_.push_back(defaultLane);

    MetricsRegistry &reg = MetricsRegistry::instance();
    obsQueueDepth_ = reg.gauge("engine_queue_depth");
    obsLaneWaitUs_ = reg.histogram("engine_lane_wait_us");
    obsPointsCompleted_ = reg.counter("engine_points_completed_total");
    obsPointsSimulated_ = reg.counter("engine_points_simulated_total");
    obsCacheHits_ = reg.counter("engine_cache_hits_total");
    obsCacheMisses_ = reg.counter("engine_cache_misses_total");
    obsStoreHits_ = reg.counter("engine_store_hits_total");
    obsCacheEvictions_ = reg.counter("engine_cache_evictions_total");
    obsUncachedRuns_ = reg.counter("engine_uncached_runs_total");
    obsCancelledRuns_ = reg.counter("engine_cancelled_runs_total");
    obsDiscardedTasks_ = reg.counter("engine_discarded_tasks_total");
    obsBatches_ = reg.counter("engine_batches_total");
    obsBatchedPoints_ = reg.counter("engine_batched_points_total");
    obsBatchWidth_ = reg.histogram("engine_batch_width");

    pool_.reserve(workers_);
    for (int i = 0; i < workers_; ++i)
        pool_.emplace_back([this] { workerLoop(); });
}

ExperimentEngine::~ExperimentEngine()
{
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        stopping_ = true;
    }
    queueCv_.notify_all();
    for (auto &worker : pool_)
        worker.join();
}

void
ExperimentEngine::advanceLaneLocked()
{
    laneCursor_ = (laneCursor_ + 1) % laneOrder_.size();
    laneBudget_ = lanes_[laneOrder_[laneCursor_]].weight;
}

std::function<void()>
ExperimentEngine::popTaskLocked()
{
    // Weighted round-robin: drain up to `weight` tasks from the
    // cursor lane, then move on. Empty lanes cost one skip each;
    // queuedTasks_ > 0 guarantees the scan terminates.
    for (;;) {
        Lane &lane = lanes_[laneOrder_[laneCursor_]];
        if (lane.tasks.empty() || laneBudget_ <= 0) {
            advanceLaneLocked();
            continue;
        }
        std::function<void()> task = std::move(lane.tasks.front());
        lane.tasks.pop_front();
        --queuedTasks_;
        --laneBudget_;
        obsQueueDepth_->add(-1);
        return task;
    }
}

void
ExperimentEngine::workerLoop()
{
    insideWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [this] {
                return stopping_ || queuedTasks_ > 0;
            });
            if (queuedTasks_ == 0)
                return;  // stopping, queues drained
            task = popTaskLocked();
        }
        task();
    }
}

LaneId
ExperimentEngine::openLane(int weight)
{
    if (weight < 1)
        fatal("lane weight must be >= 1, got %d", weight);
    std::lock_guard<std::mutex> lock(queueMutex_);
    const LaneId id = nextLaneId_++;
    Lane lane;
    lane.weight = weight;
    lanes_.emplace(id, std::move(lane));
    laneOrder_.push_back(id);
    return id;
}

size_t
ExperimentEngine::closeLane(LaneId lane)
{
    if (lane == defaultLane)
        fatal("the default engine lane cannot be closed");
    std::deque<std::function<void()>> dropped;
    std::vector<std::deque<StagedSpec>> droppedStaged;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        auto it = lanes_.find(lane);
        if (it == lanes_.end())
            return 0;
        dropped.swap(it->second.tasks);
        queuedTasks_ -= dropped.size();
        lanes_.erase(it);
        // Specs staged for coalescing on this lane go with it; their
        // promises break when droppedStaged dies below. The 1:1 drain
        // tasks are in `dropped`, so the discard count stays right.
        const std::string prefix = format(
            "%llu|", static_cast<unsigned long long>(lane));
        for (auto st = staged_.begin(); st != staged_.end();) {
            if (st->first.compare(0, prefix.size(), prefix) == 0) {
                droppedStaged.push_back(std::move(st->second));
                st = staged_.erase(st);
            } else {
                ++st;
            }
        }
        const auto pos =
            std::find(laneOrder_.begin(), laneOrder_.end(), lane);
        const size_t index = pos - laneOrder_.begin();
        laneOrder_.erase(pos);
        if (index < laneCursor_)
            --laneCursor_;
        laneCursor_ %= laneOrder_.size();  // never empty: lane 0 stays
        laneBudget_ = lanes_[laneOrder_[laneCursor_]].weight;
    }
    // Destroying the tasks outside the lock breaks their promises,
    // failing the corresponding futures.
    discardedTasks_.fetch_add(dropped.size());
    obsDiscardedTasks_->inc(dropped.size());
    obsQueueDepth_->add(-static_cast<int64_t>(dropped.size()));
    return dropped.size();
}

RunResult
ExperimentEngine::run(const RunSpec &spec)
{
    return execute(spec);
}

std::string
ExperimentEngine::familySignature(const RunSpec &spec)
{
    // Machine parameters (and the fetch budget) are deliberately
    // absent: they are exactly what varies across one sweep family,
    // and the lockstep kernel takes them per point.
    std::string sig =
        format("%d|%.17g", static_cast<int>(spec.mode), spec.scale);
    for (const auto &program : spec.programs) {
        sig += '|';
        sig += program;
    }
    return sig;
}

std::string
ExperimentEngine::stageKey(LaneId lane, const RunSpec &spec)
{
    return format("%llu|", static_cast<unsigned long long>(lane)) +
           familySignature(spec);
}

std::vector<RunResult>
ExperimentEngine::runAll(const std::vector<RunSpec> &specs)
{
    std::vector<RunResult> results(specs.size());
    if (specs.empty())
        return results;

    if (insideWorker) {
        for (size_t i = 0; i < specs.size(); ++i)
            results[i] = execute(specs[i]);
        return results;
    }

    // Coalescing (batched kernel): pre-group the batch into chunks of
    // up to batchWidth_ specs sharing a sweep family, each chunk one
    // task and one lockstep runBatch() call. Width 1 (or any other
    // kernel) degenerates to the classic spec-per-task schedule.
    std::vector<std::vector<size_t>> groups;
    if (batchWidth_ > 1) {
        std::unordered_map<std::string, size_t> open;
        for (size_t i = 0; i < specs.size(); ++i) {
            const std::string sig = familySignature(specs[i]);
            auto it = open.find(sig);
            if (it == open.end() ||
                groups[it->second].size() >= batchWidth_) {
                open[sig] = groups.size();
                groups.push_back({i});
            } else {
                groups[it->second].push_back(i);
            }
        }
    } else {
        groups.reserve(specs.size());
        for (size_t i = 0; i < specs.size(); ++i)
            groups.push_back({i});
    }

    // Submission order is preserved by construction: the task for a
    // group writes results[i] for its own indices, and each result is
    // independent of scheduling (the cache changes whether a run
    // recomputes, never its value). `remaining` is read and written
    // only under doneMutex so the waiter cannot observe 0 (and unwind
    // the stack these locals live on) while a worker still holds or
    // is about to take the lock.
    size_t remaining = specs.size();
    std::mutex doneMutex;
    std::condition_variable doneCv;
    std::exception_ptr firstError;
    const uint64_t enqueuedUs = monotonicMicros();
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        Lane &lane = lanes_[defaultLane];
        queuedTasks_ += groups.size();
        obsQueueDepth_->add(static_cast<int64_t>(groups.size()));
        for (auto &groupRef : groups) {
            lane.tasks.emplace_back([this, &specs, &results,
                                     &remaining, &doneMutex, &doneCv,
                                     &firstError, enqueuedUs,
                                     group = std::move(groupRef)] {
                obsLaneWaitUs_->observe(
                    monotonicMicros() - enqueuedUs);
                // An exception (SimError from a wedged run, or a
                // thrown fatal()) must reach the batch caller, not
                // unwind the worker loop into std::terminate. Every
                // task still completes, so the batch locals stay
                // alive until the last one reports in.
                std::exception_ptr error;
                if (group.size() == 1) {
                    try {
                        results[group[0]] = execute(specs[group[0]]);
                    } catch (...) {
                        error = std::current_exception();
                    }
                } else {
                    std::vector<RunSpec> chunk;
                    chunk.reserve(group.size());
                    for (const size_t index : group)
                        chunk.push_back(specs[index]);
                    const std::vector<const CancelToken *> tokens(
                        group.size(), nullptr);
                    std::vector<BatchOutcome> outcomes =
                        executeBatch(chunk, tokens);
                    for (size_t j = 0; j < group.size(); ++j) {
                        if (outcomes[j].error) {
                            if (!error)
                                error = outcomes[j].error;
                        } else {
                            results[group[j]] =
                                std::move(outcomes[j].result);
                        }
                    }
                }
                std::lock_guard<std::mutex> doneLock(doneMutex);
                if (error && !firstError)
                    firstError = error;
                remaining -= group.size();
                if (remaining == 0)
                    doneCv.notify_all();
            });
        }
    }
    queueCv_.notify_all();

    std::unique_lock<std::mutex> lock(doneMutex);
    doneCv.wait(lock, [&remaining] { return remaining == 0; });
    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

std::future<RunResult>
ExperimentEngine::submit(const RunSpec &spec, SubmitHook hook,
                         std::shared_ptr<CancelToken> token,
                         LaneId laneId)
{
    // Completed-cache fast path: a memoized hit has no work left to
    // schedule, so settle the future on the calling thread and skip
    // the lane round-trip (queue mutex, worker wakeup, packaged
    // task) entirely — the hot result path of a warm sweep. Group
    // specs still dispatch: their reference terms may simulate.
    // A hit for an already-cancelled token also dispatches, so the
    // future fails with CancelledError exactly as before.
    if (memoize_ && spec.maxInstructions == 0 &&
        spec.mode != SpecMode::Group &&
        !(token && token->cancelled())) {
        std::string key = spec.canonical();
        CachedStats stats;
        std::shared_ptr<const std::string> blob;
        {
            std::lock_guard<std::mutex> lock(cacheMutex_);
            auto it = cache_.find(key);
            if (it != cache_.end()) {
                lru_.splice(lru_.begin(), lru_, it->second.lruPos);
                it->second.lruPos = lru_.begin();
                cacheHits_.fetch_add(1);
                obsCacheHits_->inc();
                stats = it->second.stats;
                blob = it->second.blob;
            }
        }
        if (stats) {
            if (!blob && canonicalSerializer_) {
                // First streamed hit of this entry: memoize the
                // canonical bytes so every later hit is zero-copy.
                // Serialized outside the lock; a racing duplicate
                // produces the same canonical bytes, so last writer
                // wins harmlessly.
                blob = std::make_shared<const std::string>(
                    canonicalSerializer_(*stats));
                std::lock_guard<std::mutex> lock(cacheMutex_);
                auto it = cache_.find(key);
                if (it != cache_.end())
                    it->second.blob = blob;
            }
            RunResult result;
            result.spec = spec;
            result.stats = *stats;
            result.cached = true;
            result.blob = std::move(blob);
            result.specCanonical = std::move(key);
            obsPointsCompleted_->inc();
            if (hook)
                hook(result);
            std::promise<RunResult> promise;
            std::future<RunResult> future = promise.get_future();
            promise.set_value(std::move(result));
            return future;
        }
    }

    if (batchWidth_ > 1 && !insideWorker) {
        // Coalescing: park the spec with its family-mates and queue
        // one drain task. Whichever drain runs first takes up to
        // batchWidth_ staged specs with it; drains of an emptied
        // bucket are no-ops, keeping the task/submit accounting 1:1
        // (lane fairness and queue depth mean what they always did).
        StagedSpec entry;
        entry.spec = spec;
        entry.hook = std::move(hook);
        entry.token = std::move(token);
        entry.promise = std::make_shared<std::promise<RunResult>>();
        std::future<RunResult> future = entry.promise->get_future();
        const std::string key = stageKey(laneId, spec);
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            auto it = lanes_.find(laneId);
            if (it == lanes_.end()) {
                // Lane closed: abandon (entry's promise dies here,
                // breaking the future) without queueing.
                discardedTasks_.fetch_add(1);
                obsDiscardedTasks_->inc();
                return future;
            }
            staged_[key].push_back(std::move(entry));
            const uint64_t enqueuedUs = monotonicMicros();
            it->second.tasks.emplace_back([this, key, enqueuedUs] {
                obsLaneWaitUs_->observe(
                    monotonicMicros() - enqueuedUs);
                drainStaged(key);
            });
            ++queuedTasks_;
            obsQueueDepth_->add(1);
        }
        queueCv_.notify_one();
        return future;
    }

    auto task = std::make_shared<std::packaged_task<RunResult()>>(
        [this, spec, hook = std::move(hook),
         token = std::move(token)] {
            // The cooperative cancellation point: a task dequeued
            // after its batch was cancelled never simulates and never
            // writes through to the backend. A live batch wanting the
            // same spec runs it through its own (uncancelled) task.
            if (token && token->cancelled()) {
                cancelledRuns_.fetch_add(1);
                obsCancelledRuns_->inc();
                throw CancelledError("batch cancelled before '" +
                                     spec.canonical() + "' ran");
            }
            RunResult result = execute(spec, token.get());
            if (hook)
                hook(result);
            return result;
        });
    std::future<RunResult> future = task->get_future();
    if (insideWorker) {
        (*task)();
        return future;
    }
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        auto it = lanes_.find(laneId);
        if (it == lanes_.end()) {
            // The lane was closed (its tenant is gone): abandon the
            // task without queueing it. Dropping the only reference
            // breaks the promise, failing the future.
            discardedTasks_.fetch_add(1);
            obsDiscardedTasks_->inc();
            return future;
        }
        const uint64_t enqueuedUs = monotonicMicros();
        it->second.tasks.emplace_back([this, task, enqueuedUs] {
            obsLaneWaitUs_->observe(monotonicMicros() - enqueuedUs);
            (*task)();
        });
        ++queuedTasks_;
        obsQueueDepth_->add(1);
    }
    queueCv_.notify_one();
    return future;
}

size_t
ExperimentEngine::discardQueued()
{
    std::vector<std::deque<std::function<void()>>> dropped;
    std::unordered_map<std::string, std::deque<StagedSpec>>
        droppedStaged;
    size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        for (auto &lane : lanes_) {
            if (lane.second.tasks.empty())
                continue;
            count += lane.second.tasks.size();
            dropped.emplace_back(std::move(lane.second.tasks));
            lane.second.tasks.clear();
        }
        queuedTasks_ = 0;
        // Dropping the drain tasks above orphans every staged spec:
        // drop the entries too (their promises break below).
        droppedStaged.swap(staged_);
    }
    // Destroying the packaged tasks outside the lock breaks their
    // promises, failing the corresponding futures.
    discardedTasks_.fetch_add(count);
    obsDiscardedTasks_->inc(count);
    obsQueueDepth_->add(-static_cast<int64_t>(count));
    return count;
}

SimStats
ExperimentEngine::simulate(const RunSpec &spec) const
{
    std::vector<std::unique_ptr<SyntheticProgram>> sources;
    std::vector<InstructionSource *> raw;
    sources.reserve(spec.programs.size());
    for (const auto &name : spec.programs) {
        sources.push_back(makeProgram(name, spec.scale));
        raw.push_back(sources.back().get());
    }

    VectorSim sim(spec.effectiveParams(), kernel_);
    switch (spec.mode) {
      case SpecMode::Single:
        return sim.runSingle(*raw[0], spec.maxInstructions);
      case SpecMode::Group:
        return sim.runGroup(raw);
      case SpecMode::JobQueue:
        return sim.runJobQueue(raw);
    }
    panic("bad SpecMode %d", static_cast<int>(spec.mode));
}

ExperimentEngine::CachedStats
ExperimentEngine::loadOrSimulate(
    const std::string &key, const RunSpec &spec, Origin *origin,
    std::shared_ptr<const std::string> *blobOut)
{
    if (backend_) {
        StoredRecord record = backend_->loadRecord(key);
        if (record.stats) {
            storeHits_.fetch_add(1);
            obsStoreHits_->inc();
            if (origin)
                *origin = Origin::Store;
            if (blobOut)
                *blobOut = std::move(record.blob);
            return std::move(record.stats);
        }
    }
    auto fresh = std::make_shared<SimStats>(simulate(spec));
    obsPointsSimulated_->inc();
    if (backend_)
        backend_->store(key, *fresh);
    if (origin)
        *origin = Origin::Simulated;
    return fresh;
}

void
ExperimentEngine::insertCompleted(const std::string &key,
                                  const CachedStats &stats)
{
    lru_.push_front(key);
    cache_[key] = CacheEntry{stats, lru_.begin()};
    while (maxCacheEntries_ != 0 && cache_.size() > maxCacheEntries_) {
        cache_.erase(lru_.back());
        lru_.pop_back();
        cacheEvictions_.fetch_add(1);
        obsCacheEvictions_->inc();
    }
}

ExperimentEngine::CachedStats
ExperimentEngine::cachedStats(
    const RunSpec &spec, Origin *origin,
    std::shared_ptr<const std::string> *blobOut)
{
    // Truncated runs (the F_i terms of the speedup accounting) are
    // keyed by an exact dispatch count that is essentially unique per
    // group run — memoizing them would grow the memory cache without
    // paying off within one process, so they bypass it, as does
    // everything on a memoize=false engine. The backend still serves
    // and persists them: across daemon restarts the same F_i keys
    // *do* repeat, and they dominate a warm group sweep's cost.
    if (!memoize_ || spec.maxInstructions != 0) {
        uncachedRuns_.fetch_add(1);
        obsUncachedRuns_->inc();
        return loadOrSimulate(spec.canonical(), spec, origin,
                              blobOut);
    }

    const std::string key = spec.canonical();
    std::promise<CachedStats> promise;
    std::shared_future<CachedStats> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            // Completed entry: touch its LRU slot and serve it.
            lru_.splice(lru_.begin(), lru_, it->second.lruPos);
            it->second.lruPos = lru_.begin();
            cacheHits_.fetch_add(1);
            obsCacheHits_->inc();
            if (origin)
                *origin = Origin::Cache;
            return it->second.stats;
        }
        auto pending = inflight_.find(key);
        if (pending != inflight_.end()) {
            // Coalesce onto the identical in-flight run.
            future = pending->second;
            cacheHits_.fetch_add(1);
            obsCacheHits_->inc();
        } else {
            future = promise.get_future().share();
            inflight_.emplace(key, future);
            owner = true;
            cacheMisses_.fetch_add(1);
            obsCacheMisses_->inc();
        }
    }
    if (!owner) {
        if (origin)
            *origin = Origin::Cache;
        return future.get();
    }

    CachedStats stats;
    try {
        stats = loadOrSimulate(key, spec, origin, blobOut);
    } catch (...) {
        // fatal() may throw (ScopedFatalAsException) from backend or
        // simulation code. Un-poison the key and hand the error to
        // every coalesced waiter, or this spec would hang the engine
        // for its lifetime.
        {
            std::lock_guard<std::mutex> lock(cacheMutex_);
            inflight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        insertCompleted(key, stats);
        inflight_.erase(key);
    }
    promise.set_value(stats);
    return stats;
}

const SimStats &
ExperimentEngine::statsFor(const RunSpec &spec)
{
    if (!memoize_)
        fatal("statsFor needs a memoizing engine (its reference "
              "points into the cache); use run() instead");
    if (maxCacheEntries_ != 0)
        fatal("statsFor needs an unbounded cache (entries evict "
              "under maxCacheEntries=%zu); use run() instead",
              maxCacheEntries_);
    if (spec.maxInstructions != 0)
        fatal("truncated runs are not cached (their dispatch-count "
              "keys never repeat); use run() instead");
    // The cache never evicts on this engine, so the referenced object
    // lives until clear() or destruction.
    return *cachedStats(spec, nullptr);
}

void
ExperimentEngine::clear()
{
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        cache_.clear();
        lru_.clear();
        // In-flight runs stay: their owners will re-insert on
        // completion, and coalesced waiters keep their futures.
    }
    {
        std::lock_guard<std::mutex> lock(groupMutex_);
        groupCache_.clear();
    }
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        traceCache_.clear();
    }
}

RunResult
ExperimentEngine::execute(const RunSpec &spec,
                          const CancelToken *token)
{
    RunResult result;
    result.spec = spec;
    Origin origin = Origin::Simulated;
    result.stats = *cachedStats(spec, &origin, &result.blob);
    result.cached = origin == Origin::Cache;
    result.fromStore = origin == Origin::Store;
    if (spec.mode == SpecMode::Group) {
        const GroupMetrics m =
            groupMetrics(spec, result.stats, token);
        result.speedup = m.speedup;
        result.mthOccupation = m.mthOccupation;
        result.refOccupation = m.refOccupation;
        result.mthVopc = m.mthVopc;
        result.refVopc = m.refVopc;
    }
    obsPointsCompleted_->inc();
    return result;
}

std::vector<ExperimentEngine::BatchOutcome>
ExperimentEngine::executeBatch(
    const std::vector<RunSpec> &specs,
    const std::vector<const CancelToken *> &tokens)
{
    MTV_ASSERT(specs.size() == tokens.size());
    const size_t n = specs.size();
    std::vector<BatchOutcome> out(n);

    /** A spec that was served without simulating this batch. */
    struct Served
    {
        size_t index;
        CachedStats stats;
        Origin origin;
        /** Canonical bytes of a direct store hit (else null). */
        std::shared_ptr<const std::string> blob;
    };
    /** A spec that must simulate: an in-flight owner, or uncached. */
    struct Sim
    {
        size_t index;
        std::string key;
        bool cacheable = false;  ///< owner of an inflight_ entry
        std::promise<CachedStats> promise;
    };
    std::vector<Served> served;
    std::vector<Sim> sims;
    std::vector<std::pair<size_t, std::shared_future<CachedStats>>>
        waiters;

    // Classify each point: the per-spec branches of cachedStats(),
    // with "simulate now" deferred so the leftovers share one batch.
    for (size_t i = 0; i < n; ++i) {
        const RunSpec &spec = specs[i];
        if (tokens[i] && tokens[i]->cancelled()) {
            cancelledRuns_.fetch_add(1);
            obsCancelledRuns_->inc();
            out[i].error = std::make_exception_ptr(
                CancelledError("batch cancelled before '" +
                               spec.canonical() + "' ran"));
            continue;
        }
        std::string key = spec.canonical();
        if (!memoize_ || spec.maxInstructions != 0) {
            uncachedRuns_.fetch_add(1);
            obsUncachedRuns_->inc();
            Sim sim;
            sim.index = i;
            sim.key = std::move(key);
            sims.push_back(std::move(sim));
            continue;
        }
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lruPos);
            it->second.lruPos = lru_.begin();
            cacheHits_.fetch_add(1);
            obsCacheHits_->inc();
            served.push_back({i, it->second.stats, Origin::Cache});
            continue;
        }
        auto pending = inflight_.find(key);
        if (pending != inflight_.end()) {
            cacheHits_.fetch_add(1);
            obsCacheHits_->inc();
            waiters.emplace_back(i, pending->second);
            continue;
        }
        Sim sim;
        sim.index = i;
        sim.cacheable = true;
        inflight_.emplace(key, sim.promise.get_future().share());
        sim.key = std::move(key);
        cacheMisses_.fetch_add(1);
        obsCacheMisses_->inc();
        sims.push_back(std::move(sim));
    }

    // Backend pass: a stored result spares its point the simulation
    // (the loadOrSimulate() order — store before simulate — kept).
    if (backend_) {
        std::vector<Sim> misses;
        misses.reserve(sims.size());
        for (Sim &sim : sims) {
            StoredRecord record = backend_->loadRecord(sim.key);
            if (!record.stats) {
                misses.push_back(std::move(sim));
                continue;
            }
            storeHits_.fetch_add(1);
            obsStoreHits_->inc();
            if (sim.cacheable) {
                {
                    std::lock_guard<std::mutex> lock(cacheMutex_);
                    insertCompleted(sim.key, record.stats);
                    inflight_.erase(sim.key);
                }
                sim.promise.set_value(record.stats);
            }
            served.push_back({sim.index, std::move(record.stats),
                              Origin::Store,
                              std::move(record.blob)});
        }
        sims.swap(misses);
    }

    // The batch itself: every remaining point through one lockstep
    // runBatch() call. Sources are rebuilt per point (cheap: the
    // stream and decode caches make them shared handles).
    if (!sims.empty()) {
        std::vector<std::vector<std::unique_ptr<SyntheticProgram>>>
            sources(sims.size());
        std::vector<BatchPoint> points;
        points.reserve(sims.size());
        std::exception_ptr setupError;
        try {
            for (size_t j = 0; j < sims.size(); ++j) {
                const RunSpec &spec = specs[sims[j].index];
                BatchPoint point;
                point.params = spec.effectiveParams();
                point.maxInstructions = spec.maxInstructions;
                switch (spec.mode) {
                  case SpecMode::Single:
                    point.kind = BatchPoint::Kind::Single;
                    break;
                  case SpecMode::Group:
                    point.kind = BatchPoint::Kind::Group;
                    break;
                  case SpecMode::JobQueue:
                    point.kind = BatchPoint::Kind::JobQueue;
                    break;
                }
                for (const auto &name : spec.programs) {
                    sources[j].push_back(
                        makeProgram(name, spec.scale));
                    point.sources.push_back(sources[j].back().get());
                }
                points.push_back(std::move(point));
            }
        } catch (...) {
            setupError = std::current_exception();
        }

        std::vector<BatchResult> results;
        if (!setupError) {
            batchesExecuted_.fetch_add(1);
            batchedPoints_.fetch_add(sims.size());
            obsBatches_->inc();
            obsBatchedPoints_->inc(sims.size());
            obsBatchWidth_->observe(
                static_cast<double>(sims.size()));
            try {
                results = runBatch(points);
            } catch (...) {
                // Malformed points fatal() wholesale; fail every
                // point of the batch rather than hang its waiters.
                setupError = std::current_exception();
            }
        }

        for (size_t j = 0; j < sims.size(); ++j) {
            Sim &sim = sims[j];
            std::exception_ptr error = setupError;
            if (!error)
                error = results[j].error;
            if (!error) {
                try {
                    auto stats = std::make_shared<SimStats>(
                        std::move(results[j].stats));
                    obsPointsSimulated_->inc();
                    if (backend_)
                        backend_->store(sim.key, *stats);
                    if (sim.cacheable) {
                        std::lock_guard<std::mutex> lock(cacheMutex_);
                        insertCompleted(sim.key, stats);
                        inflight_.erase(sim.key);
                    }
                    served.push_back(
                        {sim.index, stats, Origin::Simulated});
                } catch (...) {
                    error = std::current_exception();
                }
            }
            if (error) {
                if (sim.cacheable) {
                    {
                        std::lock_guard<std::mutex> lock(cacheMutex_);
                        inflight_.erase(sim.key);
                    }
                    sim.promise.set_exception(error);
                }
                out[sim.index].error = error;
            } else if (sim.cacheable) {
                sim.promise.set_value(served.back().stats);
            }
        }
    }

    // Waiters last: an owner in this very batch has already settled
    // its promise above, so these get() calls cannot deadlock on
    // ourselves.
    for (auto &waiter : waiters) {
        try {
            served.push_back(
                {waiter.first, waiter.second.get(), Origin::Cache});
        } catch (...) {
            out[waiter.first].error = std::current_exception();
        }
    }

    // Split the batch back into per-spec results; group-mode specs
    // pay their reference-term accounting here, exactly as execute()
    // would have.
    for (Served &sv : served) {
        const RunSpec &spec = specs[sv.index];
        RunResult &result = out[sv.index].result;
        result.spec = spec;
        result.stats = *sv.stats;
        result.cached = sv.origin == Origin::Cache;
        result.fromStore = sv.origin == Origin::Store;
        result.blob = std::move(sv.blob);
        try {
            if (spec.mode == SpecMode::Group) {
                const GroupMetrics m = groupMetrics(
                    spec, result.stats, tokens[sv.index]);
                result.speedup = m.speedup;
                result.mthOccupation = m.mthOccupation;
                result.refOccupation = m.refOccupation;
                result.mthVopc = m.mthVopc;
                result.refVopc = m.refVopc;
            }
            obsPointsCompleted_->inc();
        } catch (...) {
            out[sv.index].error = std::current_exception();
        }
    }
    return out;
}

void
ExperimentEngine::drainStaged(const std::string &key)
{
    std::vector<StagedSpec> chunk;
    {
        std::lock_guard<std::mutex> lock(queueMutex_);
        auto it = staged_.find(key);
        if (it != staged_.end()) {
            std::deque<StagedSpec> &bucket = it->second;
            const size_t take = std::min(bucket.size(), batchWidth_);
            chunk.reserve(take);
            for (size_t i = 0; i < take; ++i) {
                chunk.push_back(std::move(bucket.front()));
                bucket.pop_front();
            }
            if (bucket.empty())
                staged_.erase(it);
        }
    }
    if (chunk.empty())
        return;

    std::vector<RunSpec> specs;
    std::vector<const CancelToken *> tokens;
    specs.reserve(chunk.size());
    tokens.reserve(chunk.size());
    for (const StagedSpec &entry : chunk) {
        specs.push_back(entry.spec);
        tokens.push_back(entry.token.get());
    }
    std::vector<BatchOutcome> outcomes = executeBatch(specs, tokens);
    for (size_t i = 0; i < chunk.size(); ++i) {
        if (outcomes[i].error) {
            chunk[i].promise->set_exception(outcomes[i].error);
        } else {
            // The submit() contract: the hook fires right before the
            // future becomes ready, on the completing worker.
            if (chunk[i].hook)
                chunk[i].hook(outcomes[i].result);
            chunk[i].promise->set_value(
                std::move(outcomes[i].result));
        }
    }
}

ExperimentEngine::GroupMetrics
ExperimentEngine::groupMetrics(const RunSpec &spec,
                               const SimStats &mth,
                               const CancelToken *token)
{
    if (!memoize_)
        return computeGroupMetrics(spec, mth, token);

    const std::string key = spec.canonical();
    for (;;) {
        std::promise<GroupMetrics> promise;
        std::shared_future<GroupMetrics> future;
        bool owner = false;
        {
            std::lock_guard<std::mutex> lock(groupMutex_);
            auto it = groupCache_.find(key);
            if (it == groupCache_.end()) {
                future = promise.get_future().share();
                // Capped engines bound this cache too (coarse flush:
                // entries are tiny and recomputing is
                // safe/deterministic, so LRU bookkeeping isn't worth
                // it here).
                if (maxCacheEntries_ != 0 &&
                    groupCache_.size() >= maxCacheEntries_) {
                    groupCache_.clear();
                }
                groupCache_.emplace(key, future);
                owner = true;
            } else {
                future = it->second;
            }
        }
        if (owner) {
            try {
                promise.set_value(
                    computeGroupMetrics(spec, mth, token));
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(groupMutex_);
                    groupCache_.erase(key);
                }
                promise.set_exception(std::current_exception());
                throw;
            }
            return future.get();
        }
        try {
            return future.get();
        } catch (const CancelledError &) {
            // The owner's batch was cancelled mid-accounting, but
            // OURS was not: the in-flight entry was erased above, so
            // retry — this waiter becomes the new owner and finishes
            // the work (the spec stays alive while any live batch
            // wants it).
            if (token && token->cancelled())
                throw;
        }
    }
}

ExperimentEngine::GroupMetrics
ExperimentEngine::computeGroupMetrics(const RunSpec &spec,
                                      const SimStats &mth,
                                      const CancelToken *token)
{
    const uint64_t t = mth.cycles;
    MTV_ASSERT(mth.threads.size() == spec.programs.size());

    // Section 4.1: the reference machine's time for the same amount
    // of work — thread 0's single run C_0, plus each companion's full
    // runs r_i * C_i and fractional run F_i (measured in dispatched
    // instructions, re-simulated truncated on the reference machine).
    double refWork = 0;
    uint64_t refCycles = 0;
    uint64_t refRequests = 0;
    uint64_t refOps = 0;
    for (size_t i = 0; i < spec.programs.size(); ++i) {
        // The second cooperative cancellation point: a cancelled
        // group run stops paying for further reference terms.
        if (token && token->cancelled())
            throw CancelledError(
                "batch cancelled between reference runs of '" +
                spec.canonical() + "'");
        // References derive from the *effective* machine: the spec's
        // extension axes are folded into the reference point too, so
        // a multi-port or renaming sweep is compared against the
        // single-context machine with the same extension.
        const CachedStats full = cachedStats(
            RunSpec::reference(spec.programs[i], spec.effectiveParams(),
                               spec.scale),
            nullptr);
        if (i == 0) {
            refWork += static_cast<double>(full->cycles);
        } else {
            const ThreadStats &ts = mth.threads[i];
            refWork += static_cast<double>(ts.runsCompleted) *
                       static_cast<double>(full->cycles);
            if (ts.instructionsThisRun > 0) {
                const CachedStats frac = cachedStats(
                    RunSpec::reference(spec.programs[i],
                                       spec.effectiveParams(),
                                       spec.scale,
                                       ts.instructionsThisRun),
                    nullptr);
                refWork += static_cast<double>(frac->cycles);
            }
        }
        refCycles += full->cycles;
        refRequests += full->memRequests;
        refOps += full->vecOpsFu1 + full->vecOpsFu2;
    }

    GroupMetrics m;
    m.speedup = t ? refWork / static_cast<double>(t) : 0.0;

    // Occupation / VOPC comparison: the tuple run sequentially (once
    // each) on the reference machine.
    m.mthOccupation = mth.memPortOccupation();
    m.mthVopc = mth.vopc();
    m.refOccupation =
        refCycles ? static_cast<double>(refRequests) / refCycles : 0.0;
    m.refVopc =
        refCycles ? static_cast<double>(refOps) / refCycles : 0.0;
    return m;
}

uint64_t
ExperimentEngine::sequentialReferenceCycles(
    const std::vector<std::string> &jobs, const MachineParams &params,
    double scale)
{
    std::vector<RunSpec> specs;
    specs.reserve(jobs.size());
    for (const auto &job : jobs)
        specs.push_back(RunSpec::reference(job, params, scale));
    uint64_t total = 0;
    for (const auto &result : runAll(specs))
        total += result.stats.cycles;
    return total;
}

const TraceStats &
ExperimentEngine::programStats(const std::string &program, double scale)
{
    if (maxCacheEntries_ != 0)
        fatal("programStats needs an unbounded cache (its reference "
              "points into the flushed-on-overflow trace cache)");
    const std::string key =
        format("%s|%.17g", findProgram(program).name.c_str(), scale);
    std::promise<std::shared_ptr<const TraceStats>> promise;
    std::shared_future<std::shared_ptr<const TraceStats>> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(traceMutex_);
        auto it = traceCache_.find(key);
        if (it == traceCache_.end()) {
            // No size bound needed: the entry guard above rejects
            // capped engines (returned references point in here).
            future = promise.get_future().share();
            traceCache_.emplace(key, future);
            owner = true;
        } else {
            future = it->second;
        }
    }
    if (owner) {
        try {
            auto source = makeProgram(program, scale);
            promise.set_value(
                std::make_shared<TraceStats>(analyzeSource(*source)));
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(traceMutex_);
                traceCache_.erase(key);
            }
            promise.set_exception(std::current_exception());
            throw;
        }
    }
    return *future.get();
}

IdealBound
ExperimentEngine::idealTime(const std::vector<std::string> &jobs,
                            double scale, int decodeWidth)
{
    TraceStats total;
    for (const auto &job : jobs)
        total += programStats(job, scale);
    return idealBound(total, decodeWidth);
}

size_t
ExperimentEngine::cacheSize() const
{
    std::lock_guard<std::mutex> lock(cacheMutex_);
    return cache_.size();
}

size_t
ExperimentEngine::queueDepth() const
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    return queuedTasks_;
}

std::vector<std::pair<LaneId, size_t>>
ExperimentEngine::laneDepths() const
{
    std::lock_guard<std::mutex> lock(queueMutex_);
    std::vector<std::pair<LaneId, size_t>> depths;
    depths.reserve(laneOrder_.size());
    for (LaneId id : laneOrder_)
        depths.emplace_back(id, lanes_.at(id).tasks.size());
    return depths;
}

} // namespace mtv
