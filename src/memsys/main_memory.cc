#include "src/memsys/main_memory.hh"

#include <numeric>

#include "src/common/logging.hh"

namespace mtv
{

MainMemory::MainMemory(const MachineParams &params)
    : latency_(params.memLatency), banked_(params.bankedMemory),
      banks_(params.memBanks), bankBusy_(params.bankBusyCycles)
{
    MTV_ASSERT(latency_ >= 1);
    if (banked_) {
        if (banks_ < 1 || bankBusy_ < 1)
            fatal("banked memory needs >= 1 bank and bank-busy cycle");
    }
}

int
MainMemory::deliveryPeriod(int32_t stride, bool indexed) const
{
    if (!banked_)
        return 1;
    if (indexed) {
        // Random bank pattern: expected distinct banks per bank-busy
        // window is close to the window size for large bank counts;
        // charge a modest fixed penalty.
        return std::max(1, (bankBusy_ + banks_ - 1) / banks_ + 1);
    }
    const auto s = static_cast<uint64_t>(stride == 0 ? 1
                       : stride < 0 ? -static_cast<int64_t>(stride)
                                    : stride);
    const uint64_t distinct =
        static_cast<uint64_t>(banks_) /
        std::gcd(s, static_cast<uint64_t>(banks_));
    return static_cast<int>(
        std::max<uint64_t>(1, (bankBusy_ + distinct - 1) / distinct));
}

} // namespace mtv
