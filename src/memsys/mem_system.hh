/**
 * @file
 * The memory subsystem of the modelled machine as one component: the
 * address/data ports (each a pipelined data path plus an address bus)
 * and the main-memory timing oracle behind them.
 *
 * Ports are *reporting* resources, not polled ones: besides the
 * point-in-time freeAt()/busyAt() queries the dispatch logic uses,
 * every port exposes the cycle at which it next changes state
 * (nextEventAfter), which is what lets the event-driven kernel jump
 * over idle spans instead of re-asking "free yet?" every cycle.
 */

#ifndef MTV_MEMSYS_MEM_SYSTEM_HH
#define MTV_MEMSYS_MEM_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "src/core/resources.hh"
#include "src/isa/machine_params.hh"
#include "src/memsys/address_bus.hh"
#include "src/memsys/main_memory.hh"

namespace mtv
{

/** One memory port: an address path and its data pipe. */
struct MemPort
{
    PipeUnit pipe;
    AddressBus bus;

    /**
     * Earliest cycle strictly after @p now at which this port's
     * occupancy state changes (pipe or bus frees), or 0 when nothing
     * is pending past @p now.
     */
    uint64_t
    nextEventAfter(uint64_t now) const
    {
        EventMin em(now);
        em.consider(pipe.freeCycle());
        em.consider(bus.freeCycle());
        return em.next;
    }
};

/**
 * The machine's memory ports plus the main-memory timing model.
 * Load ports come first; stores use the store ports when any exist
 * and share the load ports otherwise (paper's single unified port
 * vs. the section 10 Cray-like split).
 */
class MemSystem
{
  public:
    explicit MemSystem(const MachineParams &params);

    /** Ports that serve @p op (loads vs stores vs scalar memory). */
    const std::vector<MemPort *> &portsFor(Opcode op) const;

    /** Any port's data pipe processing an element at @p now? */
    bool pipeBusyAt(uint64_t now) const;

    /** The main-memory timing oracle. */
    const MainMemory &memory() const { return memory_; }

    /** All ports, load ports first (for stats aggregation). */
    const std::vector<MemPort> &ports() const { return ports_; }

    /** Reset every port to pristine state. */
    void clear();

  private:
    MainMemory memory_;
    std::vector<MemPort> ports_;           ///< load ports then store
    std::vector<MemPort *> loadPortRefs_;  ///< views into ports_
    std::vector<MemPort *> storePortRefs_;
};

} // namespace mtv

#endif // MTV_MEMSYS_MEM_SYSTEM_HH
