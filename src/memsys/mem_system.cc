#include "src/memsys/mem_system.hh"

namespace mtv
{

MemSystem::MemSystem(const MachineParams &params) : memory_(params)
{
    ports_.resize(static_cast<size_t>(params.loadPorts) +
                  static_cast<size_t>(params.storePorts));
    for (int i = 0; i < params.loadPorts; ++i)
        loadPortRefs_.push_back(&ports_[i]);
    for (int i = 0; i < params.storePorts; ++i)
        storePortRefs_.push_back(&ports_[params.loadPorts + i]);
}

const std::vector<MemPort *> &
MemSystem::portsFor(Opcode op) const
{
    if (isStore(op) && !storePortRefs_.empty())
        return storePortRefs_;
    return loadPortRefs_;
}

bool
MemSystem::pipeBusyAt(uint64_t now) const
{
    for (const auto &port : ports_) {
        if (port.pipe.busyAt(now))
            return true;
    }
    return false;
}

void
MemSystem::clear()
{
    for (auto &port : ports_) {
        port.pipe.clear();
        port.bus.clear();
    }
}

} // namespace mtv
