/**
 * @file
 * Main-memory timing model.
 *
 * Default: the paper's model — a pipelined memory with a fixed access
 * latency; a vector load pays the latency once and then receives one
 * element per cycle; stores pay nothing.
 *
 * Extension (off by default): an interleaved-bank model in which a
 * strided stream that touches few distinct banks cannot sustain one
 * element per cycle. This supports the paper's cost argument that a
 * multithreaded vector machine could use slower DRAM parts: benches
 * can turn banking on and watch multithreading absorb the slowdown.
 */

#ifndef MTV_MEMSYS_MAIN_MEMORY_HH
#define MTV_MEMSYS_MAIN_MEMORY_HH

#include <cstdint>

#include "src/isa/machine_params.hh"

namespace mtv
{

/** Timing oracle for memory streams. */
class MainMemory
{
  public:
    explicit MainMemory(const MachineParams &params);

    /** Access latency in cycles. */
    int latency() const { return latency_; }

    /**
     * Cycles between successive data elements of a strided stream.
     * 1 in the default pipelined model. Under the banked model, a
     * stream with element stride @p stride touching
     * d = banks / gcd(|stride|, banks) distinct banks needs
     * ceil(bankBusy / d) cycles per element.
     *
     * @param stride   Element stride (0 and gathers treated as 1 and
     *                 a pessimistic random pattern respectively).
     * @param indexed  True for gather/scatter (random bank pattern).
     */
    int deliveryPeriod(int32_t stride, bool indexed = false) const;

    /**
     * Completion helpers: a VL-element load stream issued at
     * @p start finishes arriving at start + latency + VL * period.
     */
    uint64_t
    loadComplete(uint64_t start, uint32_t vl, int32_t stride,
                 bool indexed = false) const
    {
        return start + static_cast<uint64_t>(latency_) +
               static_cast<uint64_t>(vl) * deliveryPeriod(stride, indexed);
    }

  private:
    int latency_;
    bool banked_;
    int banks_;
    int bankBusy_;
};

} // namespace mtv

#endif // MTV_MEMSYS_MAIN_MEMORY_HH
