/**
 * @file
 * The single shared address bus of the modelled machine.
 *
 * The paper's memory system (section 3.1): one address bus shared by
 * all transaction types (scalar/vector, load/store) with physically
 * separate data busses for each direction. A vector memory instruction
 * sends one address per cycle for VL cycles; a scalar memory op sends
 * one. Memory-port occupation — the paper's headline metric — is the
 * number of requests sent over this bus divided by total cycles.
 */

#ifndef MTV_MEMSYS_ADDRESS_BUS_HH
#define MTV_MEMSYS_ADDRESS_BUS_HH

#include <cstdint>

namespace mtv
{

/**
 * Contiguous-interval reservation model. Because a requester may only
 * reserve when the bus is completely free (the machine has no address
 * queue), at most one reservation is outstanding at any time, so a
 * single [from, until) interval fully describes bus state.
 */
class AddressBus
{
  public:
    /** True when the bus has no reservation extending past @p cycle. */
    bool freeAt(uint64_t cycle) const { return until_ <= cycle; }

    /** True when the bus is transferring an address at @p cycle. */
    bool
    busyAt(uint64_t cycle) const
    {
        return from_ <= cycle && cycle < until_;
    }

    /**
     * Reserve the bus for @p requests back-to-back address transfers
     * starting at @p from. The caller must have checked freeAt(from).
     */
    void reserve(uint64_t from, uint32_t requests);

    /** Total address transfers so far (the occupation numerator). */
    uint64_t requests() const { return requests_; }

    /** Cycle at which the current reservation ends. */
    uint64_t freeCycle() const { return until_; }

    /** Reset to pristine state. */
    void clear();

  private:
    uint64_t from_ = 0;
    uint64_t until_ = 0;
    uint64_t requests_ = 0;
};

} // namespace mtv

#endif // MTV_MEMSYS_ADDRESS_BUS_HH
