#include "src/memsys/address_bus.hh"

#include "src/common/logging.hh"

namespace mtv
{

void
AddressBus::reserve(uint64_t from, uint32_t requests)
{
    MTV_ASSERT(freeAt(from));
    MTV_ASSERT(requests > 0);
    from_ = from;
    until_ = from + requests;
    requests_ += requests;
}

void
AddressBus::clear()
{
    from_ = 0;
    until_ = 0;
    requests_ = 0;
}

} // namespace mtv
