/**
 * @file
 * Little-endian byte packing shared by every on-disk format (binary
 * traces, result-store segments, stats blobs). Explicit byte
 * shuffling — never struct memcpy — so the formats are portable
 * across compilers and host byte orders.
 */

#ifndef MTV_COMMON_ENDIAN_HH
#define MTV_COMMON_ENDIAN_HH

#include <cstdint>

namespace mtv
{

inline void
writeLe16(uint8_t *p, uint16_t v)
{
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
}

inline void
writeLe32(uint8_t *p, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void
writeLe64(uint8_t *p, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint16_t
readLe16(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

inline uint32_t
readLe32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

inline uint64_t
readLe64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace mtv

#endif // MTV_COMMON_ENDIAN_HH
