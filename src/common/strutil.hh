/**
 * @file
 * Small string helpers used by reports, trace files and CLIs.
 */

#ifndef MTV_COMMON_STRUTIL_HH
#define MTV_COMMON_STRUTIL_HH

#include <string>
#include <vector>

namespace mtv
{

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** True when @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

/**
 * Format a count with thousands separators, e.g. 1234567 -> "1,234,567".
 * Used by the table/figure reports.
 */
std::string withCommas(uint64_t value);

} // namespace mtv

#endif // MTV_COMMON_STRUTIL_HH
