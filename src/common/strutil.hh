/**
 * @file
 * Small string helpers used by reports, trace files and CLIs.
 */

#ifndef MTV_COMMON_STRUTIL_HH
#define MTV_COMMON_STRUTIL_HH

#include <string>
#include <vector>

namespace mtv
{

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(const std::string &s);

/** True when @p s begins with @p prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case ASCII copy. */
std::string toLower(const std::string &s);

/**
 * Format a count with thousands separators, e.g. 1234567 -> "1,234,567".
 * Used by the table/figure reports.
 */
std::string withCommas(uint64_t value);

/**
 * Strict decimal-integer parse for CLI flag values: the whole of
 * @p text must be a base-10 integer in [@p min, @p max], otherwise
 * fatal() names @p flag and the offending text. Unlike atoi/atoll,
 * non-numeric input ("abc" -> 0) and silent wraparound (-1 ->
 * SIZE_MAX) cannot slip through.
 */
long long parseIntFlag(const char *text, const char *flag,
                       long long min, long long max);

/**
 * Strict strtod counterpart of parseIntFlag: the whole of @p text
 * must be a finite number > 0 (flag values like scales), otherwise
 * fatal() names @p flag.
 */
double parsePositiveFlag(const char *text, const char *flag);

/** A parsed "host:port" endpoint (see parseHostPort()). */
struct HostPort
{
    std::string host;
    int port = 0;
};

/**
 * Strict "host:port" parse for CLI flag values: the host must be
 * non-empty and the port a base-10 integer in [1, 65535] (via the
 * parseIntFlag range checks — "host:abc" or "host:0" fatal()s naming
 * @p flag, never atoi-wraps to a silent port 0). The port is split
 * off the *last* ':' so IPv6 literals pass through as the host.
 */
HostPort parseHostPort(const char *text, const char *flag);

} // namespace mtv

#endif // MTV_COMMON_STRUTIL_HH
