/**
 * @file
 * Minimal key=value configuration files, so machines and experiments
 * can be described without recompiling (used by the mtv_sim CLI and
 * the trace tool).
 *
 * Format: one `key = value` per line; `#` starts a comment; blank
 * lines ignored; keys are case-sensitive. Values are parsed on
 * access (string / int / double / bool); bools accept
 * true/false/yes/no/on/off/1/0.
 */

#ifndef MTV_COMMON_CONFIG_HH
#define MTV_COMMON_CONFIG_HH

#include <map>
#include <string>
#include <vector>

namespace mtv
{

/** A parsed configuration: an ordered key -> value string map. */
class Config
{
  public:
    Config() = default;

    /** Parse from file contents; fatal() on syntax errors. */
    static Config fromString(const std::string &text,
                             const std::string &originName = "<string>");

    /** Load and parse @p path; fatal() on I/O or syntax errors. */
    static Config fromFile(const std::string &path);

    /** True when @p key was present. */
    bool has(const std::string &key) const;

    /** String value, or @p fallback when absent. */
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;

    /** Integer value; fatal() when present but unparsable. */
    int64_t getInt(const std::string &key, int64_t fallback = 0) const;

    /** Double value; fatal() when present but unparsable. */
    double getDouble(const std::string &key, double fallback = 0) const;

    /** Boolean value; fatal() when present but unparsable. */
    bool getBool(const std::string &key, bool fallback = false) const;

    /** Set (or overwrite) a key programmatically. */
    void set(const std::string &key, const std::string &value);

    /** All keys, in insertion order. */
    const std::vector<std::string> &keys() const { return order_; }

    /**
     * Keys that were never read through any getter — catches typos in
     * user config files. Call after all consumers have run.
     */
    std::vector<std::string> unusedKeys() const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
    mutable std::map<std::string, bool> touched_;
    std::string origin_ = "<none>";
};

} // namespace mtv

#endif // MTV_COMMON_CONFIG_HH
