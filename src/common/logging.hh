/**
 * @file
 * Status-message and error-reporting helpers, modelled on the gem5
 * logging conventions: panic() for internal invariant violations,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef MTV_COMMON_LOGGING_HH
#define MTV_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace mtv
{

/**
 * What fatal() raises inside a ScopedFatalAsException region instead
 * of exiting the process. what() carries the formatted message.
 */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * While an instance is alive on this thread, fatal() throws
 * FatalError instead of calling exit(1). For servers that validate
 * untrusted input through fatal()-reporting code paths (e.g. the mtvd
 * daemon parsing client RunSpecs) and must outlive user errors.
 * Scopes nest; panic() is unaffected (invariant violations still
 * abort).
 */
class ScopedFatalAsException
{
  public:
    ScopedFatalAsException();
    ~ScopedFatalAsException();

    ScopedFatalAsException(const ScopedFatalAsException &) = delete;
    ScopedFatalAsException &
    operator=(const ScopedFatalAsException &) = delete;
};

/** Verbosity levels for status messages. */
enum class LogLevel
{
    Quiet,   ///< only panic/fatal output
    Normal,  ///< warn + inform
    Verbose  ///< everything, including debug traces
};

/** Set the global verbosity for warn()/inform()/debugLog(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Prefix every log line with a monotonic `[seconds.millis]` stamp
 * (process-relative, steady clock — immune to wall-clock jumps).
 * Daemons enable this so multi-process logs (fleet_smoke's N nodes +
 * router) can be correlated by time; CLI tools leave it off.
 */
void setLogTimestamps(bool enabled);

/**
 * Report an internal invariant violation ("this should never happen
 * regardless of what the user does") and abort.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose-only debugging message. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assertion that is always compiled in. Calls panic() with the failing
 * expression text when the condition is false.
 */
#define MTV_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::mtv::panic("assertion '%s' failed at %s:%d", #cond,          \
                         __FILE__, __LINE__);                              \
        }                                                                  \
    } while (0)

} // namespace mtv

#endif // MTV_COMMON_LOGGING_HH
