/**
 * @file
 * Status-message and error-reporting helpers, modelled on the gem5
 * logging conventions: panic() for internal invariant violations,
 * fatal() for user errors, warn()/inform() for status messages.
 */

#ifndef MTV_COMMON_LOGGING_HH
#define MTV_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace mtv
{

/** Verbosity levels for status messages. */
enum class LogLevel
{
    Quiet,   ///< only panic/fatal output
    Normal,  ///< warn + inform
    Verbose  ///< everything, including debug traces
};

/** Set the global verbosity for warn()/inform()/debugLog(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation ("this should never happen
 * regardless of what the user does") and abort.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about questionable but survivable conditions. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informative status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Verbose-only debugging message. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assertion that is always compiled in. Calls panic() with the failing
 * expression text when the condition is false.
 */
#define MTV_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::mtv::panic("assertion '%s' failed at %s:%d", #cond,          \
                         __FILE__, __LINE__);                              \
        }                                                                  \
    } while (0)

} // namespace mtv

#endif // MTV_COMMON_LOGGING_HH
