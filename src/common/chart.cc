#include "src/common/chart.hh"

#include <algorithm>
#include <cmath>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"

namespace mtv
{

BarChart &
BarChart::add(const std::string &label, double value)
{
    MTV_ASSERT(value >= 0);
    entries_.push_back({label, value});
    return *this;
}

BarChart &
BarChart::fullScale(double value)
{
    MTV_ASSERT(value > 0);
    fullScale_ = value;
    return *this;
}

std::string
BarChart::render() const
{
    if (entries_.empty())
        return "";
    double scale = fullScale_;
    if (scale <= 0) {
        for (const auto &e : entries_)
            scale = std::max(scale, e.value);
        if (scale <= 0)
            scale = 1.0;
    }
    size_t labelWidth = 0;
    for (const auto &e : entries_)
        labelWidth = std::max(labelWidth, e.label.size());

    std::string out;
    for (const auto &e : entries_) {
        const int len = static_cast<int>(std::lround(
            std::min(1.0, e.value / scale) * width_));
        out += e.label;
        out += std::string(labelWidth - e.label.size() + 2, ' ');
        out += std::string(static_cast<size_t>(len), '#');
        out += format("  %.3g\n", e.value);
    }
    return out;
}

LineChart &
LineChart::series(const std::string &name, const std::vector<double> &x,
                  const std::vector<double> &y)
{
    MTV_ASSERT(x.size() == y.size());
    MTV_ASSERT(!x.empty());
    static const char glyphs[] = {'*', 'o', '+', 'x', '@', '%'};
    const char glyph = glyphs[series_.size() % sizeof(glyphs)];
    series_.push_back({name, x, y, glyph});
    return *this;
}

std::string
LineChart::render() const
{
    if (series_.empty())
        return "";
    double xMin = series_[0].x[0];
    double xMax = xMin;
    double yMin = series_[0].y[0];
    double yMax = yMin;
    for (const auto &s : series_) {
        for (const double v : s.x) {
            xMin = std::min(xMin, v);
            xMax = std::max(xMax, v);
        }
        for (const double v : s.y) {
            yMin = std::min(yMin, v);
            yMax = std::max(yMax, v);
        }
    }
    if (xMax == xMin)
        xMax = xMin + 1;
    if (yMax == yMin)
        yMax = yMin + 1;
    // A little headroom so curves do not sit on the frame.
    const double yPad = 0.05 * (yMax - yMin);
    yMin -= yPad;
    yMax += yPad;

    std::vector<std::string> grid(
        static_cast<size_t>(height_),
        std::string(static_cast<size_t>(width_), ' '));
    auto plot = [&](double x, double y, char glyph) {
        const int col = static_cast<int>(std::lround(
            (x - xMin) / (xMax - xMin) * (width_ - 1)));
        const int row = static_cast<int>(std::lround(
            (y - yMin) / (yMax - yMin) * (height_ - 1)));
        grid[static_cast<size_t>(height_ - 1 - row)]
            [static_cast<size_t>(col)] = glyph;
    };
    for (const auto &s : series_) {
        // Linear interpolation between samples for a continuous line.
        for (size_t i = 0; i + 1 < s.x.size(); ++i) {
            const int steps = width_;
            for (int k = 0; k <= steps; ++k) {
                const double t = static_cast<double>(k) / steps;
                plot(s.x[i] + t * (s.x[i + 1] - s.x[i]),
                     s.y[i] + t * (s.y[i + 1] - s.y[i]), s.glyph);
            }
        }
        if (s.x.size() == 1)
            plot(s.x[0], s.y[0], s.glyph);
    }

    std::string out = format("  %-10.4g\n", yMax);
    for (const auto &row : grid)
        out += "  |" + row + "\n";
    out += format("  %-10.4g%*s\n", yMin, width_ - 8, "");
    out += format("  x: %.4g .. %.4g\n", xMin, xMax);
    for (const auto &s : series_)
        out += format("    %c %s\n", s.glyph, s.name.c_str());
    return out;
}

} // namespace mtv
