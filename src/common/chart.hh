/**
 * @file
 * Terminal chart rendering for the figure benches: horizontal bar
 * charts (Figures 5-8 style) and multi-series line charts (Figures
 * 10-12 style), so bench output visually mirrors the paper's plots.
 */

#ifndef MTV_COMMON_CHART_HH
#define MTV_COMMON_CHART_HH

#include <string>
#include <vector>

namespace mtv
{

/**
 * Horizontal bar chart. Each entry gets one row: a right-padded
 * label, a bar scaled to the maximum value, and the numeric value.
 */
class BarChart
{
  public:
    /** @param width maximum bar length in characters. */
    explicit BarChart(int width = 50) : width_(width) {}

    /** Append one bar. */
    BarChart &add(const std::string &label, double value);

    /**
     * Fix the value that maps to a full-width bar (default: the
     * maximum of the data; set 1.0 for fractions like occupation).
     */
    BarChart &fullScale(double value);

    /** Render all bars. */
    std::string render() const;

  private:
    struct Entry
    {
        std::string label;
        double value;
    };
    int width_;
    double fullScale_ = 0;  // 0 = auto
    std::vector<Entry> entries_;
};

/**
 * Multi-series line chart on a character grid; x positions are taken
 * from the supplied coordinates (not assumed uniform), y is scaled to
 * the data range. Each series draws with its own glyph.
 */
class LineChart
{
  public:
    LineChart(int width = 64, int height = 16)
        : width_(width), height_(height)
    {}

    /** Add a named series; x and y must have equal lengths. */
    LineChart &series(const std::string &name,
                      const std::vector<double> &x,
                      const std::vector<double> &y);

    /** Render grid, axes and legend. */
    std::string render() const;

  private:
    struct Series
    {
        std::string name;
        std::vector<double> x;
        std::vector<double> y;
        char glyph;
    };
    int width_;
    int height_;
    std::vector<Series> series_;
};

} // namespace mtv

#endif // MTV_COMMON_CHART_HH
