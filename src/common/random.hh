/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * We intentionally do not use std::mt19937 and friends in the workload
 * generator so that trace generation is bit-identical across standard
 * library implementations: reproducibility of the synthetic benchmark
 * suite is part of the experiment contract.
 */

#ifndef MTV_COMMON_RANDOM_HH
#define MTV_COMMON_RANDOM_HH

#include <cstdint>

namespace mtv
{

/**
 * xoshiro256** by Blackman & Vigna — small, fast, and statistically
 * sound for simulation purposes.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        uint64_t x = seed;
        for (auto &w : state_)
            w = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    uint64_t
    below(uint64_t bound)
    {
        // Bounded rejection-free mapping (Lemire); slight bias is
        // irrelevant for workload synthesis but we keep the widening
        // multiply for speed and determinism.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static uint64_t
    splitmix64(uint64_t &x)
    {
        uint64_t z = (x += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    uint64_t state_[4];
};

} // namespace mtv

#endif // MTV_COMMON_RANDOM_HH
