#include "src/common/logging.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace mtv
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;
bool globalTimestamps = false;

/** Depth of nested ScopedFatalAsException regions on this thread. */
thread_local int fatalThrowDepth = 0;

/** Seconds since the process's first timestamped line (steady). */
double
monotonicLogSeconds()
{
    static const std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    if (globalTimestamps)
        std::fprintf(stderr, "[%10.3f] ", monotonicLogSeconds());
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

std::string
vformatMessage(const char *fmt, va_list ap)
{
    va_list copy;
    va_copy(copy, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out(n > 0 ? n : 0, '\0');
    if (n > 0)
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap);
    return out;
}
} // namespace

ScopedFatalAsException::ScopedFatalAsException()
{
    ++fatalThrowDepth;
}

ScopedFatalAsException::~ScopedFatalAsException()
{
    --fatalThrowDepth;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogTimestamps(bool enabled)
{
    if (enabled) {
        // Pin the epoch now, so the first line does not pay the
        // static-init race against concurrent loggers.
        monotonicLogSeconds();
    }
    globalTimestamps = enabled;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    if (fatalThrowDepth > 0) {
        std::string message = vformatMessage(fmt, ap);
        va_end(ap);
        throw FatalError(message);
    }
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info", fmt, ap);
    va_end(ap);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("debug", fmt, ap);
    va_end(ap);
}

} // namespace mtv
