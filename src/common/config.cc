#include "src/common/config.hh"

#include <cstdio>
#include <cstdlib>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"

namespace mtv
{

Config
Config::fromString(const std::string &text, const std::string &originName)
{
    Config cfg;
    cfg.origin_ = originName;
    int lineNo = 0;
    for (const auto &rawLine : split(text, '\n')) {
        ++lineNo;
        std::string line = rawLine;
        const size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const size_t eq = line.find('=');
        if (eq == std::string::npos) {
            fatal("%s:%d: expected 'key = value', got '%s'",
                  originName.c_str(), lineNo, line.c_str());
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty()) {
            fatal("%s:%d: empty key", originName.c_str(), lineNo);
        }
        cfg.set(key, value);
    }
    return cfg;
}

Config
Config::fromFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        fatal("cannot open config file '%s'", path.c_str());
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return fromString(text, path);
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) > 0;
}

std::string
Config::getString(const std::string &key,
                  const std::string &fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    touched_[key] = true;
    return it->second;
}

int64_t
Config::getInt(const std::string &key, int64_t fallback) const
{
    if (!has(key))
        return fallback;
    const std::string raw = getString(key);
    char *end = nullptr;
    const long long v = std::strtoll(raw.c_str(), &end, 0);
    if (end == raw.c_str() || *end != '\0') {
        fatal("%s: key '%s': '%s' is not an integer", origin_.c_str(),
              key.c_str(), raw.c_str());
    }
    return v;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    if (!has(key))
        return fallback;
    const std::string raw = getString(key);
    char *end = nullptr;
    const double v = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0') {
        fatal("%s: key '%s': '%s' is not a number", origin_.c_str(),
              key.c_str(), raw.c_str());
    }
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    if (!has(key))
        return fallback;
    const std::string raw = toLower(getString(key));
    if (raw == "true" || raw == "yes" || raw == "on" || raw == "1")
        return true;
    if (raw == "false" || raw == "no" || raw == "off" || raw == "0")
        return false;
    fatal("%s: key '%s': '%s' is not a boolean", origin_.c_str(),
          key.c_str(), raw.c_str());
}

void
Config::set(const std::string &key, const std::string &value)
{
    if (!values_.count(key))
        order_.push_back(key);
    values_[key] = value;
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> unused;
    for (const auto &key : order_) {
        if (!touched_.count(key))
            unused.push_back(key);
    }
    return unused;
}

} // namespace mtv
