#include "src/common/table.hh"

#include <cstdio>

#include "src/common/logging.hh"
#include "src/common/strutil.hh"

namespace mtv
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    MTV_ASSERT(!headers_.empty());
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    MTV_ASSERT(!rows_.empty());
    MTV_ASSERT(rows_.back().size() < headers_.size());
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(uint64_t v)
{
    return add(std::to_string(v));
}

Table &
Table::add(int v)
{
    return add(std::to_string(v));
}

Table &
Table::add(double v, int precision)
{
    return add(format("%.*f", precision, v));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string &cell = c < cells.size() ? cells[c] : "";
            line += cell;
            if (c + 1 < headers_.size())
                line += std::string(widths[c] - cell.size() + 2, ' ');
        }
        line += '\n';
        return line;
    };

    std::string out = renderRow(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &r : rows_)
        out += renderRow(r);
    return out;
}

std::string
Table::renderCsv() const
{
    auto renderRow = [](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                line += ',';
            line += cells[c];
        }
        line += '\n';
        return line;
    };
    std::string out = renderRow(headers_);
    for (const auto &r : rows_)
        out += renderRow(r);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace mtv
