#include "src/common/strutil.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.hh"

namespace mtv
{

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        const size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
withCommas(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    return {out.rbegin(), out.rend()};
}

long long
parseIntFlag(const char *text, const char *flag, long long min,
             long long max)
{
    errno = 0;
    char *end = nullptr;
    const long long value = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0')
        fatal("%s expects an integer, got '%s'", flag, text);
    if (errno == ERANGE || value < min || value > max)
        fatal("%s must be in [%lld, %lld], got '%s'", flag, min, max,
              text);
    return value;
}

double
parsePositiveFlag(const char *text, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0')
        fatal("%s expects a number, got '%s'", flag, text);
    if (errno == ERANGE || !std::isfinite(value) || value <= 0)
        fatal("%s must be a finite number > 0, got '%s'", flag, text);
    return value;
}

HostPort
parseHostPort(const char *text, const char *flag)
{
    const std::string s(text);
    const size_t colon = s.rfind(':');
    if (colon == std::string::npos)
        fatal("%s expects HOST:PORT, got '%s'", flag, text);
    HostPort out;
    out.host = s.substr(0, colon);
    if (out.host.empty())
        fatal("%s expects a non-empty host, got '%s'", flag, text);
    out.port = static_cast<int>(
        parseIntFlag(s.c_str() + colon + 1, flag, 1, 65535));
    return out;
}

} // namespace mtv
