/**
 * @file
 * ASCII table / CSV report formatting used by all figure and table
 * reproduction benches. Keeps figure output uniform so EXPERIMENTS.md
 * can quote bench output verbatim.
 */

#ifndef MTV_COMMON_TABLE_HH
#define MTV_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace mtv
{

/**
 * A simple right-padded text table with a header row. Cells are
 * strings; numeric helpers format with fixed precision.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent add* calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &add(const std::string &cell);

    /** Append an integer cell. */
    Table &add(uint64_t v);
    Table &add(int v);

    /** Append a floating-point cell with @p precision decimals. */
    Table &add(double v, int precision = 3);

    /** Number of data rows so far. */
    size_t numRows() const { return rows_.size(); }

    /** Render as an aligned ASCII table. */
    std::string render() const;

    /** Render as CSV (no alignment padding). */
    std::string renderCsv() const;

    /** Print render() to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mtv

#endif // MTV_COMMON_TABLE_HH
