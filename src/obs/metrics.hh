/**
 * @file
 * Process-wide metrics registry: named monotonic counters, gauges,
 * and fixed-bucket latency histograms with quantile readout.
 *
 * Design constraints (DESIGN.md §8):
 *  - the hot path is a single relaxed atomic RMW — no locks, no
 *    allocation; the registration mutex is taken only when a handle
 *    is first created (typically once per process in a constructor);
 *  - handles are get-or-create by name and never invalidated: two
 *    engines asking for "engine_cache_hits_total" share one counter,
 *    so per-process totals aggregate naturally and handle lifetime
 *    is the registry's (process) lifetime — safe to cache raw
 *    pointers in long-lived objects;
 *  - snapshots use relaxed loads and are eventually consistent while
 *    writers race; after writers quiesce they are bit-exact;
 *  - names follow the Prometheus convention ([a-zA-Z_][a-zA-Z0-9_]*)
 *    with optional {key="value",...} labels embedded in the name
 *    string, e.g. store_appends_total{shard="3"}. The registry
 *    treats the whole string as the identity; the text exposition
 *    splits it back into base name + labels.
 *
 * This layer depends only on src/common/ (no JSON): the service layer
 * converts MetricsSnapshot to wire JSON (src/service/protocol.hh).
 */

#ifndef MTV_OBS_METRICS_HH
#define MTV_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mtv
{

/** Monotonic counter. inc() is one relaxed fetch_add. */
class Counter
{
  public:
    void
    inc(uint64_t n = 1) noexcept
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Instantaneous signed value (queue depths, in-flight counts). */
class Gauge
{
  public:
    void
    set(int64_t v) noexcept
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    int64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * Fixed-bucket histogram. observe() does a branch-free-ish linear
 * scan over the (small, immutable) bound array plus two relaxed
 * fetch_adds — no locks. Bounds are ascending inclusive upper bounds;
 * one implicit overflow bucket catches everything above the last.
 */
class Histogram
{
  public:
    void observe(uint64_t value) noexcept;

    /** Ascending inclusive upper bounds (excludes the overflow bucket). */
    const std::vector<uint64_t> &
    bounds() const noexcept
    {
        return bounds_;
    }

    uint64_t
    count() const noexcept
    {
        return count_.load(std::memory_order_relaxed);
    }

    uint64_t
    sum() const noexcept
    {
        return sum_.load(std::memory_order_relaxed);
    }

    /** Per-bucket count, index bounds().size() = overflow bucket. */
    uint64_t bucketCount(size_t i) const noexcept;

  private:
    friend class MetricsRegistry;
    explicit Histogram(std::vector<uint64_t> bounds);

    std::vector<uint64_t> bounds_;
    std::unique_ptr<std::atomic<uint64_t>[]> counts_; ///< bounds_.size()+1
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** Point-in-time copy of one histogram, with quantile readout. */
struct HistogramSnapshot
{
    std::string name;
    std::vector<uint64_t> bounds;  ///< upper bounds, ascending
    std::vector<uint64_t> counts;  ///< bounds.size()+1, last = overflow
    uint64_t count = 0;
    uint64_t sum = 0;

    /**
     * Estimate the q-quantile (q in [0,1]) by linear interpolation
     * inside the containing bucket; values landing in the overflow
     * bucket clamp to the last bound. Returns 0 when empty.
     */
    double quantile(double q) const;
};

/** Point-in-time copy of every metric, sorted by name. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
};

/**
 * The registry. One instance per process via instance(); separately
 * constructible for tests that need isolation from global state.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry every layer instruments into. */
    static MetricsRegistry &instance();

    /**
     * Get-or-create handles. Returned pointers live as long as the
     * registry; callers cache them. panic()s on a malformed name or
     * when a name is reused across metric kinds (or, for histograms,
     * re-registered with different bounds).
     */
    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    Histogram *histogram(const std::string &name,
                         const std::vector<uint64_t> &bounds
                             = latencyBucketsUs());

    MetricsSnapshot snapshot() const;

    /**
     * Default histogram bounds for microsecond latencies: roughly
     * 1-2.5-5 per decade from 100us to 60s.
     */
    static const std::vector<uint64_t> &latencyBucketsUs();

    /** Bounds suited to item counts (scatter sizes, batch sizes). */
    static const std::vector<uint64_t> &countBuckets();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** Monotonic clock in microseconds; zero point is process-local. */
uint64_t monotonicMicros();

/**
 * Render a snapshot in the Prometheus text exposition format:
 * one # TYPE line per base metric name, _bucket{le=...}/_sum/_count
 * triplets for histograms, labels merged from the name string.
 */
std::string renderProm(const MetricsSnapshot &snap);

} // namespace mtv

#endif // MTV_OBS_METRICS_HH
