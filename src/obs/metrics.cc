#include "src/obs/metrics.hh"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "src/common/logging.hh"

namespace mtv
{

namespace
{

/**
 * Split "base{labels}" into its parts. Returns false when the name
 * carries no label block.
 */
bool
splitLabels(const std::string &name, std::string &base,
            std::string &labels)
{
    const size_t brace = name.find('{');
    if (brace == std::string::npos) {
        base = name;
        labels.clear();
        return false;
    }
    base = name.substr(0, brace);
    // keep the inner text only; the caller re-wraps as needed
    labels = name.substr(brace + 1, name.size() - brace - 2);
    return true;
}

void
validateName(const std::string &name)
{
    std::string base, labels;
    const bool hasLabels = splitLabels(name, base, labels);
    bool ok = !base.empty()
        && (std::isalpha(static_cast<unsigned char>(base[0]))
            || base[0] == '_');
    for (char c : base) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_')
            ok = false;
    }
    if (hasLabels && (name.back() != '}' || labels.empty()))
        ok = false;
    if (!ok)
        panic("invalid metric name '%s'", name.c_str());
}

} // namespace

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds))
{
    MTV_ASSERT(!bounds_.empty());
    MTV_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
    counts_ = std::make_unique<std::atomic<uint64_t>[]>(
        bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts_[i].store(0, std::memory_order_relaxed);
}

void
Histogram::observe(uint64_t value) noexcept
{
    // Linear scan: the bound arrays are small (~20 entries) and
    // immutable, so this is a handful of predictable compares —
    // cheaper in practice than a binary search for short arrays.
    size_t i = 0;
    while (i < bounds_.size() && value > bounds_[i])
        ++i;
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t
Histogram::bucketCount(size_t i) const noexcept
{
    return counts_[i].load(std::memory_order_relaxed);
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
        const uint64_t inBucket = counts[i];
        if (inBucket == 0)
            continue;
        if (static_cast<double>(cumulative + inBucket) >= target) {
            if (i >= bounds.size())
                return static_cast<double>(bounds.back());
            const double lower =
                i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
            const double upper = static_cast<double>(bounds[i]);
            const double fraction =
                (target - static_cast<double>(cumulative))
                / static_cast<double>(inBucket);
            return lower
                + std::max(0.0, std::min(1.0, fraction))
                * (upper - lower);
        }
        cumulative += inBucket;
    }
    return bounds.empty() ? 0.0 : static_cast<double>(bounds.back());
}

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    validateName(name);
    std::lock_guard<std::mutex> lock(mutex_);
    if (gauges_.count(name) || histograms_.count(name))
        panic("metric '%s' already registered as another kind",
              name.c_str());
    auto &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter());
    return slot.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    validateName(name);
    std::lock_guard<std::mutex> lock(mutex_);
    if (counters_.count(name) || histograms_.count(name))
        panic("metric '%s' already registered as another kind",
              name.c_str());
    auto &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge());
    return slot.get();
}

Histogram *
MetricsRegistry::histogram(const std::string &name,
                           const std::vector<uint64_t> &bounds)
{
    validateName(name);
    if (bounds.empty())
        panic("histogram '%s' needs at least one bucket bound",
              name.c_str());
    std::lock_guard<std::mutex> lock(mutex_);
    if (counters_.count(name) || gauges_.count(name))
        panic("metric '%s' already registered as another kind",
              name.c_str());
    auto &slot = histograms_[name];
    if (!slot) {
        slot.reset(new Histogram(bounds));
    } else if (slot->bounds() != bounds) {
        panic("histogram '%s' re-registered with different bounds",
              name.c_str());
    }
    return slot.get();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &kv : counters_)
        snap.counters.emplace_back(kv.first, kv.second->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &kv : gauges_)
        snap.gauges.emplace_back(kv.first, kv.second->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        HistogramSnapshot hs;
        hs.name = kv.first;
        hs.bounds = h.bounds();
        hs.counts.resize(h.bounds().size() + 1);
        for (size_t i = 0; i < hs.counts.size(); ++i)
            hs.counts[i] = h.bucketCount(i);
        hs.count = h.count();
        hs.sum = h.sum();
        snap.histograms.push_back(std::move(hs));
    }
    return snap;
}

const std::vector<uint64_t> &
MetricsRegistry::latencyBucketsUs()
{
    // 1-2.5-5 per decade, 100us .. 60s: wide enough that a CI queue
    // stall is still representable, fine enough that p99 readout has
    // sub-decade resolution in the interactive range.
    static const std::vector<uint64_t> bounds = {
        100,      250,      500,      1000,     2500,     5000,
        10000,    25000,    50000,    100000,   250000,   500000,
        1000000,  2500000,  5000000,  10000000, 30000000, 60000000,
    };
    return bounds;
}

const std::vector<uint64_t> &
MetricsRegistry::countBuckets()
{
    static const std::vector<uint64_t> bounds = {
        1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000,
    };
    return bounds;
}

uint64_t
monotonicMicros()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(duration_cast<microseconds>(
        steady_clock::now().time_since_epoch()).count());
}

// ---------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------

namespace
{

void
appendPromLine(std::string &out, const std::string &base,
               const std::string &suffix, const std::string &labels,
               const std::string &extraLabel, uint64_t value)
{
    out += base;
    out += suffix;
    if (!labels.empty() || !extraLabel.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extraLabel.empty())
            out += ',';
        out += extraLabel;
        out += '}';
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(value));
    out += buf;
}

void
appendTypeOnce(std::string &out, std::string &lastTyped,
               const std::string &base, const char *kind)
{
    // Metrics differing only in labels share one base name; emit the
    // # TYPE header once per base, relying on the sorted snapshot
    // order to keep same-base entries adjacent.
    if (base == lastTyped)
        return;
    out += "# TYPE ";
    out += base;
    out += ' ';
    out += kind;
    out += '\n';
    lastTyped = base;
}

} // namespace

std::string
renderProm(const MetricsSnapshot &snap)
{
    std::string out;
    std::string lastTyped;

    for (const auto &kv : snap.counters) {
        std::string base, labels;
        splitLabels(kv.first, base, labels);
        appendTypeOnce(out, lastTyped, base, "counter");
        appendPromLine(out, base, "", labels, "", kv.second);
    }
    lastTyped.clear();
    for (const auto &kv : snap.gauges) {
        std::string base, labels;
        splitLabels(kv.first, base, labels);
        appendTypeOnce(out, lastTyped, base, "gauge");
        out += base;
        if (!labels.empty()) {
            out += '{';
            out += labels;
            out += '}';
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %lld\n",
                      static_cast<long long>(kv.second));
        out += buf;
    }
    lastTyped.clear();
    for (const HistogramSnapshot &h : snap.histograms) {
        std::string base, labels;
        splitLabels(h.name, base, labels);
        appendTypeOnce(out, lastTyped, base, "histogram");
        uint64_t cumulative = 0;
        for (size_t i = 0; i < h.bounds.size(); ++i) {
            cumulative += h.counts[i];
            char le[40];
            std::snprintf(le, sizeof(le), "le=\"%llu\"",
                          static_cast<unsigned long long>(h.bounds[i]));
            appendPromLine(out, base, "_bucket", labels, le, cumulative);
        }
        cumulative += h.counts.back();
        appendPromLine(out, base, "_bucket", labels, "le=\"+Inf\"",
                       cumulative);
        appendPromLine(out, base, "_sum", labels, "", h.sum);
        appendPromLine(out, base, "_count", labels, "", h.count);
    }
    return out;
}

} // namespace mtv
