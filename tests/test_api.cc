/**
 * @file
 * Tests for src/api: RunSpec serialization/hash round-trips, the
 * ExperimentEngine's shared result cache, worker-count-independent
 * determinism, SweepBuilder expansion, and the custom-program
 * registry.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <mutex>
#include <unordered_map>

#include "src/api/engine.hh"
#include "src/api/sweep.hh"
#include "src/driver/experiments.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

/** Field-by-field SimStats equality (bit-identical runs). */
void
expectSameStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.vecOpsFu1, b.vecOpsFu1);
    EXPECT_EQ(a.vecOpsFu2, b.vecOpsFu2);
    EXPECT_EQ(a.dispatches, b.dispatches);
    EXPECT_EQ(a.decodeIdle, b.decodeIdle);
    EXPECT_EQ(a.stateHist, b.stateHist);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (size_t i = 0; i < a.threads.size(); ++i) {
        EXPECT_EQ(a.threads[i].instructions, b.threads[i].instructions);
        EXPECT_EQ(a.threads[i].runsCompleted,
                  b.threads[i].runsCompleted);
        EXPECT_EQ(a.threads[i].instructionsThisRun,
                  b.threads[i].instructionsThisRun);
    }
}

// ---------------------------------------------------------------------
// RunSpec
// ---------------------------------------------------------------------

TEST(RunSpec, CanonicalRoundTripSingle)
{
    MachineParams p = MachineParams::reference();
    p.memLatency = 73;
    const RunSpec spec = RunSpec::single("tomcatv", p, 1e-4, 123);
    const RunSpec back = RunSpec::parse(spec.canonical());
    EXPECT_EQ(spec, back);
    EXPECT_EQ(spec.canonical(), back.canonical());
    EXPECT_EQ(spec.key(), back.key());
}

TEST(RunSpec, CanonicalRoundTripGroup)
{
    MachineParams p = MachineParams::multithreaded(3);
    p.sched = SchedPolicy::FairLru;
    p.renaming = true;
    const RunSpec spec =
        RunSpec::group({"swm256", "hydro2d", "trfd"}, p, testScale);
    const RunSpec back = RunSpec::parse(spec.canonical());
    EXPECT_EQ(spec, back);
    EXPECT_EQ(back.mode, SpecMode::Group);
    EXPECT_EQ(back.params.contexts, 3);
    EXPECT_EQ(back.params.sched, SchedPolicy::FairLru);
    EXPECT_TRUE(back.params.renaming);
}

TEST(RunSpec, CanonicalRoundTripJobQueue)
{
    MachineParams p = MachineParams::crayStyle(4);
    p.decodeWidth = 2;
    p.bankedMemory = true;
    const RunSpec spec = RunSpec::jobQueue(jobQueueOrder(), p, 3e-5);
    const RunSpec back = RunSpec::parse(spec.canonical());
    EXPECT_EQ(spec, back);
    EXPECT_EQ(back.programs.size(), jobQueueOrder().size());
    EXPECT_EQ(back.params.loadPorts, 2);
    EXPECT_EQ(back.params.storePorts, 1);
}

TEST(RunSpec, AbbreviationsCanonicalize)
{
    const RunSpec a =
        RunSpec::single("sw", MachineParams::reference(), testScale);
    const RunSpec b = RunSpec::single("swm256",
                                      MachineParams::reference(),
                                      testScale);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.programs[0], "swm256");
}

TEST(RunSpec, KeyDiscriminates)
{
    const RunSpec a =
        RunSpec::single("swm256", MachineParams::reference(),
                        testScale);
    MachineParams p = MachineParams::reference();
    p.memLatency = 51;
    const RunSpec b = RunSpec::single("swm256", p, testScale);
    const RunSpec c =
        RunSpec::single("hydro2d", MachineParams::reference(),
                        testScale);
    EXPECT_NE(a.key(), b.key());
    EXPECT_NE(a.key(), c.key());
    EXPECT_NE(a.canonical(), b.canonical());
}

TEST(RunSpec, MachineParamsCanonicalRoundTrip)
{
    MachineParams p = MachineParams::multithreaded(4);
    p.sched = SchedPolicy::RoundRobin;
    p.decodeWidth = 2;
    p.readXbar = 3;
    p.memLatency = 87;
    p.bankedMemory = true;
    p.memBanks = 128;
    p.decoupleDepth = 6;
    const MachineParams q = MachineParams::fromCanonical(p.canonical());
    EXPECT_EQ(p.canonical(), q.canonical());
    EXPECT_EQ(q.sched, SchedPolicy::RoundRobin);
    EXPECT_EQ(q.memBanks, 128);
    EXPECT_EQ(q.decoupleDepth, 6);
}

TEST(RunSpecDeath, UnknownProgram)
{
    EXPECT_EXIT(
        {
            RunSpec::single("nonesuch", MachineParams::reference(),
                            testScale);
        },
        testing::ExitedWithCode(1), "unknown");
}

TEST(RunSpecDeath, MalformedParse)
{
    EXPECT_EXIT({ RunSpec::parse("mode=single;oops"); },
                testing::ExitedWithCode(1), "malformed");
}

TEST(RunSpecDeath, GarbageNumericFieldsRejected)
{
    const RunSpec good = RunSpec::single(
        "tomcatv", MachineParams::reference(), testScale);
    std::string withBadMax = good.canonical();
    withBadMax.replace(withBadMax.find(";max=0;"), 7, ";max=10k;");
    EXPECT_EXIT({ RunSpec::parse(withBadMax); },
                testing::ExitedWithCode(1), "not an unsigned");

    std::string withBadScale = good.canonical();
    const size_t at = withBadScale.find(";max=");
    withBadScale =
        "mode=single;scale=fast" + withBadScale.substr(at);
    EXPECT_EXIT({ RunSpec::parse(withBadScale); },
                testing::ExitedWithCode(1), "not a number");
}

TEST(RunSpec, ReferenceStripsMultithreading)
{
    MachineParams p = MachineParams::fujitsuDualScalar();
    p.memLatency = 70;
    const MachineParams ref = referenceMachineOf(p);
    EXPECT_EQ(ref.contexts, 1);
    EXPECT_EQ(ref.decodeWidth, 1);
    EXPECT_FALSE(ref.dualScalar);
    EXPECT_EQ(ref.memLatency, 70);  // non-MT knobs preserved
}

// ---------------------------------------------------------------------
// ExperimentEngine: cache behaviour
// ---------------------------------------------------------------------

TEST(Engine, CacheHitReturnsIdenticalStats)
{
    ExperimentEngine engine(EngineOptions{1});
    const RunSpec spec =
        RunSpec::single("flo52", MachineParams::reference(), testScale);

    const RunResult first = engine.run(spec);
    EXPECT_FALSE(first.cached);
    const RunResult second = engine.run(spec);
    EXPECT_TRUE(second.cached);
    expectSameStats(first.stats, second.stats);
    EXPECT_GE(engine.cacheHits(), 1u);

    // statsFor returns the same cached object both times.
    const SimStats &a = engine.statsFor(spec);
    const SimStats &b = engine.statsFor(spec);
    EXPECT_EQ(&a, &b);
}

TEST(Engine, CacheKeyedByMachine)
{
    ExperimentEngine engine(EngineOptions{1});
    MachineParams p70 = MachineParams::reference();
    p70.memLatency = 70;
    const SimStats &fast = engine.statsFor(
        RunSpec::single("trfd", MachineParams::reference(), testScale));
    const SimStats &slow =
        engine.statsFor(RunSpec::single("trfd", p70, testScale));
    EXPECT_LT(fast.cycles, slow.cycles);
    EXPECT_EQ(engine.cacheSize(), 2u);
}

TEST(Engine, GroupReferenceRunsAreShared)
{
    // The 5 two-thread groupings of one program share reference runs;
    // the cache should hold far fewer entries than naive re-running.
    ExperimentEngine engine(EngineOptions{2});
    SweepBuilder sweep(testScale);
    sweep.addGroupings("trfd", 2, MachineParams::multithreaded(2));
    const auto results = engine.runAll(sweep.specs());
    ASSERT_EQ(results.size(), 5u);
    for (const auto &r : results)
        EXPECT_GT(r.speedup, 0.0);
    EXPECT_GE(engine.cacheHits(), 1u);

    // Re-running the identical batch is served entirely from the
    // caches (group metrics included) with identical values.
    const uint64_t missesBefore = engine.cacheMisses();
    const auto again = engine.runAll(sweep.specs());
    EXPECT_EQ(engine.cacheMisses(), missesBefore);
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_TRUE(again[i].cached);
        EXPECT_DOUBLE_EQ(again[i].speedup, results[i].speedup);
        EXPECT_DOUBLE_EQ(again[i].refVopc, results[i].refVopc);
    }
}

TEST(Engine, UncachedModeNeverHits)
{
    EngineOptions options;
    options.workers = 1;
    options.memoize = false;
    ExperimentEngine engine(options);
    const RunSpec spec =
        RunSpec::single("dyfesm", MachineParams::reference(),
                        testScale);
    const RunResult a = engine.run(spec);
    const RunResult b = engine.run(spec);
    EXPECT_FALSE(a.cached);
    EXPECT_FALSE(b.cached);
    EXPECT_EQ(engine.cacheSize(), 0u);
    expectSameStats(a.stats, b.stats);
}

TEST(Engine, KernelSelectionIsBitIdentical)
{
    // The A/B knob behind the event-driven kernel: an engine pinned
    // to the stepped reference must reproduce the default engine's
    // stats field for field, on every run methodology.
    const std::vector<RunSpec> specs = {
        RunSpec::single("flo52", MachineParams::reference(),
                        testScale),
        RunSpec::group({"swm256", "tomcatv"},
                       MachineParams::multithreaded(2), testScale),
        RunSpec::jobQueue({"trfd", "dyfesm", "flo52"},
                          MachineParams::multithreaded(3), testScale),
    };
    EngineOptions stepped;
    stepped.workers = 1;
    stepped.kernel = SimKernel::Stepped;
    EngineOptions event;
    event.workers = 1;
    event.kernel = SimKernel::Event;
    ExperimentEngine a(stepped);
    ExperimentEngine b(event);
    EXPECT_EQ(a.kernel(), SimKernel::Stepped);
    EXPECT_EQ(b.kernel(), SimKernel::Event);
    for (const RunSpec &spec : specs) {
        SCOPED_TRACE(spec.canonical());
        expectSameStats(a.run(spec).stats, b.run(spec).stats);
    }
}

// ---------------------------------------------------------------------
// ExperimentEngine: determinism across worker counts
// ---------------------------------------------------------------------

TEST(Engine, BatchDeterministicAcrossWorkerCounts)
{
    // A mixed 4-spec batch: single, group, job queue, truncated
    // single. 1 worker and 4 workers must produce bit-identical
    // results in the same (submission) order.
    MachineParams mth2 = MachineParams::multithreaded(2);
    MachineParams ref = MachineParams::reference();
    const std::vector<RunSpec> specs = {
        RunSpec::single("tomcatv", ref, testScale),
        RunSpec::group({"trfd", "swm256"}, mth2, testScale),
        RunSpec::jobQueue({"flo52", "dyfesm", "trfd"}, mth2,
                          testScale),
        RunSpec::single("dyfesm", ref, testScale, 500),
    };

    ExperimentEngine serial(EngineOptions{1});
    ExperimentEngine parallel4(EngineOptions{4});
    const auto a = serial.runAll(specs);
    const auto b = parallel4.runAll(specs);
    ASSERT_EQ(a.size(), specs.size());
    ASSERT_EQ(b.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(a[i].spec, b[i].spec);
        expectSameStats(a[i].stats, b[i].stats);
        EXPECT_DOUBLE_EQ(a[i].speedup, b[i].speedup);
        EXPECT_DOUBLE_EQ(a[i].refOccupation, b[i].refOccupation);
        EXPECT_DOUBLE_EQ(a[i].refVopc, b[i].refVopc);
    }
}

TEST(Engine, MatchesDriverAdapter)
{
    // The Runner adapter and the engine must agree exactly.
    Runner runner(testScale, 1);
    ExperimentEngine engine(EngineOptions{1});

    MachineParams mth2 = MachineParams::multithreaded(2);
    const GroupResult viaRunner =
        runner.runGroup({"tomcatv", "swm256"}, mth2);
    const RunResult viaEngine = engine.run(
        RunSpec::group({"tomcatv", "swm256"}, mth2, testScale));
    expectSameStats(viaRunner.mth, viaEngine.stats);
    EXPECT_DOUBLE_EQ(viaRunner.speedup, viaEngine.speedup);
    EXPECT_DOUBLE_EQ(viaRunner.mthOccupation, viaEngine.mthOccupation);
    EXPECT_DOUBLE_EQ(viaRunner.refVopc, viaEngine.refVopc);
}

TEST(Engine, SequentialReferenceCyclesIsSumOfRuns)
{
    ExperimentEngine engine(EngineOptions{2});
    const std::vector<std::string> jobs = {"flo52", "trfd", "dyfesm"};
    const MachineParams ref = MachineParams::reference();
    uint64_t expected = 0;
    for (const auto &job : jobs)
        expected +=
            engine.statsFor(RunSpec::reference(job, ref, testScale))
                .cycles;
    EXPECT_EQ(engine.sequentialReferenceCycles(jobs, ref, testScale),
              expected);
}

// ---------------------------------------------------------------------
// SweepBuilder
// ---------------------------------------------------------------------

TEST(Sweep, GroupingSliceShapes)
{
    SweepBuilder sweep(testScale);
    sweep.addGroupings("swm256", 2, MachineParams::multithreaded(2));
    sweep.addGroupings("swm256", 3, MachineParams::multithreaded(3));
    sweep.addGroupings("swm256", 4, MachineParams::multithreaded(4));
    ASSERT_EQ(sweep.slices().size(), 3u);
    EXPECT_EQ(sweep.slices()[0].count, 5u);
    EXPECT_EQ(sweep.slices()[1].count, 10u);
    EXPECT_EQ(sweep.slices()[2].count, 10u);
    EXPECT_EQ(sweep.size(), 25u);
    // Every spec's thread 0 is the measured program.
    for (const auto &spec : sweep.specs())
        EXPECT_EQ(spec.programs[0], "swm256");
}

TEST(Sweep, AverageOfMatchesAveragesFor)
{
    Runner runner(testScale, 2);
    const MachineParams p = MachineParams::multithreaded(2);
    const ProgramAverages viaDriver =
        averagesFor(runner, "trfd", 2, p);

    SweepBuilder sweep(testScale);
    sweep.addGroupings("trfd", 2, p);
    const auto results = runner.engine().runAll(sweep.specs());
    const GroupAverages viaSweep =
        averageOf(sweep.slices().front(), results);

    EXPECT_EQ(viaDriver.runs, viaSweep.runs);
    EXPECT_DOUBLE_EQ(viaDriver.speedup, viaSweep.speedup);
    EXPECT_DOUBLE_EQ(viaDriver.mthVopc, viaSweep.mthVopc);
}

TEST(Sweep, LatencySweepExpansion)
{
    SweepBuilder sweep(testScale);
    sweep.addLatencySweep({"flo52", "trfd"},
                          MachineParams::multithreaded(2),
                          {1, 50, 100}, "mth2");
    ASSERT_EQ(sweep.size(), 3u);
    EXPECT_EQ(sweep.specs()[0].params.memLatency, 1);
    EXPECT_EQ(sweep.specs()[2].params.memLatency, 100);
    EXPECT_EQ(sweep.slices().front().label, "mth2");
    EXPECT_EQ(sweep.slices().front().count, 3u);
}

// ---------------------------------------------------------------------
// Custom-program registry
// ---------------------------------------------------------------------

TEST(Registry, CustomProgramRunsByName)
{
    ProgramSpec daxpy = makeDaxpySpec(64 * 1024);
    daxpy.name = "testdaxpy";
    daxpy.abbrev = "td";
    registerProgram(daxpy);

    ExperimentEngine engine(EngineOptions{1});
    const RunResult r = engine.run(
        RunSpec::single("testdaxpy", MachineParams::reference(), 1.0));
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_GT(r.stats.dispatches, 0u);

    // Round-trips like a suite program.
    const RunSpec spec = RunSpec::single(
        "td", MachineParams::reference(), 1.0);
    EXPECT_EQ(spec.programs[0], "testdaxpy");
    EXPECT_EQ(RunSpec::parse(spec.canonical()), spec);
}

TEST(RegistryDeath, SuiteCollisionRejected)
{
    ProgramSpec clash = makeDaxpySpec(1024);
    clash.name = "swm256";
    EXPECT_EXIT({ registerProgram(clash); },
                testing::ExitedWithCode(1), "collides");
}

TEST(RegistryDeath, NameVsAbbreviationCollisionRejected)
{
    // A custom *name* equal to a suite *abbreviation* would be
    // silently shadowed by the suite lookup; it must be rejected.
    ProgramSpec clash = makeDaxpySpec(1024);
    clash.name = "sw";
    clash.abbrev = "zz";
    EXPECT_EXIT({ registerProgram(clash); },
                testing::ExitedWithCode(1), "collides");
}

TEST(RegistryDeath, DelimiterInNameRejected)
{
    // ',' / ';' / '=' are RunSpec canonical-form structure; an
    // identifier containing them would serialize ambiguously.
    ProgramSpec bad = makeDaxpySpec(1024);
    bad.name = "my,prog";
    bad.abbrev = "mp";
    EXPECT_EXIT({ registerProgram(bad); },
                testing::ExitedWithCode(1), "invalid character");
}

TEST(RegistryDeath, ReRegistrationRejected)
{
    // Registrations are permanent: findProgram hands out references
    // into the registry and cached results are keyed by name.
    ProgramSpec spec = makeDaxpySpec(1024);
    spec.name = "permanent";
    spec.abbrev = "pm";
    EXPECT_EXIT(
        {
            registerProgram(spec);
            registerProgram(spec);
        },
        testing::ExitedWithCode(1), "already-registered");
}

// ---------------------------------------------------------------------
// Cache bounding (for long-lived daemons) and streaming submission
// ---------------------------------------------------------------------

/** Distinct single-mode specs (memory latency varied). */
std::vector<RunSpec>
distinctSpecs(int n)
{
    std::vector<RunSpec> specs;
    for (int i = 0; i < n; ++i) {
        MachineParams p = MachineParams::reference();
        p.memLatency = 10 + i;
        specs.push_back(RunSpec::single("trfd", p, testScale));
    }
    return specs;
}

TEST(Engine, CacheCapEvictsLeastRecentlyUsed)
{
    EngineOptions options;
    options.workers = 1;
    options.maxCacheEntries = 2;
    ExperimentEngine engine(options);
    const auto specs = distinctSpecs(3);

    const RunResult r0 = engine.run(specs[0]);
    engine.run(specs[1]);
    EXPECT_EQ(engine.cacheSize(), 2u);
    EXPECT_EQ(engine.cacheEvictions(), 0u);

    // Touch spec 0 so spec 1 is the LRU victim of the overflow.
    EXPECT_TRUE(engine.run(specs[0]).cached);
    engine.run(specs[2]);
    EXPECT_EQ(engine.cacheSize(), 2u);
    EXPECT_EQ(engine.cacheEvictions(), 1u);

    EXPECT_TRUE(engine.run(specs[0]).cached);   // survived
    const RunResult r1Again = engine.run(specs[1]);
    EXPECT_FALSE(r1Again.cached);               // evicted, re-simulated
    // Eviction changes cost, never results.
    const RunResult r0Again = engine.run(specs[0]);
    expectSameStats(r0Again.stats, r0.stats);
}

TEST(Engine, ClearDropsEntriesButNotDeterminism)
{
    ExperimentEngine engine;
    const auto specs = distinctSpecs(2);
    const RunResult before = engine.run(specs[0]);
    engine.run(specs[1]);
    EXPECT_EQ(engine.cacheSize(), 2u);

    engine.clear();
    EXPECT_EQ(engine.cacheSize(), 0u);
    const RunResult after = engine.run(specs[0]);
    EXPECT_FALSE(after.cached);
    expectSameStats(after.stats, before.stats);
}

TEST(EngineDeath, StatsForRejectsCappedEngine)
{
    EngineOptions options;
    options.maxCacheEntries = 8;
    EXPECT_EXIT(
        {
            ExperimentEngine engine(options);
            engine.statsFor(RunSpec::single(
                "trfd", MachineParams::reference(), testScale));
        },
        testing::ExitedWithCode(1), "unbounded");
}

TEST(Engine, SubmitStreamsResultsInSubmissionOrder)
{
    ExperimentEngine engine;
    const auto specs = distinctSpecs(4);
    const auto expected = engine.runAll(specs);

    ExperimentEngine fresh;
    std::vector<std::future<RunResult>> futures;
    for (const auto &spec : specs)
        futures.push_back(fresh.submit(spec));
    for (size_t i = 0; i < specs.size(); ++i) {
        const RunResult streamed = futures[i].get();
        EXPECT_EQ(streamed.spec, specs[i]);
        expectSameStats(streamed.stats, expected[i].stats);
    }
}

TEST(Engine, SubmitHookFiresOncePerSpecBeforeFutureReady)
{
    ExperimentEngine engine;
    const auto specs = distinctSpecs(4);
    std::atomic<int> completed{0};
    std::mutex seenMutex;
    std::vector<std::string> seen;
    std::vector<std::future<RunResult>> futures;
    for (const auto &spec : specs) {
        futures.push_back(engine.submit(
            spec, [&completed, &seenMutex, &seen](const RunResult &r) {
                ++completed;
                std::lock_guard<std::mutex> lock(seenMutex);
                seen.push_back(r.spec.canonical());
            }));
    }
    for (auto &future : futures)
        future.get();
    // Each future became ready only after its hook ran, so by now
    // every hook has fired exactly once.
    EXPECT_EQ(completed.load(), 4);
    std::sort(seen.begin(), seen.end());
    std::vector<std::string> want;
    for (const auto &spec : specs)
        want.push_back(spec.canonical());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(seen, want);
}

namespace
{

/**
 * A thread-safe in-memory backend that counts store() calls, for
 * asserting that cancelled work never writes through.
 */
class CountingBackend : public ResultBackend
{
  public:
    std::shared_ptr<const SimStats>
    load(const std::string &key) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map_.find(key);
        return it == map_.end() ? nullptr : it->second;
    }

    void
    store(const std::string &key, const SimStats &stats) override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        map_[key] = std::make_shared<SimStats>(stats);
        ++stores_;
    }

    size_t
    size() const override
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return map_.size();
    }

    int
    stores() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return stores_;
    }

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<const SimStats>>
        map_;
    int stores_ = 0;
};

/**
 * Parks a 1-worker engine: submits one spec whose completion hook
 * blocks until release(), so everything submitted afterwards stays
 * queued — the deterministic setup for the cancellation and lane
 * scheduling tests.
 */
class WorkerGate
{
  public:
    explicit WorkerGate(ExperimentEngine &engine)
    {
        MachineParams params = MachineParams::reference();
        params.memLatency = 199;  // distinct from every other spec
        std::shared_future<void> released =
            gate_.get_future().share();
        done_ = engine.submit(
            RunSpec::single("trfd", params, testScale),
            [released](const RunResult &) { released.wait(); });
    }

    void
    release()
    {
        gate_.set_value();
        done_.get();
    }

  private:
    std::promise<void> gate_;
    std::future<RunResult> done_;
};

} // namespace

TEST(Engine, CancelledBatchNeverSimulatesOrWritesBackend)
{
    auto backend = std::make_shared<CountingBackend>();
    EngineOptions options(1);
    options.backend = backend;
    ExperimentEngine engine(options);
    WorkerGate gate(engine);

    const auto specs = distinctSpecs(5);
    auto token = std::make_shared<CancelToken>();
    std::vector<std::future<RunResult>> futures;
    for (const auto &spec : specs)
        futures.push_back(engine.submit(spec, nullptr, token));
    EXPECT_GE(engine.queueDepth(), specs.size());

    // Cancelled while every point still sits in the lane: the worker
    // must skip them all — no simulation, no backend write-through.
    token->cancel();
    gate.release();
    for (auto &future : futures)
        EXPECT_THROW(future.get(), CancelledError);
    EXPECT_EQ(engine.cancelledRuns(), specs.size());
    EXPECT_EQ(engine.cacheMisses(), 1u);  // the gate spec only
    EXPECT_EQ(backend->stores(), 1);
    EXPECT_EQ(engine.queueDepth(), 0u);

    // The engine is healthy: the same specs run normally afterwards.
    const auto results = engine.runAll(specs);
    EXPECT_EQ(results.size(), specs.size());
    EXPECT_EQ(backend->stores(), 1 + static_cast<int>(specs.size()));
}

TEST(Engine, LaneRoundRobinAvoidsHeadOfLineBlocking)
{
    ExperimentEngine engine(1);
    WorkerGate gate(engine);

    const LaneId bulkLane = engine.openLane();
    const LaneId interactiveLane = engine.openLane();

    std::mutex orderMutex;
    std::vector<std::string> order;
    auto record = [&orderMutex, &order](const RunResult &r) {
        std::lock_guard<std::mutex> lock(orderMutex);
        order.push_back(r.spec.canonical());
    };

    // A 6-point "sweep" queued first on its own lane, then one
    // interactive point on another: round-robin must run the
    // interactive point next-ish, not after the whole sweep.
    const auto bulk = distinctSpecs(6);
    std::vector<std::future<RunResult>> futures;
    for (const auto &spec : bulk)
        futures.push_back(
            engine.submit(spec, record, nullptr, bulkLane));
    MachineParams params = MachineParams::reference();
    params.memLatency = 177;
    const RunSpec interactive =
        RunSpec::single("swm256", params, testScale);
    futures.push_back(engine.submit(interactive, record, nullptr,
                                    interactiveLane));

    gate.release();
    for (auto &future : futures)
        future.get();

    ASSERT_EQ(order.size(), bulk.size() + 1);
    const auto pos = std::find(order.begin(), order.end(),
                               interactive.canonical());
    ASSERT_NE(pos, order.end());
    EXPECT_LT(pos - order.begin(), 2)
        << "interactive run was head-of-line blocked by the sweep";
}

TEST(Engine, CloseLaneDropsQueuedTasksAndAbandonsLateSubmits)
{
    ExperimentEngine engine(1);
    WorkerGate gate(engine);

    const LaneId lane = engine.openLane();
    const auto specs = distinctSpecs(4);
    std::vector<std::future<RunResult>> futures;
    for (const auto &spec : specs)
        futures.push_back(
            engine.submit(spec, nullptr, nullptr, lane));

    EXPECT_EQ(engine.closeLane(lane), specs.size());
    EXPECT_EQ(engine.discardedTasks(), specs.size());
    // A submit racing the close is abandoned, not lost in limbo.
    auto late = engine.submit(specs[0], nullptr, nullptr, lane);

    gate.release();
    for (auto &future : futures)
        EXPECT_THROW(future.get(), std::future_error);
    EXPECT_THROW(late.get(), std::future_error);
    EXPECT_EQ(engine.cacheMisses(), 1u);  // the gate spec only
}

// ---------------------------------------------------------------------
// Named sweep families
// ---------------------------------------------------------------------

TEST(SweepRegistry, FamiliesAreRegistered)
{
    std::vector<std::string> names;
    for (const auto &family : sweepFamilies())
        names.push_back(family.name);
    EXPECT_NE(std::find(names.begin(), names.end(), "suite-grouping"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "groupings"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "latency"),
              names.end());
}

TEST(SweepRegistry, SuiteGroupingExpandsIdentically)
{
    SweepRequest request;
    request.family = "suite-grouping";
    request.scale = testScale;
    const SweepBuilder expanded = expandSweep(request);
    const SweepBuilder direct = suiteGroupingSweep(testScale);
    ASSERT_EQ(expanded.size(), direct.size());
    for (size_t i = 0; i < expanded.size(); ++i)
        EXPECT_EQ(expanded.specs()[i], direct.specs()[i]);
    EXPECT_EQ(expanded.slices().size(), direct.slices().size());
}

TEST(SweepRegistry, GroupingsAndLatencyFamilies)
{
    SweepRequest groupings;
    groupings.family = "groupings";
    groupings.scale = testScale;
    groupings.program = "swm256";
    groupings.contexts = 3;
    const SweepBuilder bar = expandSweep(groupings);
    EXPECT_EQ(bar.size(), 10u);
    ASSERT_EQ(bar.slices().size(), 1u);
    EXPECT_EQ(bar.slices().front().label, "swm256");

    SweepRequest latency;
    latency.family = "latency";
    latency.scale = testScale;
    latency.jobs = {"flo52", "trfd"};
    latency.latencies = {1, 100};
    latency.contexts = 2;
    const SweepBuilder lats = expandSweep(latency);
    ASSERT_EQ(lats.size(), 2u);
    EXPECT_EQ(lats.specs()[0].params.memLatency, 1);
    EXPECT_EQ(lats.specs()[1].params.memLatency, 100);
    EXPECT_EQ(lats.specs()[0].mode, SpecMode::JobQueue);

    // Defaults: the paper's job-queue order and latency list.
    SweepRequest defaults;
    defaults.family = "latency";
    defaults.scale = testScale;
    const SweepBuilder fig10 = expandSweep(defaults);
    EXPECT_EQ(fig10.size(), sweepLatencies().size());
    EXPECT_EQ(fig10.specs()[0].params.contexts, 4);
}

TEST(SweepRegistryDeath, UnknownFamilyAndMissingParamsRejected)
{
    SweepRequest bogus;
    bogus.family = "no-such-family";
    EXPECT_EXIT(expandSweep(bogus), testing::ExitedWithCode(1),
                "unknown sweep family");
    SweepRequest incomplete;
    incomplete.family = "groupings";
    EXPECT_EXIT(expandSweep(incomplete), testing::ExitedWithCode(1),
                "needs a program");
    incomplete.program = "trfd";
    EXPECT_EXIT(expandSweep(incomplete), testing::ExitedWithCode(1),
                "needs contexts");
}

} // namespace
} // namespace mtv
