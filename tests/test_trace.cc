/**
 * @file
 * Unit tests for src/trace: sources, binary/text trace files, and the
 * analyzer (Table 3 statistics + IDEAL bound).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/trace/analyzer.hh"
#include "src/trace/source.hh"
#include "src/trace/trace_file.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

std::vector<Instruction>
sampleInstructions()
{
    return {
        makeScalar(Opcode::SAddInt, 1, 0),
        makeScalarMem(Opcode::SLoad, 2, 0xdeadbeef),
        makeVectorMem(Opcode::VLoad, 0, 128, 0x1000, 3),
        makeVectorArith(Opcode::VMul, 2, 0, 4, 128),
        makeVectorArith(Opcode::VAdd, 4, 2, 6, 128),
        makeVectorMem(Opcode::VStore, 4, 128, 0x2000, 1),
        makeScalar(Opcode::SBranch, noReg, 7),
    };
}

std::string
tempPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

TEST(VectorSource, ServesAndResets)
{
    VectorSource src("demo", sampleInstructions());
    Instruction inst;
    int count = 0;
    while (src.next(inst))
        ++count;
    EXPECT_EQ(count, 7);
    EXPECT_FALSE(src.next(inst));
    src.reset();
    EXPECT_TRUE(src.next(inst));
    EXPECT_EQ(inst.op, Opcode::SAddInt);
    EXPECT_EQ(src.name(), "demo");
}

TEST(VectorSource, MaterializeRoundTrip)
{
    VectorSource src("demo", sampleInstructions());
    const auto all = materialize(src);
    EXPECT_EQ(all.size(), 7u);
    const auto limited = materialize(src, 3);
    EXPECT_EQ(limited.size(), 3u);
    // materialize resets the source afterwards.
    Instruction inst;
    EXPECT_TRUE(src.next(inst));
}

TEST(TraceFile, BinaryRoundTrip)
{
    const std::string path = tempPath("mtv_test_roundtrip.mtv");
    VectorSource src("roundtrip", sampleInstructions());
    const uint64_t written = writeTrace(src, path);
    EXPECT_EQ(written, 7u);

    TraceReader reader(path);
    EXPECT_EQ(reader.name(), "roundtrip");
    EXPECT_EQ(reader.count(), 7u);

    const auto original = sampleInstructions();
    Instruction inst;
    for (const auto &want : original) {
        ASSERT_TRUE(reader.next(inst));
        EXPECT_EQ(inst.op, want.op);
        EXPECT_EQ(inst.dst, want.dst);
        EXPECT_EQ(inst.srcA, want.srcA);
        EXPECT_EQ(inst.srcB, want.srcB);
        EXPECT_EQ(inst.vl, want.vl);
        EXPECT_EQ(inst.stride, want.stride);
        EXPECT_EQ(inst.addr, want.addr);
    }
    EXPECT_FALSE(reader.next(inst));
    std::remove(path.c_str());
}

TEST(TraceFile, ReaderImplementsReset)
{
    const std::string path = tempPath("mtv_test_reset.mtv");
    VectorSource src("r", sampleInstructions());
    writeTrace(src, path);
    TraceReader reader(path);
    Instruction inst;
    while (reader.next(inst)) {
    }
    reader.reset();
    int count = 0;
    while (reader.next(inst))
        ++count;
    EXPECT_EQ(count, 7);
    std::remove(path.c_str());
}

TEST(TraceFile, NegativeStrideSurvivesRoundTrip)
{
    const std::string path = tempPath("mtv_test_stride.mtv");
    VectorSource src("s", {makeVectorMem(Opcode::VLoad, 0, 64,
                                         0xffffffffff00ull, -7)});
    writeTrace(src, path);
    TraceReader reader(path);
    Instruction inst;
    ASSERT_TRUE(reader.next(inst));
    EXPECT_EQ(inst.stride, -7);
    EXPECT_EQ(inst.addr, 0xffffffffff00ull);
    std::remove(path.c_str());
}

TEST(TraceFile, TextTraceContainsDisassembly)
{
    const std::string path = tempPath("mtv_test_text.mtvt");
    VectorSource src("texty", sampleInstructions());
    const uint64_t written = writeTextTrace(src, path);
    EXPECT_EQ(written, 7u);

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char line[256];
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_NE(std::string(line).find("texty"), std::string::npos);
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    EXPECT_NE(std::string(line).find("s.add"), std::string::npos);
    std::fclose(f);
    std::remove(path.c_str());
}

/** Field-by-field Instruction equality for round-trip checks. */
void
expectSameInstruction(const Instruction &a, const Instruction &b,
                      size_t index)
{
    EXPECT_EQ(a.op, b.op) << "record " << index;
    EXPECT_EQ(a.dst, b.dst) << "record " << index;
    EXPECT_EQ(a.srcA, b.srcA) << "record " << index;
    EXPECT_EQ(a.srcB, b.srcB) << "record " << index;
    EXPECT_EQ(a.vl, b.vl) << "record " << index;
    EXPECT_EQ(a.stride, b.stride) << "record " << index;
    EXPECT_EQ(a.addr, b.addr) << "record " << index;
}

TEST(TraceFile, StreamingMatchesEagerIncludingReset)
{
    const std::string path = tempPath("mtv_test_stream.mtv");
    // A real generated program, so the stream crosses several
    // streaming chunks' worth of record shapes.
    auto program = makeProgram("swm256", 2e-5);
    writeTrace(*program, path);

    TraceReader eager(path, TraceReadMode::Eager);
    TraceReader streaming(path, TraceReadMode::Streaming);
    EXPECT_EQ(eager.name(), streaming.name());
    EXPECT_EQ(eager.count(), streaming.count());

    for (int pass = 0; pass < 2; ++pass) {
        Instruction a, b;
        size_t n = 0;
        while (eager.next(a)) {
            ASSERT_TRUE(streaming.next(b)) << "record " << n;
            expectSameInstruction(a, b, n);
            ++n;
        }
        EXPECT_FALSE(streaming.next(b));
        EXPECT_EQ(n, eager.count());
        // reset() must replay the identical stream (the restart
        // methodology depends on it).
        eager.reset();
        streaming.reset();
    }
    std::remove(path.c_str());
}

TEST(TraceFileDeath, StreamingTruncationFailsAtTheLostRecord)
{
    const std::string path = tempPath("mtv_test_stream_trunc.mtv");
    VectorSource src("t", sampleInstructions());
    writeTrace(src, path);
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 10);
    // Construction succeeds (only the header is read)...
    TraceReader reader(path, TraceReadMode::Streaming);
    Instruction inst;
    // ...the missing data surfaces when the read reaches it.
    EXPECT_EXIT(
        {
            while (reader.next(inst)) {
            }
        },
        testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

TEST(TraceFile, TextTraceRoundTripsEveryInstruction)
{
    const std::string path = tempPath("mtv_test_text_rt.mtvt");
    // Generated programs cover every operand shape the text format
    // can carry (incl. destination-less branches and gathers).
    auto program = makeProgram("nasa7", 2e-5);
    const uint64_t written = writeTextTrace(*program, path);
    ASSERT_GT(written, 0u);

    TextTraceReader reader(path);
    EXPECT_EQ(reader.name(), program->name());
    EXPECT_EQ(reader.count(), written);
    program->reset();
    Instruction expected, parsed;
    size_t n = 0;
    while (program->next(expected)) {
        ASSERT_TRUE(reader.next(parsed)) << "record " << n;
        expectSameInstruction(expected, parsed, n);
        ++n;
    }
    EXPECT_FALSE(reader.next(parsed));
    std::remove(path.c_str());
}

TEST(TraceFile, TextTraceHandPicksRoundTrip)
{
    const std::string path = tempPath("mtv_test_text_hand.mtvt");
    VectorSource src("hand", sampleInstructions());
    writeTextTrace(src, path);
    TextTraceReader reader(path);
    src.reset();
    Instruction expected, parsed;
    size_t n = 0;
    while (src.next(expected)) {
        ASSERT_TRUE(reader.next(parsed));
        expectSameInstruction(expected, parsed, n++);
    }
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TextTraceRejectsGarbageLine)
{
    const std::string path = tempPath("mtv_test_text_bad.mtvt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "# program: junky\n");
    std::fprintf(f, "x.frobnicate v1, v2\n");
    std::fclose(f);
    EXPECT_EXIT({ TextTraceReader reader(path); },
                testing::ExitedWithCode(1), "unknown mnemonic");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, TextTraceRejectsMissingHeader)
{
    const std::string path = tempPath("mtv_test_text_nohdr.mtvt");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "s.add s1, s2\n");
    std::fclose(f);
    EXPECT_EXIT({ TextTraceReader reader(path); },
                testing::ExitedWithCode(1), "no '# program:'");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, RejectsBadMagic)
{
    const std::string path = tempPath("mtv_test_bad.mtv");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[32] = "this is not a trace";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    EXPECT_EXIT({ TraceReader reader(path); },
                testing::ExitedWithCode(1), "bad magic");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, RejectsTruncatedFile)
{
    const std::string path = tempPath("mtv_test_trunc.mtv");
    VectorSource src("t", sampleInstructions());
    writeTrace(src, path);
    // Chop the last record in half.
    std::filesystem::resize_file(
        path, std::filesystem::file_size(path) - 10);
    EXPECT_EXIT({ TraceReader reader(path); },
                testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

TEST(TraceFileDeath, RejectsMissingFile)
{
    EXPECT_EXIT({ TraceReader reader("/nonexistent/nope.mtv"); },
                testing::ExitedWithCode(1), "cannot open");
}

TEST(Analyzer, CountsMatchHandComputation)
{
    VectorSource src("a", sampleInstructions());
    const TraceStats stats = analyzeSource(src);
    EXPECT_EQ(stats.scalarInstructions, 3u);
    EXPECT_EQ(stats.vectorInstructions, 4u);
    EXPECT_EQ(stats.vectorOperations, 4u * 128);
    EXPECT_EQ(stats.vectorArithInstructions, 2u);
    EXPECT_EQ(stats.vectorArithOperations, 2u * 128);
    EXPECT_EQ(stats.fu2OnlyOperations, 128u);  // the VMul
    EXPECT_EQ(stats.vectorMemInstructions, 2u);
    EXPECT_EQ(stats.scalarMemInstructions, 1u);
    // 2 vector memory ops x 128 + 1 scalar load.
    EXPECT_EQ(stats.memoryRequests, 2u * 128 + 1);
    EXPECT_EQ(stats.totalInstructions(), 7u);
}

TEST(Analyzer, VectorizationMetrics)
{
    VectorSource src("a", sampleInstructions());
    const TraceStats stats = analyzeSource(src);
    // %vect = vops / (scalar + vops)
    const double expected = 100.0 * 512.0 / (3.0 + 512.0);
    EXPECT_NEAR(stats.percentVectorization(), expected, 1e-9);
    EXPECT_NEAR(stats.averageVectorLength(), 128.0, 1e-9);
}

TEST(Analyzer, EmptyStatsAreZero)
{
    TraceStats stats;
    EXPECT_EQ(stats.percentVectorization(), 0.0);
    EXPECT_EQ(stats.averageVectorLength(), 0.0);
    EXPECT_EQ(stats.totalInstructions(), 0u);
}

TEST(Analyzer, AccumulationOperator)
{
    VectorSource src("a", sampleInstructions());
    const TraceStats one = analyzeSource(src);
    TraceStats two = one;
    two += one;
    EXPECT_EQ(two.memoryRequests, 2 * one.memoryRequests);
    EXPECT_EQ(two.vectorOperations, 2 * one.vectorOperations);
    EXPECT_EQ(two.scalarInstructions, 2 * one.scalarInstructions);
}

TEST(Analyzer, IdealBoundBindsOnAddressBus)
{
    TraceStats stats;
    stats.memoryRequests = 1000;
    stats.scalarInstructions = 10;
    stats.vectorInstructions = 20;
    stats.vectorArithOperations = 600;
    stats.fu2OnlyOperations = 100;
    const IdealBound b = idealBound(stats);
    EXPECT_EQ(b.addressBusCycles, 1000u);
    EXPECT_EQ(b.fuCycles, 300u);  // max(100, ceil(600/2))
    EXPECT_EQ(b.decodeCycles, 30u);
    EXPECT_EQ(b.bound, 1000u);
    EXPECT_STREQ(b.binding(), "address-bus");
}

TEST(Analyzer, IdealBoundFu2Dominates)
{
    TraceStats stats;
    stats.vectorArithOperations = 500;
    stats.fu2OnlyOperations = 400;  // mul/div heavy: FU2 is critical
    const IdealBound b = idealBound(stats);
    EXPECT_EQ(b.fuCycles, 400u);
    EXPECT_STREQ(b.binding(), "arithmetic-fus");
}

TEST(Analyzer, IdealBoundDecodeWidthScales)
{
    TraceStats stats;
    stats.scalarInstructions = 1001;
    const IdealBound w1 = idealBound(stats, 1);
    const IdealBound w2 = idealBound(stats, 2);
    EXPECT_EQ(w1.decodeCycles, 1001u);
    EXPECT_EQ(w2.decodeCycles, 501u);
}

} // namespace
} // namespace mtv
