/**
 * @file
 * Unit tests for src/workload: the kernel DSL, whole-program
 * synthesis, and — most importantly — calibration of all ten
 * synthetic programs against the paper's Table 3.
 */

#include <gtest/gtest.h>

#include "src/core/resources.hh"
#include "src/trace/analyzer.hh"
#include "src/workload/kernel.hh"
#include "src/workload/program.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

KernelSpec
tinyKernel(uint32_t trip = 300)
{
    BodyBuilder b;
    const int x = b.load();
    const int y = b.load();
    const int t = b.arith(Opcode::VAdd, x, y);
    b.store(t);
    KernelSpec k;
    k.name = "tiny";
    k.tripCount = trip;
    k.body = b.take();
    k.scalarPreamble = 2;
    k.scalarPerStrip = 2;
    return k;
}

TEST(Kernel, StripAccounting)
{
    const KernelSpec k = tinyKernel(300);
    EXPECT_EQ(k.strips(), 3u);  // 128 + 128 + 44
    EXPECT_EQ(k.vectorInstrsPerInvocation(), 3u * 4);
    EXPECT_EQ(k.vectorOpsPerInvocation(), 300u * 4);
    EXPECT_EQ(k.scalarInstrsPerInvocation(), 2u + 3 * 2);
    EXPECT_NEAR(k.averageVectorLength(), 100.0, 1e-9);
}

TEST(Kernel, SingleStripShortVector)
{
    const KernelSpec k = tinyKernel(22);
    EXPECT_EQ(k.strips(), 1u);
    EXPECT_NEAR(k.averageVectorLength(), 22.0, 1e-9);
}

TEST(Kernel, ExactMultipleOfMaxVl)
{
    const KernelSpec k = tinyKernel(256);
    EXPECT_EQ(k.strips(), 2u);
    EXPECT_NEAR(k.averageVectorLength(), 128.0, 1e-9);
}

TEST(Kernel, BodyBuilderSlotWindowWraps)
{
    BodyBuilder b;
    std::vector<int> slots;
    for (int i = 0; i < 10; ++i)
        slots.push_back(b.load());
    // Slots wrap around the 8-register window.
    EXPECT_EQ(slots[0], slots[8]);
    EXPECT_EQ(slots[1], slots[9]);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(slots[i], i);
}

TEST(Kernel, SlotToVRegSpreadsBanks)
{
    // Consecutive slots must land in different banks so chained
    // producer/consumer pairs do not fight over bank ports.
    for (int s = 0; s + 1 < numVRegs; ++s) {
        EXPECT_NE(vregBank(slotToVReg(s)), vregBank(slotToVReg(s + 1)))
            << "slots " << s << " and " << s + 1;
    }
    // And the mapping is a permutation.
    uint32_t seen = 0;
    for (int s = 0; s < numVRegs; ++s)
        seen |= 1u << slotToVReg(s);
    EXPECT_EQ(seen, 0xffu);
}

TEST(Kernel, EmitProducesExpectedCounts)
{
    const KernelSpec k = tinyKernel(300);
    uint64_t cursor = 0x1000;
    Rng rng(1);
    std::vector<Instruction> out;
    emitKernel(k, cursor, rng, out);

    TraceStats stats;
    for (const auto &inst : out)
        stats.account(inst);
    EXPECT_EQ(stats.vectorInstructions, k.vectorInstrsPerInvocation());
    EXPECT_EQ(stats.vectorOperations, k.vectorOpsPerInvocation());
    EXPECT_EQ(stats.scalarInstructions, k.scalarInstrsPerInvocation());
    EXPECT_GT(cursor, 0x1000u);
}

TEST(Kernel, EmitStripVectorLengthsSumToTrip)
{
    const KernelSpec k = tinyKernel(300);
    uint64_t cursor = 0;
    Rng rng(1);
    std::vector<Instruction> out;
    emitKernel(k, cursor, rng, out);
    // Sum the VL of one body step (the loads at body position 0).
    uint64_t sum = 0;
    for (const auto &inst : out) {
        if (inst.op == Opcode::VLoad && inst.dst == slotToVReg(0))
            sum += inst.vl;
    }
    EXPECT_EQ(sum, 300u);
}

TEST(Kernel, IndexedFractionEmitsGathers)
{
    KernelSpec k = tinyKernel(1280);
    k.indexedFraction = 1.0;
    uint64_t cursor = 0;
    Rng rng(1);
    std::vector<Instruction> out;
    emitKernel(k, cursor, rng, out);
    int gathers = 0;
    int plainLoads = 0;
    for (const auto &inst : out) {
        gathers += inst.op == Opcode::VGather;
        plainLoads += inst.op == Opcode::VLoad;
    }
    EXPECT_GT(gathers, 0);
    EXPECT_EQ(plainLoads, 0);
}

TEST(Kernel, ScalarIterationShape)
{
    uint64_t cursor = 0x100;
    std::vector<Instruction> out;
    const int n = emitScalarIteration(0, cursor, out);
    EXPECT_EQ(n, scalarIterationLength);
    ASSERT_EQ(out.size(), static_cast<size_t>(scalarIterationLength));
    // The canonical scalar loop has exactly 2 memory transactions and
    // ends in a branch (paper: 2 memory ops per 6-8 instructions).
    int mem = 0;
    for (const auto &inst : out)
        mem += isMemory(inst.op);
    EXPECT_EQ(mem, 2);
    EXPECT_EQ(out.back().op, Opcode::SBranch);
}

TEST(Program, DaxpySpecIsValid)
{
    const ProgramSpec spec = makeDaxpySpec(100000);
    spec.validate();
    SyntheticProgram p(spec, 1.0);
    EXPECT_GT(p.count(), 0u);
    const TraceStats stats = analyzeSource(p);
    EXPECT_GT(stats.percentVectorization(), 90.0);
}

TEST(Program, GenerationIsDeterministic)
{
    const ProgramSpec &spec = findProgram("bdna");
    SyntheticProgram a(spec, 1e-5);
    SyntheticProgram b(spec, 1e-5);
    ASSERT_EQ(a.count(), b.count());
    for (size_t i = 0; i < a.instructions().size(); ++i) {
        EXPECT_EQ(a.instructions()[i].op, b.instructions()[i].op);
        EXPECT_EQ(a.instructions()[i].addr, b.instructions()[i].addr);
    }
}

TEST(Program, ScaleControlsSize)
{
    const ProgramSpec &spec = findProgram("hydro2d");
    SyntheticProgram small(spec, 1e-5);
    SyntheticProgram large(spec, 4e-5);
    const double ratio = static_cast<double>(large.count()) /
                         static_cast<double>(small.count());
    EXPECT_NEAR(ratio, 4.0, 0.8);
}

TEST(Suite, HasTenProgramsInTableOrder)
{
    const auto &suite = benchmarkSuite();
    ASSERT_EQ(suite.size(), 10u);
    EXPECT_EQ(suite.front().name, "swm256");
    EXPECT_EQ(suite.back().name, "dyfesm");
    // Table 3 is ordered by decreasing vectorization.
    for (size_t i = 1; i < suite.size(); ++i)
        EXPECT_GE(suite[i - 1].percentVect, suite[i].percentVect);
}

TEST(Suite, LookupByNameAndAbbrev)
{
    EXPECT_EQ(findProgram("tomcatv").abbrev, "to");
    EXPECT_EQ(findProgram("to").name, "tomcatv");
    EXPECT_EQ(findProgram("SW").name, "swm256");
}

TEST(SuiteDeath, UnknownProgramIsFatal)
{
    EXPECT_EXIT({ findProgram("nosuchprog"); },
                testing::ExitedWithCode(1), "unknown benchmark");
}

TEST(Suite, GroupingColumnsMatchDesign)
{
    EXPECT_EQ(groupingColumn2().size(), 5u);
    EXPECT_EQ(groupingColumn3().size(), 2u);
    EXPECT_EQ(groupingColumn4().size(), 1u);
    // Column 2 is fixed by the Figure 7 caption.
    const auto &c2 = groupingColumn2();
    EXPECT_NE(std::find(c2.begin(), c2.end(), "hydro2d"), c2.end());
    EXPECT_NE(std::find(c2.begin(), c2.end(), "swm256"), c2.end());
    EXPECT_NE(std::find(c2.begin(), c2.end(), "bdna"), c2.end());
}

TEST(Suite, JobQueueOrderIsSection7)
{
    const auto &order = jobQueueOrder();
    ASSERT_EQ(order.size(), 10u);
    EXPECT_EQ(order[0], "flo52");    // TF
    EXPECT_EQ(order[1], "swm256");   // SW
    EXPECT_EQ(order[9], "dyfesm");   // SD
}

/**
 * Calibration: every synthetic program must reproduce its Table 3 row
 * (scalar instructions, vector instructions, vector operations,
 * percent vectorization, average vector length) at the configured
 * scale, within tolerance for invocation granularity.
 */
class SuiteCalibration : public testing::TestWithParam<std::string>
{
};

TEST_P(SuiteCalibration, MatchesTable3)
{
    const ProgramSpec &spec = findProgram(GetParam());
    const double scale = 1e-4;
    SyntheticProgram program(spec, scale);
    const TraceStats stats = analyzeSource(program);

    const double sTarget = spec.scalarMillions * 1e6 * scale;
    const double vTarget = spec.vectorMillions * 1e6 * scale;
    const double opsTarget = spec.vectorOpsMillions * 1e6 * scale;

    EXPECT_NEAR(static_cast<double>(stats.scalarInstructions),
                sTarget, 0.10 * sTarget + 20)
        << spec.name << " scalar count";
    EXPECT_NEAR(static_cast<double>(stats.vectorInstructions),
                vTarget, 0.10 * vTarget + 20)
        << spec.name << " vector count";
    EXPECT_NEAR(static_cast<double>(stats.vectorOperations),
                opsTarget, 0.12 * opsTarget + 100)
        << spec.name << " vector ops";
    EXPECT_NEAR(stats.percentVectorization(), spec.percentVect, 1.5)
        << spec.name << " %vect";
    EXPECT_NEAR(stats.averageVectorLength(), spec.avgVectorLength,
                0.08 * spec.avgVectorLength)
        << spec.name << " avg VL";
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, SuiteCalibration,
    testing::Values("swm256", "hydro2d", "arc2d", "flo52", "nasa7",
                    "su2cor", "tomcatv", "bdna", "trfd", "dyfesm"),
    [](const testing::TestParamInfo<std::string> &info) {
        return info.param;
    });

TEST(Suite, SpecsPassValidation)
{
    for (const auto &spec : benchmarkSuite()) {
        spec.validate();  // panics on violation
        for (const auto &k : spec.kernels) {
            // Trip counts were chosen to hit the program's average VL.
            EXPECT_NEAR(k.averageVectorLength(), spec.avgVectorLength,
                        0.12 * spec.avgVectorLength)
                << spec.name << "/" << k.name;
        }
    }
}

} // namespace
} // namespace mtv
