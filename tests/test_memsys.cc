/**
 * @file
 * Unit tests for src/memsys: address-bus reservations and the
 * main-memory timing model (pipelined default + banked extension).
 */

#include <gtest/gtest.h>

#include "src/memsys/address_bus.hh"
#include "src/memsys/main_memory.hh"

namespace mtv
{
namespace
{

TEST(AddressBus, StartsFree)
{
    AddressBus bus;
    EXPECT_TRUE(bus.freeAt(0));
    EXPECT_FALSE(bus.busyAt(0));
    EXPECT_EQ(bus.requests(), 0u);
}

TEST(AddressBus, ReserveOccupiesInterval)
{
    AddressBus bus;
    bus.reserve(10, 5);
    EXPECT_EQ(bus.requests(), 5u);
    EXPECT_EQ(bus.freeCycle(), 15u);
    EXPECT_TRUE(bus.freeAt(15));
    EXPECT_FALSE(bus.freeAt(14));
    EXPECT_FALSE(bus.busyAt(9));
    EXPECT_TRUE(bus.busyAt(10));
    EXPECT_TRUE(bus.busyAt(14));
    EXPECT_FALSE(bus.busyAt(15));
}

TEST(AddressBus, BackToBackReservations)
{
    AddressBus bus;
    bus.reserve(0, 128);
    bus.reserve(128, 128);
    EXPECT_EQ(bus.requests(), 256u);
    EXPECT_TRUE(bus.busyAt(200));
    EXPECT_TRUE(bus.freeAt(256));
}

TEST(AddressBus, ClearResets)
{
    AddressBus bus;
    bus.reserve(0, 10);
    bus.clear();
    EXPECT_EQ(bus.requests(), 0u);
    EXPECT_TRUE(bus.freeAt(0));
}

TEST(MainMemory, DefaultModelIsPipelined)
{
    MachineParams p = MachineParams::reference();
    p.memLatency = 42;
    MainMemory mem(p);
    EXPECT_EQ(mem.latency(), 42);
    EXPECT_EQ(mem.deliveryPeriod(1), 1);
    EXPECT_EQ(mem.deliveryPeriod(64), 1);       // stride is free
    EXPECT_EQ(mem.deliveryPeriod(1, true), 1);  // gathers too
    EXPECT_EQ(mem.loadComplete(10, 128, 1), 10u + 42 + 128);
}

TEST(MainMemory, BankedUnitStrideStillFullRate)
{
    MachineParams p = MachineParams::reference();
    p.bankedMemory = true;
    p.memBanks = 64;
    p.bankBusyCycles = 8;
    MainMemory mem(p);
    // Unit stride touches all 64 banks; 8-cycle bank busy is hidden.
    EXPECT_EQ(mem.deliveryPeriod(1), 1);
    EXPECT_EQ(mem.deliveryPeriod(3), 1);  // odd strides hit all banks
}

TEST(MainMemory, BankedPowerOfTwoStrideThrottles)
{
    MachineParams p = MachineParams::reference();
    p.bankedMemory = true;
    p.memBanks = 64;
    p.bankBusyCycles = 8;
    MainMemory mem(p);
    // Stride 64 hits a single bank: one element per bank-busy time.
    EXPECT_EQ(mem.deliveryPeriod(64), 8);
    // Stride 32 hits 2 banks: 4 cycles/element.
    EXPECT_EQ(mem.deliveryPeriod(32), 4);
    // Stride 16 hits 4 banks: 2 cycles/element.
    EXPECT_EQ(mem.deliveryPeriod(16), 2);
    // Stride 8 hits 8 banks: full rate.
    EXPECT_EQ(mem.deliveryPeriod(8), 1);
}

TEST(MainMemory, BankedNegativeAndZeroStride)
{
    MachineParams p = MachineParams::reference();
    p.bankedMemory = true;
    p.memBanks = 64;
    p.bankBusyCycles = 8;
    MainMemory mem(p);
    EXPECT_EQ(mem.deliveryPeriod(-64), 8);  // |stride| matters
    EXPECT_EQ(mem.deliveryPeriod(0), 1);    // treated as unit stride
}

TEST(MainMemory, BankedCompletionIncludesPeriod)
{
    MachineParams p = MachineParams::reference();
    p.memLatency = 50;
    p.bankedMemory = true;
    p.memBanks = 64;
    p.bankBusyCycles = 8;
    MainMemory mem(p);
    EXPECT_EQ(mem.loadComplete(0, 100, 64), 0u + 50 + 100 * 8);
}

} // namespace
} // namespace mtv
