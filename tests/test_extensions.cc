/**
 * @file
 * Tests for the section-10 future-work extensions: Cray-style
 * multi-port memory, vector register renaming, and the decoupled
 * (slip-window) machine. Expected cycle counts are hand-derived from
 * the DESIGN.md timing model with default parameters.
 */

#include <gtest/gtest.h>

#include "src/api/run_spec.hh"
#include "src/common/logging.hh"
#include "src/core/sim.hh"
#include "src/driver/runner.hh"
#include "src/trace/source.hh"

namespace mtv
{
namespace
{

SimStats
runStream(const std::vector<Instruction> &instrs,
          const MachineParams &params)
{
    VectorSource src("handcrafted", instrs);
    VectorSim sim(params);
    return sim.runSingle(src);
}

// ---------------------------------------------------------------------
// Multi-port memory
// ---------------------------------------------------------------------

TEST(MultiPort, FactoryShape)
{
    const MachineParams p = MachineParams::crayStyle(3);
    EXPECT_EQ(p.loadPorts, 2);
    EXPECT_EQ(p.storePorts, 1);
    EXPECT_EQ(p.contexts, 3);
    p.validate();
    EXPECT_NE(p.describe().find("ports=2ld/1st"), std::string::npos);
}

TEST(MultiPort, TwoLoadsOverlapOnTwoPorts)
{
    // On the 1-port machine the second load serializes (completes at
    // 310, see SimTiming.AddressBusSerializesMemoryOps); with 2 load
    // ports it dispatches at t=1: done = 2 + 52 + 128 = 182.
    MachineParams p = MachineParams::reference();
    p.loadPorts = 2;
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorMem(Opcode::VLoad, 2, 128, 0x1000, 1),
        },
        p);
    EXPECT_EQ(s.cycles, 182u);
    EXPECT_EQ(s.memRequests, 256u);
    EXPECT_EQ(s.memPorts, 2);
}

TEST(MultiPort, StoresUseDedicatedPort)
{
    // Load occupies the (single) load port; the store goes to its own
    // port and does not wait for the load's address stream.
    MachineParams p = MachineParams::reference();
    p.storePorts = 1;
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorMem(Opcode::VStore, 2, 128, 0x1000, 1),
        },
        p);
    // store: dispatch t=1, start 2, completion 130; load done 181.
    EXPECT_EQ(s.cycles, 181u);
}

TEST(MultiPort, StoresShareLoadPortWhenNoStorePort)
{
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorMem(Opcode::VStore, 2, 128, 0x1000, 1),
        },
        MachineParams::reference());
    // Unified port: store blocked until 129, runs [130, 258).
    EXPECT_EQ(s.cycles, 258u);
}

TEST(MultiPort, OccupationNormalizesByPortCount)
{
    MachineParams p = MachineParams::reference();
    p.loadPorts = 2;
    p.storePorts = 1;
    const SimStats s = runStream(
        {makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1)}, p);
    // 128 requests over 181 cycles and 3 ports.
    EXPECT_NEAR(s.memPortOccupation(), 128.0 / (181.0 * 3), 1e-9);
    EXPECT_LE(s.memPortOccupation(), 1.0);
}

TEST(MultiPort, ThirdLoadStillWaits)
{
    MachineParams p = MachineParams::reference();
    p.loadPorts = 2;
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorMem(Opcode::VLoad, 2, 128, 0x1000, 1),
            makeVectorMem(Opcode::VLoad, 4, 128, 0x2000, 1),
        },
        p);
    // Third load waits for port 0 to free at 129: [130, 310).
    EXPECT_EQ(s.cycles, 310u);
}

TEST(MultiPort, CrayMachineNeverSlowerThanConvex)
{
    Runner runner(2e-5);
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "bdna"};
    for (int c : {1, 2, 4}) {
        MachineParams convex = MachineParams::multithreaded(c);
        MachineParams cray = MachineParams::crayStyle(c);
        const uint64_t tConvex =
            runner.runJobQueue(jobs, convex).cycles;
        const uint64_t tCray = runner.runJobQueue(jobs, cray).cycles;
        EXPECT_LE(tCray, tConvex) << c << " contexts";
    }
}

TEST(MultiPort, WorkInvariantOnCray)
{
    Runner runner(2e-5);
    const std::vector<std::string> jobs = {"flo52", "trfd"};
    TraceStats expected;
    for (const auto &name : jobs)
        expected += runner.programStats(name);
    const SimStats s =
        runner.runJobQueue(jobs, MachineParams::crayStyle(2));
    EXPECT_EQ(s.dispatches, expected.totalInstructions());
    EXPECT_EQ(s.memRequests, expected.memoryRequests);
}

// ---------------------------------------------------------------------
// Register renaming
// ---------------------------------------------------------------------

TEST(Renaming, RemovesWawStall)
{
    // Without renaming the second add waits for v2's writeDone (137)
    // and finishes at 274 (see SimTiming.WawBlocksUntilWriteDone).
    // With renaming it dispatches at t=1 on FU2: done 138.
    MachineParams p = MachineParams::reference();
    p.renaming = true;
    const SimStats s = runStream(
        {
            makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
            makeVectorArith(Opcode::VAdd, 2, 4, 4, 128),
        },
        p);
    EXPECT_EQ(s.cycles, 138u);
}

TEST(Renaming, RemovesWarStall)
{
    // Without renaming the load waits for v0's readers (done 310);
    // with renaming it dispatches at t=1: done = 2 + 52 + 128 = 182.
    MachineParams p = MachineParams::reference();
    p.renaming = true;
    const SimStats s = runStream(
        {
            makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
        },
        p);
    EXPECT_EQ(s.cycles, 182u);
}

TEST(Renaming, TrueDependencesStillBlock)
{
    // RAW through a load must still wait (renaming does not create
    // values): identical to the non-renamed machine.
    MachineParams p = MachineParams::reference();
    p.renaming = true;
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
        },
        p);
    EXPECT_EQ(s.cycles, 318u);
}

TEST(Renaming, NeverSlowerOnRealWorkloads)
{
    Runner runner(2e-5);
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "dyfesm"};
    for (int c : {1, 2, 3}) {
        MachineParams base = MachineParams::multithreaded(c);
        MachineParams ren = base;
        ren.renaming = true;
        EXPECT_LE(runner.runJobQueue(jobs, ren).cycles,
                  runner.runJobQueue(jobs, base).cycles)
            << c << " contexts";
    }
}

// ---------------------------------------------------------------------
// Decoupled slip window
// ---------------------------------------------------------------------

TEST(Decoupled, MemorySlipsPastBlockedArith)
{
    // Head: add blocked on the first load (no load chaining). The
    // second, independent load slips ahead and streams while the add
    // waits — the decoupled access/execute behaviour.
    MachineParams p = MachineParams::decoupledVector(4);
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),   // A
            makeVectorArith(Opcode::VAdd, 4, 0, 0, 128),    // uses A
            makeVectorMem(Opcode::VLoad, 2, 128, 0x1000, 1),// indep B
        },
        p);
    // Load A [1,129), done 181. Load B slips: port free at 129,
    // dispatches at 129, start 130, done 310. Add dispatches at 181,
    // done 318. Without slip, B waits for the add's dispatch at 181,
    // dispatches at 182 and finishes at 183+52+128 = 363.
    EXPECT_EQ(s.cycles, 318u);
    EXPECT_EQ(s.decoupledSlips, 1u);

    const SimStats inOrder =
        runStream({makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
                   makeVectorArith(Opcode::VAdd, 4, 0, 0, 128),
                   makeVectorMem(Opcode::VLoad, 2, 128, 0x1000, 1)},
                  MachineParams::reference());
    EXPECT_EQ(inOrder.cycles, 363u);
    EXPECT_EQ(inOrder.decoupledSlips, 0u);
}

TEST(Decoupled, RawDependentLoadDoesNotSlip)
{
    // The slipping candidate must not read a register written by a
    // skipped instruction. Here the store reads v4, produced by the
    // blocked add, so it cannot slip.
    MachineParams p = MachineParams::decoupledVector(4);
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorArith(Opcode::VAdd, 4, 0, 0, 128),
            makeVectorMem(Opcode::VStore, 4, 128, 0x1000, 1),
        },
        p);
    EXPECT_EQ(s.decoupledSlips, 0u);
}

TEST(Decoupled, MemoryStaysOrdered)
{
    // A store may not slip past an earlier (blocked) load: memory
    // operations remain ordered among themselves.
    MachineParams p = MachineParams::decoupledVector(4);
    p.loadPorts = 1;
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),   // bus busy
            makeVectorMem(Opcode::VLoad, 2, 128, 0x1000, 1),// waits
            makeVectorMem(Opcode::VStore, 4, 128, 0x2000, 1),
        },
        p);
    EXPECT_EQ(s.decoupledSlips, 0u);
}

TEST(Decoupled, NothingPassesABranch)
{
    MachineParams p = MachineParams::decoupledVector(4);
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorArith(Opcode::VAdd, 4, 0, 0, 128),
            makeScalar(Opcode::SBranch, noReg, 0),
            makeVectorMem(Opcode::VLoad, 2, 128, 0x1000, 1),
        },
        p);
    // The post-branch load is never even fetched into the window
    // before the branch resolves, so no slip happens.
    EXPECT_EQ(s.decoupledSlips, 0u);
}

TEST(Decoupled, WawWithSkippedInstructionBlocksSlip)
{
    // The candidate load writes v4, which the skipped add also
    // writes: WAW, no slip.
    MachineParams p = MachineParams::decoupledVector(4);
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorArith(Opcode::VAdd, 4, 0, 0, 128),
            makeVectorMem(Opcode::VLoad, 4, 128, 0x1000, 1),
        },
        p);
    EXPECT_EQ(s.decoupledSlips, 0u);
}

TEST(Decoupled, HelpsBaselineOnRealWorkloads)
{
    // The HPCA-2'96 result: decoupling reduces baseline time even at
    // realistic latencies — but (the paper's point) it cannot saturate
    // the memory port the way multithreading does.
    Runner runner(2e-5);
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "bdna"};
    MachineParams base = MachineParams::reference();
    MachineParams dva = MachineParams::decoupledVector(4);
    MachineParams mth = MachineParams::multithreaded(3);

    const SimStats sBase = runner.runJobQueue(jobs, base);
    const SimStats sDva = runner.runJobQueue(jobs, dva);
    const SimStats sMth = runner.runJobQueue(jobs, mth);

    EXPECT_LT(sDva.cycles, sBase.cycles);
    EXPECT_GT(sDva.decoupledSlips, 0u);
    EXPECT_GT(sMth.memPortOccupation(), sDva.memPortOccupation());
}

TEST(Decoupled, ComposesWithMultithreading)
{
    Runner runner(2e-5);
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "bdna"};
    MachineParams mth = MachineParams::multithreaded(2);
    MachineParams both = mth;
    both.decoupleDepth = 4;
    EXPECT_LE(runner.runJobQueue(jobs, both).cycles,
              runner.runJobQueue(jobs, mth).cycles);
}

TEST(Decoupled, WorkInvariant)
{
    Runner runner(2e-5);
    const std::vector<std::string> jobs = {"flo52", "trfd"};
    TraceStats expected;
    for (const auto &name : jobs)
        expected += runner.programStats(name);
    const SimStats s =
        runner.runJobQueue(jobs, MachineParams::decoupledVector(8));
    EXPECT_EQ(s.dispatches, expected.totalInstructions());
    EXPECT_EQ(s.memRequests, expected.memoryRequests);
}

TEST(Decoupled, TruncatedRunRespectsBudgetWithWindow)
{
    std::vector<Instruction> instrs;
    for (int i = 0; i < 20; ++i)
        instrs.push_back(makeScalar(Opcode::SAddInt, 1, 0));
    VectorSource src("trunc", instrs);
    VectorSim sim(MachineParams::decoupledVector(4));
    const SimStats s = sim.runSingle(src, 7);
    EXPECT_EQ(s.dispatches, 7u);
}

// ---------------------------------------------------------------------
// RunSpec extension axes (memPorts / renameDepth / decoupleDepth)
// ---------------------------------------------------------------------

TEST(RunSpecExt, CanonicalRoundTripAndKeyStability)
{
    const RunSpec spec =
        RunSpec::jobQueue({"flo52", "tomcatv"},
                          MachineParams::multithreaded(2), 1e-4)
            .withExtensions(3, 4, 2);
    const std::string canonical = spec.canonical();
    EXPECT_NE(canonical.find(";ports=3;"), std::string::npos);
    EXPECT_NE(canonical.find(";rename=4;"), std::string::npos);
    EXPECT_NE(canonical.find(";decouple=2;"), std::string::npos);
    const RunSpec parsed = RunSpec::parse(canonical);
    EXPECT_EQ(parsed, spec);
    EXPECT_EQ(parsed.key(), spec.key());
    EXPECT_EQ(parsed.memPorts, 3);
    EXPECT_EQ(parsed.renameDepth, 4);
    EXPECT_EQ(parsed.decoupleDepth, 2);
    EXPECT_EQ(parsed.canonical(), canonical);
}

TEST(RunSpecExt, AxesNeverAlias)
{
    // Every axis is part of the canonical string (= the cache and
    // store key): specs differing only in an axis never collide,
    // even when the axis folds to the same effective machine (the
    // Convex ports=1 override equals the reference default).
    const RunSpec base =
        RunSpec::single("flo52", MachineParams::reference());
    const RunSpec ports = base.withExtensions(1, 0, 0);
    const RunSpec rename = base.withExtensions(0, 1, 0);
    const RunSpec decouple = base.withExtensions(0, 0, 1);
    EXPECT_NE(base.canonical(), ports.canonical());
    EXPECT_NE(base.canonical(), rename.canonical());
    EXPECT_NE(base.canonical(), decouple.canonical());
    EXPECT_NE(ports.canonical(), rename.canonical());
    EXPECT_NE(rename.canonical(), decouple.canonical());
    EXPECT_NE(base.key(), ports.key());
    EXPECT_NE(base.key(), rename.key());
    EXPECT_NE(base.key(), decouple.key());
}

TEST(RunSpecExt, OldFiveFieldFormatRejected)
{
    // The pre-extension 5-field serialization must fail loudly, not
    // decode with silently-defaulted axes.
    ScopedFatalAsException scope;
    const std::string old =
        "mode=single;scale=0.0001;max=0;programs=flo52;machine=" +
        MachineParams::reference().canonical();
    EXPECT_THROW(RunSpec::parse(old), FatalError);
}

TEST(RunSpecExt, RangeValidation)
{
    ScopedFatalAsException scope;
    const RunSpec base =
        RunSpec::single("flo52", MachineParams::reference());
    EXPECT_THROW(base.withExtensions(6, 0, 0), FatalError);
    EXPECT_THROW(base.withExtensions(-1, 0, 0), FatalError);
    EXPECT_THROW(base.withExtensions(0, 9, 0), FatalError);
    EXPECT_THROW(base.withExtensions(0, 0, 17), FatalError);
}

TEST(RunSpecExt, EffectiveParamsFoldsAxes)
{
    const RunSpec spec =
        RunSpec::jobQueue({"flo52"}, MachineParams::multithreaded(2))
            .withExtensions(3, 4, 5);
    const MachineParams p = spec.effectiveParams();
    EXPECT_EQ(p.loadPorts, 2);  // Cray split: N-1 load + 1 store
    EXPECT_EQ(p.storePorts, 1);
    EXPECT_EQ(p.renameDepth, 4);
    EXPECT_EQ(p.decoupleDepth, 5);
    // The declarative spec is untouched by the fold.
    EXPECT_EQ(spec.params.loadPorts, 1);
    EXPECT_EQ(spec.params.storePorts, 0);
    EXPECT_EQ(spec.params.renameDepth, 0);

    // ports=1 is the Convex unified port; 0 inherits the machine's.
    const RunSpec convex =
        RunSpec::single("flo52", MachineParams::reference())
            .withExtensions(1, 0, 0);
    EXPECT_EQ(convex.effectiveParams().loadPorts, 1);
    EXPECT_EQ(convex.effectiveParams().storePorts, 0);
    const RunSpec inherit =
        RunSpec::single("flo52", MachineParams::crayStyle(2));
    EXPECT_EQ(inherit.effectiveParams().loadPorts, 2);
    EXPECT_EQ(inherit.effectiveParams().storePorts, 1);
}

TEST(RunSpecExt, InfiniteAndBoundedRenamingExclusive)
{
    ScopedFatalAsException scope;
    MachineParams p = MachineParams::reference();
    p.renaming = true;
    const RunSpec spec = RunSpec::single("flo52", p);
    EXPECT_THROW(spec.withExtensions(0, 4, 0), FatalError);
}

TEST(RunSpecExt, ReferenceSpecPreservesAxes)
{
    // The derived reference machine keeps the extension overrides:
    // an ext sweep's speedups compare against the single-context
    // machine with the same extension.
    const RunSpec spec =
        RunSpec::jobQueue({"flo52"}, MachineParams::multithreaded(4))
            .withExtensions(3, 0, 4);
    const MachineParams ref = referenceMachineOf(spec.effectiveParams());
    EXPECT_EQ(ref.contexts, 1);
    EXPECT_EQ(ref.loadPorts, 2);
    EXPECT_EQ(ref.storePorts, 1);
    EXPECT_EQ(ref.decoupleDepth, 4);
}

// ---------------------------------------------------------------------
// Bounded renaming (MachineParams::renameDepth)
// ---------------------------------------------------------------------

TEST(BoundedRenaming, OneSpareMatchesInfiniteOnSingleWaw)
{
    // One WAW hazard needs one spare register: a pool of 1 behaves
    // exactly like the infinite pool (cycles 138, see
    // Renaming.RemovesWawStall).
    MachineParams p = MachineParams::reference();
    p.renameDepth = 1;
    const SimStats s = runStream(
        {
            makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
            makeVectorArith(Opcode::VAdd, 2, 4, 4, 128),
        },
        p);
    EXPECT_EQ(s.cycles, 138u);
}

TEST(BoundedRenaming, OneSpareRemovesWarStall)
{
    MachineParams p = MachineParams::reference();
    p.renameDepth = 1;
    const SimStats s = runStream(
        {
            makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
        },
        p);
    EXPECT_EQ(s.cycles, 182u);  // same as Renaming.RemovesWarStall
}

TEST(BoundedRenaming, ExhaustedPoolSitsBetweenNoneAndInfinite)
{
    // Three back-to-back WAW writers to v2 want two simultaneous
    // renames; a pool of 1 must serialize on the recycled slot, so
    // it can never beat the infinite pool nor lose to no renaming.
    const std::vector<Instruction> stream = {
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
        makeVectorArith(Opcode::VAdd, 2, 4, 4, 128),
        makeVectorArith(Opcode::VAdd, 2, 6, 6, 128),
    };
    MachineParams none = MachineParams::reference();
    MachineParams one = MachineParams::reference();
    one.renameDepth = 1;
    MachineParams inf = MachineParams::reference();
    inf.renaming = true;
    const uint64_t noneCycles = runStream(stream, none).cycles;
    const uint64_t oneCycles = runStream(stream, one).cycles;
    const uint64_t infCycles = runStream(stream, inf).cycles;
    EXPECT_LE(infCycles, oneCycles);
    EXPECT_LE(oneCycles, noneCycles);
    EXPECT_LT(oneCycles, noneCycles);  // one spare still helps
}

TEST(BoundedRenaming, SteppedAndEventKernelsAgree)
{
    // The bounded-rename wakeup predicate must be exact: a late wake
    // in the event kernel would break bit-identity with the stepped
    // reference.
    const std::vector<Instruction> stream = {
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
        makeVectorArith(Opcode::VAdd, 2, 4, 4, 128),
        makeVectorArith(Opcode::VAdd, 2, 6, 6, 128),
        makeVectorMem(Opcode::VLoad, 2, 128, 0x0, 1),
        makeVectorArith(Opcode::VMul, 4, 2, 6, 128),
    };
    for (const int depth : {1, 2, 4}) {
        MachineParams p = MachineParams::reference();
        p.renameDepth = depth;
        VectorSource steppedSrc("bounded", stream);
        VectorSim stepped(p, SimKernel::Stepped);
        VectorSource eventSrc("bounded", stream);
        VectorSim event(p, SimKernel::Event);
        EXPECT_EQ(stepped.runSingle(steppedSrc).cycles,
                  event.runSingle(eventSrc).cycles)
            << "depth " << depth;
    }
}

TEST(BoundedRenaming, DepthFourMatchesInfiniteOnRealWorkloads)
{
    // The generator's 8-register bodies never hold more than four
    // renames at once, so a 4-deep pool reproduces the infinite
    // pool's cycle counts exactly on the suite.
    Runner runner(2e-5);
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd",
                                           "dyfesm"};
    for (int c : {1, 2}) {
        MachineParams bounded = MachineParams::multithreaded(c);
        bounded.renameDepth = 4;
        MachineParams inf = MachineParams::multithreaded(c);
        inf.renaming = true;
        EXPECT_EQ(runner.runJobQueue(jobs, bounded).cycles,
                  runner.runJobQueue(jobs, inf).cycles)
            << c << " contexts";
    }
}

} // namespace
} // namespace mtv
