/**
 * @file
 * Tests for the batched-kernel coalescing layer (src/api/engine.cc
 * with EngineOptions::kernel == SimKernel::Batched): family-signature
 * grouping, runAll()/submit() coalescing into lockstep runBatch()
 * calls, per-point cancellation splitting, and the bit-identity of
 * coalesced results against single-point and event-kernel runs (the
 * invariant tests/test_golden.cc pins with digests; here pinned
 * field-for-field with the stats codec).
 */

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/api/engine.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

RunSpec
floAtLatency(int latency, uint64_t maxInstructions = 0)
{
    MachineParams p = MachineParams::reference();
    p.memLatency = latency;
    return RunSpec::single("flo52", p, testScale, maxInstructions);
}

EngineOptions
batchedOptions(int workers = 1, int width = 16)
{
    EngineOptions options(workers);
    options.kernel = SimKernel::Batched;
    options.batchWidth = width;
    return options;
}

/** Bit-identical stats via the lossless store codec. */
void
expectIdenticalStats(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(serializeSimStats(a), serializeSimStats(b));
}

// ---------------------------------------------------------------------
// Family signatures
// ---------------------------------------------------------------------

TEST(BatchEngine, FamilySignatureGroupsSweepFamilies)
{
    // Machine parameters and the fetch budget vary *within* a sweep
    // family, so the signature must ignore them...
    EXPECT_EQ(ExperimentEngine::familySignature(floAtLatency(1)),
              ExperimentEngine::familySignature(floAtLatency(100)));
    EXPECT_EQ(ExperimentEngine::familySignature(floAtLatency(1)),
              ExperimentEngine::familySignature(floAtLatency(1, 500)));
    MachineParams dual = MachineParams::fujitsuDualScalar();
    EXPECT_EQ(ExperimentEngine::familySignature(floAtLatency(1)),
              ExperimentEngine::familySignature(
                  RunSpec::single("flo52", dual, testScale)));

    // ...while program, scale, and mode all split families.
    const MachineParams ref = MachineParams::reference();
    EXPECT_NE(ExperimentEngine::familySignature(floAtLatency(1)),
              ExperimentEngine::familySignature(
                  RunSpec::single("dyfesm", ref, testScale)));
    EXPECT_NE(ExperimentEngine::familySignature(floAtLatency(1)),
              ExperimentEngine::familySignature(
                  RunSpec::single("flo52", ref, 2 * testScale)));
    EXPECT_NE(
        ExperimentEngine::familySignature(floAtLatency(1)),
        ExperimentEngine::familySignature(RunSpec::jobQueue(
            {"flo52"}, MachineParams::crayStyle(2), testScale)));
}

// ---------------------------------------------------------------------
// runAll coalescing
// ---------------------------------------------------------------------

TEST(BatchEngine, RunAllMixedFamiliesMatchEventReference)
{
    // Two interleaved families plus the awkward members: a
    // fetch-truncated point (cache-exempt but still batchable) and a
    // dual-scalar machine (outside the lockstep fast lane, simulated
    // through the in-batch fallback).
    MachineParams dyf1 = MachineParams::reference();
    dyf1.memLatency = 1;
    MachineParams dyf20 = MachineParams::reference();
    dyf20.memLatency = 20;
    const std::vector<RunSpec> specs = {
        floAtLatency(1),
        RunSpec::single("dyfesm", dyf1, testScale),
        floAtLatency(20),
        RunSpec::single("dyfesm", dyf20, testScale),
        floAtLatency(40, 800),
        RunSpec::single("flo52", MachineParams::fujitsuDualScalar(),
                        testScale),
        floAtLatency(60),
        floAtLatency(100),
    };

    ExperimentEngine batched(batchedOptions());
    const auto results = batched.runAll(specs);
    // flo52 family: 6 points in one batch; dyfesm family: 2 in
    // another.
    EXPECT_EQ(batched.batchesExecuted(), 2u);
    EXPECT_EQ(batched.batchedPoints(), 8u);

    ExperimentEngine reference;  // event kernel, spec at a time
    ASSERT_EQ(results.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(results[i].spec, specs[i]);
        expectIdenticalStats(results[i].stats,
                             reference.run(specs[i]).stats);
    }
}

TEST(BatchEngine, RunAllBatchWidthIsDeterministic)
{
    std::vector<RunSpec> specs;
    for (int i = 0; i < 16; ++i)
        specs.push_back(floAtLatency(1 + i));

    ExperimentEngine wide(batchedOptions());
    wide.runAll(specs);
    EXPECT_EQ(wide.batchesExecuted(), 1u);
    EXPECT_EQ(wide.batchedPoints(), 16u);
    EXPECT_EQ(wide.batchWidth(), 16u);

    // Width 1 disables coalescing entirely: every point runs as its
    // own single-point batch through execute().
    ExperimentEngine narrow(batchedOptions(1, 1));
    narrow.runAll(specs);
    EXPECT_EQ(narrow.batchesExecuted(), 0u);
    EXPECT_EQ(narrow.batchedPoints(), 0u);
    EXPECT_EQ(narrow.batchWidth(), 1u);
}

TEST(BatchEngine, CoalescedStatsBitIdenticalToSinglePointRuns)
{
    std::vector<RunSpec> specs;
    for (const int latency : {1, 20, 40, 50, 60, 80, 100})
        specs.push_back(floAtLatency(latency));

    ExperimentEngine wide(batchedOptions(4, 16));
    ExperimentEngine narrow(batchedOptions(1, 1));
    const auto a = wide.runAll(specs);
    const auto b = narrow.runAll(specs);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectIdenticalStats(a[i].stats, b[i].stats);
}

// ---------------------------------------------------------------------
// submit() coalescing and per-point cancellation
// ---------------------------------------------------------------------

/**
 * Parks a 1-worker engine behind a spec whose completion hook blocks
 * until release(), so everything submitted afterwards is staged
 * together (the test_api.cc WorkerGate, on the batched engine).
 */
class BatchWorkerGate
{
  public:
    explicit BatchWorkerGate(ExperimentEngine &engine)
    {
        MachineParams params = MachineParams::reference();
        params.memLatency = 199;  // distinct from every other spec
        std::shared_future<void> released =
            gate_.get_future().share();
        done_ = engine.submit(
            RunSpec::single("trfd", params, testScale),
            [released](const RunResult &) { released.wait(); });
    }

    void
    release()
    {
        gate_.set_value();
        done_.get();
    }

  private:
    std::promise<void> gate_;
    std::future<RunResult> done_;
};

TEST(BatchEngine, SubmitCoalescesFamilyAndSplitsCancellation)
{
    ExperimentEngine engine(batchedOptions());
    BatchWorkerGate gate(engine);

    // One pre-cancelled point staged between two live family-mates:
    // the drain must batch all three, fail only the cancelled one,
    // and serve the survivors from the shared lockstep run.
    auto token = std::make_shared<CancelToken>();
    token->cancel();
    auto live = engine.submit(floAtLatency(1));
    auto cancelled = engine.submit(floAtLatency(20), nullptr, token);
    auto alsoLive = engine.submit(floAtLatency(40));
    gate.release();

    EXPECT_THROW(cancelled.get(), CancelledError);
    EXPECT_EQ(engine.cancelledRuns(), 1u);
    // The gate spec simulated alone; the two survivors shared one
    // batch (the cancelled point never reached the kernel).
    EXPECT_EQ(engine.batchesExecuted(), 2u);
    EXPECT_EQ(engine.batchedPoints(), 3u);

    ExperimentEngine reference;
    expectIdenticalStats(live.get().stats,
                         reference.run(floAtLatency(1)).stats);
    expectIdenticalStats(alsoLive.get().stats,
                         reference.run(floAtLatency(40)).stats);
}

} // namespace
} // namespace mtv
