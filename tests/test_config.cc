/**
 * @file
 * Unit tests for the key=value config substrate and
 * MachineParams::fromConfig.
 */

#include <gtest/gtest.h>

#include "src/common/chart.hh"
#include "src/common/config.hh"
#include "src/isa/machine_params.hh"

namespace mtv
{
namespace
{

TEST(Config, ParsesKeysValuesAndComments)
{
    const Config cfg = Config::fromString(
        "# machine description\n"
        "contexts = 3\n"
        "mem_latency=80   # inline comment\n"
        "\n"
        "  sched =  round-robin  \n");
    EXPECT_TRUE(cfg.has("contexts"));
    EXPECT_EQ(cfg.getInt("contexts"), 3);
    EXPECT_EQ(cfg.getInt("mem_latency"), 80);
    EXPECT_EQ(cfg.getString("sched"), "round-robin");
    EXPECT_EQ(cfg.keys().size(), 3u);
}

TEST(Config, FallbacksWhenAbsent)
{
    const Config cfg = Config::fromString("");
    EXPECT_EQ(cfg.getInt("nope", 7), 7);
    EXPECT_EQ(cfg.getString("nope", "x"), "x");
    EXPECT_DOUBLE_EQ(cfg.getDouble("nope", 1.5), 1.5);
    EXPECT_TRUE(cfg.getBool("nope", true));
}

TEST(Config, BoolSpellings)
{
    const Config cfg = Config::fromString(
        "a = true\nb = YES\nc = on\nd = 1\n"
        "e = false\nf = No\ng = off\nh = 0\n");
    for (const char *k : {"a", "b", "c", "d"})
        EXPECT_TRUE(cfg.getBool(k)) << k;
    for (const char *k : {"e", "f", "g", "h"})
        EXPECT_FALSE(cfg.getBool(k)) << k;
}

TEST(Config, SetOverwrites)
{
    Config cfg = Config::fromString("a = 1\n");
    cfg.set("a", "2");
    cfg.set("b", "3");
    EXPECT_EQ(cfg.getInt("a"), 2);
    EXPECT_EQ(cfg.getInt("b"), 3);
    EXPECT_EQ(cfg.keys().size(), 2u);  // no duplicate key entries
}

TEST(Config, UnusedKeyTracking)
{
    const Config cfg = Config::fromString("used = 1\ntypo_key = 2\n");
    cfg.getInt("used");
    const auto unused = cfg.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo_key");
}

TEST(ConfigDeath, SyntaxErrorIsFatal)
{
    EXPECT_EXIT({ Config::fromString("this has no equals sign\n"); },
                testing::ExitedWithCode(1), "expected 'key = value'");
}

TEST(ConfigDeath, BadIntIsFatal)
{
    const Config cfg = Config::fromString("n = twelve\n");
    EXPECT_EXIT({ cfg.getInt("n"); }, testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ConfigDeath, BadBoolIsFatal)
{
    const Config cfg = Config::fromString("b = maybe\n");
    EXPECT_EXIT({ cfg.getBool("b"); }, testing::ExitedWithCode(1),
                "not a boolean");
}

TEST(ConfigDeath, MissingFileIsFatal)
{
    EXPECT_EXIT({ Config::fromFile("/nonexistent/cfg"); },
                testing::ExitedWithCode(1), "cannot open");
}

TEST(ParamsFromConfig, DefaultsAreReferenceMachine)
{
    const MachineParams p =
        MachineParams::fromConfig(Config::fromString(""));
    const MachineParams ref = MachineParams::reference();
    EXPECT_EQ(p.contexts, ref.contexts);
    EXPECT_EQ(p.memLatency, ref.memLatency);
    EXPECT_EQ(p.readXbar, ref.readXbar);
    EXPECT_EQ(p.loadPorts, ref.loadPorts);
}

TEST(ParamsFromConfig, AllKeysApply)
{
    const MachineParams p = MachineParams::fromConfig(Config::fromString(
        "contexts = 4\n"
        "sched = fair-lru\n"
        "decode_width = 2\n"
        "read_xbar = 3\n"
        "write_xbar = 3\n"
        "vector_startup = 2\n"
        "bank_ports = off\n"
        "mem_latency = 75\n"
        "banked_memory = on\n"
        "mem_banks = 32\n"
        "bank_busy = 4\n"
        "load_chaining = yes\n"
        "load_ports = 2\n"
        "store_ports = 1\n"
        "renaming = true\n"
        "decouple_depth = 4\n"
        "branch_stall = 3\n"));
    EXPECT_EQ(p.contexts, 4);
    EXPECT_EQ(p.sched, SchedPolicy::FairLru);
    EXPECT_EQ(p.decodeWidth, 2);
    EXPECT_EQ(p.readXbar, 3);
    EXPECT_EQ(p.writeXbar, 3);
    EXPECT_EQ(p.vectorStartup, 2);
    EXPECT_FALSE(p.modelBankPorts);
    EXPECT_EQ(p.memLatency, 75);
    EXPECT_TRUE(p.bankedMemory);
    EXPECT_EQ(p.memBanks, 32);
    EXPECT_EQ(p.bankBusyCycles, 4);
    EXPECT_TRUE(p.loadChaining);
    EXPECT_EQ(p.loadPorts, 2);
    EXPECT_EQ(p.storePorts, 1);
    EXPECT_TRUE(p.renaming);
    EXPECT_EQ(p.decoupleDepth, 4);
    EXPECT_EQ(p.branchStall, 3);
}

TEST(ParamsFromConfigDeath, BadPolicyIsFatal)
{
    EXPECT_EXIT(
        {
            MachineParams::fromConfig(
                Config::fromString("sched = random\n"));
        },
        testing::ExitedWithCode(1), "unknown scheduling policy");
}

TEST(ParamsFromConfigDeath, ValidationApplies)
{
    EXPECT_EXIT(
        {
            MachineParams::fromConfig(
                Config::fromString("contexts = 99\n"));
        },
        testing::ExitedWithCode(1), "contexts");
}

TEST(BarChart, ScalesToMaximum)
{
    BarChart chart(10);
    chart.add("a", 5.0).add("bb", 10.0).add("c", 0.0);
    const std::string out = chart.render();
    // Max value gets a full-width bar; half value gets half.
    EXPECT_NE(out.find("bb  ##########"), std::string::npos);
    EXPECT_NE(out.find("a   #####"), std::string::npos);
    EXPECT_NE(out.find("c   "), std::string::npos);
}

TEST(BarChart, FixedFullScale)
{
    BarChart chart(10);
    chart.fullScale(1.0);
    chart.add("occ", 0.5);
    EXPECT_NE(chart.render().find("occ  #####  0.5"),
              std::string::npos);
}

TEST(BarChart, EmptyRendersEmpty)
{
    EXPECT_EQ(BarChart().render(), "");
}

TEST(LineChart, RendersSeriesAndLegend)
{
    LineChart chart(20, 8);
    chart.series("up", {0, 1, 2}, {0, 1, 2});
    chart.series("down", {0, 1, 2}, {2, 1, 0});
    const std::string out = chart.render();
    EXPECT_NE(out.find('*'), std::string::npos);
    EXPECT_NE(out.find('o'), std::string::npos);
    EXPECT_NE(out.find("up"), std::string::npos);
    EXPECT_NE(out.find("down"), std::string::npos);
    EXPECT_NE(out.find("x: 0 .. 2"), std::string::npos);
}

TEST(LineChart, FlatSeriesDoesNotDivideByZero)
{
    LineChart chart(20, 8);
    chart.series("flat", {1, 2}, {5, 5});
    EXPECT_FALSE(chart.render().empty());
}

} // namespace
} // namespace mtv
