/**
 * @file
 * Cycle-exact unit tests of the simulator timing model on handcrafted
 * instruction streams. Every expected value below is derived by hand
 * from the model in DESIGN.md section 3.3 with the default parameters:
 * startup 1, read/write crossbar 2, vector add latency 4, mul 7,
 * memory latency 50 (unless overridden).
 */

#include <gtest/gtest.h>

#include "src/core/sim.hh"
#include "src/trace/source.hh"

namespace mtv
{
namespace
{

SimStats
runStream(const std::vector<Instruction> &instrs,
          MachineParams params = MachineParams::reference())
{
    VectorSource src("handcrafted", instrs);
    VectorSim sim(params);
    return sim.runSingle(src);
}

TEST(SimTiming, EmptyProgram)
{
    const SimStats s = runStream({});
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.dispatches, 0u);
}

TEST(SimTiming, SingleVectorLoad)
{
    // dispatch t=0: start 1 (startup), abus [1,129), prodFirst =
    // 1 + 50 + 2 (write xbar) = 53, writeDone = 53 + 128 = 181.
    const SimStats s =
        runStream({makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1)});
    EXPECT_EQ(s.cycles, 181u);
    EXPECT_EQ(s.memRequests, 128u);
    EXPECT_EQ(s.ldBusyCycles, 128u);
    // Joint-state histogram: LD alone busy for 128 cycles.
    EXPECT_EQ(s.stateHist[1], 128u);
    EXPECT_EQ(s.stateHist[0], 181u - 128);
}

TEST(SimTiming, LoadLatencyScalesCompletion)
{
    MachineParams p = MachineParams::reference();
    p.memLatency = 100;
    const SimStats s =
        runStream({makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1)}, p);
    EXPECT_EQ(s.cycles, 1u + 100 + 2 + 128);
}

TEST(SimTiming, NoLoadChainingBlocksConsumer)
{
    // add must wait for the load's writeDone (181), dispatches at 181:
    // r0 = 182, prodFirst = 182+2+4+2 = 190, writeDone = 318.
    const SimStats s = runStream({
        makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
    });
    EXPECT_EQ(s.cycles, 318u);
}

TEST(SimTiming, LoadChainingAblationOverlaps)
{
    // With the ablation knob on, the add chains off the load:
    // r0 = max(1+1, prodFirst+1 = 54) = 54, writeDone = 54+8+128 = 190.
    MachineParams p = MachineParams::reference();
    p.loadChaining = true;
    const SimStats s = runStream(
        {
            makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
            makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
        },
        p);
    EXPECT_EQ(s.cycles, 190u);
}

TEST(SimTiming, FuToFuChaining)
{
    // i1: add v2 <- v0 (complete at t=0): r0=1, FU1 [1,129),
    //     prodFirst = 9, writeDone = 137.
    // i2: add v4 <- v2 at t=1: FU1 busy -> FU2; chainStart = 10;
    //     r0 = max(2, 10) = 10, prodFirst = 18, writeDone = 146.
    const SimStats s = runStream({
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
        makeVectorArith(Opcode::VAdd, 4, 2, 2, 128),
    });
    EXPECT_EQ(s.cycles, 146u);
    EXPECT_EQ(s.vecOpsFu1 + s.vecOpsFu2, 256u);
    EXPECT_EQ(s.vecOpsFu1, 128u);
    EXPECT_EQ(s.vecOpsFu2, 128u);
}

TEST(SimTiming, ChainIsFullyFlexible)
{
    // A consumer issued long after the producer still chains: put a
    // slow scalar op between producer and consumer.
    const SimStats s = runStream({
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),
        makeScalar(Opcode::SDivInt, 1, 0),  // 34 cycles, dispatch t=1
        makeVectorArith(Opcode::VAdd, 4, 2, 2, 128),
    });
    // i3 dispatches at t=2 (decode in-order, div does not block the
    // next dispatch): chainStart = 10, FU2: r0 = 10, done 146.
    EXPECT_EQ(s.cycles, 146u);
}

TEST(SimTiming, MulRequiresFu2)
{
    // Two muls cannot overlap: the second waits for FU2.
    const SimStats one =
        runStream({makeVectorArith(Opcode::VMul, 2, 0, 0, 128)});
    // r0 = 1, FU2 [1,129), prodFirst = 1+2+7+2 = 12, done 140.
    EXPECT_EQ(one.cycles, 140u);

    const SimStats two = runStream({
        makeVectorArith(Opcode::VMul, 2, 0, 0, 128),
        makeVectorArith(Opcode::VMul, 4, 6, 6, 128),
    });
    // Second mul independent but FU2 busy until 129: dispatch at 129,
    // r0 = 130, prodFirst = 141, done 269.
    EXPECT_EQ(two.cycles, 269u);
    EXPECT_EQ(two.vecOpsFu1, 0u);
}

TEST(SimTiming, IndependentAddsUseBothFus)
{
    const SimStats s = runStream({
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),   // FU1 [1,129)
        makeVectorArith(Opcode::VAdd, 4, 6, 6, 128),   // FU2 [2,130)
    });
    // i2 dispatches at t=1 on FU2: r0=2, prodFirst=10, done 138.
    EXPECT_EQ(s.cycles, 138u);
    EXPECT_EQ(s.vecOpsFu1, 128u);
    EXPECT_EQ(s.vecOpsFu2, 128u);
    // Both FUs busy simultaneously for cycles [2,129).
    EXPECT_EQ(s.stateHist[4 | 2], 127u);
}

TEST(SimTiming, WawBlocksUntilWriteDone)
{
    const SimStats s = runStream({
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),  // done 137
        makeVectorArith(Opcode::VAdd, 2, 4, 4, 128),  // WAW on v2
    });
    // Second add waits until v2 fully written (137): r0 = 138,
    // prodFirst = 146, done 274.
    EXPECT_EQ(s.cycles, 274u);
}

TEST(SimTiming, WarBlocksLoadUntilReadersFinish)
{
    const SimStats s = runStream({
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),  // reads v0 [1,129)
        makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1), // WAR on v0
    });
    // Load waits for v0.readBusy = 129: dispatch 129, start 130,
    // writeDone = 130 + 50 + 2 + 128 = 310.
    EXPECT_EQ(s.cycles, 310u);
}

TEST(SimTiming, StoreChainsFromProducer)
{
    const SimStats s = runStream({
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 128),  // prodFirst 9
        makeVectorMem(Opcode::VStore, 2, 128, 0x0, 1),
    });
    // Store at t=1: chainStart = 10, start = max(2, 10) = 10,
    // fire-and-forget completion = 10 + 128 = 138.
    EXPECT_EQ(s.cycles, 138u);
    EXPECT_EQ(s.memRequests, 128u);
}

TEST(SimTiming, StoreAloneIsLatencyFree)
{
    const SimStats s =
        runStream({makeVectorMem(Opcode::VStore, 0, 128, 0x0, 1)});
    // start 1, completion 129 regardless of memory latency.
    EXPECT_EQ(s.cycles, 129u);

    MachineParams p = MachineParams::reference();
    p.memLatency = 100;
    const SimStats s2 =
        runStream({makeVectorMem(Opcode::VStore, 0, 128, 0x0, 1)}, p);
    EXPECT_EQ(s2.cycles, 129u);
}

TEST(SimTiming, AddressBusSerializesMemoryOps)
{
    const SimStats s = runStream({
        makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),   // abus [1,129)
        makeVectorMem(Opcode::VLoad, 2, 128, 0x1000, 1),
    });
    // Second load blocked on address bus until 129: start 130,
    // writeDone = 130 + 52 + 128 = 310.
    EXPECT_EQ(s.cycles, 310u);
    EXPECT_EQ(s.memRequests, 256u);
}

TEST(SimTiming, BankPortConflictDelaysThirdReader)
{
    // i1 reads v0 and v1 (both ports of bank 0) until 129; i2 wants a
    // bank-0 read port and must wait.
    const SimStats s = runStream({
        makeVectorArith(Opcode::VAdd, 2, 0, 1, 128),  // FU1
        makeVectorArith(Opcode::VAdd, 4, 0, 0, 128),  // FU2, bank 0 full
    });
    // i2 dispatches at 129: r0 = 130, prodFirst = 138, done 266.
    EXPECT_EQ(s.cycles, 266u);
}

TEST(SimTiming, BankPortModelCanBeDisabled)
{
    MachineParams p = MachineParams::reference();
    p.modelBankPorts = false;
    const SimStats s = runStream(
        {
            makeVectorArith(Opcode::VAdd, 2, 0, 1, 128),
            makeVectorArith(Opcode::VAdd, 4, 0, 0, 128),
        },
        p);
    // Without port modelling i2 dispatches at t=1 on FU2: done 138.
    EXPECT_EQ(s.cycles, 138u);
}

TEST(SimTiming, CrossbarLatencyAddsToPipeline)
{
    MachineParams p = MachineParams::reference();
    p.readXbar = 3;
    p.writeXbar = 3;
    const SimStats s =
        runStream({makeVectorArith(Opcode::VAdd, 2, 0, 0, 128)}, p);
    // r0 = 1, prodFirst = 1+3+4+3 = 11, done 139 (was 137 at 2/2).
    EXPECT_EQ(s.cycles, 139u);
}

TEST(SimTiming, ReduceDepositsScalar)
{
    const SimStats s = runStream({
        makeVectorArith(Opcode::VReduce, 3, 0, noReg, 128),
        makeScalar(Opcode::SAddFp, 4, 3),  // consumes the reduction
    });
    // reduce: r0 = 1, scalarReady = 1 + 2 + 4 + 128 = 135;
    // fadd blocked until 135, ready at 137.
    EXPECT_EQ(s.cycles, 137u);
}

TEST(SimTiming, ScalarAluLatency)
{
    const SimStats s = runStream({makeScalar(Opcode::SAddInt, 1, 0)});
    EXPECT_EQ(s.cycles, 1u);
    const SimStats s2 = runStream({makeScalar(Opcode::SDivInt, 1, 0)});
    EXPECT_EQ(s2.cycles, 34u);
}

TEST(SimTiming, ScalarDependencyStalls)
{
    const SimStats s = runStream({
        makeScalar(Opcode::SMulFp, 1, 0),  // ready at 2
        makeScalar(Opcode::SAddFp, 2, 1),  // dispatch 2, ready 4
    });
    EXPECT_EQ(s.cycles, 4u);
}

TEST(SimTiming, ScalarLoadPaysMemoryLatency)
{
    const SimStats s = runStream({
        makeScalarMem(Opcode::SLoad, 1, 0x10),
        makeScalar(Opcode::SAddFp, 2, 1),
    });
    // load ready at 50; add dispatches at 50, ready 52.
    EXPECT_EQ(s.cycles, 52u);
    EXPECT_EQ(s.memRequests, 1u);
}

TEST(SimTiming, BranchStallsFetch)
{
    const SimStats s = runStream({
        makeScalar(Opcode::SBranch, noReg, 0),
        makeScalar(Opcode::SAddInt, 1, 0),
    });
    // branch at 0; fetch blocked until 0+1+2 = 3; add ready at 4.
    EXPECT_EQ(s.cycles, 4u);
}

TEST(SimTiming, StateHistogramSumsToCycles)
{
    const SimStats s = runStream({
        makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1),
        makeVectorArith(Opcode::VMul, 2, 0, 0, 128),
        makeVectorMem(Opcode::VStore, 2, 128, 0x1000, 1),
    });
    uint64_t sum = 0;
    for (const auto v : s.stateHist)
        sum += v;
    EXPECT_EQ(sum, s.cycles);
}

TEST(SimTiming, VectorStartupDelaysPipeline)
{
    MachineParams p = MachineParams::reference();
    p.vectorStartup = 5;
    const SimStats s =
        runStream({makeVectorArith(Opcode::VAdd, 2, 0, 0, 128)}, p);
    // r0 = 5, prodFirst = 13, done 141.
    EXPECT_EQ(s.cycles, 141u);
}

TEST(SimTiming, TruncatedRunStopsAtBudget)
{
    std::vector<Instruction> instrs;
    for (int i = 0; i < 10; ++i)
        instrs.push_back(makeScalar(Opcode::SAddInt, 1, 0));
    VectorSource src("trunc", instrs);
    VectorSim sim(MachineParams::reference());
    const SimStats s = sim.runSingle(src, 4);
    EXPECT_EQ(s.dispatches, 4u);
    EXPECT_EQ(s.cycles, 4u);
}

TEST(SimTiming, ShortVectorLengths)
{
    const SimStats s =
        runStream({makeVectorMem(Opcode::VLoad, 0, 21, 0x0, 1)});
    EXPECT_EQ(s.cycles, 1u + 50 + 2 + 21);
    EXPECT_EQ(s.memRequests, 21u);
}

TEST(SimTiming, GatherTimingMatchesLoadByDefault)
{
    const SimStats plain =
        runStream({makeVectorMem(Opcode::VLoad, 0, 64, 0x0, 1)});
    const SimStats gather =
        runStream({makeVectorMem(Opcode::VGather, 0, 64, 0x0, 1)});
    EXPECT_EQ(plain.cycles, gather.cycles);
}

TEST(SimTiming, BankedMemorySlowsConflictedStride)
{
    MachineParams p = MachineParams::reference();
    p.bankedMemory = true;
    p.memBanks = 64;
    p.bankBusyCycles = 8;
    const SimStats s = runStream(
        {makeVectorMem(Opcode::VLoad, 0, 64, 0x0, 64)}, p);
    // Single-bank stream: writeDone = 1 + 50 + 2 + 64*8 = 565.
    EXPECT_EQ(s.cycles, 565u);
}

TEST(SimTiming, DispatchCountsBookkeeping)
{
    const SimStats s = runStream({
        makeScalar(Opcode::SAddInt, 1, 0),
        makeVectorArith(Opcode::VAdd, 2, 0, 0, 16),
        makeVectorMem(Opcode::VStore, 2, 16, 0x0, 1),
    });
    EXPECT_EQ(s.dispatches, 3u);
    ASSERT_EQ(s.threads.size(), 1u);
    EXPECT_EQ(s.threads[0].instructions, 3u);
    EXPECT_EQ(s.threads[0].scalarInstructions, 1u);
    EXPECT_EQ(s.threads[0].vectorInstructions, 2u);
    EXPECT_EQ(s.threads[0].runsCompleted, 1u);
}

} // namespace
} // namespace mtv
