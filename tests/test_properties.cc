/**
 * @file
 * Property tests: invariants that must hold across the whole
 * (latency x contexts x policy) design space, checked with
 * parameterized sweeps on real (scaled-down) suite workloads.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/driver/runner.hh"
#include "src/trace/analyzer.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

/** Small representative slice of the suite for sweep tests. */
const std::vector<std::string> &
sweepJobs()
{
    static const std::vector<std::string> jobs = {
        "flo52", "tomcatv", "trfd", "dyfesm", "bdna"};
    return jobs;
}

class MachineSweep
    : public testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    int latency() const { return std::get<0>(GetParam()); }
    int contexts() const { return std::get<1>(GetParam()); }

    MachineParams
    params() const
    {
        MachineParams p = MachineParams::multithreaded(contexts());
        p.memLatency = latency();
        return p;
    }
};

TEST_P(MachineSweep, MetricsStayInTheoreticalRanges)
{
    Runner runner(testScale);
    const SimStats s = runner.runJobQueue(sweepJobs(), params());
    EXPECT_GT(s.cycles, 0u);
    // One address port: occupation in [0, 1].
    EXPECT_GE(s.memPortOccupation(), 0.0);
    EXPECT_LE(s.memPortOccupation(), 1.0);
    // Two arithmetic pipes: VOPC in [0, 2].
    EXPECT_GE(s.vopc(), 0.0);
    EXPECT_LE(s.vopc(), 2.0);
    EXPECT_GE(s.memPortIdleFraction(), 0.0);
    EXPECT_LE(s.memPortIdleFraction(), 1.0);
}

TEST_P(MachineSweep, StateHistogramIsAPartitionOfTime)
{
    Runner runner(testScale);
    const SimStats s = runner.runJobQueue(sweepJobs(), params());
    uint64_t sum = 0;
    for (const auto v : s.stateHist)
        sum += v;
    EXPECT_EQ(sum, s.cycles);
    // Unit busy-cycle counters must agree with the histogram margins.
    uint64_t ldBusy = 0;
    uint64_t fu1Busy = 0;
    uint64_t fu2Busy = 0;
    for (int i = 0; i < numFuStates; ++i) {
        if (i & 1)
            ldBusy += s.stateHist[i];
        if (i & 2)
            fu1Busy += s.stateHist[i];
        if (i & 4)
            fu2Busy += s.stateHist[i];
    }
    EXPECT_EQ(ldBusy, s.ldBusyCycles);
    EXPECT_EQ(fu1Busy, s.fu1BusyCycles);
    EXPECT_EQ(fu2Busy, s.fu2BusyCycles);
}

TEST_P(MachineSweep, WorkIsInvariantAcrossMachines)
{
    // The same jobs produce the same instruction/request/element-op
    // totals no matter the machine (only the timing changes).
    Runner runner(testScale);
    TraceStats expected;
    for (const auto &name : sweepJobs())
        expected += runner.programStats(name);

    const SimStats s = runner.runJobQueue(sweepJobs(), params());
    EXPECT_EQ(s.dispatches, expected.totalInstructions());
    EXPECT_EQ(s.memRequests, expected.memoryRequests);
    EXPECT_EQ(s.vecOpsFu1 + s.vecOpsFu2,
              expected.vectorArithOperations);
    // FU2 executes at least the ops only it can run.
    EXPECT_GE(s.vecOpsFu2, expected.fu2OnlyOperations);
}

TEST_P(MachineSweep, NeverBelowIdealBound)
{
    Runner runner(testScale);
    const SimStats s = runner.runJobQueue(sweepJobs(), params());
    const IdealBound ideal = runner.idealTime(sweepJobs());
    EXPECT_GE(s.cycles, ideal.bound);
}

TEST_P(MachineSweep, MultithreadingDoesNotLoseToSequential)
{
    Runner runner(testScale);
    const SimStats s = runner.runJobQueue(sweepJobs(), params());
    const uint64_t sequential =
        runner.sequentialReferenceTime(sweepJobs(), params());
    // Interleaving can add small tail effects; allow 2%.
    EXPECT_LE(static_cast<double>(s.cycles), 1.02 * sequential);
}

TEST_P(MachineSweep, ThreadAccountingIsConsistent)
{
    Runner runner(testScale);
    const SimStats s = runner.runJobQueue(sweepJobs(), params());
    uint64_t perThread = 0;
    for (const auto &t : s.threads) {
        perThread += t.instructions;
        EXPECT_EQ(t.instructions,
                  t.scalarInstructions + t.vectorInstructions);
        EXPECT_LE(t.lastCompletion, s.cycles);
    }
    EXPECT_EQ(perThread, s.dispatches);
}

INSTANTIATE_TEST_SUITE_P(
    LatencyByContexts, MachineSweep,
    testing::Combine(testing::Values(1, 20, 50, 100),
                     testing::Values(1, 2, 3, 4)),
    [](const testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "lat" + std::to_string(std::get<0>(info.param)) + "_ctx" +
               std::to_string(std::get<1>(info.param));
    });

class PolicySweep : public testing::TestWithParam<SchedPolicy>
{
};

TEST_P(PolicySweep, AllPoliciesPreserveWorkAndRanges)
{
    Runner runner(testScale);
    MachineParams p = MachineParams::multithreaded(3);
    p.sched = GetParam();
    const SimStats s = runner.runJobQueue(sweepJobs(), p);
    TraceStats expected;
    for (const auto &name : sweepJobs())
        expected += runner.programStats(name);
    EXPECT_EQ(s.dispatches, expected.totalInstructions());
    EXPECT_LE(s.memPortOccupation(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    testing::Values(SchedPolicy::UnfairLowest, SchedPolicy::RoundRobin,
                    SchedPolicy::FairLru),
    [](const testing::TestParamInfo<SchedPolicy> &info) {
        std::string name = schedPolicyName(info.param);
        for (auto &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

class XbarSweep : public testing::TestWithParam<int>
{
};

TEST_P(XbarSweep, CrossbarCostHasBoundedImpact)
{
    // Paper section 8: +1 cycle on both crossbars costs well under 1%
    // at default latency. Allow 3% at test scale (short runs amplify
    // tail effects).
    Runner runner(testScale);
    MachineParams p = MachineParams::multithreaded(GetParam());
    const uint64_t base = runner.runJobQueue(sweepJobs(), p).cycles;
    p.readXbar = 3;
    p.writeXbar = 3;
    const uint64_t slow = runner.runJobQueue(sweepJobs(), p).cycles;
    EXPECT_LE(static_cast<double>(slow), 1.03 * base);
}

INSTANTIATE_TEST_SUITE_P(Contexts, XbarSweep, testing::Values(2, 3, 4),
                         [](const testing::TestParamInfo<int> &info) {
                             return "ctx" + std::to_string(info.param);
                         });

/**
 * The same invariants must survive every extension machine: Cray
 * multi-port, renaming, decoupling, banked memory, and combinations.
 */
class ExtensionSweep : public testing::TestWithParam<int>
{
  protected:
    MachineParams
    params() const
    {
        switch (GetParam()) {
          case 0:
            return MachineParams::crayStyle(2);
          case 1: {
            MachineParams p = MachineParams::crayStyle(4);
            p.decodeWidth = 2;
            return p;
          }
          case 2: {
            MachineParams p = MachineParams::multithreaded(3);
            p.renaming = true;
            return p;
          }
          case 3:
            return MachineParams::decoupledVector(4);
          case 4: {
            MachineParams p = MachineParams::multithreaded(2);
            p.decoupleDepth = 8;
            p.renaming = true;
            return p;
          }
          case 5: {
            MachineParams p = MachineParams::crayStyle(3);
            p.bankedMemory = true;
            p.decoupleDepth = 2;
            return p;
          }
          default: {
            MachineParams p = MachineParams::fujitsuDualScalar();
            p.renaming = true;
            return p;
          }
        }
    }
};

TEST_P(ExtensionSweep, InvariantsHoldOnExtensionMachines)
{
    Runner runner(testScale);
    const MachineParams p = params();
    const SimStats s = runner.runJobQueue(sweepJobs(), p);

    TraceStats expected;
    for (const auto &name : sweepJobs())
        expected += runner.programStats(name);
    EXPECT_EQ(s.dispatches, expected.totalInstructions());
    EXPECT_EQ(s.memRequests, expected.memoryRequests);
    EXPECT_EQ(s.vecOpsFu1 + s.vecOpsFu2,
              expected.vectorArithOperations);

    EXPECT_GE(s.memPortOccupation(), 0.0);
    EXPECT_LE(s.memPortOccupation(), 1.0);
    EXPECT_LE(s.vopc(), 2.0);

    uint64_t histSum = 0;
    for (const auto v : s.stateHist)
        histSum += v;
    EXPECT_EQ(histSum, s.cycles);

    // Extension machines add capability, never remove it: no run may
    // be slower than the plain sequential reference (small tail
    // margin allowed).
    MachineParams seq = Runner::referenceOf(p);
    seq.renaming = false;
    seq.decoupleDepth = 0;
    seq.loadPorts = 1;
    seq.storePorts = 0;
    seq.bankedMemory = false;
    // Banked machines compare against a banked sequential reference.
    if (p.bankedMemory)
        seq.bankedMemory = true;
    const uint64_t sequential =
        runner.sequentialReferenceTime(sweepJobs(), seq);
    EXPECT_LE(static_cast<double>(s.cycles), 1.02 * sequential);
}

TEST_P(ExtensionSweep, DeterministicOnExtensionMachines)
{
    Runner runner(testScale);
    const SimStats a = runner.runJobQueue(sweepJobs(), params());
    const SimStats b = runner.runJobQueue(sweepJobs(), params());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stateHist, b.stateHist);
    EXPECT_EQ(a.decoupledSlips, b.decoupledSlips);
}

std::string
extensionSweepName(const testing::TestParamInfo<int> &info)
{
    static const char *names[] = {
        "cray2", "cray4wide", "renaming3", "decoupled",
        "decoupledRenaming2", "crayBankedDecoupled",
        "fujitsuRenaming"};
    return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Machines, ExtensionSweep,
                         testing::Range(0, 7), extensionSweepName);

} // namespace
} // namespace mtv
