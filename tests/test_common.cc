/**
 * @file
 * Unit tests for src/common: string helpers, table rendering, PRNG
 * determinism and distribution sanity.
 */

#include <gtest/gtest.h>

#include "src/common/logging.hh"
#include "src/common/random.hh"
#include "src/common/strutil.hh"
#include "src/common/table.hh"

namespace mtv
{
namespace
{

TEST(StrUtil, FormatBasic)
{
    EXPECT_EQ(format("x=%d", 42), "x=42");
    EXPECT_EQ(format("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(format("%.2f", 1.005), "1.00");
}

TEST(StrUtil, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StrUtil, SplitSingleField)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StrUtil, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("\ta b\n"), "a b");
}

TEST(StrUtil, StartsWith)
{
    EXPECT_TRUE(startsWith("swm256", "sw"));
    EXPECT_FALSE(startsWith("sw", "swm256"));
    EXPECT_TRUE(startsWith("x", ""));
}

TEST(StrUtil, ToLower)
{
    EXPECT_EQ(toLower("SWM256"), "swm256");
    EXPECT_EQ(toLower("MiXeD"), "mixed");
}

TEST(StrUtil, WithCommas)
{
    EXPECT_EQ(withCommas(0), "0");
    EXPECT_EQ(withCommas(999), "999");
    EXPECT_EQ(withCommas(1000), "1,000");
    EXPECT_EQ(withCommas(1234567), "1,234,567");
    EXPECT_EQ(withCommas(1000000000ull), "1,000,000,000");
}

TEST(StrUtil, ParseHostPortAcceptsStrictForms)
{
    const HostPort hp = parseHostPort("localhost:7070", "--tcp");
    EXPECT_EQ(hp.host, "localhost");
    EXPECT_EQ(hp.port, 7070);

    const HostPort ip = parseHostPort("10.1.2.3:1", "--tcp");
    EXPECT_EQ(ip.host, "10.1.2.3");
    EXPECT_EQ(ip.port, 1);

    // The port splits off the LAST colon, so an IPv6 literal passes
    // through intact as the host.
    const HostPort v6 = parseHostPort("::1:65535", "--tcp");
    EXPECT_EQ(v6.host, "::1");
    EXPECT_EQ(v6.port, 65535);
}

TEST(StrUtil, ParseHostPortRejectsMalformedForms)
{
    ScopedFatalAsException scope;
    // No colon, empty host, empty port.
    EXPECT_THROW(parseHostPort("justahost", "--tcp"), FatalError);
    EXPECT_THROW(parseHostPort(":8000", "--tcp"), FatalError);
    EXPECT_THROW(parseHostPort("host:", "--tcp"), FatalError);
    // Non-numeric and trailing-garbage ports must die loudly, never
    // atoi-wrap to a silent port 0.
    EXPECT_THROW(parseHostPort("host:abc", "--tcp"), FatalError);
    EXPECT_THROW(parseHostPort("host:80x", "--tcp"), FatalError);
    // Out-of-range ports (0 is reserved for the ephemeral bind,
    // which has its own flag).
    EXPECT_THROW(parseHostPort("host:0", "--tcp"), FatalError);
    EXPECT_THROW(parseHostPort("host:-1", "--tcp"), FatalError);
    EXPECT_THROW(parseHostPort("host:65536", "--tcp"), FatalError);
}

TEST(StrUtil, ParseHostPortNamesTheFlagInItsError)
{
    ScopedFatalAsException scope;
    try {
        parseHostPort("nocolon", "--fleet");
        FAIL() << "expected a FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("--fleet"),
                  std::string::npos)
            << e.what();
    }
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowIsInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(7);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 20000; ++i) {
        const int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        sawLo |= v == -2;
        sawHi |= v == 2;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformMeanCloseToHalf)
{
    Rng rng(99);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.row().add("alpha").add(uint64_t{10});
    t.row().add("b").add(3.14159, 2);
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("3.14"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvHasNoPadding)
{
    Table t({"a", "b"});
    t.row().add("x").add(uint64_t{1});
    EXPECT_EQ(t.renderCsv(), "a,b\nx,1\n");
}

TEST(Table, AlignmentPadsColumns)
{
    Table t({"col", "x"});
    t.row().add("longvalue").add("y");
    const std::string out = t.render();
    // header "col" must be padded to at least "longvalue" width + 2.
    EXPECT_NE(out.find("col        "), std::string::npos);
}

} // namespace
} // namespace mtv
