/**
 * @file
 * Multithreading tests: context interleaving, the unfair run-until-
 * block scheduler, restart accounting, job-queue mode, the Fujitsu
 * dual-scalar variant, and the decode-width extension.
 */

#include <gtest/gtest.h>

#include "src/core/sim.hh"
#include "src/trace/source.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

std::vector<Instruction>
loadHeavyProgram(int n, uint16_t vl = 128)
{
    std::vector<Instruction> out;
    for (int i = 0; i < n; ++i) {
        out.push_back(makeVectorMem(Opcode::VLoad,
                                    static_cast<uint8_t>((i % 4) * 2),
                                    vl, 0x1000 * i, 1));
    }
    return out;
}

TEST(SimMt, TwoThreadsFillTheMemoryPort)
{
    // Each thread alternates a load and a dependent (non-chainable)
    // consumer; alone, the bus idles during the dependency stall, and
    // a second thread fills the hole.
    auto mkProgram = [](int n) {
        std::vector<Instruction> out;
        for (int i = 0; i < n; ++i) {
            out.push_back(makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1));
            out.push_back(makeVectorArith(Opcode::VAdd, 2, 0, 0, 128));
        }
        return out;
    };
    VectorSource solo("solo", mkProgram(20));
    VectorSim ref(MachineParams::reference());
    const SimStats refStats = ref.runSingle(solo);

    VectorSource a("a", mkProgram(20));
    VectorSource b("b", mkProgram(20));
    VectorSim mth(MachineParams::multithreaded(2));
    const SimStats mthStats = mth.runGroup({&a, &b});

    EXPECT_GT(mthStats.memPortOccupation(),
              refStats.memPortOccupation() * 1.3);
}

TEST(SimMt, GroupRunEndsWhenThreadZeroCompletes)
{
    // Thread 0 runs a short program; thread 1 a long one. The run must
    // end at thread 0's completion, with thread 1 mid-flight.
    VectorSource shortProg("short", loadHeavyProgram(2));
    VectorSource longProg("long", loadHeavyProgram(200));
    VectorSim sim(MachineParams::multithreaded(2));
    const SimStats s = sim.runGroup({&shortProg, &longProg});
    EXPECT_EQ(s.threads[0].runsCompleted, 1u);
    EXPECT_EQ(s.threads[0].instructions, 2u);
    EXPECT_EQ(s.cycles, s.threads[0].lastCompletion);
    EXPECT_LT(s.threads[1].instructions, 200u);
    EXPECT_EQ(s.threads[1].runsCompleted, 0u);
}

TEST(SimMt, ShortCompanionRestartsUntilThreadZeroDone)
{
    // Load+consumer pairs leave bus holes the companion can use (a
    // pure-load thread 0 would monopolize the bus under the unfair
    // policy and starve its companion entirely).
    auto mkPairs = [](const std::string &name, int n) {
        std::vector<Instruction> out;
        for (int i = 0; i < n; ++i) {
            out.push_back(makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1));
            out.push_back(makeVectorArith(Opcode::VAdd, 2, 0, 0, 128));
        }
        return std::make_unique<VectorSource>(name, out);
    };
    auto longProg = mkPairs("long", 40);
    auto shortProg = mkPairs("short", 2);
    VectorSim sim(MachineParams::multithreaded(2));
    const SimStats s = sim.runGroup({longProg.get(), shortProg.get()});
    EXPECT_EQ(s.threads[0].runsCompleted, 1u);
    // The 4-instruction companion must have been restarted many times.
    EXPECT_GT(s.threads[1].runsCompleted, 2u);
    // instructionsThisRun records the fractional last run.
    EXPECT_LE(s.threads[1].instructionsThisRun, 4u);
}

TEST(SimMt, UnfairSchedulerFavoursThreadZero)
{
    // Identical programs on both threads: thread 0 must finish its
    // run no slower than thread 1 progresses (it holds priority).
    VectorSource a("a", loadHeavyProgram(50));
    VectorSource b("b", loadHeavyProgram(50));
    VectorSim sim(MachineParams::multithreaded(2));
    const SimStats s = sim.runGroup({&a, &b});
    EXPECT_EQ(s.threads[0].instructions, 50u);
    EXPECT_LE(s.threads[1].instructions, s.threads[0].instructions);
}

TEST(SimMt, ThreadZeroSlowdownIsBounded)
{
    // The unfair policy exists so thread 0 barely suffers from
    // companions: compare its group completion to its solo run.
    VectorSource solo("solo", loadHeavyProgram(50));
    VectorSim ref(MachineParams::reference());
    const uint64_t alone = ref.runSingle(solo).cycles;

    VectorSource a("a", loadHeavyProgram(50));
    VectorSource b("b", loadHeavyProgram(50));
    VectorSim sim(MachineParams::multithreaded(2));
    const uint64_t together = sim.runGroup({&a, &b}).cycles;
    // Memory-bound worst case: some slowdown allowed, but far less
    // than the 2x of fair sharing.
    EXPECT_LT(static_cast<double>(together), 1.6 * alone);
}

TEST(SimMt, JobQueueRunsAllJobs)
{
    VectorSource j0("j0", loadHeavyProgram(5));
    VectorSource j1("j1", loadHeavyProgram(10));
    VectorSource j2("j2", loadHeavyProgram(3));
    VectorSource j3("j3", loadHeavyProgram(7));
    VectorSim sim(MachineParams::multithreaded(2));
    const SimStats s = sim.runJobQueue({&j0, &j1, &j2, &j3});

    ASSERT_EQ(s.jobs.size(), 4u);
    uint64_t instrs = 0;
    for (const auto &t : s.threads)
        instrs += t.instructions;
    EXPECT_EQ(instrs, 25u);
    // Every job record is closed and within the run.
    for (const auto &job : s.jobs) {
        EXPECT_GE(job.endCycle, job.startCycle);
        EXPECT_LE(job.endCycle, s.cycles);
    }
    // First two jobs start at cycle 0 on contexts 0 and 1.
    EXPECT_EQ(s.jobs[0].startCycle, 0u);
    EXPECT_EQ(s.jobs[1].startCycle, 0u);
    EXPECT_NE(s.jobs[0].context, s.jobs[1].context);
}

TEST(SimMt, JobQueueWithOneContextIsSequential)
{
    VectorSource j0("j0", loadHeavyProgram(5));
    VectorSource j1("j1", loadHeavyProgram(5));
    VectorSim sim(MachineParams::reference());
    const SimStats s = sim.runJobQueue({&j0, &j1});

    VectorSource solo("solo", loadHeavyProgram(5));
    VectorSim ref(MachineParams::reference());
    const SimStats one = ref.runSingle(solo);
    // Two identical jobs back to back: both complete; the tail job's
    // loads pipeline behind the first, so total < 2x solo + slack but
    // >= solo.
    EXPECT_GE(s.cycles, one.cycles);
    EXPECT_EQ(s.jobs.size(), 2u);
}

TEST(SimMt, MoreContextsNeverSlowTheQueueMuch)
{
    std::vector<std::unique_ptr<VectorSource>> jobs;
    std::vector<InstructionSource *> raw;
    for (int i = 0; i < 6; ++i) {
        jobs.push_back(std::make_unique<VectorSource>(
            "j" + std::to_string(i), loadHeavyProgram(20)));
        raw.push_back(jobs.back().get());
    }
    uint64_t prev = ~0ull;
    for (int c = 1; c <= 4; ++c) {
        VectorSim sim(MachineParams::multithreaded(c));
        const uint64_t cycles = sim.runJobQueue(raw).cycles;
        EXPECT_LT(static_cast<double>(cycles), 1.05 * prev)
            << c << " contexts";
        prev = cycles;
    }
}

TEST(SimMt, DistinctSourceInstancesRequired)
{
    VectorSource a("a", loadHeavyProgram(5));
    VectorSim sim(MachineParams::multithreaded(2));
    EXPECT_EXIT({ sim.runGroup({&a, &a}); },
                testing::ExitedWithCode(1), "distinct source");
}

TEST(SimMt, SchedulingPoliciesAllComplete)
{
    for (const auto policy :
         {SchedPolicy::UnfairLowest, SchedPolicy::RoundRobin,
          SchedPolicy::FairLru}) {
        VectorSource a("a", loadHeavyProgram(30));
        VectorSource b("b", loadHeavyProgram(30));
        MachineParams p = MachineParams::multithreaded(2);
        p.sched = policy;
        VectorSim sim(p);
        const SimStats s = sim.runJobQueue({&a, &b});
        uint64_t instrs = 0;
        for (const auto &t : s.threads)
            instrs += t.instructions;
        EXPECT_EQ(instrs, 60u) << schedPolicyName(policy);
        EXPECT_GT(s.cycles, 0u);
    }
}

TEST(SimMt, RunUntilBlockBeatsRoundRobinOnChains)
{
    // Run-until-block was chosen to favour chaining; on chain-heavy
    // code, naive every-cycle round-robin must not win.
    auto mkChain = [](const std::string &name) {
        std::vector<Instruction> out;
        for (int i = 0; i < 40; ++i) {
            out.push_back(makeVectorMem(Opcode::VLoad, 0, 128, 0x0, 1));
            out.push_back(makeVectorArith(Opcode::VAdd, 2, 0, 0, 128));
            out.push_back(makeVectorArith(Opcode::VMul, 4, 2, 2, 128));
            out.push_back(makeVectorMem(Opcode::VStore, 4, 128, 0x0, 1));
        }
        return std::make_unique<VectorSource>(name, out);
    };
    uint64_t cycles[2];
    int idx = 0;
    for (const auto policy :
         {SchedPolicy::UnfairLowest, SchedPolicy::RoundRobin}) {
        auto a = mkChain("a");
        auto b = mkChain("b");
        MachineParams p = MachineParams::multithreaded(2);
        p.sched = policy;
        VectorSim sim(p);
        cycles[idx++] = sim.runJobQueue({a.get(), b.get()}).cycles;
    }
    EXPECT_LE(cycles[0], cycles[1] + cycles[1] / 20);
}

TEST(SimMt, DualScalarIssuesTwoScalarStreamsInParallel)
{
    // Pure scalar programs: the Fujitsu-style machine decodes both
    // threads each cycle and must be ~2x faster than the shared
    // single decoder.
    auto mkScalarLoop = [](const std::string &name) {
        std::vector<Instruction> out;
        for (int i = 0; i < 400; ++i)
            out.push_back(makeScalar(Opcode::SAddInt,
                                     static_cast<uint8_t>(1 + (i % 3)),
                                     0));
        return std::make_unique<VectorSource>(name, out);
    };
    auto a1 = mkScalarLoop("a");
    auto b1 = mkScalarLoop("b");
    VectorSim mth(MachineParams::multithreaded(2));
    const uint64_t shared = mth.runJobQueue({a1.get(), b1.get()}).cycles;

    auto a2 = mkScalarLoop("a");
    auto b2 = mkScalarLoop("b");
    VectorSim fuj(MachineParams::fujitsuDualScalar());
    const uint64_t dual = fuj.runJobQueue({a2.get(), b2.get()}).cycles;

    EXPECT_LT(static_cast<double>(dual), 0.6 * shared);
}

TEST(SimMt, DecodeWidthTwoSharedScalarUnitLimits)
{
    // With decodeWidth 2 but a single shared scalar unit, two scalar
    // streams cannot double their throughput (only one scalar dispatch
    // per cycle is allowed).
    auto mkScalarLoop = [](const std::string &name) {
        std::vector<Instruction> out;
        for (int i = 0; i < 400; ++i)
            out.push_back(makeScalar(Opcode::SAddInt,
                                     static_cast<uint8_t>(1 + (i % 3)),
                                     0));
        return std::make_unique<VectorSource>(name, out);
    };
    auto a = mkScalarLoop("a");
    auto b = mkScalarLoop("b");
    MachineParams p = MachineParams::multithreaded(2);
    p.decodeWidth = 2;
    VectorSim sim(p);
    const uint64_t cycles = sim.runJobQueue({a.get(), b.get()}).cycles;
    EXPECT_GE(cycles, 800u);  // 800 scalar instrs, 1 scalar slot/cycle
}

TEST(SimMt, DecodeWidthTwoHelpsVectorCode)
{
    auto mk = [](const std::string &name) {
        return std::make_unique<VectorSource>(name,
                                              loadHeavyProgram(40, 32));
    };
    auto a1 = mk("a");
    auto b1 = mk("b");
    VectorSim w1(MachineParams::multithreaded(2));
    const uint64_t one = w1.runJobQueue({a1.get(), b1.get()}).cycles;

    auto a2 = mk("a");
    auto b2 = mk("b");
    MachineParams p = MachineParams::multithreaded(2);
    p.decodeWidth = 2;
    VectorSim w2(p);
    const uint64_t two = w2.runJobQueue({a2.get(), b2.get()}).cycles;
    EXPECT_LE(two, one);
}

TEST(SimMt, DeterministicAcrossRuns)
{
    auto mk = [] {
        return std::make_unique<VectorSource>("p", loadHeavyProgram(25));
    };
    uint64_t cycles[2];
    uint64_t requests[2];
    for (int trial = 0; trial < 2; ++trial) {
        auto a = mk();
        auto b = mk();
        auto c = mk();
        VectorSim sim(MachineParams::multithreaded(3));
        const SimStats s =
            sim.runJobQueue({a.get(), b.get(), c.get()});
        cycles[trial] = s.cycles;
        requests[trial] = s.memRequests;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(requests[0], requests[1]);
}

TEST(SimMt, PerContextRegistersAreIndependent)
{
    // Two threads hammering the same architectural register must not
    // interfere: each context has its own copy. If state were shared,
    // WAW blocking would serialize them far beyond the bus bound.
    auto mk = [](const std::string &name) {
        std::vector<Instruction> out;
        for (int i = 0; i < 20; ++i)
            out.push_back(makeVectorArith(Opcode::VAdd, 2, 0, 0, 64));
        return std::make_unique<VectorSource>(name, out);
    };
    auto solo = mk("solo");
    VectorSim ref(MachineParams::reference());
    const uint64_t alone = ref.runSingle(*solo).cycles;

    auto a = mk("a");
    auto b = mk("b");
    VectorSim sim(MachineParams::multithreaded(2));
    const uint64_t both = sim.runJobQueue({a.get(), b.get()}).cycles;
    // Adds WAW-serialize within a thread; across threads the second
    // stream interleaves into the same span (plus a small tail).
    EXPECT_LT(static_cast<double>(both), 1.2 * alone);
}

} // namespace
} // namespace mtv
