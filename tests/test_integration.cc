/**
 * @file
 * Integration tests: miniature versions of the paper's headline
 * experiments, checking the qualitative results (who wins, in which
 * direction curves move) at reduced workload scale.
 */

#include <gtest/gtest.h>

#include "src/driver/experiments.hh"
#include "src/driver/runner.hh"
#include "src/trace/trace_file.hh"

#include <filesystem>

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

TEST(Integration, MultithreadingSpeedsUpEveryProgram)
{
    // Mini Figure 6: every program must see speedup > 1 with 2
    // contexts at the default 50-cycle latency.
    Runner runner(testScale);
    for (const auto &spec : benchmarkSuite()) {
        const GroupResult r =
            runner.runGroup({spec.name, "hydro2d"},
                            MachineParams::multithreaded(2));
        EXPECT_GT(r.speedup, 1.0) << spec.name;
        EXPECT_LT(r.speedup, 2.0) << spec.name;
    }
}

TEST(Integration, OccupationRisesWithContexts)
{
    // Mini Figure 7: memory-port occupation grows with context count
    // and beats the sequential reference.
    Runner runner(testScale);
    const auto &jobs = jobQueueOrder();
    double prev = 0.0;
    for (int c = 2; c <= 4; ++c) {
        MachineParams p = MachineParams::multithreaded(c);
        const SimStats s = runner.runJobQueue(jobs, p);
        const double occ = s.memPortOccupation();
        EXPECT_GT(occ, prev * 0.98) << c << " contexts";
        prev = occ;
    }
    // 3 contexts should already be near saturation (paper: ~90%).
    MachineParams p3 = MachineParams::multithreaded(3);
    const double occ3 =
        runner.runJobQueue(jobs, p3).memPortOccupation();
    EXPECT_GT(occ3, 0.75);
}

TEST(Integration, VopcImprovesWithMultithreading)
{
    // Mini Figure 8.
    Runner runner(testScale);
    const GroupResult r = runner.runGroup(
        {"swm256", "arc2d", "flo52"}, MachineParams::multithreaded(3));
    EXPECT_GT(r.mthVopc, r.refVopc);
    EXPECT_LE(r.mthVopc, 2.0);
}

TEST(Integration, MultithreadedMachineToleratesLatency)
{
    // Mini Figure 10: the 2-context machine degrades far less from
    // latency 1 to latency 100 than the baseline does.
    Runner runner(testScale);
    const auto &jobs = jobQueueOrder();

    auto timeAt = [&](int contexts, int lat) {
        MachineParams p = MachineParams::multithreaded(contexts);
        p.memLatency = lat;
        if (contexts == 1)
            return static_cast<double>(
                runner.sequentialReferenceTime(jobs, p));
        return static_cast<double>(runner.runJobQueue(jobs, p).cycles);
    };

    const double baseDegradation = timeAt(1, 100) / timeAt(1, 1);
    const double mthDegradation = timeAt(2, 100) / timeAt(2, 1);
    EXPECT_GT(baseDegradation, 1.2);
    // Compare the *excess* over 1.0: multithreading must absorb well
    // over half of the baseline's latency-induced slowdown.
    EXPECT_LT(mthDegradation - 1.0, (baseDegradation - 1.0) * 0.6);
    // Even at latency 1 multithreading must win (paper: 1.15).
    EXPECT_GT(timeAt(1, 1) / timeAt(2, 1), 1.05);
}

TEST(Integration, FujitsuStyleBeatsSharedDecoderAtLowLatency)
{
    // Mini Figure 12: two scalar units help most when memory is fast,
    // and the advantage shrinks as latency grows.
    Runner runner(testScale);
    const auto &jobs = jobQueueOrder();

    auto ratioAt = [&](int lat) {
        MachineParams mth = MachineParams::multithreaded(2);
        mth.memLatency = lat;
        MachineParams fuj = MachineParams::fujitsuDualScalar();
        fuj.memLatency = lat;
        const double mthT =
            static_cast<double>(runner.runJobQueue(jobs, mth).cycles);
        const double fujT =
            static_cast<double>(runner.runJobQueue(jobs, fuj).cycles);
        return mthT / fujT;  // >1 means Fujitsu wins
    };

    const double low = ratioAt(1);
    const double high = ratioAt(100);
    EXPECT_GT(low, 1.0);
    EXPECT_LT(high, low);  // advantage diminishes with latency
}

TEST(Integration, TraceReplayIsBitIdenticalToLiveGeneration)
{
    // The simulator must not be able to tell a recorded trace from
    // the live generator (the Dixie property).
    Runner runner(testScale);
    auto live = runner.instantiate("bdna");

    const std::string path =
        (std::filesystem::temp_directory_path() / "bdna_test.mtv")
            .string();
    writeTrace(*live, path);
    TraceReader replay(path);

    MachineParams p = MachineParams::reference();
    VectorSim simA(p);
    const SimStats a = simA.runSingle(*live);
    VectorSim simB(p);
    const SimStats b = simB.runSingle(replay);

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.memRequests, b.memRequests);
    EXPECT_EQ(a.stateHist, b.stateHist);
    std::remove(path.c_str());
}

TEST(Integration, LoadChainingAblationHelpsBaselineMost)
{
    // Design-choice ablation: allowing load->FU chaining (which the
    // real machine lacked) must speed up the baseline; multithreading
    // already hides that latency, so its gain is smaller.
    Runner runner(testScale);
    const std::vector<std::string> jobs = {"flo52", "tomcatv", "trfd"};

    MachineParams base = MachineParams::reference();
    const double refNo =
        static_cast<double>(runner.sequentialReferenceTime(jobs, base));
    base.loadChaining = true;
    const double refYes =
        static_cast<double>(runner.sequentialReferenceTime(jobs, base));

    MachineParams mth = MachineParams::multithreaded(3);
    const double mthNo =
        static_cast<double>(runner.runJobQueue(jobs, mth).cycles);
    mth.loadChaining = true;
    const double mthYes =
        static_cast<double>(runner.runJobQueue(jobs, mth).cycles);

    EXPECT_LT(refYes, refNo);
    const double refGain = refNo / refYes;
    const double mthGain = mthNo / mthYes;
    EXPECT_GT(refGain, mthGain * 0.98);
}

TEST(Integration, JobQueueProfileCoversAllTenPrograms)
{
    // Mini Figure 9: all ten programs appear exactly once in the
    // profile and intervals nest inside the run.
    Runner runner(testScale);
    MachineParams p = MachineParams::multithreaded(2);
    const SimStats s = runner.runJobQueue(jobQueueOrder(), p);
    ASSERT_EQ(s.jobs.size(), 10u);
    for (const auto &job : s.jobs) {
        EXPECT_LE(job.startCycle, job.endCycle);
        EXPECT_LE(job.endCycle, s.cycles);
        EXPECT_GE(job.context, 0);
        EXPECT_LT(job.context, 2);
    }
    EXPECT_EQ(s.jobs[0].program, "flo52");
}

} // namespace
} // namespace mtv
