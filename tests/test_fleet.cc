/**
 * @file
 * Tests for src/fleet: hash-ring determinism and minimal remap,
 * endpoint parsing, and a live 3-node fleet served by in-process
 * MtvServices (one reached over TCP, two over unix sockets). The
 * fleet's scatter/fold must be bit-identical to a single in-process
 * engine, node ownership must follow the ring, and a node dying —
 * before the batch or mid-stream — must reroute exactly its
 * unfinished points to the survivors.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <set>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/api/engine.hh"
#include "src/common/logging.hh"
#include "src/fleet/fleet_service.hh"
#include "src/fleet/ring.hh"
#include "src/fleet/router.hh"
#include "src/obs/metrics.hh"
#include "src/service/json.hh"
#include "src/service/server.hh"
#include "src/store/stats_codec.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

// ---------------------------------------------------------------------
// HashRing
// ---------------------------------------------------------------------

std::vector<std::string>
testKeys(int n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    for (int i = 0; i < n; ++i)
        keys.push_back("spec-key-" + std::to_string(i));
    return keys;
}

TEST(HashRing, DeterministicAcrossInstances)
{
    const std::vector<std::string> nodes = {"a:1", "b:2", "c:3"};
    HashRing first(nodes);
    HashRing second(nodes);
    for (const std::string &key : testKeys(200))
        EXPECT_EQ(first.nodeFor(key), second.nodeFor(key)) << key;
}

TEST(HashRing, PartitionsKeysAcrossEveryNode)
{
    HashRing ring({"a:1", "b:2", "c:3"});
    std::vector<size_t> owned(ring.size(), 0);
    for (const std::string &key : testKeys(300))
        ++owned[ring.nodeFor(key)];
    size_t total = 0;
    for (size_t node = 0; node < ring.size(); ++node) {
        // 64 vnodes keep every node in the game for 300 keys.
        EXPECT_GT(owned[node], 0u) << "node " << node;
        total += owned[node];
    }
    // nodeFor() names exactly one owner per key: a full partition.
    EXPECT_EQ(total, 300u);
}

TEST(HashRing, RemoveNodeRemapsOnlyItsKeys)
{
    HashRing ring({"a:1", "b:2", "c:3"});
    const auto keys = testKeys(300);
    std::vector<size_t> before;
    before.reserve(keys.size());
    for (const std::string &key : keys)
        before.push_back(ring.nodeFor(key));

    ring.removeNode(1);
    EXPECT_EQ(ring.liveCount(), 2u);
    EXPECT_FALSE(ring.isLive(1));
    size_t remapped = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
        const size_t after = ring.nodeFor(keys[i]);
        if (before[i] == 1) {
            // The dead node's keys land on a survivor.
            EXPECT_NE(after, 1u) << keys[i];
            ++remapped;
        } else {
            // Everyone else's keys keep their owner — the property
            // that bounds a failover to the dead node's slice.
            EXPECT_EQ(after, before[i]) << keys[i];
        }
    }
    EXPECT_GT(remapped, 0u);

    // Idempotent: removing the same node again changes nothing.
    ring.removeNode(1);
    EXPECT_EQ(ring.liveCount(), 2u);
}

TEST(HashRing, NodeForFatalsWithNoLiveNodes)
{
    HashRing ring({"a:1", "b:2"});
    ring.removeNode(0);
    ring.removeNode(1);
    EXPECT_EQ(ring.liveCount(), 0u);
    ScopedFatalAsException scope;
    EXPECT_THROW(ring.nodeFor("anything"), FatalError);
}

// ---------------------------------------------------------------------
// Endpoint parsing
// ---------------------------------------------------------------------

TEST(Endpoint, ParsesUnixAndTcpForms)
{
    const Endpoint unixEp = parseEndpoint("/tmp/some.sock");
    EXPECT_EQ(unixEp.kind, Endpoint::Kind::Unix);
    EXPECT_EQ(unixEp.path, "/tmp/some.sock");
    EXPECT_EQ(unixEp.describe(), "/tmp/some.sock");
    EXPECT_NE(unixEp.startHint().find("mtvd"), std::string::npos);
    EXPECT_NE(unixEp.startHint().find("/tmp/some.sock"),
              std::string::npos);

    const Endpoint tcpEp = parseEndpoint("127.0.0.1:9000");
    EXPECT_EQ(tcpEp.kind, Endpoint::Kind::Tcp);
    EXPECT_EQ(tcpEp.host, "127.0.0.1");
    EXPECT_EQ(tcpEp.port, 9000);
    EXPECT_EQ(tcpEp.describe(), "127.0.0.1:9000");
    EXPECT_NE(tcpEp.startHint().find("--tcp 127.0.0.1:9000"),
              std::string::npos);
}

TEST(Endpoint, RejectsMalformedTcpForms)
{
    ScopedFatalAsException scope;
    EXPECT_THROW(parseEndpoint("host:abc"), FatalError);
    EXPECT_THROW(parseEndpoint("host:0"), FatalError);
    EXPECT_THROW(parseEndpoint("host:65536"), FatalError);
    EXPECT_THROW(parseEndpoint(":9000"), FatalError);
}

// ---------------------------------------------------------------------
// FleetRouter configuration (no live nodes needed)
// ---------------------------------------------------------------------

TEST(FleetRouterConfig, RejectsBadNodeLists)
{
    ScopedFatalAsException scope;
    EXPECT_THROW(FleetRouter({}), FatalError);
    EXPECT_THROW(FleetRouter({"/tmp/a.sock", "/tmp/a.sock"}),
                 FatalError);
    EXPECT_THROW(FleetRouter({"/tmp/a.sock", ""}), FatalError);
}

TEST(FleetRouterConfig, RoutesLikeAParallelRing)
{
    // The ring identities are the endpoint texts, so any router (or
    // test) built over the same list routes identically — the
    // property that lets N mtvctl --fleet clients share node caches.
    const std::vector<std::string> nodes = {"/tmp/n0.sock",
                                            "10.0.0.2:7000",
                                            "/tmp/n2.sock"};
    FleetRouter router(nodes);
    HashRing ring(nodes);
    EXPECT_EQ(router.nodeCount(), nodes.size());
    EXPECT_EQ(router.aliveCount(), nodes.size());
    for (const std::string &key : testKeys(100))
        EXPECT_EQ(router.nodeForKey(key), ring.nodeFor(key)) << key;
}

// ---------------------------------------------------------------------
// Live fleet: three in-process MtvServices
// ---------------------------------------------------------------------

/** @p n distinct cheap single-mode specs. */
std::vector<RunSpec>
distinctSpecs(int n)
{
    std::vector<RunSpec> specs;
    specs.reserve(n);
    for (int i = 0; i < n; ++i) {
        MachineParams params = MachineParams::reference();
        params.memLatency = 20 + i;
        specs.push_back(RunSpec::single(i % 2 ? "swm256" : "trfd",
                                        params, testScale));
    }
    return specs;
}

/** Reference run: an in-process engine plus the digest fold the
 *  daemon protocol defines (FNV-1a over blobs in submission order). */
struct LocalFold
{
    std::vector<RunResult> results;
    uint64_t digest = 0xcbf29ce484222325ull;
};

LocalFold
localFold(const std::vector<RunSpec> &specs)
{
    ExperimentEngine engine;
    LocalFold fold;
    fold.results = engine.runAll(specs);
    for (const RunResult &result : fold.results) {
        const std::string blob = serializeSimStats(result.stats);
        fold.digest = fnv1a64(blob.data(), blob.size(), fold.digest);
    }
    return fold;
}

/**
 * Three MtvServices on temp sockets, served from background threads.
 * Node 0 is addressed over TCP (ephemeral loopback port), nodes 1
 * and 2 over their unix sockets — every fleet test exercises both
 * transports.
 */
class FleetFixture : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        for (int n = 0; n < 3; ++n) {
            ServiceOptions options;
            options.socketPath = tempPath(n);
            options.workers = 2;
            if (n == 0) {
                options.tcpHost = "127.0.0.1";
                options.tcpPort = 0;  // kernel-chosen
            }
            services_.push_back(
                std::make_unique<MtvService>(options));
            serveThreads_.emplace_back(
                [service = services_.back().get()] {
                    service->serve();
                });
        }
        endpoints_ = {
            "127.0.0.1:" + std::to_string(services_[0]->tcpPort()),
            services_[1]->socketPath(),
            services_[2]->socketPath(),
        };
    }

    void
    TearDown() override
    {
        for (auto &service : services_)
            service->stop();
        for (auto &thread : serveThreads_)
            thread.join();
        services_.clear();
    }

    std::string
    tempPath(int n)
    {
        return (std::filesystem::temp_directory_path() /
                ("mtv_test_fleet_" + std::to_string(::getpid()) +
                 "_" + std::to_string(n) + ".sock"))
            .string();
    }

    /** Keys each node owns out of @p specs, per the router's ring. */
    std::vector<size_t>
    ownershipCensus(const FleetRouter &router,
                    const std::vector<RunSpec> &specs, size_t nodes)
    {
        std::vector<size_t> census(nodes, 0);
        for (const RunSpec &spec : specs)
            ++census[router.nodeForKey(spec.canonical())];
        return census;
    }

    std::vector<std::unique_ptr<MtvService>> services_;
    std::vector<std::thread> serveThreads_;
    std::vector<std::string> endpoints_;
};

TEST_F(FleetFixture, SweepScatterFoldsBitIdenticalToLocal)
{
    SweepRequest request;
    request.family = "groupings";
    request.program = "trfd";
    request.contexts = 2;
    request.scale = testScale;
    SweepBuilder reference = expandSweep(request);
    const LocalFold expected = localFold(reference.specs());

    FleetRouter router(endpoints_);
    size_t ackCount = 0;
    size_t ackSlices = 0;
    std::set<size_t> arrived;
    const FleetOutcome outcome = router.runSweep(
        request,
        [&arrived](size_t global, const RunResult &,
                   const std::string &) { arrived.insert(global); },
        [&](size_t count, const std::vector<SweepSlice> &slices) {
            ackCount = count;
            ackSlices = slices.size();
        });

    // The expand hook fired with the full expansion (the ack data).
    EXPECT_EQ(ackCount, expected.results.size());
    EXPECT_EQ(ackSlices, reference.slices().size());
    // Every point arrived exactly once through the hook.
    EXPECT_EQ(arrived.size(), expected.results.size());

    // Point-by-point and folded bit-identity with the local engine.
    ASSERT_EQ(outcome.results.size(), expected.results.size());
    for (size_t i = 0; i < expected.results.size(); ++i) {
        EXPECT_EQ(serializeSimStats(outcome.results[i].stats),
                  serializeSimStats(expected.results[i].stats))
            << "point " << i;
    }
    EXPECT_EQ(outcome.digest, expected.digest);
    EXPECT_EQ(outcome.rerouted, 0u);
    EXPECT_TRUE(outcome.deadNodes.empty());
    EXPECT_EQ(outcome.slices.size(), reference.slices().size());
    EXPECT_EQ(outcome.simulated + outcome.cacheServed +
                  outcome.storeServed,
              expected.results.size());

    // Each node streamed exactly the points the ring assigns it.
    const auto census =
        ownershipCensus(router, reference.specs(), 3);
    uint64_t served = 0;
    const auto status = router.status();
    for (size_t n = 0; n < status.size(); ++n) {
        EXPECT_TRUE(status[n].alive) << status[n].lastError;
        EXPECT_EQ(status[n].pointsServed, census[n]) << "node " << n;
        served += status[n].pointsServed;
    }
    EXPECT_EQ(served, expected.results.size());
}

TEST_F(FleetFixture, SpecBatchScatterMatchesLocalAndOwnership)
{
    const auto specs = distinctSpecs(24);
    const LocalFold expected = localFold(specs);

    FleetRouter router(endpoints_);
    const auto census = ownershipCensus(router, specs, 3);
    const FleetOutcome outcome = router.runSpecs(specs);

    EXPECT_EQ(outcome.digest, expected.digest);
    EXPECT_EQ(outcome.rerouted, 0u);
    const auto status = router.status();
    for (size_t n = 0; n < status.size(); ++n)
        EXPECT_EQ(status[n].pointsServed, census[n]) << "node " << n;
}

TEST_F(FleetFixture, DeadEndpointAtStartReroutesToSurvivors)
{
    // Node 2 is replaced by an endpoint nobody serves: the first
    // scatter round marks it dead on connect failure and the second
    // round recomputes its slice on the survivors.
    const std::string bogus = tempPath(9) + ".nothere";
    const std::vector<std::string> fleet = {endpoints_[0],
                                            endpoints_[1], bogus};
    const auto specs = distinctSpecs(40);
    const LocalFold expected = localFold(specs);

    FleetRouter router(fleet);
    const auto census = ownershipCensus(router, specs, 3);
    ASSERT_GT(census[2], 0u)
        << "test needs the bogus node to own some points";

    const FleetOutcome outcome = router.runSpecs(specs);
    EXPECT_EQ(outcome.digest, expected.digest);
    EXPECT_EQ(outcome.rerouted, census[2]);
    ASSERT_EQ(outcome.deadNodes.size(), 1u);
    EXPECT_EQ(outcome.deadNodes[0], bogus);
    EXPECT_EQ(router.aliveCount(), 2u);

    const auto status = router.status();
    EXPECT_FALSE(status[2].alive);
    EXPECT_FALSE(status[2].lastError.empty());
    EXPECT_EQ(status[2].pointsServed, 0u);
    EXPECT_EQ(status[0].pointsServed + status[1].pointsServed,
              specs.size());

    // Death is sticky: a second batch routes around it from round 1.
    const FleetOutcome again = router.runSpecs(specs);
    EXPECT_EQ(again.digest, expected.digest);
    EXPECT_EQ(again.rerouted, 0u);
    EXPECT_TRUE(again.deadNodes.empty());
}

/**
 * A protocol impostor: accepts ONE connection, serves the first
 * point of the run request it receives with a genuine engine result,
 * then slams the connection — a node dying mid-stream, after real
 * progress was acked.
 */
class FakeHalfDeadNode
{
  public:
    explicit FakeHalfDeadNode(const std::string &path) : path_(path)
    {
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        if (listenFd_ < 0 || path.size() >= sizeof(addr.sun_path))
            fatal("fake node: unusable socket path %s", path.c_str());
        std::strncpy(addr.sun_path, path.c_str(),
                     sizeof(addr.sun_path) - 1);
        ::unlink(path.c_str());
        if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) != 0 ||
            ::listen(listenFd_, 4) != 0) {
            fatal("fake node: cannot listen on %s", path.c_str());
        }
        thread_ = std::thread([this] { serveOne(); });
    }

    ~FakeHalfDeadNode()
    {
        ::shutdown(listenFd_, SHUT_RDWR);
        thread_.join();
        ::close(listenFd_);
        ::unlink(path_.c_str());
    }

    size_t served() const { return served_.load(); }

  private:
    void
    serveOne()
    {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;
        LineChannel channel(fd);
        std::string line;
        if (!channel.readLine(&line))
            return;
        Json request;
        std::string error;
        if (!Json::parse(line, &request, &error))
            return;
        if (request.has("op") &&
            request.getString("op") == "hello") {
            // Refuse the binary wire like a JSON-only daemon: the
            // router must fall back to v5-style lines on this node.
            Json ok = Json::object();
            ok.set("ok", true);
            ok.set("hello", true);
            ok.set("wire", std::string("json"));
            ok.set("protocol", static_cast<uint64_t>(6));
            if (!channel.writeLine(ok.dump()) ||
                !channel.readLine(&line) ||
                !Json::parse(line, &request, &error)) {
                return;
            }
        }
        const auto &specs = request.get("specs").asArray();
        if (specs.empty())
            return;
        // One genuine result (seq 0 of the subset), then EOF: the
        // router must keep this point and reroute only the rest.
        ExperimentEngine engine;
        const RunResult result =
            engine.run(RunSpec::parse(specs[0].asString()));
        const Json reply = resultToJson(
            result, request.get("id").asU64(), 0,
            /*includeBlob=*/true);
        if (channel.writeLine(reply.dump()))
            served_ = 1;
        // The channel destructor closes the socket mid-stream.
    }

    std::string path_;
    int listenFd_ = -1;
    std::thread thread_;
    /** Written by the serving thread, read by the test thread. */
    std::atomic<size_t> served_{0};
};

TEST_F(FleetFixture, NodeDeathMidStreamReroutesUnfinishedPoints)
{
    const std::string fakePath = tempPath(8) + ".fake";
    FakeHalfDeadNode fake(fakePath);
    const std::vector<std::string> fleet = {endpoints_[0],
                                            endpoints_[1], fakePath};
    const auto specs = distinctSpecs(40);
    const LocalFold expected = localFold(specs);

    FleetRouter router(fleet);
    const auto census = ownershipCensus(router, specs, 3);
    ASSERT_GT(census[2], 1u)
        << "test needs the fake node to own >= 2 points (one "
           "served, some abandoned)";

    const FleetOutcome outcome = router.runSpecs(specs);
    EXPECT_EQ(fake.served(), 1u);
    // The batch completed bit-identical despite the mid-stream death,
    // and the served point was NOT recomputed: only the abandoned
    // remainder of the fake node's slice rerouted.
    EXPECT_EQ(outcome.digest, expected.digest);
    EXPECT_EQ(outcome.rerouted, census[2] - 1);
    ASSERT_EQ(outcome.deadNodes.size(), 1u);
    EXPECT_EQ(outcome.deadNodes[0], fakePath);

    const auto status = router.status();
    EXPECT_FALSE(status[2].alive);
    EXPECT_EQ(status[2].pointsServed, 1u);
    EXPECT_EQ(status[0].pointsServed + status[1].pointsServed,
              specs.size() - 1);
}

TEST_F(FleetFixture, PingAllRevivesARestartedNode)
{
    FleetRouter router(endpoints_);
    ASSERT_EQ(router.pingAll(), 3u);
    const uint64_t revivesBefore =
        MetricsRegistry::instance()
            .counter("fleet_revives_total")
            ->value();

    // Node 2 goes away; it stays sticky-dead across pings.
    const std::string path = services_[2]->socketPath();
    services_[2]->stop();
    serveThreads_[2].join();
    services_[2].reset();
    EXPECT_EQ(router.pingAll(), 2u);
    EXPECT_FALSE(router.status()[2].alive);
    EXPECT_EQ(router.pingAll(), 2u);

    // A daemon restarted on the same endpoint pongs the next ping:
    // the node rejoins the ring and the revival is counted.
    ServiceOptions options;
    options.socketPath = path;
    options.workers = 2;
    services_[2] = std::make_unique<MtvService>(options);
    serveThreads_[2] =
        std::thread([s = services_[2].get()] { s->serve(); });
    EXPECT_EQ(router.pingAll(), 3u);
    EXPECT_TRUE(router.status()[2].alive)
        << router.status()[2].lastError;
    EXPECT_GE(MetricsRegistry::instance()
                  .counter("fleet_revives_total")
                  ->value(),
              revivesBefore + 1);

    // And the revived node serves points again, bit-identical.
    const auto specs = distinctSpecs(6);
    const LocalFold expected = localFold(specs);
    const FleetOutcome outcome = router.runSpecs(specs);
    EXPECT_EQ(outcome.digest, expected.digest);
    EXPECT_TRUE(outcome.deadNodes.empty());
}

TEST_F(FleetFixture, PingAllMarksUnreachableNodesDead)
{
    const std::string bogus = tempPath(7) + ".nothere";
    FleetRouter router({endpoints_[0], endpoints_[1], bogus});
    EXPECT_EQ(router.pingAll(), 2u);
    const auto status = router.status();
    EXPECT_TRUE(status[0].alive) << status[0].lastError;
    EXPECT_TRUE(status[1].alive) << status[1].lastError;
    EXPECT_FALSE(status[2].alive);

    // The background monitor is the same pingAll on a timer; make
    // sure it starts and stops cleanly (TSan covers the rest).
    router.startHealthMonitor();
    router.stopHealthMonitor();
    EXPECT_EQ(router.aliveCount(), 2u);
}

TEST_F(FleetFixture, MetricsOpAggregatesAcrossNodes)
{
    // A routing daemon over the three fixture nodes: its "metrics"
    // op must gather every node's registry and sum the counters.
    FleetServiceOptions options;
    options.socketPath = tempPath(8);
    options.nodes = endpoints_;
    FleetService fleet(options);
    std::thread serveThread([&fleet] { fleet.serve(); });

    std::string error;
    const int fd = connectToDaemon(fleet.socketPath(), &error);
    ASSERT_GE(fd, 0) << error;
    {
        LineChannel channel(fd);
        Json request = Json::object();
        request.set("op", "metrics");
        ASSERT_TRUE(channel.writeLine(request.dump()));
        std::string line;
        ASSERT_TRUE(channel.readLine(&line));
        Json response;
        ASSERT_TRUE(Json::parse(line, &response, &error)) << error;

        EXPECT_TRUE(response.getBool("ok"));
        EXPECT_TRUE(response.getBool("fleet"));
        ASSERT_EQ(response.get("nodes").type(), Json::Type::Array);
        ASSERT_EQ(response.get("nodes").asArray().size(), 3u);
        for (const Json &node : response.get("nodes").asArray()) {
            EXPECT_TRUE(node.getBool("ok"))
                << node.getString("error");
            EXPECT_EQ(node.get("metrics").type(),
                      Json::Type::Object);
        }
        // The router carries its own registry too.
        EXPECT_EQ(response.get("router").type(), Json::Type::Object);

        // The gather itself connects once per node, and all three
        // nodes share this test process's registry — so the summed
        // connection counter is at least one per node. (No exact
        // check: the router's health monitor pings concurrently.)
        const Json &totals = response.get("totals");
        ASSERT_EQ(totals.type(), Json::Type::Object);
        EXPECT_GE(totals.get("service_connections_total").asU64(),
                  3u);
    }

    fleet.stop();
    serveThread.join();
}

TEST_F(FleetFixture, CompareOpScattersAndMatchesLocalTable)
{
    // The fleet frontend's "compare" op: scatter the family across
    // the ring, fold router-side, answer one aggregated line whose
    // rows and digest are bit-identical to a local computation.
    SweepRequest request;
    request.family = "ext-compare";
    request.contexts = 2;
    request.jobs = {"flo52", "trfd"};
    request.scale = testScale;
    SweepBuilder reference = expandSweep(request);
    const LocalFold expected = localFold(reference.specs());
    const std::vector<CompareRow> localRows =
        compareDesigns(reference.slices(), expected.results);

    FleetServiceOptions options;
    options.socketPath = tempPath(9);
    options.nodes = endpoints_;
    FleetService fleet(options);
    std::thread serveThread([&fleet] { fleet.serve(); });

    std::string error;
    const int fd = connectToDaemon(fleet.socketPath(), &error);
    ASSERT_GE(fd, 0) << error;
    {
        LineChannel channel(fd);
        Json line = sweepRequestToJson(request);
        line.set("op", "compare");
        line.set("id", 31);
        ASSERT_TRUE(channel.writeLine(line.dump()));
        std::string text;
        ASSERT_TRUE(channel.readLine(&text));
        Json response;
        ASSERT_TRUE(Json::parse(text, &response, &error)) << error;
        ASSERT_FALSE(response.has("error"))
            << response.getString("error");
        EXPECT_TRUE(response.getBool("ok", false));
        EXPECT_TRUE(response.getBool("compare", false));
        EXPECT_TRUE(response.getBool("fleet", false));
        EXPECT_EQ(response.getString("family"), "ext-compare");
        EXPECT_EQ(response.get("count").asU64(),
                  expected.results.size());
        EXPECT_EQ(response.getString("baseline"),
                  reference.slices()[0].label);
        char digestHex[17];
        std::snprintf(digestHex, sizeof(digestHex), "%016llx",
                      static_cast<unsigned long long>(
                          expected.digest));
        EXPECT_EQ(response.getString("digest"), digestHex);
        const auto &rows = response.get("rows").asArray();
        ASSERT_EQ(rows.size(), localRows.size());
        for (size_t i = 0; i < rows.size(); ++i) {
            const CompareRow row = compareRowFromJson(rows[i]);
            EXPECT_EQ(row.design, localRows[i].design)
                << "row " << i;
            EXPECT_EQ(row.cycles, localRows[i].cycles)
                << "row " << i;
            EXPECT_DOUBLE_EQ(row.speedup, localRows[i].speedup)
                << "row " << i;
        }

        // A non-design-parallel family is rejected before any node
        // sees work, same structured error as a single daemon.
        SweepRequest grouping;
        grouping.family = "groupings";
        grouping.program = "trfd";
        grouping.contexts = 2;
        grouping.scale = testScale;
        Json bad = sweepRequestToJson(grouping);
        bad.set("op", "compare");
        bad.set("id", 32);
        ASSERT_TRUE(channel.writeLine(bad.dump()));
        ASSERT_TRUE(channel.readLine(&text));
        Json answer;
        ASSERT_TRUE(Json::parse(text, &answer, &error)) << error;
        EXPECT_TRUE(answer.has("error"));
        EXPECT_EQ(answer.getString("notComparable"), "groupings");
    }

    fleet.stop();
    serveThread.join();
}

TEST(FleetRouterDeath, AllNodesDeadFatals)
{
    const std::string base =
        (std::filesystem::temp_directory_path() /
         ("mtv_test_fleet_dead_" + std::to_string(::getpid())))
            .string();
    FleetRouter router({base + "_a.nothere", base + "_b.nothere"});
    ScopedFatalAsException scope;
    EXPECT_THROW(router.runSpecs(distinctSpecs(4)), FatalError);
    EXPECT_EQ(router.aliveCount(), 0u);
}

} // namespace
} // namespace mtv
