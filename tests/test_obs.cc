/**
 * @file
 * Unit tests for the observability layer (src/obs/metrics.hh):
 * concurrent counter/histogram bit-exactness (this binary runs under
 * TSan in CI), bucket boundary placement, quantile readout, registry
 * get-or-create identity, and the Prometheus text exposition.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/obs/metrics.hh"

namespace mtv
{
namespace
{

TEST(Obs, CounterConcurrentIncrementsAreBitExact)
{
    MetricsRegistry registry;
    Counter *counter = registry.counter("t_concurrent_total");
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 25000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([counter] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                counter->inc();
            counter->inc(5);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(counter->value(), kThreads * (kPerThread + 5));

    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].first, "t_concurrent_total");
    EXPECT_EQ(snap.counters[0].second, kThreads * (kPerThread + 5));
}

TEST(Obs, GaugeBalancedAddsCancelOut)
{
    MetricsRegistry registry;
    Gauge *gauge = registry.gauge("t_depth");
    gauge->set(7);
    EXPECT_EQ(gauge->value(), 7);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([gauge] {
            for (int i = 0; i < 10000; ++i) {
                gauge->add(3);
                gauge->add(-3);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(gauge->value(), 7);
    gauge->add(-10);
    EXPECT_EQ(gauge->value(), -3);  // gauges go negative, counters don't
}

TEST(Obs, HistogramBucketBoundariesAreInclusiveUpperBounds)
{
    MetricsRegistry registry;
    Histogram *h = registry.histogram("t_bounds_us", {10, 20, 30});
    h->observe(0);    // first bucket
    h->observe(10);   // still the first bucket (inclusive upper)
    h->observe(11);   // second
    h->observe(30);   // third (inclusive)
    h->observe(31);   // overflow
    h->observe(1000); // overflow
    EXPECT_EQ(h->bucketCount(0), 2u);
    EXPECT_EQ(h->bucketCount(1), 1u);
    EXPECT_EQ(h->bucketCount(2), 1u);
    EXPECT_EQ(h->bucketCount(3), 2u);
    EXPECT_EQ(h->count(), 6u);
    EXPECT_EQ(h->sum(), 0u + 10 + 11 + 30 + 31 + 1000);
}

TEST(Obs, HistogramConcurrentObservesAreBitExact)
{
    MetricsRegistry registry;
    Histogram *h = registry.histogram("t_race_us", {100, 200, 300});
    constexpr int kThreads = 4;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([h] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                h->observe(i % 400);
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(h->count(), kThreads * kPerThread);
    // Each thread observed 0..399 fifty times over: the sum and the
    // per-bucket counts are exactly derivable.
    const uint64_t cycles = kPerThread / 400;
    EXPECT_EQ(h->sum(), kThreads * cycles * (399 * 400 / 2));
    EXPECT_EQ(h->bucketCount(0), kThreads * cycles * 101u); // 0..100
    EXPECT_EQ(h->bucketCount(1), kThreads * cycles * 100u); // 101..200
    EXPECT_EQ(h->bucketCount(2), kThreads * cycles * 100u); // 201..300
    EXPECT_EQ(h->bucketCount(3), kThreads * cycles * 99u);  // 301..399
}

TEST(Obs, QuantileInterpolatesWithinTheContainingBucket)
{
    MetricsRegistry registry;
    Histogram *h = registry.histogram("t_quantile_us", {10, 20, 30});
    for (uint64_t v = 1; v <= 30; ++v)
        h->observe(v);  // 10 per bucket
    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramSnapshot &hs = snap.histograms[0];
    EXPECT_DOUBLE_EQ(hs.quantile(0.5), 15.0);
    EXPECT_DOUBLE_EQ(hs.quantile(0.99), 29.7);
    EXPECT_DOUBLE_EQ(hs.quantile(1.0), 30.0);
    EXPECT_DOUBLE_EQ(hs.quantile(0.0), 0.0);
}

TEST(Obs, QuantileClampsOverflowToTheLastBound)
{
    MetricsRegistry registry;
    Histogram *h = registry.histogram("t_overflow_us", {10});
    for (int i = 0; i < 100; ++i)
        h->observe(1000);
    const MetricsSnapshot snap = registry.snapshot();
    EXPECT_DOUBLE_EQ(snap.histograms[0].quantile(0.99), 10.0);
}

TEST(Obs, QuantileOfAnEmptyHistogramIsZero)
{
    HistogramSnapshot hs;
    EXPECT_DOUBLE_EQ(hs.quantile(0.5), 0.0);
}

TEST(Obs, RegistryReturnsTheSameHandleForTheSameName)
{
    MetricsRegistry registry;
    EXPECT_EQ(registry.counter("t_shared_total"),
              registry.counter("t_shared_total"));
    EXPECT_EQ(registry.gauge("t_shared_depth"),
              registry.gauge("t_shared_depth"));
    EXPECT_EQ(registry.histogram("t_shared_us", {1, 2}),
              registry.histogram("t_shared_us", {1, 2}));
    // Label variants are distinct identities.
    EXPECT_NE(registry.counter("t_labels_total{shard=\"0\"}"),
              registry.counter("t_labels_total{shard=\"1\"}"));
}

TEST(Obs, SnapshotIsSortedByName)
{
    MetricsRegistry registry;
    registry.counter("t_zebra_total");
    registry.counter("t_apple_total");
    registry.counter("t_mango_total");
    const MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].first, "t_apple_total");
    EXPECT_EQ(snap.counters[1].first, "t_mango_total");
    EXPECT_EQ(snap.counters[2].first, "t_zebra_total");
}

TEST(Obs, DefaultBucketArraysAreStrictlyAscending)
{
    const auto strictlyAscending = [](const std::vector<uint64_t> &b) {
        for (size_t i = 1; i < b.size(); ++i) {
            if (b[i] <= b[i - 1])
                return false;
        }
        return !b.empty();
    };
    EXPECT_TRUE(strictlyAscending(MetricsRegistry::latencyBucketsUs()));
    EXPECT_TRUE(strictlyAscending(MetricsRegistry::countBuckets()));
}

TEST(Obs, MonotonicMicrosNeverGoesBackwards)
{
    const uint64_t a = monotonicMicros();
    const uint64_t b = monotonicMicros();
    EXPECT_LE(a, b);
}

TEST(Obs, RenderPromEmitsLabelsAndCumulativeBuckets)
{
    MetricsRegistry registry;
    registry.counter("t_appends_total{shard=\"1\"}")->inc(2);
    registry.counter("t_appends_total{shard=\"3\"}")->inc(7);
    registry.gauge("t_depth")->set(4);
    Histogram *h = registry.histogram("t_wait_us", {10, 20});
    h->observe(5);
    h->observe(15);
    h->observe(100);
    const std::string prom = renderProm(registry.snapshot());

    // One # TYPE header per base name, label variants adjacent.
    EXPECT_NE(prom.find("# TYPE t_appends_total counter\n"),
              std::string::npos);
    EXPECT_EQ(prom.find("# TYPE t_appends_total counter",
                        prom.find("# TYPE t_appends_total counter")
                            + 1),
              std::string::npos);
    EXPECT_NE(prom.find("t_appends_total{shard=\"1\"} 2\n"),
              std::string::npos);
    EXPECT_NE(prom.find("t_appends_total{shard=\"3\"} 7\n"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE t_depth gauge\nt_depth 4\n"),
              std::string::npos);
    // Histogram buckets are cumulative and end at +Inf.
    EXPECT_NE(prom.find("# TYPE t_wait_us histogram\n"),
              std::string::npos);
    EXPECT_NE(prom.find("t_wait_us_bucket{le=\"10\"} 1\n"),
              std::string::npos);
    EXPECT_NE(prom.find("t_wait_us_bucket{le=\"20\"} 2\n"),
              std::string::npos);
    EXPECT_NE(prom.find("t_wait_us_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(prom.find("t_wait_us_sum 120\n"), std::string::npos);
    EXPECT_NE(prom.find("t_wait_us_count 3\n"), std::string::npos);
}

TEST(Obs, ProcessRegistryIsASingleton)
{
    EXPECT_EQ(&MetricsRegistry::instance(),
              &MetricsRegistry::instance());
    // Handles from the process registry are stable across lookups.
    EXPECT_EQ(MetricsRegistry::instance().counter("t_singleton_total"),
              MetricsRegistry::instance().counter("t_singleton_total"));
}

} // namespace
} // namespace mtv
