/**
 * @file
 * Tests for src/store: SimStats codec round-trips, segment
 * persistence across the sharded layout, crash-tail recovery,
 * schema-hash rejection, legacy-layout migration, concurrent
 * appends, and the engine's warm-start-from-store bit-identity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/endian.hh"

#include "src/api/engine.hh"
#include "src/store/result_store.hh"
#include "src/store/stats_codec.hh"
#include "src/workload/suite.hh"

namespace mtv
{
namespace
{

constexpr double testScale = 2e-5;

std::string
tempDir(const char *name)
{
    const auto path = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(path);
    return path.string();
}

/** A SimStats exercising every serialized field. */
SimStats
sampleStats()
{
    SimStats s;
    s.cycles = 0x1234567890abcdefull;
    s.memRequests = 42;
    s.vecOpsFu1 = 7;
    s.vecOpsFu2 = 9;
    s.dispatches = 1000;
    s.decodeIdle = 77;
    s.decoupledSlips = 3;
    s.memPorts = 3;
    s.fu1BusyCycles = 11;
    s.fu2BusyCycles = 12;
    s.ldBusyCycles = 13;
    for (int i = 0; i < numFuStates; ++i)
        s.stateHist[i] = 100 + i;
    ThreadStats t0;
    t0.program = "swm256";
    t0.instructions = 500;
    t0.scalarInstructions = 100;
    t0.vectorInstructions = 400;
    t0.runsCompleted = 2;
    t0.instructionsThisRun = 33;
    t0.lastCompletion = 999;
    for (size_t i = 0; i < t0.blocked.size(); ++i)
        t0.blocked[i] = i * 11;
    s.threads.push_back(t0);
    ThreadStats t1;
    t1.program = "hydro2d";
    s.threads.push_back(t1);
    JobRecord job;
    job.program = "tomcatv";
    job.context = 2;
    job.startCycle = 10;
    job.endCycle = 20;
    s.jobs.push_back(job);
    return s;
}

// ---------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------

TEST(StatsCodec, RoundTripPreservesEveryField)
{
    const SimStats original = sampleStats();
    const std::string blob = serializeSimStats(original);
    const SimStats back = deserializeSimStats(blob);
    // Canonical encoding: equality of blobs is equality of stats.
    EXPECT_EQ(serializeSimStats(back), blob);
    EXPECT_EQ(back.cycles, original.cycles);
    EXPECT_EQ(back.memPorts, original.memPorts);
    ASSERT_EQ(back.threads.size(), 2u);
    EXPECT_EQ(back.threads[0].program, "swm256");
    EXPECT_EQ(back.threads[0].blocked, original.threads[0].blocked);
    ASSERT_EQ(back.jobs.size(), 1u);
    EXPECT_EQ(back.jobs[0].program, "tomcatv");
    EXPECT_EQ(back.jobs[0].endCycle, 20u);
}

TEST(StatsCodec, EncodingIsDeterministic)
{
    EXPECT_EQ(serializeSimStats(sampleStats()),
              serializeSimStats(sampleStats()));
}

TEST(StatsCodecDeath, TruncatedBlobRejected)
{
    const std::string blob = serializeSimStats(sampleStats());
    EXPECT_EXIT(
        deserializeSimStats(blob.substr(0, blob.size() / 2)),
        testing::ExitedWithCode(1), "truncated");
}

TEST(StatsCodecDeath, VersionMismatchRejected)
{
    std::string blob = serializeSimStats(sampleStats());
    blob[0] = static_cast<char>(statsCodecVersion + 1);
    EXPECT_EXIT(deserializeSimStats(blob),
                testing::ExitedWithCode(1), "codec version");
}

TEST(StatsCodecDeath, TrailingBytesRejected)
{
    std::string blob = serializeSimStats(sampleStats());
    blob += "xx";
    EXPECT_EXIT(deserializeSimStats(blob),
                testing::ExitedWithCode(1), "trailing");
}

TEST(StatsCodec, HexRoundTrip)
{
    const std::string data("\x00\x01\xfe\xff hi", 7);
    EXPECT_EQ(hexDecode(hexEncode(data)), data);
    EXPECT_EQ(hexEncode(std::string("\xab", 1)), "ab");
}

TEST(StatsCodecDeath, HexRejectsBadInput)
{
    EXPECT_EXIT(hexDecode("abc"), testing::ExitedWithCode(1),
                "odd-length");
    EXPECT_EXIT(hexDecode("zz"), testing::ExitedWithCode(1),
                "invalid hex");
}

TEST(StatsCodec, SchemaHashIsStableWithinProcess)
{
    EXPECT_EQ(storeSchemaHash(), storeSchemaHash());
    EXPECT_NE(storeSchemaHash(), 0u);
}

// ---------------------------------------------------------------------
// ResultStore persistence
// ---------------------------------------------------------------------

TEST(ResultStore, PersistsAcrossSessions)
{
    const std::string dir = tempDir("mtv_store_persist");
    const SimStats stats = sampleStats();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.shardCount(), defaultStoreShards);
        EXPECT_EQ(store.load("key-a"), nullptr);
        store.store("key-a", stats);
        store.store("key-b", stats);
        store.store("key-a", stats);  // duplicate: no-op
        EXPECT_EQ(store.size(), 2u);
        EXPECT_EQ(store.stats().appends, 2u);
    }
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 2u);
        EXPECT_EQ(store.stats().loadedRecords, 2u);
        EXPECT_EQ(store.stats().droppedRecords, 0u);
        auto loaded = store.load("key-a");
        ASSERT_NE(loaded, nullptr);
        EXPECT_EQ(serializeSimStats(*loaded),
                  serializeSimStats(stats));
        EXPECT_EQ(store.stats().hits, 1u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, EmptySessionLeavesNoSegmentBehind)
{
    const std::string dir = tempDir("mtv_store_empty");
    { ResultStore store(dir); }
    size_t segments = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(dir)) {
        if (entry.path().extension() == ".mtvs")
            ++segments;
    }
    EXPECT_EQ(segments, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, KeysPartitionAcrossShardsAndCountSticks)
{
    const std::string dir = tempDir("mtv_store_shards");
    const SimStats stats = sampleStats();
    constexpr int keys = 64;
    {
        ResultStore store(dir, 4);
        EXPECT_EQ(store.shardCount(), 4);
        for (int i = 0; i < keys; ++i)
            store.store("key-" + std::to_string(i), stats);
        EXPECT_EQ(store.size(), static_cast<size_t>(keys));
    }
    // 64 hashed keys across 4 shards: every shard got some.
    int shardsWithData = 0;
    for (int s = 0; s < 4; ++s) {
        const auto shardDir =
            std::filesystem::path(dir) /
            ("shard-0" + std::to_string(s));
        ASSERT_TRUE(std::filesystem::is_directory(shardDir));
        for (const auto &entry :
             std::filesystem::directory_iterator(shardDir)) {
            if (entry.path().extension() == ".mtvs" &&
                entry.file_size() > 16) {
                ++shardsWithData;
                break;
            }
        }
    }
    EXPECT_EQ(shardsWithData, 4);
    {
        // A different requested count must not re-route lookups: the
        // store keeps the count it was created with.
        ResultStore store(dir, 16);
        EXPECT_EQ(store.shardCount(), 4);
        EXPECT_EQ(store.size(), static_cast<size_t>(keys));
        for (int i = 0; i < keys; ++i) {
            EXPECT_NE(store.load("key-" + std::to_string(i)), nullptr)
                << "key-" << i;
        }
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ConcurrentAppendsAndLoadsAreSafe)
{
    // Many threads hammering disjoint and overlapping keys: the
    // per-shard locks must keep every record intact (run under TSan
    // in CI).
    const std::string dir = tempDir("mtv_store_mt");
    const SimStats stats = sampleStats();
    constexpr int threads = 8;
    constexpr int perThread = 24;
    {
        ResultStore store(dir);
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (int t = 0; t < threads; ++t) {
            pool.emplace_back([&store, &stats, t] {
                for (int i = 0; i < perThread; ++i) {
                    // Half the keys are shared across threads
                    // (duplicate appends dedup), half are private.
                    const std::string key =
                        i % 2 == 0
                            ? "shared-" + std::to_string(i)
                            : "t" + std::to_string(t) + "-" +
                                  std::to_string(i);
                    store.store(key, stats);
                    store.load(key);
                }
            });
        }
        for (auto &thread : pool)
            thread.join();
        const size_t expect =
            perThread / 2 + threads * (perThread / 2);
        EXPECT_EQ(store.size(), expect);
    }
    {
        ResultStore store(dir);
        EXPECT_EQ(store.stats().droppedRecords, 0u);
        ASSERT_NE(store.load("shared-0"), nullptr);
        EXPECT_EQ(serializeSimStats(*store.load("t3-5")),
                  serializeSimStats(stats));
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreDeath, SecondWriterRejected)
{
    const std::string dir = tempDir("mtv_store_lock");
    ResultStore store(dir);
    EXPECT_EXIT(ResultStore second(dir), testing::ExitedWithCode(1),
                "locked by another");
    std::filesystem::remove_all(dir);
}

TEST(ResultStoreDeath, MissingShardDirectoryRejected)
{
    // A torn copy of a store (one shard directory lost) must refuse
    // to open: inferring a smaller count would re-route every key.
    const std::string dir = tempDir("mtv_store_torn");
    {
        ResultStore store(dir, 4);
        store.store("key-a", sampleStats());
    }
    std::filesystem::remove_all(dir + "/shard-01");
    EXPECT_EXIT(ResultStore store(dir), testing::ExitedWithCode(1),
                "missing shard-01");
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Crash recovery and rejection
// ---------------------------------------------------------------------

/** Path of the single segment under @p dir (fails the test if != 1).
 *  Searches shard subdirectories; recovery tests pin shards = 1 so
 *  every record lands in one segment. */
std::string
onlySegment(const std::string &dir)
{
    std::string found;
    int count = 0;
    for (const auto &entry :
         std::filesystem::recursive_directory_iterator(dir)) {
        if (entry.path().extension() == ".mtvs") {
            found = entry.path().string();
            ++count;
        }
    }
    EXPECT_EQ(count, 1);
    return found;
}

TEST(ResultStore, TruncatedTailRecovered)
{
    const std::string dir = tempDir("mtv_store_trunc");
    {
        ResultStore store(dir, 1);
        store.store("key-a", sampleStats());
        store.store("key-b", sampleStats());
    }
    // Chop into the middle of the last record — a crash mid-append.
    const std::string segment = onlySegment(dir);
    const auto size = std::filesystem::file_size(segment);
    std::filesystem::resize_file(segment, size - 7);
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 1u);
        EXPECT_NE(store.load("key-a"), nullptr);
        EXPECT_EQ(store.load("key-b"), nullptr);
        EXPECT_EQ(store.stats().droppedRecords, 1u);
        // The recovered store accepts the re-run result again.
        store.store("key-b", sampleStats());
    }
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 2u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ChecksumFailureDropsTail)
{
    const std::string dir = tempDir("mtv_store_corrupt");
    {
        ResultStore store(dir, 1);
        store.store("key-a", sampleStats());
    }
    const std::string segment = onlySegment(dir);
    // Flip one payload byte (the file tail) behind the checksum.
    std::fstream f(segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-3, std::ios::end);
    f.put('\x5a');
    f.close();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.stats().droppedRecords, 1u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, SchemaMismatchRejectsSegment)
{
    const std::string dir = tempDir("mtv_store_schema");
    {
        ResultStore store(dir, 1);
        store.store("key-a", sampleStats());
    }
    const std::string segment = onlySegment(dir);
    // Rewrite the header's schema hash (bytes 8..15).
    std::fstream f(segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8, std::ios::beg);
    for (int i = 0; i < 8; ++i)
        f.put('\x77');
    f.close();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.size(), 0u);
        EXPECT_EQ(store.stats().staleSegments, 1u);
        EXPECT_EQ(store.stats().droppedRecords, 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, ForeignFileRejectedAsBadSegment)
{
    const std::string dir = tempDir("mtv_store_badmagic");
    { ResultStore store(dir); }
    std::ofstream junk(dir + "/seg-000099.mtvs", std::ios::binary);
    junk << "this is not a segment";
    junk.close();
    {
        ResultStore store(dir);
        EXPECT_EQ(store.stats().badSegments, 1u);
        EXPECT_EQ(store.size(), 0u);
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Legacy-layout migration
// ---------------------------------------------------------------------

/** Write a pre-shard (root-level) segment holding @p entries. */
void
writeLegacySegment(const std::string &path,
                   const std::vector<std::pair<std::string, SimStats>>
                       &entries)
{
    std::ofstream f(path, std::ios::binary);
    uint8_t header[16];
    writeLe32(header, storeMagic);
    writeLe32(header + 4, storeVersion);
    writeLe64(header + 8, storeSchemaHash());
    f.write(reinterpret_cast<const char *>(header), sizeof(header));
    for (const auto &[key, stats] : entries) {
        const std::string blob = serializeSimStats(stats);
        uint8_t rec[16];
        writeLe32(rec, static_cast<uint32_t>(key.size()));
        writeLe32(rec + 4, static_cast<uint32_t>(blob.size()));
        writeLe64(rec + 8,
                  fnv1a64(blob.data(), blob.size(),
                          fnv1a64(key.data(), key.size())));
        f.write(reinterpret_cast<const char *>(rec), sizeof(rec));
        f.write(key.data(), static_cast<std::streamsize>(key.size()));
        f.write(blob.data(),
                static_cast<std::streamsize>(blob.size()));
    }
}

TEST(ResultStore, LegacyStoreMigratesIntoShards)
{
    const std::string dir = tempDir("mtv_store_migrate");
    std::filesystem::create_directory(dir);
    const SimStats stats = sampleStats();
    std::vector<std::pair<std::string, SimStats>> entries;
    for (int i = 0; i < 12; ++i)
        entries.emplace_back("legacy-" + std::to_string(i), stats);
    writeLegacySegment(dir + "/seg-000000.mtvs", entries);
    {
        ResultStore store(dir);
        EXPECT_EQ(store.stats().migratedRecords, 12u);
        EXPECT_EQ(store.size(), 12u);
        // The legacy file is gone; its records now live in shards.
        EXPECT_FALSE(
            std::filesystem::exists(dir + "/seg-000000.mtvs"));
        auto loaded = store.load("legacy-7");
        ASSERT_NE(loaded, nullptr);
        EXPECT_EQ(serializeSimStats(*loaded),
                  serializeSimStats(stats));
    }
    {
        // Second open: nothing left to migrate, records persist.
        ResultStore store(dir);
        EXPECT_EQ(store.stats().migratedRecords, 0u);
        EXPECT_EQ(store.stats().loadedRecords, 12u);
        EXPECT_EQ(store.size(), 12u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultStore, MigrationRecoversLegacyCrashTail)
{
    // A store that crashed mid-append under the old layout migrates
    // its intact prefix and drops the torn tail.
    const std::string dir = tempDir("mtv_store_migrate_tail");
    std::filesystem::create_directory(dir);
    const SimStats stats = sampleStats();
    writeLegacySegment(dir + "/seg-000000.mtvs",
                       {{"whole", stats}, {"torn", stats}});
    const std::string legacy = dir + "/seg-000000.mtvs";
    std::filesystem::resize_file(
        legacy, std::filesystem::file_size(legacy) - 5);
    {
        ResultStore store(dir);
        EXPECT_EQ(store.stats().migratedRecords, 1u);
        EXPECT_EQ(store.stats().droppedRecords, 1u);
        EXPECT_NE(store.load("whole"), nullptr);
        EXPECT_EQ(store.load("torn"), nullptr);
        // The scanned legacy file is deleted: its intact prefix was
        // re-homed and the torn tail is unrecoverable either way.
        EXPECT_FALSE(std::filesystem::exists(legacy));
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Engine warm start through the store
// ---------------------------------------------------------------------

/** The sweep both engine sessions run: group (with its truncated F_i
 *  reference terms), single and job-queue modes. */
std::vector<RunSpec>
warmStartSpecs()
{
    std::vector<RunSpec> specs;
    specs.push_back(RunSpec::group({"trfd", "swm256"},
                                   MachineParams::multithreaded(2),
                                   testScale));
    specs.push_back(RunSpec::single(
        "dyfesm", MachineParams::reference(), testScale));
    specs.push_back(RunSpec::jobQueue(
        {"trfd", "dyfesm"}, MachineParams::multithreaded(2),
        testScale));
    return specs;
}

TEST(StoreBackedEngine, WarmStartIsBitIdentical)
{
    const std::string dir = tempDir("mtv_store_warm");
    const std::vector<RunSpec> specs = warmStartSpecs();

    // Cold baseline without any store.
    std::vector<RunResult> cold;
    {
        ExperimentEngine plain;
        cold = plain.runAll(specs);
    }

    // Session 1: simulate and write through.
    {
        EngineOptions options;
        options.backend = std::make_shared<ResultStore>(dir);
        ExperimentEngine engine(options);
        const auto results = engine.runAll(specs);
        EXPECT_EQ(engine.storeHits(), 0u);
        for (size_t i = 0; i < specs.size(); ++i) {
            EXPECT_FALSE(results[i].fromStore);
            EXPECT_EQ(serializeSimStats(results[i].stats),
                      serializeSimStats(cold[i].stats));
        }
    }

    // Session 2 (fresh process state): everything — including the
    // truncated F_i reference runs of the group accounting — must be
    // served from disk, bit-identical.
    {
        auto store = std::make_shared<ResultStore>(dir);
        EngineOptions options;
        options.backend = store;
        ExperimentEngine engine(options);
        const auto warm = engine.runAll(specs);
        for (size_t i = 0; i < specs.size(); ++i) {
            EXPECT_TRUE(warm[i].fromStore)
                << specs[i].canonical();
            EXPECT_EQ(serializeSimStats(warm[i].stats),
                      serializeSimStats(cold[i].stats));
            EXPECT_EQ(warm[i].speedup, cold[i].speedup);
            EXPECT_EQ(warm[i].mthOccupation, cold[i].mthOccupation);
            EXPECT_EQ(warm[i].refVopc, cold[i].refVopc);
        }
        // No simulation happened: every backend miss would have
        // appended a fresh record.
        EXPECT_EQ(store->stats().appends, 0u);
        EXPECT_GT(engine.storeHits(), 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST(StoreBackedEngine, RecoveredStoreResimulatesOnlyTheLostTail)
{
    const std::string dir = tempDir("mtv_store_warmtrunc");
    const std::vector<RunSpec> specs = warmStartSpecs();
    {
        EngineOptions options;
        // One shard so the kill-torn tail lands in the one segment
        // onlySegment() finds.
        options.backend = std::make_shared<ResultStore>(dir, 1);
        ExperimentEngine engine(options);
        engine.runAll(specs);
    }
    // Kill-between-sweeps: the segment loses its mid-append tail.
    const std::string segment = onlySegment(dir);
    std::filesystem::resize_file(
        segment, std::filesystem::file_size(segment) - 11);
    {
        auto store = std::make_shared<ResultStore>(dir);
        const uint64_t recovered = store->stats().loadedRecords;
        EXPECT_GT(recovered, 0u);
        EXPECT_EQ(store->stats().droppedRecords, 1u);
        EngineOptions options;
        options.backend = store;
        ExperimentEngine engine(options);
        const auto warm = engine.runAll(specs);
        // Only the one lost record was re-simulated and re-appended.
        EXPECT_EQ(store->stats().appends, 1u);
        ExperimentEngine plain;
        const auto cold = plain.runAll(specs);
        for (size_t i = 0; i < specs.size(); ++i) {
            EXPECT_EQ(serializeSimStats(warm[i].stats),
                      serializeSimStats(cold[i].stats));
        }
    }
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace mtv
